//! Virtual-to-physical translation with controllable fragmentation.
//!
//! Triage's 32-bit Markov format reconstructs prefetch targets through a
//! 1024-entry lookup table of physical-address upper bits; its accuracy
//! therefore depends on *physical frame locality* (Sections 3.1 and 6.5
//! of the paper: "minor changes in accesses cause even worse behavior...
//! roughly equivalent to halving physical-page locality"). This module
//! provides the knob: a page mapper that allocates frames either
//! contiguously (a freshly booted machine) or scattered across a larger
//! physical space (a fragmented, long-running OS).

use triangel_types::hash::{FxHashMap, FxHashSet};
use triangel_types::rng::SplitMix64;
use triangel_types::{Addr, PAGE_BYTES};

/// Allocates physical frames for virtual pages on first touch.
///
/// `fragmentation` in `[0, 1]` controls the allocation policy:
/// `0.0` allocates frames sequentially from a compact region (perfect
/// frame locality); `1.0` picks every frame uniformly at random from a
/// physical space `spread`× larger than the footprint. Intermediate
/// values allocate runs of contiguous frames with random run breaks.
///
/// # Examples
///
/// ```
/// use triangel_workloads::paging::PageMapper;
/// use triangel_types::Addr;
///
/// let mut compact = PageMapper::contiguous();
/// let p0 = compact.translate(Addr::new(0x0000));
/// let p1 = compact.translate(Addr::new(0x1000));
/// assert_eq!(p1.get() - p0.get(), 0x1000); // adjacent frames
/// ```
#[derive(Debug, Clone)]
pub struct PageMapper {
    fragmentation: f64,
    spread: u64,
    /// Page → frame, on the per-access translate path: a deterministic
    /// fast hash (lookups only; nothing folds over iteration order).
    table: FxHashMap<u64, u64>,
    used_frames: FxHashSet<u64>,
    next_frame: u64,
    run_left: u64,
    rng: SplitMix64,
}

impl PageMapper {
    /// Creates a mapper.
    ///
    /// # Panics
    ///
    /// Panics if `fragmentation` is not in `[0, 1]` or `spread == 0`.
    pub fn new(fragmentation: f64, spread: u64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fragmentation),
            "fragmentation must be within [0, 1]"
        );
        assert!(spread > 0, "spread must be positive");
        PageMapper {
            fragmentation,
            spread,
            table: FxHashMap::default(),
            used_frames: FxHashSet::default(),
            next_frame: 1, // frame 0 reserved so translated addresses stay nonzero
            run_left: 0,
            rng: SplitMix64::new(seed),
        }
    }

    /// Perfect frame locality: frames allocated sequentially.
    pub fn contiguous() -> Self {
        PageMapper::new(0.0, 1, 0)
    }

    /// A realistic long-running OS: mostly-contiguous runs with breaks,
    /// over a 4x larger physical space.
    pub fn realistic(seed: u64) -> Self {
        PageMapper::new(0.25, 4, seed)
    }

    /// Heavy fragmentation: every frame random over an 8x space.
    pub fn fragmented(seed: u64) -> Self {
        PageMapper::new(1.0, 8, seed)
    }

    /// Translates a virtual address, allocating a frame on first touch.
    pub fn translate(&mut self, vaddr: Addr) -> Addr {
        let vpage = vaddr.page_number();
        let frame = match self.table.get(&vpage) {
            Some(f) => *f,
            None => {
                let f = self.allocate();
                self.table.insert(vpage, f);
                f
            }
        };
        Addr::new(frame * PAGE_BYTES + vaddr.page_offset())
    }

    fn allocate(&mut self) -> u64 {
        let broke_run = self.run_left == 0 && self.rng.chance(self.fragmentation);
        if broke_run || self.fragmentation >= 1.0 {
            // Jump to a random region of the (spread x footprint) space.
            let horizon = (self.table.len() as u64 + 1024) * self.spread;
            self.next_frame = 1 + self.rng.next_below(horizon);
            // Runs shorten as fragmentation grows.
            self.run_left = ((16.0 * (1.0 - self.fragmentation)) as u64).max(1);
        } else if self.run_left > 0 {
            self.run_left -= 1;
        }
        // Linear-probe past frames already handed out.
        loop {
            let f = self.next_frame;
            self.next_frame += 1;
            if self.used_frames.insert(f) {
                return f;
            }
        }
    }

    /// Number of pages mapped so far.
    pub fn mapped_pages(&self) -> usize {
        self.table.len()
    }

    /// Number of distinct "upper-bit" groups among allocated frames,
    /// where a group is `frame >> bits`. This is exactly the pressure
    /// metric for Triage's lookup table (one entry per distinct upper-bit
    /// pattern).
    pub fn distinct_upper_groups(&self, bits: u32) -> usize {
        let mut groups: Vec<u64> = self.table.values().map(|f| f >> bits).collect();
        groups.sort_unstable();
        groups.dedup();
        groups.len()
    }
}

use triangel_types::snap::{SnapError, SnapReader, SnapWriter, Snapshot};

impl Snapshot for PageMapper {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        // Sorted so snapshot bytes are deterministic; map iteration
        // order never reaches simulated behaviour (lookups only).
        let mut pages: Vec<(&u64, &u64)> = self.table.iter().collect();
        pages.sort_unstable_by_key(|(page, _)| **page);
        w.usize(pages.len());
        for (page, frame) in pages {
            w.u64(*page);
            w.u64(*frame);
        }
        let mut frames: Vec<&u64> = self.used_frames.iter().collect();
        frames.sort_unstable();
        w.usize(frames.len());
        for f in frames {
            w.u64(*f);
        }
        w.u64(self.next_frame);
        w.u64(self.run_left);
        self.rng.save(w)
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        let n = r.usize()?;
        self.table.clear();
        for _ in 0..n {
            let page = r.u64()?;
            let frame = r.u64()?;
            self.table.insert(page, frame);
        }
        let n = r.usize()?;
        self.used_frames.clear();
        for _ in 0..n {
            self.used_frames.insert(r.u64()?);
        }
        self.next_frame = r.u64()?;
        self.run_left = r.u64()?;
        self.rng.restore(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translation_is_stable() {
        let mut m = PageMapper::realistic(1);
        let a = m.translate(Addr::new(0x5000));
        let b = m.translate(Addr::new(0x5008));
        assert_eq!(b.get() - a.get(), 8);
        assert_eq!(m.translate(Addr::new(0x5000)), a);
    }

    #[test]
    fn contiguous_preserves_adjacency() {
        let mut m = PageMapper::contiguous();
        let mut last = m.translate(Addr::new(0)).page_number();
        for p in 1..64u64 {
            let cur = m.translate(Addr::new(p * PAGE_BYTES)).page_number();
            assert_eq!(cur, last + 1);
            last = cur;
        }
    }

    #[test]
    fn fragmented_scatters_frames() {
        let mut m = PageMapper::fragmented(7);
        for p in 0..256u64 {
            let _ = m.translate(Addr::new(p * PAGE_BYTES));
        }
        // With 1.0 fragmentation over 8x spread, frames should span many
        // distinct upper groups; contiguous allocation of 256 pages
        // spans at most 2 groups of 256 pages.
        assert!(m.distinct_upper_groups(8) > 4);
        let mut c = PageMapper::contiguous();
        for p in 0..256u64 {
            let _ = c.translate(Addr::new(p * PAGE_BYTES));
        }
        assert!(c.distinct_upper_groups(8) <= 2);
    }

    #[test]
    fn distinct_pages_get_distinct_frames() {
        let mut m = PageMapper::fragmented(3);
        let mut frames = std::collections::HashSet::new();
        for p in 0..512u64 {
            let f = m.translate(Addr::new(p * PAGE_BYTES)).page_number();
            assert!(frames.insert(f), "frame reused for page {p}");
        }
    }

    #[test]
    #[should_panic(expected = "fragmentation must be within")]
    fn rejects_bad_fragmentation() {
        let _ = PageMapper::new(1.5, 1, 0);
    }

    #[test]
    fn offsets_preserved() {
        let mut m = PageMapper::fragmented(9);
        let v = Addr::new(0xABC123);
        let p = m.translate(v);
        assert_eq!(p.page_offset(), v.page_offset());
    }
}
