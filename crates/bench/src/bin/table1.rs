//! Reproduces Table 1: sizing of Triangel's dedicated structures.
//!
//! Declarative definition: `triangel_bench::figures` registry entry
//! `"table1"`, executed by the `triangel-harness` scheduler
//! (`--jobs N` controls worker threads; results are identical for any
//! value).

fn main() {
    triangel_bench::figures::run_main("table1");
}
