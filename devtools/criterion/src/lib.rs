//! An offline, API-compatible subset of the `criterion` crate.
//!
//! Covers the surface the workspace's benches use: `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`], [`BenchmarkId`], [`Throughput`],
//! and a wall-clock [`Bencher::iter`]. There are no statistics: each
//! benchmark is timed over a fixed-duration calibration loop and a
//! single median-of-runs estimate is printed.
//!
//! When the bench binary is invoked with `--test` (as `cargo test` does
//! for `harness = false` bench targets) every body runs exactly once, so
//! benches double as smoke tests.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            measure: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(self, &id.0, None, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim has no sampling.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the per-iteration throughput used in reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        let throughput = self.throughput;
        run_one(self.criterion, &label, throughput, f);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from a parameter value.
    pub fn from_parameter(p: impl Display) -> Self {
        BenchmarkId(p.to_string())
    }

    /// An id with an explicit function name and parameter.
    pub fn new(name: impl Display, p: impl Display) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times the benchmark body.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly and records total wall-clock time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(c: &Criterion, label: &str, tp: Option<Throughput>, mut f: F) {
    if c.test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("test {label} ... ok");
        return;
    }
    // Calibrate: grow the iteration count until the body runs long
    // enough to time meaningfully.
    let mut iters = 1u64;
    let per_iter = loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(10) || iters >= 1 << 30 {
            break b.elapsed / (iters as u32);
        }
        iters = iters.saturating_mul(8);
    };
    // Measure: as many iterations as fit in the budget.
    let budget_iters = if per_iter.is_zero() {
        iters
    } else {
        (c.measure.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 32) as u64
    };
    let mut b = Bencher {
        iters: budget_iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let ns = b.elapsed.as_nanos() as f64 / budget_iters as f64;
    let rate = match tp {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.2} Melem/s)", n as f64 / ns * 1e3)
        }
        Some(Throughput::Bytes(n)) => format!("  ({:.2} MiB/s)", n as f64 / ns * 1e3 / 1.048576),
        None => String::new(),
    };
    println!("{label}: {ns:.1} ns/iter over {budget_iters} iters{rate}");
}

/// Groups benchmark functions into one callable entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` for a bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
