//! Tree pseudo-LRU replacement.

use super::{AccessMeta, ReplacementPolicy, WayMask};

/// Tree-PLRU: one bit per internal node of a binary tree over the ways;
/// each bit points away from the most recently used half.
///
/// Matches the PLRU the paper describes being stored in spare cache-line
/// tag bits (Section 3.2). Associativity is rounded up to a power of two
/// internally; non-existent ways are never returned.
#[derive(Debug, Clone)]
pub struct TreePlru {
    ways: usize,
    tree_ways: usize,
    // One `tree_ways - 1`-bit tree per set, stored flat.
    bits: Vec<bool>,
}

impl TreePlru {
    /// Creates tree-PLRU state for `sets x ways`.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && ways > 0);
        let tree_ways = ways.next_power_of_two();
        TreePlru {
            ways,
            tree_ways,
            bits: vec![false; sets * (tree_ways - 1)],
        }
    }

    fn touch(&mut self, set: usize, way: usize) {
        // Walk root -> leaf, pointing each node away from `way`.
        let base = set * (self.tree_ways - 1);
        let mut node = 0usize; // root
        let mut lo = 0usize;
        let mut hi = self.tree_ways;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let goes_right = way >= mid;
            // Bit true means "victim on the right", so point away from MRU.
            self.bits[base + node] = !goes_right;
            node = 2 * node + if goes_right { 2 } else { 1 };
            if goes_right {
                lo = mid;
            } else {
                hi = mid;
            }
        }
    }

    fn walk_victim(&self, set: usize) -> usize {
        let base = set * (self.tree_ways - 1);
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = self.tree_ways;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let go_right = self.bits[base + node];
            node = 2 * node + if go_right { 2 } else { 1 };
            if go_right {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

impl ReplacementPolicy for TreePlru {
    fn on_hit(&mut self, set: usize, way: usize, _meta: &AccessMeta) {
        self.touch(set, way);
    }

    fn on_fill(&mut self, set: usize, way: usize, _meta: &AccessMeta) {
        self.touch(set, way);
    }

    fn victim(&mut self, set: usize, mask: WayMask) -> usize {
        assert!(mask != 0, "victim called with empty way mask");
        let v = self.walk_victim(set);
        if v < self.ways && mask & (1 << v) != 0 {
            return v;
        }
        // The tree points at an ineligible (partitioned-away or padded)
        // way; fall back to the first eligible way and flip its path so
        // repeated calls rotate.

        (0..self.ways)
            .find(|w| mask & (1 << w) != 0)
            .expect("mask selects at least one way")
    }

    fn on_evict(&mut self, set: usize, way: usize, _line: triangel_types::LineAddr) {
        // After eviction the slot is refilled; touching keeps the tree
        // rotating even on the fallback path.
        self.touch(set, way);
    }
}

impl triangel_types::snap::Snapshot for TreePlru {
    fn save(
        &self,
        w: &mut triangel_types::snap::SnapWriter,
    ) -> Result<(), triangel_types::snap::SnapError> {
        w.usize(self.bits.len());
        for b in &self.bits {
            w.bool(*b);
        }
        Ok(())
    }

    fn restore(
        &mut self,
        r: &mut triangel_types::snap::SnapReader,
    ) -> Result<(), triangel_types::snap::SnapError> {
        r.expect_len(self.bits.len(), "PLRU bits")?;
        for b in &mut self.bits {
            *b = r.bool()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triangel_types::LineAddr;

    fn meta() -> AccessMeta {
        AccessMeta::demand(LineAddr::new(0), None)
    }

    #[test]
    fn victim_is_not_mru() {
        let mut p = TreePlru::new(1, 4);
        for w in 0..4 {
            p.on_fill(0, w, &meta());
        }
        p.on_hit(0, 2, &meta());
        assert_ne!(p.victim(0, 0b1111), 2);
    }

    #[test]
    fn rotates_under_sequential_fills() {
        let mut p = TreePlru::new(1, 4);
        let mut seen = [false; 4];
        for _ in 0..8 {
            let v = p.victim(0, 0b1111);
            seen[v] = true;
            p.on_fill(0, v, &meta());
        }
        assert!(seen.iter().all(|s| *s), "PLRU failed to rotate: {seen:?}");
    }

    #[test]
    fn handles_non_power_of_two_assoc() {
        let mut p = TreePlru::new(1, 3);
        for w in 0..3 {
            p.on_fill(0, w, &meta());
        }
        for _ in 0..16 {
            let v = p.victim(0, 0b111);
            assert!(v < 3);
            p.on_fill(0, v, &meta());
        }
    }
}
