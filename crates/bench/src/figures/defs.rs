//! The per-figure experiment definitions: declarative grids handed to
//! the harness, plus the folds that turn their reports into tables.

use std::sync::Arc;

use triangel_core::{structure_sizes, TriangelConfig, TriangelFeatures};
use triangel_harness::emit::{
    features_to_json, multicore_to_json, perf_to_json, timeline_to_json, traces_to_json,
    FeatureCell, FeatureRow, FeatureStep, FeaturesReport, MulticoreReport, MulticoreRow,
    PerfCellCost, PerfRecord, PerfReport, PerfScalingPoint, TimelineReport, TimelineRow,
    TimelineSeries, TraceCell, TraceProvenance, TracesReport, TracesRow,
};
use triangel_harness::goldens::gated_features;
use triangel_harness::{
    GridSpec, JobSpec, MapperSpec, RunParams, Sweep, SweepOptions, WorkloadSpec,
};
use triangel_markov::TargetFormat;
use triangel_sim::report::FigureTable;
use triangel_sim::{PrefetcherChoice, SystemConfig};
use triangel_triage::TriageConfig;
use triangel_workloads::graph500::Graph500Config;
use triangel_workloads::irregular::IrregularWorkload;
use triangel_workloads::spec::SpecWorkload;
use triangel_workloads::trace_file::record_trace;

use super::{FigureContext, FigureOutput};
use crate::quick_mode;

fn tables(tables: Vec<triangel_sim::report::FigureTable>) -> Vec<FigureOutput> {
    tables.into_iter().map(FigureOutput::Table).collect()
}

pub(super) fn fig10(ctx: &mut FigureContext) -> Vec<FigureOutput> {
    tables(vec![ctx.spec_sweep().fig10_speedup()])
}

pub(super) fn fig11(ctx: &mut FigureContext) -> Vec<FigureOutput> {
    tables(vec![ctx.spec_sweep().fig11_traffic()])
}

pub(super) fn fig12(ctx: &mut FigureContext) -> Vec<FigureOutput> {
    tables(vec![ctx.spec_sweep().fig12_accuracy()])
}

pub(super) fn fig13(ctx: &mut FigureContext) -> Vec<FigureOutput> {
    tables(vec![ctx.spec_sweep().fig13_coverage()])
}

pub(super) fn fig14(ctx: &mut FigureContext) -> Vec<FigureOutput> {
    tables(vec![ctx.spec_sweep().fig14_l3()])
}

pub(super) fn fig15(ctx: &mut FigureContext) -> Vec<FigureOutput> {
    tables(vec![
        ctx.spec_sweep().fig15_energy(),
        ctx.spec_sweep().fig15_dram_fraction(),
    ])
}

/// The paper's multiprogrammed pairings ("with Xalan doubled to make an
/// even set").
pub const FIG16_PAIRS: [(SpecWorkload, SpecWorkload); 4] = [
    (SpecWorkload::Xalan, SpecWorkload::Omnetpp),
    (SpecWorkload::Mcf, SpecWorkload::Gcc166),
    (SpecWorkload::Astar, SpecWorkload::Soplex),
    (SpecWorkload::Sphinx, SpecWorkload::Xalan),
];

pub(super) fn fig16(ctx: &mut FigureContext) -> Vec<FigureOutput> {
    let mut grid = GridSpec::new(ctx.params.run_params()).columns([
        PrefetcherChoice::Triage,
        PrefetcherChoice::TriageDeg4,
        PrefetcherChoice::Triangel,
        PrefetcherChoice::TriangelBloom,
    ]);
    for (a, b) in FIG16_PAIRS {
        grid = grid.row(WorkloadSpec::Pair(a, b));
    }
    let result = grid.run(&ctx.opts).unwrap_or_else(|e| panic!("{e}"));
    ctx.absorb(result.stats);
    tables(vec![result.table(
        "Fig. 16: Multiprogrammed-workload speedup",
        "per-pair geomean IPC ratio vs stride-only dual-core baseline",
        |c| c.speedup,
    )])
}

pub(super) fn fig17(ctx: &mut FigureContext) -> Vec<FigureOutput> {
    let inputs: Vec<Graph500Config> = if quick_mode() {
        vec![Graph500Config::tiny()]
    } else {
        vec![Graph500Config::s16_e10(), Graph500Config::s21_e10()]
    };
    let mut grid = GridSpec::new(ctx.params.run_params()).columns([
        PrefetcherChoice::Triage,
        PrefetcherChoice::TriageDeg4,
        PrefetcherChoice::Triangel,
        PrefetcherChoice::TriangelBloom,
    ]);
    for input in inputs {
        eprintln!("[fig17] generating graph {}", input.label());
        // Build the graph once; every configuration's BFS shares it.
        let graph = input.build_trace().graph_handle();
        eprintln!(
            "[fig17] {}: {} vertices, {} edges, {:.1} MiB",
            input.label(),
            graph.n_vertices(),
            graph.n_entries() / 2,
            graph.footprint_bytes() as f64 / (1024.0 * 1024.0)
        );
        grid = grid.row(WorkloadSpec::Graph500 {
            label: input.label(),
            graph: Arc::clone(&graph),
        });
    }
    let result = grid.run(&ctx.opts).unwrap_or_else(|e| panic!("{e}"));
    ctx.absorb(result.stats);
    tables(vec![
        result
            .table(
                "Fig. 17 (left): Graph500 search slowdown",
                "baseline IPC / configuration IPC (higher = worse)",
                |c| c.slowdown(),
            )
            .without_geomean(),
        result
            .table(
                "Fig. 17 (right): Graph500 DRAM traffic",
                "DRAM line reads relative to baseline",
                |c| c.dram_traffic,
            )
            .without_geomean(),
    ])
}

pub(super) fn fig18(ctx: &mut FigureContext) -> Vec<FigureOutput> {
    let formats = [
        TargetFormat::triage_default(),
        TargetFormat::Ideal32,
        TargetFormat::triage_full_lut(),
        TargetFormat::Direct42,
        TargetFormat::triage_10b_offset(),
    ];
    let mut grid = GridSpec::new(ctx.params.run_params()).spec_rows();
    for f in formats {
        grid = grid.column(PrefetcherChoice::TriageFormat(f));
    }
    let result = grid.run(&ctx.opts).unwrap_or_else(|e| panic!("{e}"));
    ctx.absorb(result.stats);
    tables(vec![result.table(
        "Fig. 18: Triage speedup by Markov-table format",
        "IPC relative to stride-only baseline (first column is Triage's default)",
        |c| c.speedup,
    )])
}

pub(super) fn fig19(ctx: &mut FigureContext) -> Vec<FigureOutput> {
    let variants = [
        ("11-bit", TargetFormat::triage_default()),
        ("10-bit", TargetFormat::triage_10b_offset()),
    ];
    let mut grid = GridSpec::new(ctx.params.run_params())
        .spec_rows()
        .mapper(MapperSpec::Realistic(ctx.params.seed));
    for (name, f) in variants {
        grid = grid.labeled_column(name, PrefetcherChoice::TriageFormat(f));
    }
    let result = grid.run(&ctx.opts).unwrap_or_else(|e| panic!("{e}"));
    ctx.absorb(result.stats);
    tables(vec![result.table(
        "Fig. 19: Triage LUT accuracy by offset width",
        "prefetched lines used before L2 eviction (fragmented page mapping)",
        |c| c.accuracy,
    )])
}

pub(super) fn fig20(ctx: &mut FigureContext) -> Vec<FigureOutput> {
    let mut grid = GridSpec::new(ctx.params.run_params()).spec_rows();
    for step in 0..=8 {
        grid = grid.labeled_column(
            TriangelFeatures::ladder_label(step),
            PrefetcherChoice::TriangelLadder(step),
        );
    }
    let result = grid.run(&ctx.opts).unwrap_or_else(|e| panic!("{e}"));
    ctx.absorb(result.stats);
    tables(vec![
        result.table(
            "Fig. 20a: Ablation speedup",
            "IPC relative to stride-only baseline, features added cumulatively",
            |c| c.speedup,
        ),
        result.table(
            "Fig. 20b: Ablation DRAM traffic",
            "DRAM line reads relative to baseline",
            |c| c.dram_traffic,
        ),
    ])
}

pub(super) fn table1(_ctx: &mut FigureContext) -> Vec<FigureOutput> {
    let sizes = structure_sizes(&TriangelConfig::paper_default());
    let mut out = String::new();
    out.push_str("## Table 1: Sizing of Triangel's structures\n\n");
    out.push_str(&format!("{:24} {:>10} {:>8}\n", "Table", "Entries", "Size"));
    out.push_str(&format!("{}\n", "-".repeat(46)));
    let mut total = 0usize;
    for s in &sizes {
        let entries = if s.name == "Set Dueller" {
            "64x(8+16)".to_string()
        } else {
            s.entries.to_string()
        };
        out.push_str(&format!("{:24} {:>10} {:>7}B\n", s.name, entries, s.bytes));
        total += s.bytes;
    }
    out.push_str(&format!("{}\n", "-".repeat(46)));
    out.push_str(&format!(
        "{:24} {:>10} {:>6.1}KiB\n",
        "Total",
        "",
        total as f64 / 1024.0
    ));
    out.push_str("\n(paper: 17.6 KiB total, versus 219.5 KiB for Triage once its\n");
    out.push_str(" lookup table, HawkEye dueller and Bloom filter are counted)");
    vec![FigureOutput::Text(out)]
}

pub(super) fn table2(_ctx: &mut FigureContext) -> Vec<FigureOutput> {
    let cfg = SystemConfig::paper_single_core();
    let mut out = String::new();
    out.push_str("## Table 2: Core and memory experimental setup\n\n");
    out.push_str("Core       5-wide out-of-order approximation, 2 GHz\n");
    out.push_str(&format!(
        "Pipeline   {}-entry ROB (issue window), width {}\n",
        cfg.rob_entries, cfg.width
    ));
    for (name, c) in [
        ("L1 DCache", &cfg.l1),
        ("L2 Cache", &cfg.l2),
        ("L3 Cache", &cfg.l3),
    ] {
        out.push_str(&format!(
            "{:10} {} KiB, {}-way, {}-cycle hit latency, {} sets\n",
            name,
            c.size_bytes() / 1024,
            c.ways(),
            c.hit_latency(),
            c.sets()
        ));
    }
    out.push_str(&format!("L2 MSHRs   {}\n", cfg.l2_mshrs));
    out.push_str(&format!(
        "Memory     LPDDR5-like: {} cycles access latency, {} cycles/line channel occupancy\n",
        cfg.dram.access_latency, cfg.dram.service_interval
    ));
    out.push_str(&format!(
        "Stride pf  degree-{} at the L1D (baseline includes it)\n",
        cfg.stride_degree
    ));
    out.push_str(&format!(
        "Markov     up to {} of {} L3 ways (half the cache)",
        cfg.max_markov_ways,
        cfg.l3.ways()
    ));
    vec![FigureOutput::Text(out)]
}

pub(super) fn sec33_replacement(ctx: &mut FigureContext) -> Vec<FigureOutput> {
    use triangel_cache::replacement::PolicyKind;
    let policies = [
        ("LRU", PolicyKind::Lru),
        ("SRRIP", PolicyKind::Srrip),
        ("HawkEye", PolicyKind::Hawkeye),
    ];
    let mut out = Vec::new();
    // Two capacity points; the shared cache makes the per-workload
    // baselines execute once across both grids.
    for (cap_name, max_ways) in [
        ("full 1 MiB table (8 ways)", 8),
        ("capacity-limited table (2 ways)", 2),
    ] {
        let mut grid = GridSpec::new(ctx.params.run_params()).spec_rows();
        for (name, pk) in policies {
            let mut cfg = TriageConfig::paper_default();
            cfg.table.replacement = pk;
            cfg.table.max_ways = max_ways;
            grid = grid.labeled_column(name, PrefetcherChoice::TriageCustom(cfg));
        }
        let result = grid.run(&ctx.opts).unwrap_or_else(|e| panic!("{e}"));
        ctx.absorb(result.stats);
        out.push(FigureOutput::Table(result.table(
            format!("Sec. 3.3: Markov replacement policy, {cap_name}"),
            "Triage speedup over stride-only baseline",
            |c| c.speedup,
        )));
    }
    out
}

/// The perf smoke sweep's fixed scale. Deliberately *not* tied to
/// `TRIANGEL_QUICK`/`TRIANGEL_WARMUP`: the trajectory is only
/// comparable across PRs if every measurement simulates the same work.
const PERF_PARAMS: RunParams = RunParams {
    warmup: 50_000,
    accesses: 50_000,
    sizing_window: 25_000,
    seed: 42,
};

/// The recorded reference measurement for `BENCH_perf.json`, taken with
/// `--jobs 1` on the repo's dev container. PR 2's pre-refactor hot path
/// (HashMap `ready_at` / HashSet `temporal_resident` side tables in
/// `MemorySystem`, HashMap MSHR file, SipHash page/stride tables) is the
/// trajectory's origin; update the label and numbers only when the
/// sweep's shape changes and the trajectory must restart.
fn perf_baseline() -> PerfRecord {
    PerfRecord {
        label: "PR 1 side-table hot path (pre-refactor)".into(),
        wall_ms: 1537.0,
        accesses_per_sec: 1_366_000.0,
    }
}

pub(super) fn perf(ctx: &mut FigureContext) -> Vec<FigureOutput> {
    let grid = || {
        GridSpec::new(PERF_PARAMS)
            .spec_rows()
            .columns([PrefetcherChoice::Triage, PrefetcherChoice::Triangel])
    };
    // Serial and with a private (empty) cache: the wall clock must
    // measure simulation throughput, not scheduling or result reuse.
    let t0 = std::time::Instant::now();
    let result = grid()
        .run(&SweepOptions::serial())
        .unwrap_or_else(|e| panic!("{e}"));
    let wall = t0.elapsed();
    ctx.absorb(result.stats);

    let jobs = result.stats.executed;
    let total_accesses = jobs as u64 * (PERF_PARAMS.warmup + PERF_PARAMS.accesses);
    let serial_rate = total_accesses as f64 / wall.as_secs_f64();
    let current = PerfRecord {
        label: "working tree".into(),
        wall_ms: wall.as_secs_f64() * 1e3,
        accesses_per_sec: serial_rate,
    };

    // The parallel-scaling curve: jobs ∈ {1, 2, N}, each width on a
    // fresh private cache so it executes the full job list. The
    // scheduler takes the thread-free serial path whenever workers==1
    // (`pool::run_indexed`), so the measurement above *is* the jobs=1
    // point — re-running it would record pure run-to-run noise as
    // "scheduling overhead". Wider points (2, one-per-core) expose
    // real scheduler + memory-bandwidth overhead.
    let max_workers = triangel_harness::pool::default_workers();
    let mut scaling = vec![PerfScalingPoint {
        workers: 1,
        wall_ms: current.wall_ms,
        accesses_per_sec: serial_rate,
        speedup_vs_serial: 1.0,
    }];
    let mut widths = vec![2usize, max_workers];
    widths.sort_unstable();
    widths.dedup();
    widths.retain(|w| *w > 1);
    for workers in widths {
        let t0 = std::time::Instant::now();
        let result = grid()
            .run(&SweepOptions::parallel(workers))
            .unwrap_or_else(|e| panic!("{e}"));
        let wall = t0.elapsed().as_secs_f64();
        ctx.absorb(result.stats);
        let rate = total_accesses as f64 / wall;
        scaling.push(PerfScalingPoint {
            workers,
            wall_ms: wall * 1e3,
            accesses_per_sec: rate,
            speedup_vs_serial: rate / serial_rate,
        });
    }

    // The per-cell cost: the same 7 workloads timed as a baseline-only
    // and a Triangel-only job list, serial on a private cache. Their
    // wall-time ratio isolates what the temporal prefetcher's metadata
    // tables (training, Markov, issue) cost one simulation.
    let mut time_cells = |choice: PrefetcherChoice| -> f64 {
        let mut sweep = Sweep::new();
        for wl in SpecWorkload::ALL {
            sweep.push(JobSpec::new(WorkloadSpec::Spec(wl), choice, PERF_PARAMS));
        }
        let t0 = std::time::Instant::now();
        let result = sweep.run(&SweepOptions::serial());
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        for r in result.results {
            r.unwrap_or_else(|e| panic!("{e}"));
        }
        ctx.absorb(result.stats);
        wall_ms
    };
    let baseline_wall_ms = time_cells(PrefetcherChoice::Baseline);
    let triangel_wall_ms = time_cells(PrefetcherChoice::Triangel);
    let cell_cost = PerfCellCost {
        baseline_wall_ms,
        triangel_wall_ms,
        ratio: triangel_wall_ms / baseline_wall_ms,
    };

    let report = PerfReport {
        sweep: format!(
            "7 SPEC workloads x {{Baseline, Triage, Triangel}}, warmup {} + {} accesses each, serial + jobs scaling",
            PERF_PARAMS.warmup, PERF_PARAMS.accesses
        ),
        jobs,
        total_accesses,
        baseline: perf_baseline(),
        current,
        scaling,
        cell_cost,
    };
    eprintln!(
        "[perf] {} job(s), {:.0} ms wall, {:.3}M accesses/s — {:.2}x vs `{}`",
        report.jobs,
        report.current.wall_ms,
        report.current.accesses_per_sec / 1e6,
        report.speedup(),
        report.baseline.label,
    );
    for p in &report.scaling {
        eprintln!(
            "[perf]   --jobs {}: {:.0} ms, {:.3}M accesses/s ({:.2}x vs serial)",
            p.workers,
            p.wall_ms,
            p.accesses_per_sec / 1e6,
            p.speedup_vs_serial,
        );
    }
    eprintln!(
        "[perf]   per-cell cost: Triangel {:.0} ms / baseline {:.0} ms = {:.2}x",
        report.cell_cost.triangel_wall_ms,
        report.cell_cost.baseline_wall_ms,
        report.cell_cost.ratio,
    );
    vec![FigureOutput::Json {
        name: "BENCH_perf".into(),
        body: perf_to_json(&report),
    }]
}

/// The `features` ablation's fixed smoke scale. Like `perf`,
/// deliberately not tied to `TRIANGEL_QUICK`/`TRIANGEL_WARMUP`: the
/// gate's effect is only comparable across PRs if every measurement
/// simulates the same work — and the scale must be large enough that
/// temporal fills die (eviction training is a no-op until lines
/// actually leave the L2).
pub const FEATURES_PARAMS: RunParams = RunParams {
    warmup: 25_000,
    accesses: 25_000,
    sizing_window: 10_000,
    seed: 42,
};

/// The `features` ablation at paper scale: the methodology's 1M-access
/// warm-up plus 2M measured accesses per core. This is the scale the
/// `train_on_eviction` promotion verdict is recorded at (sampled
/// policies and Markov confidence dynamics only converge here); runs
/// of this size go through the `campaign` binary, which checkpoints
/// and resumes them.
pub const FEATURES_FULL_PARAMS: RunParams = RunParams {
    warmup: 1_000_000,
    accesses: 2_000_000,
    sizing_window: 250_000,
    seed: 42,
};

/// The features-ablation grid at `params` scale: the Fig. 20 ladder,
/// each step paired with its `+EvictTrain` twin.
pub fn features_grid(params: RunParams) -> GridSpec {
    let mut grid = GridSpec::new(params).spec_rows();
    for step in 0..=8 {
        let label = TriangelFeatures::ladder_label(step);
        grid = grid.labeled_column(label, PrefetcherChoice::TriangelLadder(step));
        grid = grid.labeled_column_with_features(
            format!("{label}+EvictTrain"),
            PrefetcherChoice::TriangelLadder(step),
            TriangelFeatures {
                train_on_eviction: true,
                ..TriangelFeatures::ladder(step)
            },
        );
    }
    grid
}

/// The `features` ablation: the Fig. 20 feature ladder, each step run
/// with the experimental `train_on_eviction` gate off and on, over the
/// smoke sweep. Emits the per-step off/on metrics as
/// `BENCH_features_smoke.json` (recorded like `perf`, minus wall
/// clocks — the artefact is byte-deterministic; the un-suffixed
/// `BENCH_features.json` name is reserved for the campaign runner's
/// full-scale record) plus speedup/accuracy/coverage tables.
pub(super) fn features(ctx: &mut FigureContext) -> Vec<FigureOutput> {
    let result = features_grid(FEATURES_PARAMS)
        .run(&ctx.opts)
        .unwrap_or_else(|e| panic!("{e}"));
    ctx.absorb(result.stats);
    features_outputs(&result, FEATURES_PARAMS, "BENCH_features_smoke")
}

/// Folds a finished features grid into its tables and the
/// `<artifact>.json` machine-readable report (shared by the smoke
/// figure, which emits `BENCH_features_smoke`, and the campaign
/// runner, whose full-scale run records `BENCH_features`).
pub fn features_outputs(
    result: &triangel_harness::GridResult,
    params: RunParams,
    artifact: &str,
) -> Vec<FigureOutput> {
    let cell = |c: triangel_sim::Comparison| FeatureCell {
        speedup: c.speedup,
        accuracy: c.accuracy,
        coverage: c.coverage,
        dram_traffic: c.dram_traffic,
    };
    let rows = result
        .row_labels()
        .iter()
        .enumerate()
        .map(|(r, workload)| FeatureRow {
            workload: workload.clone(),
            // Columns alternate off/on per step (2 per ladder step).
            steps: (0..=8)
                .map(|step| FeatureStep {
                    step,
                    label: TriangelFeatures::ladder_label(step).to_string(),
                    off: cell(result.comparison(r, step * 2)),
                    on: cell(result.comparison(r, step * 2 + 1)),
                })
                .collect(),
        })
        .collect();
    let report = FeaturesReport {
        sweep: format!(
            "7 SPEC workloads x 9 ladder steps x {{-, +EvictTrain}}, warmup {} + {} accesses each",
            params.warmup, params.accesses
        ),
        rows,
    };

    let mut out = tables(vec![
        result.table(
            "Features ablation: speedup +/- EvictTrain",
            "IPC relative to stride-only baseline; each ladder step paired with its +EvictTrain twin",
            |c| c.speedup,
        ),
        result
            .table(
                "Features ablation: accuracy +/- EvictTrain",
                "prefetched lines demand-used before L2 eviction",
                |c| c.accuracy,
            )
            .without_geomean(),
        result
            .table(
                "Features ablation: coverage +/- EvictTrain",
                "fraction of baseline L2 demand misses eliminated",
                |c| c.coverage,
            )
            .without_geomean(),
    ]);
    out.push(FigureOutput::Json {
        name: artifact.to_string(),
        body: features_to_json(&report),
    });
    out
}

/// Sampling period of the `timeline` figure at [`FEATURES_PARAMS`]
/// scale: ten intervals across the measured run, fine enough to see
/// *when* in a run EvictTrain's MCF coverage falls away, coarse
/// enough to keep the figure at smoke-test cost.
pub const TIMELINE_SAMPLE_EVERY: u64 = 2_500;

/// The workloads the timeline watches: MCF is where the eviction-
/// training gate's coverage collapses (the PR 5 campaign verdict);
/// Astar and Omnetpp are the contrast group whose coverage holds.
const TIMELINE_WORKLOADS: [SpecWorkload; 3] = [
    SpecWorkload::Mcf,
    SpecWorkload::Astar,
    SpecWorkload::Omnetpp,
];

/// The `timeline` figure: per-interval time-series of
/// {Baseline, Triangel-L0, Triangel-L0+EvictTrain} over the workloads
/// above, recorded through the interval sampler and emitted as
/// `BENCH_timeline.json` (`BENCH_timeline_smoke.json` when
/// `TRIANGEL_TIMELINE_SMOKE=1`, so CI never clobbers the recorded
/// artefact). The aggregate features tables say *that* EvictTrain
/// loses MCF coverage; this figure says *when*.
pub(super) fn timeline(ctx: &mut FigureContext) -> Vec<FigureOutput> {
    let params = FEATURES_PARAMS;
    // Ladder step 0, like the gate-on golden sweep: its ungated
    // prefetching exercises the eviction-training path heavily at this
    // scale, whereas full Triangel's confidence gates barely open
    // within 25k measured accesses and every series would be flat.
    let configs: [(&str, PrefetcherChoice, bool); 3] = [
        ("Baseline", PrefetcherChoice::Baseline, false),
        ("Triangel-L0", PrefetcherChoice::TriangelLadder(0), false),
        (
            "Triangel-L0+EvictTrain",
            PrefetcherChoice::TriangelLadder(0),
            true,
        ),
    ];
    let mut sweep = Sweep::new();
    for wl in TIMELINE_WORKLOADS {
        for (_, pf, gated) in configs {
            let mut job = JobSpec::new(WorkloadSpec::Spec(wl), pf, params)
                .sample_every(TIMELINE_SAMPLE_EVERY);
            if gated {
                job = job.features(gated_features(pf));
            }
            sweep.push(job);
        }
    }
    // A *private* cache, deliberately: sampling never enters content
    // keys, so the shared figure cache may hold unsampled twins of
    // these jobs — correct for summaries, useless for a figure that
    // needs the recorded series.
    let mut opts = SweepOptions::parallel(ctx.opts.workers);
    if let Some(trace) = &ctx.opts.trace {
        opts = opts.with_trace(Arc::clone(trace));
    }
    let result = sweep.run(&opts);
    ctx.absorb(result.stats);

    let series_at = |i: usize| -> &triangel_obs::IntervalSeries {
        result.results[i]
            .as_ref()
            .unwrap_or_else(|e| panic!("timeline job failed: {e:?}"))
            .intervals
            .as_ref()
            .expect("timeline jobs sample")
    };
    let rows: Vec<TimelineRow> = TIMELINE_WORKLOADS
        .iter()
        .enumerate()
        .map(|(wi, wl)| {
            let baseline = series_at(wi * configs.len());
            TimelineRow {
                workload: wl.label().to_string(),
                series: configs
                    .iter()
                    .enumerate()
                    .map(|(ci, (label, _, _))| {
                        TimelineSeries::from_intervals(
                            *label,
                            series_at(wi * configs.len() + ci),
                            (ci != 0).then_some(baseline),
                        )
                    })
                    .collect(),
            }
        })
        .collect();
    let report = TimelineReport {
        sweep: format!(
            "{{MCF, Astar, Omnetpp}} x {{Baseline, Triangel-L0, Triangel-L0+EvictTrain}}, warmup {} + {} accesses, sampled every {}",
            params.warmup, params.accesses, TIMELINE_SAMPLE_EVERY
        ),
        every: TIMELINE_SAMPLE_EVERY,
        rows,
    };

    // Localize the gate's effect: the first interval where the gated
    // twin visibly departs from the ungated run — cumulative coverage
    // trailing by > 0.05, or the per-interval issue count shifting by
    // more than 5% (with a small floor so near-idle intervals don't
    // trigger on noise-scale counts).
    let mut notes = vec![
        "Timeline: first interval where +EvictTrain diverges from the ungated run".to_string(),
    ];
    for row in &report.rows {
        let plain = &row.series[1].points;
        let gated = &row.series[2].points;
        let diverged = |p: &triangel_harness::emit::TimelinePoint,
                        g: &triangel_harness::emit::TimelinePoint| {
            let coverage_gap = p.coverage_so_far - g.coverage_so_far > 0.05;
            let issue_shift = p.issued.max(20) as f64 * 0.05;
            coverage_gap || (p.issued as f64 - g.issued as f64).abs() > issue_shift
        };
        match plain.iter().zip(gated).find(|(p, g)| diverged(p, g)) {
            Some((p, g)) => notes.push(format!(
                "  {}: diverges at access {} (issued {} vs {}, coverage {:.3} vs {:.3}); \
                 end of run coverage {:.3} vs {:.3}",
                row.workload,
                p.end_access,
                p.issued,
                g.issued,
                p.coverage_so_far,
                g.coverage_so_far,
                plain.last().map_or(0.0, |p| p.coverage_so_far),
                gated.last().map_or(0.0, |p| p.coverage_so_far),
            )),
            None => notes.push(format!(
                "  {}: no divergence (end of run coverage {:.3} vs {:.3})",
                row.workload,
                plain.last().map_or(0.0, |p| p.coverage_so_far),
                gated.last().map_or(0.0, |p| p.coverage_so_far),
            )),
        }
    }

    let smoke = std::env::var("TRIANGEL_TIMELINE_SMOKE").is_ok_and(|v| v == "1");
    vec![
        FigureOutput::Text(notes.join("\n")),
        FigureOutput::Json {
            name: if smoke {
                "BENCH_timeline_smoke".to_string()
            } else {
                "BENCH_timeline".to_string()
            },
            body: timeline_to_json(&report),
        },
    ]
}

/// Configurations of the `multicore` figure. Ladder step 0 is the
/// column that actually loads the shared Markov partition at
/// [`FEATURES_PARAMS`] scale (same reasoning as the `timeline`
/// figure: full Triangel's confidence gates barely open within 25k
/// measured accesses); full Triangel still rides along to pin the
/// gated configuration's N-core behaviour.
const MULTICORE_CONFIGS: [(&str, PrefetcherChoice); 3] = [
    ("Baseline", PrefetcherChoice::Baseline),
    ("Triangel-L0", PrefetcherChoice::TriangelLadder(0)),
    ("Triangel", PrefetcherChoice::Triangel),
];

/// The `multicore` scaling figure: MCF replicated across the core-count
/// ladder on the contended N-core timing model
/// ([`SystemConfig::paper_n_core`] — banked shared LLC, per-channel
/// DRAM bandwidth, MSHR back-pressure, cycle-ordered stepping), under
/// the stride-only baseline and full Triangel. Emits per-core IPC and
/// end-of-run Markov-partition occupancy per core count as
/// `BENCH_multicore.json` (`BENCH_multicore_smoke.json` with a shorter
/// ladder under `TRIANGEL_MULTICORE_SMOKE=1`, so CI never clobbers the
/// recorded artefact). Honors `TRIANGEL_EXEC_THREADS` for intra-sim
/// trace generation — the artefact must be byte-identical at any
/// width, and CI diffs the 1-thread and N-thread runs to prove it.
pub(super) fn multicore(ctx: &mut FigureContext) -> Vec<FigureOutput> {
    let params = FEATURES_PARAMS;
    let smoke = std::env::var("TRIANGEL_MULTICORE_SMOKE").is_ok_and(|v| v == "1");
    let core_counts: &[usize] = if smoke { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let exec_threads: usize = std::env::var("TRIANGEL_EXEC_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);

    let mut sweep = Sweep::new();
    for &n in core_counts {
        for (_, pf) in MULTICORE_CONFIGS {
            sweep.push(
                JobSpec::new(WorkloadSpec::Spec(SpecWorkload::Mcf), pf, params)
                    .with_cores(n)
                    // One sample, exactly at the end of the measured
                    // run: the final Markov-partition occupancy.
                    .sample_every(params.accesses)
                    .exec_threads(exec_threads),
            );
        }
    }
    // A *private* cache, like `timeline`: sampling never enters content
    // keys, so the shared figure cache may hold unsampled twins of
    // these jobs — useless for a figure that reads the recorded series.
    let mut opts = SweepOptions::parallel(ctx.opts.workers);
    if let Some(trace) = &ctx.opts.trace {
        opts = opts.with_trace(Arc::clone(trace));
    }
    let result = sweep.run(&opts);
    ctx.absorb(result.stats);

    let mut rows = Vec::new();
    let mut table = FigureTable::new(
        "Multi-core scaling: aggregate IPC",
        "total instructions over the slowest core's cycles (contended N-core model)",
        MULTICORE_CONFIGS
            .iter()
            .map(|(l, _)| l.to_string())
            .collect(),
    )
    .without_geomean();
    for (i, &n) in core_counts.iter().enumerate() {
        let mut ipcs = Vec::new();
        for (j, (label, _)) in MULTICORE_CONFIGS.iter().enumerate() {
            let report = result.results[i * MULTICORE_CONFIGS.len() + j]
                .as_ref()
                .unwrap_or_else(|e| panic!("multicore job failed: {e:?}"));
            let last = report
                .intervals
                .as_ref()
                .and_then(|s| s.samples.last().cloned())
                .expect("multicore jobs sample");
            rows.push(MulticoreRow {
                n_cores: n,
                config: label.to_string(),
                core_ipc: report.cores.iter().map(|c| c.ipc()).collect(),
                aggregate_ipc: report.aggregate_ipc(),
                dram_reads: report.dram_reads(),
                dram_queue_delay: report.dram.total_queue_delay,
                markov_occupancy: last.markov_occupancy,
                markov_ways: report.markov_ways as u64,
            });
            ipcs.push(report.aggregate_ipc());
        }
        table.push_row(format!("{n} core{}", if n == 1 { "" } else { "s" }), ipcs);
    }
    let report = MulticoreReport {
        sweep: format!(
            "MCF x {core_counts:?} cores x {{Baseline, Triangel-L0, Triangel}}, warmup {} + {} accesses per core",
            params.warmup, params.accesses
        ),
        workload: SpecWorkload::Mcf.label().to_string(),
        rows,
    };
    vec![
        FigureOutput::Table(table),
        FigureOutput::Json {
            name: if smoke {
                "BENCH_multicore_smoke".to_string()
            } else {
                "BENCH_multicore".to_string()
            },
            body: multicore_to_json(&report),
        },
    ]
}

pub(super) fn duel_bias(ctx: &mut FigureContext) -> Vec<FigureOutput> {
    let biases = [1u32, 2, 4];
    let mut grid = GridSpec::new(ctx.params.run_params()).spec_rows();
    for b in biases {
        let mut cfg = TriangelConfig::paper_default();
        cfg.dueller_bias = b;
        cfg.sizing_window = ctx.params.sizing_window;
        grid = grid.labeled_column(format!("B={b}"), PrefetcherChoice::TriangelCustom(cfg));
    }
    let result = grid.run(&ctx.opts).unwrap_or_else(|e| panic!("{e}"));
    ctx.absorb(result.stats);
    tables(vec![
        result.table(
            "Dueller bias sweep: speedup",
            "IPC vs stride-only baseline (B=2 is the paper's default)",
            |c| c.speedup,
        ),
        result.table(
            "Dueller bias sweep: DRAM traffic",
            "line reads vs baseline",
            |c| c.dram_traffic,
        ),
    ])
}

/// Columns of the `traces` figure: the degree-matched Triage reference
/// and full Triangel.
const TRACES_CONFIGS: [PrefetcherChoice; 2] =
    [PrefetcherChoice::Triage, PrefetcherChoice::Triangel];

/// Resolves the `traces` figure's recorded-trace row:
/// `TRIANGEL_TRACE_FILE` when set (replay any ChampSim-style `.trc`
/// recording, e.g. one captured from a real program), otherwise a
/// deterministic smoke trace recorded from the ZipfKV generator into
/// the temp directory. The smoke recording is deliberately shorter
/// than the run it feeds (half the warm-up + measured length), so the
/// looping end-of-trace policy and its wrap accounting are exercised
/// on every smoke run, never just at full scale.
fn traces_trace_spec(params: RunParams) -> WorkloadSpec {
    if let Ok(path) = std::env::var("TRIANGEL_TRACE_FILE") {
        return WorkloadSpec::trace_file(&path)
            .unwrap_or_else(|e| panic!("TRIANGEL_TRACE_FILE `{path}`: {e}"));
    }
    let records = ((params.warmup + params.accesses) / 2).clamp(256, 1 << 20);
    let dir = std::env::temp_dir().join("triangel-traces-figure");
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("{}: {e}", dir.display()));
    // Seed and length in the name: distinct scales record distinct
    // files, and an existing file's content is exactly what this run
    // would record (the generator is deterministic), so reuse is safe
    // — `trace_file` re-validates the header either way.
    let path = dir.join(format!("smoke-s{}-r{records}.trc", params.seed));
    if let Ok(spec) = WorkloadSpec::trace_file(&path) {
        return spec;
    }
    let mut src = IrregularWorkload::ZipfKv.generator(params.seed);
    record_trace(&mut src, records, &path)
        .unwrap_or_else(|e| panic!("recording {}: {e}", path.display()));
    WorkloadSpec::trace_file(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// The `traces` figure: the four irregular workload families (zipfian
/// KV store, GC churn, hash join, web serving) plus a recorded-trace
/// replay row, each compared against its stride-only baseline under
/// the [`TRACES_CONFIGS`] columns. Emits speedup/accuracy tables and
/// the machine-readable `BENCH_traces.json`, whose trace row carries
/// the header digest and wrap arithmetic.
pub(super) fn traces(ctx: &mut FigureContext) -> Vec<FigureOutput> {
    let params = ctx.params.run_params();
    let trace_spec = traces_trace_spec(params);
    let mut grid = GridSpec::new(params).columns(TRACES_CONFIGS);
    for wl in IrregularWorkload::ALL {
        grid = grid.row(WorkloadSpec::Irregular(wl));
    }
    grid = grid.row(trace_spec.clone());
    let result = grid.run(&ctx.opts).unwrap_or_else(|e| panic!("{e}"));
    ctx.absorb(result.stats);

    let rows: Vec<TracesRow> = result
        .row_labels()
        .iter()
        .enumerate()
        .map(|(r, workload)| {
            let provenance = if r < IrregularWorkload::ALL.len() {
                TraceProvenance::Generator
            } else {
                let WorkloadSpec::TraceFile {
                    records, checksum, ..
                } = &trace_spec
                else {
                    unreachable!("last row is the trace-file row");
                };
                TraceProvenance::Recorded {
                    records: *records,
                    checksum: *checksum,
                    replayed: params.warmup + params.accesses,
                }
            };
            TracesRow {
                workload: workload.clone(),
                provenance,
                cells: result
                    .col_labels()
                    .iter()
                    .enumerate()
                    .map(|(c, config)| {
                        let m = result.comparison(r, c);
                        TraceCell {
                            config: config.clone(),
                            speedup: m.speedup,
                            accuracy: m.accuracy,
                            coverage: m.coverage,
                            dram_traffic: m.dram_traffic,
                        }
                    })
                    .collect(),
            }
        })
        .collect();
    let report = TracesReport {
        sweep: format!(
            "4 irregular families + 1 recorded trace x {{Triage, Triangel}}, \
             warmup {} + {} accesses each",
            params.warmup, params.accesses
        ),
        rows,
    };

    let mut out = tables(vec![
        result.table(
            "Traces: irregular-family and recorded-trace speedup",
            "IPC relative to stride-only baseline",
            |c| c.speedup,
        ),
        result
            .table(
                "Traces: prefetch accuracy",
                "prefetched lines demand-used before L2 eviction",
                |c| c.accuracy,
            )
            .without_geomean(),
    ]);
    out.push(FigureOutput::Json {
        name: "BENCH_traces".into(),
        body: traces_to_json(&report),
    });
    out
}
