//! Property-based tests on the core data structures and invariants.

use proptest::prelude::*;

use triangel::cache::replacement::PolicyKind;
use triangel::cache::{Cache, CacheConfig, Mshr};
use triangel::markov::{MarkovTableConfig, MarkovTableImpl, TargetFormat};
use triangel::prefetch::BloomFilter;
use triangel::types::stats::geomean;
use triangel::types::{Addr, LineAddr, Pc, SaturatingCounter};
use triangel::workloads::paging::PageMapper;
use triangel::workloads::temporal::{TemporalStream, TemporalStreamConfig};
use triangel::workloads::TraceSource;

proptest! {
    /// A cache never holds more lines than its capacity, never holds
    /// duplicates, and always contains the line just filled.
    #[test]
    fn cache_capacity_and_membership(
        ops in prop::collection::vec((0u64..512, any::<bool>()), 1..400),
        policy_idx in 0usize..7,
    ) {
        let policy = [
            PolicyKind::Lru,
            PolicyKind::Fifo,
            PolicyKind::Random,
            PolicyKind::TreePlru,
            PolicyKind::Srrip,
            PolicyKind::Brrip,
            PolicyKind::Hawkeye,
        ][policy_idx];
        let mut c = Cache::new(CacheConfig::new("t", 8 * 4 * 64, 4, policy));
        for (line, is_prefetch) in ops {
            let l = LineAddr::new(line);
            c.fill(l, Some(Pc::new(line & 0xFF)), is_prefetch);
            prop_assert!(c.contains(l), "line missing right after fill");
            prop_assert!(c.occupancy() <= 32);
            // No duplicates: every resident tag unique.
            let mut tags: Vec<u64> = c.resident_lines().map(|t| t.index()).collect();
            let before = tags.len();
            tags.sort_unstable();
            tags.dedup();
            prop_assert_eq!(tags.len(), before, "duplicate resident line");
        }
    }

    /// Every access outcome is consistent: a hit implies prior residence,
    /// and a prefetch tag is consumed exactly once.
    #[test]
    fn prefetch_tags_consumed_once(lines in prop::collection::vec(0u64..64, 1..100)) {
        let mut c = Cache::new(CacheConfig::new("t", 16 * 4 * 64, 4, PolicyKind::Lru));
        for line in &lines {
            c.fill(LineAddr::new(*line), None, true);
        }
        let mut tagged_hits = std::collections::HashMap::new();
        for line in &lines {
            let out = c.access(LineAddr::new(*line), None, false);
            if out.prefetch_hit {
                let n = tagged_hits.entry(*line).or_insert(0u32);
                *n += 1;
                prop_assert!(*n <= 1, "tag consumed twice for {line}");
            }
        }
    }

    /// The Markov table round-trips (prev -> next) pairs under the
    /// direct format as long as no eviction or alias interferes, and
    /// never returns a hit from an inactive partition.
    #[test]
    fn markov_roundtrip_direct(pairs in prop::collection::vec((0u64..100_000, 0u64..100_000), 1..100)) {
        let mut t = MarkovTableImpl::new(MarkovTableConfig {
            sets: 256,
            max_ways: 4,
            format: TargetFormat::Direct42,
            tag_bits: 10,
            replacement: PolicyKind::Lru,
        });
        // Inactive: nothing sticks.
        t.train(LineAddr::new(1), LineAddr::new(2), Pc::new(0));
        prop_assert!(t.lookup(LineAddr::new(1)).is_none());

        t.set_ways(4);
        for (a, b) in &pairs {
            t.train(LineAddr::new(*a), LineAddr::new(*b), Pc::new(4));
        }
        // The most recently trained pair must be retrievable (its entry
        // was just touched, so it cannot have been the LRU victim).
        let (a, b) = pairs[pairs.len() - 1];
        let hit = t.lookup(LineAddr::new(a));
        prop_assert!(hit.is_some());
        // Either our target, or an aliased overwrite by an identical
        // (set, tag) pair from the same run.
        if let Some(h) = hit {
            let alias_exists = pairs
                .iter()
                .any(|(x, y)| LineAddr::new(*y) == h.target && *x != a || (*x == a && *y == b));
            prop_assert!(h.target == LineAddr::new(b) || alias_exists);
        }
    }

    /// Occupancy never exceeds capacity for any format.
    #[test]
    fn markov_occupancy_bounded(
        pairs in prop::collection::vec((0u64..10_000, 0u64..10_000), 1..300),
        format_idx in 0usize..3,
    ) {
        let format = [TargetFormat::Direct42, TargetFormat::triage_default(), TargetFormat::Ideal32][format_idx];
        let mut t = MarkovTableImpl::new(MarkovTableConfig {
            sets: 64,
            max_ways: 2,
            format,
            tag_bits: 10,
            replacement: PolicyKind::Lru,
        });
        t.set_ways(2);
        let cap = t.capacity_entries();
        for (a, b) in pairs {
            t.train(LineAddr::new(a), LineAddr::new(b), Pc::new(0));
            prop_assert!(t.occupancy() <= cap);
        }
    }

    /// Resizing the partition never manufactures entries.
    #[test]
    fn markov_resize_monotone(
        pairs in prop::collection::vec((0u64..50_000, 0u64..50_000), 1..200),
        new_ways in 0usize..5,
    ) {
        let mut t = MarkovTableImpl::new(MarkovTableConfig {
            sets: 128,
            max_ways: 4,
            format: TargetFormat::Direct42,
            tag_bits: 10,
            replacement: PolicyKind::Lru,
        });
        t.set_ways(4);
        for (a, b) in &pairs {
            t.train(LineAddr::new(*a), LineAddr::new(*b), Pc::new(0));
        }
        let before = t.occupancy();
        t.set_ways(new_ways);
        prop_assert!(t.occupancy() <= before);
        prop_assert!(t.occupancy() <= t.capacity_entries());
    }

    /// Bloom filters never produce false negatives.
    #[test]
    fn bloom_no_false_negatives(keys in prop::collection::vec(any::<u64>(), 1..500)) {
        let mut f = BloomFilter::new(1 << 14, 4);
        for k in &keys {
            f.insert(*k);
        }
        for k in &keys {
            prop_assert!(f.contains(*k));
        }
    }

    /// MSHR occupancy respects capacity and completion frees slots.
    #[test]
    fn mshr_capacity(allocs in prop::collection::vec((0u64..1000, 1u64..500), 1..64)) {
        let mut m = Mshr::new(8);
        for (line, ready) in allocs {
            if m.lookup(LineAddr::new(line)).is_some() {
                m.merge(LineAddr::new(line), false);
            } else if !m.allocate(LineAddr::new(line), ready, false) {
                prop_assert!(m.is_full());
                let earliest = m.earliest_ready().unwrap();
                m.complete_until(earliest);
                prop_assert!(!m.is_full());
            }
            prop_assert!(m.len() <= 8);
        }
    }

    /// Page translation is injective (two pages never share a frame) and
    /// stable (same page always maps to the same frame).
    #[test]
    fn page_mapper_injective(
        pages in prop::collection::vec(0u64..5_000, 1..300),
        frag in 0u8..=10,
    ) {
        let mut m = PageMapper::new(frag as f64 / 10.0, 4, 99);
        let mut seen: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for p in pages {
            let frame = m.translate(Addr::new(p << 12)).page_number();
            if let Some(prev) = seen.get(&p) {
                prop_assert_eq!(*prev, frame, "unstable translation");
            } else {
                prop_assert!(
                    !seen.values().any(|f| *f == frame),
                    "frame {} shared", frame
                );
                seen.insert(p, frame);
            }
        }
    }

    /// A drift-free temporal stream emits exactly its element set each
    /// pass, regardless of exactness/shuffle parameters.
    #[test]
    fn temporal_stream_pass_invariant(
        seq_len in 16usize..200,
        exactness in 0.0f64..=1.0,
        window in 1usize..32,
        seed in any::<u64>(),
    ) {
        let cfg = TemporalStreamConfig {
            exactness,
            shuffle_window: window,
            ..TemporalStreamConfig::pointer_chase("t", Pc::new(8), Addr::new(0), seq_len)
        };
        let mut s = TemporalStream::new(cfg, seed);
        let mut a: Vec<u64> = (0..seq_len).map(|_| s.next_access().vaddr.get()).collect();
        let mut b: Vec<u64> = (0..seq_len).map(|_| s.next_access().vaddr.get()).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b, "pass element sets must match");
    }

    /// Saturating counters never leave their range.
    #[test]
    fn saturating_counter_in_range(ops in prop::collection::vec((any::<bool>(), 0u32..20), 0..200)) {
        let mut c = SaturatingCounter::with_initial(15, 8);
        for (up, n) in ops {
            if up { c.add(n) } else { c.sub(n) }
            prop_assert!(c.get() <= 15);
        }
    }

    /// Geomean lies between min and max of its (positive) inputs.
    #[test]
    fn geomean_bounds(vals in prop::collection::vec(0.01f64..100.0, 1..20)) {
        let g = geomean(&vals).unwrap();
        let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = vals.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(g >= min * 0.999 && g <= max * 1.001, "g={g} min={min} max={max}");
    }
}
