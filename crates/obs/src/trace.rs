//! Host-side tracing for the harness, in Chrome `trace_event` format.
//!
//! **Wall-clock lives here and only here.** The simulator is
//! deterministic; the harness around it (job scheduling, segment
//! checkpointing, result caching) is where wall-time goes, and that is
//! what a [`TraceBuffer`] records: complete spans (`ph:"X"`), counter
//! samples (`ph:"C"`), and instant markers (`ph:"i"`), each stamped
//! with microseconds since the buffer's creation and the recording OS
//! thread. [`TraceBuffer::to_json`] emits a `{"traceEvents":[...]}`
//! document loadable in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`; worker-thread lanes fall out of the per-thread
//! `tid` assignment, so pool utilization is visible directly.

use std::collections::HashMap;
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::Instant;

use crate::json;

/// A typed event argument.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceArg {
    /// An integer counter or id.
    U64(u64),
    /// A rate or ratio.
    F64(f64),
    /// A label.
    Str(String),
}

impl TraceArg {
    fn to_json(&self) -> String {
        match self {
            TraceArg::U64(v) => v.to_string(),
            TraceArg::F64(v) => json::fmt_f64(*v),
            TraceArg::Str(s) => json::escape(s),
        }
    }
}

#[derive(Debug)]
struct Event {
    name: String,
    cat: String,
    ph: char,
    ts_us: u64,
    dur_us: Option<u64>,
    tid: u32,
    args: Vec<(String, TraceArg)>,
}

#[derive(Debug, Default)]
struct Inner {
    events: Vec<Event>,
    /// OS thread → dense tid, in first-seen order.
    tids: HashMap<ThreadId, u32>,
}

/// An append-only buffer of host-side trace events.
///
/// Thread-safe: harness workers record concurrently. Typically shared
/// as an `Arc<TraceBuffer>` through `SweepOptions`/`CampaignOptions`.
#[derive(Debug)]
pub struct TraceBuffer {
    epoch: Instant,
    inner: Mutex<Inner>,
}

impl Default for TraceBuffer {
    fn default() -> Self {
        TraceBuffer::new()
    }
}

impl TraceBuffer {
    /// An empty buffer whose timebase starts now.
    pub fn new() -> Self {
        TraceBuffer {
            epoch: Instant::now(),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Microseconds elapsed since the buffer was created — use as the
    /// `start_us` of a later [`TraceBuffer::complete`] span.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn push(&self, ev: impl FnOnce(u64, u32) -> Event) {
        let ts = self.now_us();
        let mut inner = self.inner.lock().unwrap();
        let next = inner.tids.len() as u32;
        let tid = *inner
            .tids
            .entry(std::thread::current().id())
            .or_insert(next);
        let ev = ev(ts, tid);
        inner.events.push(ev);
    }

    /// Records a complete span (`ph:"X"`) from `start_us` (a prior
    /// [`TraceBuffer::now_us`]) to now, on the calling thread's lane.
    pub fn complete(&self, name: &str, cat: &str, start_us: u64, args: Vec<(String, TraceArg)>) {
        self.push(|now, tid| Event {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: 'X',
            ts_us: start_us,
            dur_us: Some(now.saturating_sub(start_us)),
            tid,
            args,
        });
    }

    /// Records a counter sample (`ph:"C"`); each arg becomes one
    /// series on the counter track.
    pub fn counter(&self, name: &str, series: Vec<(String, TraceArg)>) {
        self.push(|now, tid| Event {
            name: name.to_string(),
            cat: "counter".to_string(),
            ph: 'C',
            ts_us: now,
            dur_us: None,
            tid,
            args: series,
        });
    }

    /// Records an instant marker (`ph:"i"`).
    pub fn instant(&self, name: &str, cat: &str, args: Vec<(String, TraceArg)>) {
        self.push(|now, tid| Event {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: 'i',
            ts_us: now,
            dur_us: None,
            tid,
            args,
        });
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().events.len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes the buffer as a Chrome `trace_event` JSON document:
    /// `{"traceEvents":[...]}` with `thread_name` metadata for each
    /// recording thread.
    pub fn to_json(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut parts: Vec<String> = Vec::with_capacity(inner.events.len() + inner.tids.len());
        let mut tids: Vec<u32> = inner.tids.values().copied().collect();
        tids.sort_unstable();
        for tid in tids {
            let label = if tid == 0 {
                "harness-main".to_string()
            } else {
                format!("worker-{tid}")
            };
            parts.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":{}}}}}",
                json::escape(&label)
            ));
        }
        for ev in &inner.events {
            let mut fields = vec![
                format!("\"name\":{}", json::escape(&ev.name)),
                format!("\"cat\":{}", json::escape(&ev.cat)),
                format!("\"ph\":\"{}\"", ev.ph),
                format!("\"ts\":{}", ev.ts_us),
                "\"pid\":1".to_string(),
                format!("\"tid\":{}", ev.tid),
            ];
            if let Some(dur) = ev.dur_us {
                fields.push(format!("\"dur\":{dur}"));
            }
            if ev.ph == 'i' {
                fields.push("\"s\":\"t\"".to_string());
            }
            if !ev.args.is_empty() {
                let args = ev
                    .args
                    .iter()
                    .map(|(k, v)| format!("{}:{}", json::escape(k), v.to_json()))
                    .collect::<Vec<_>>()
                    .join(",");
                fields.push(format!("\"args\":{{{args}}}"));
            }
            parts.push(format!("{{{}}}", fields.join(",")));
        }
        format!("{{\"traceEvents\":[{}]}}", parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};

    #[test]
    fn emits_valid_trace_event_json() {
        let buf = TraceBuffer::new();
        let t0 = buf.now_us();
        buf.complete(
            "job xalan",
            "job",
            t0,
            vec![
                ("key".to_string(), TraceArg::Str("xalan|pf=Triangel".into())),
                ("accesses".to_string(), TraceArg::U64(25_000)),
            ],
        );
        buf.counter(
            "ResultCache",
            vec![
                ("hits".to_string(), TraceArg::U64(3)),
                ("misses".to_string(), TraceArg::U64(9)),
            ],
        );
        buf.instant("checkpoint", "segment", vec![]);
        assert_eq!(buf.len(), 3);

        let doc = buf.to_json();
        let v = parse(&doc).unwrap();
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        // 1 thread_name metadata + 3 recorded events.
        assert_eq!(events.len(), 4);
        for ev in events {
            assert!(ev.get("name").is_some());
            assert!(ev.get("ph").is_some());
            assert!(ev.get("pid").and_then(Value::as_u64).is_some());
            assert!(ev.get("tid").and_then(Value::as_u64).is_some());
        }
        let span = events
            .iter()
            .find(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .unwrap();
        assert!(span.get("dur").and_then(Value::as_u64).is_some());
        assert_eq!(
            span.get("args")
                .and_then(|a| a.get("key"))
                .and_then(Value::as_str),
            Some("xalan|pf=Triangel")
        );
        let meta = events
            .iter()
            .find(|e| e.get("ph").and_then(Value::as_str) == Some("M"))
            .unwrap();
        assert_eq!(
            meta.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Value::as_str),
            Some("harness-main")
        );
    }

    #[test]
    fn threads_get_distinct_lanes() {
        let buf = std::sync::Arc::new(TraceBuffer::new());
        let t0 = buf.now_us();
        buf.complete("main-span", "job", t0, vec![]);
        let b2 = buf.clone();
        std::thread::spawn(move || {
            let t = b2.now_us();
            b2.complete("worker-span", "job", t, vec![]);
        })
        .join()
        .unwrap();
        let v = parse(&buf.to_json()).unwrap();
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        let tids: std::collections::HashSet<u64> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .map(|e| e.get("tid").and_then(Value::as_u64).unwrap())
            .collect();
        assert_eq!(tids.len(), 2);
    }

    #[test]
    fn empty_buffer_is_still_valid_json() {
        let buf = TraceBuffer::new();
        assert!(buf.is_empty());
        crate::json::validate(&buf.to_json()).unwrap();
    }
}
