//! `any::<T>()` — whole-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    /// Generates an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over the whole domain of `T`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Returns the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($ty:ty),+) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )+
    };
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
