//! # Triangel: a temporal-prefetcher reproduction
//!
//! This crate is the facade of a from-scratch Rust reproduction of
//! *"Triangel: A High-Performance, Accurate, Timely On-Chip Temporal
//! Prefetcher"* (Ainsworth & Mukhanov, ISCA 2024). It re-exports the
//! workspace crates so downstream users need a single dependency:
//!
//! * [`types`] — addresses, counters, RNG, statistics.
//! * [`cache`] — set-associative caches, replacement policies (LRU, PLRU,
//!   RRIP, HawkEye), MSHRs, way partitioning, set duelling.
//! * [`mem`] — DRAM latency/bandwidth and energy models.
//! * [`workloads`] — trace format, SPEC-like temporal workload generators,
//!   Graph500 BFS, multiprogramming.
//! * [`prefetch`] — prefetcher traits, the stride prefetcher, Bloom
//!   filters.
//! * [`markov`] — Markov-table metadata formats and in-L3 storage.
//! * [`triage`] — the fixed Triage baseline (MICRO 2019 / IEEE TC 2022).
//! * [`core`] — the Triangel prefetcher itself.
//! * [`sim`] — the trace-driven timing simulator and experiment runner.
//! * [`harness`] — parallel, deterministic experiment orchestration:
//!   declarative job lists, a work-stealing scheduler, a content-keyed
//!   result cache, JSON/CSV emitters, the checkpointable
//!   [`Campaign`](harness::Campaign) runner that snapshots and resumes
//!   paper-scale sweeps, and the simulation daemon
//!   ([`harness::service`]) that serves sweeps over a Unix socket
//!   (see EXPERIMENTS.md).
//! * [`store`] — the on-disk, content-addressed result store shared
//!   across processes: atomic publishes, `flock`-claimed exactly-once
//!   execution, self-checking entries.
//!
//! # Quickstart
//!
//! ```
//! use triangel::sim::{PrefetcherChoice, SimSession};
//! use triangel::workloads::spec::SpecWorkload;
//!
//! // Run a short Triangel session on the Omnetpp-like workload.
//! // (Real evaluations use millions of accesses; see EXPERIMENTS.md.)
//! let report = SimSession::builder()
//!     .workload(SpecWorkload::Omnetpp.generator(7))
//!     .prefetcher(PrefetcherChoice::Triangel)
//!     .warmup(5_000)
//!     .accesses(10_000)
//!     .run()
//!     .unwrap();
//! assert!(report.ipc() > 0.0);
//! ```
//!
//! Whole sweeps — many (workload, configuration) pairs — go through the
//! harness, which parallelizes them deterministically and runs shared
//! baselines once:
//!
//! ```
//! use triangel::harness::{GridSpec, RunParams, SweepOptions, WorkloadSpec};
//! use triangel::sim::PrefetcherChoice;
//! use triangel::workloads::spec::SpecWorkload;
//!
//! let params = RunParams { warmup: 1_000, accesses: 1_000, sizing_window: 500, seed: 1 };
//! let result = GridSpec::new(params)
//!     .row(WorkloadSpec::Spec(SpecWorkload::Mcf))
//!     .column(PrefetcherChoice::Triage)
//!     .run(&SweepOptions::parallel(2))
//!     .unwrap();
//! assert!(result.comparison(0, 0).speedup > 0.0);
//! ```

pub use triangel_cache as cache;
pub use triangel_core as core;
pub use triangel_harness as harness;
pub use triangel_markov as markov;
pub use triangel_mem as mem;
pub use triangel_prefetch as prefetch;
pub use triangel_sim as sim;
pub use triangel_store as store;
pub use triangel_triage as triage;
pub use triangel_types as types;
pub use triangel_workloads as workloads;
