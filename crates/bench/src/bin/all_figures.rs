//! Regenerates every figure and table of the paper in one run,
//! sharing the expensive Figs. 10-15 sweep.
//!
//! Full-scale run: `cargo run --release -p triangel-bench --bin all_figures`
//! Smoke run: `TRIANGEL_QUICK=1 cargo run --release -p triangel-bench --bin all_figures`

use std::process::Command;

use triangel_bench::{SpecSweep, SweepParams};

fn run_binary(name: &str) {
    eprintln!("==> {name}");
    let status = Command::new(std::env::current_exe().unwrap().parent().unwrap().join(name))
        .status()
        .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
    assert!(status.success(), "{name} failed");
}

fn main() {
    let params = SweepParams::from_env();
    eprintln!("==> shared sweep for Figs. 10-15 (warmup {}, accesses {})", params.warmup, params.accesses);
    let sweep = SpecSweep::run(SpecSweep::paper_configs_with_nomrb(), &params);
    sweep.fig10_speedup().print();
    sweep.fig11_traffic().print();
    sweep.fig12_accuracy().print();
    sweep.fig13_coverage().print();
    sweep.fig14_l3().print();
    sweep.fig15_energy().print();
    sweep.fig15_dram_fraction().print();
    for bin in ["fig16", "fig17", "fig18", "fig19", "fig20", "table1", "table2", "sec33_replacement"] {
        run_binary(bin);
    }
}
