//! The campaign subsystem's core invariant: interrupt → snapshot →
//! restore → continue is byte-identical to an uninterrupted run.
//!
//! For every shipped generator × {Baseline, Triage, Triangel,
//! Triangel+EvictTrain}, a run is interrupted twice — once mid-warm-up,
//! once mid-measurement — with each interruption crossing a snapshot
//! into a *freshly built* session. The final report (every counter, via
//! the exhaustive `Debug` rendering) and the prefetcher's diagnostic
//! state must equal the uninterrupted run's exactly.

use triangel_core::TriangelFeatures;
use triangel_sim::{PrefetcherChoice, SimSession};
use triangel_workloads::graph500::Graph500Config;
use triangel_workloads::spec::SpecWorkload;
use triangel_workloads::TraceSource;

const WARMUP: u64 = 2_500;
const ACCESSES: u64 = 3_500;
/// Interrupt points: one inside warm-up, one inside measurement.
const CUTS: [u64; 2] = [1_700, 4_300];

/// One prefetcher configuration under test.
#[derive(Clone, Copy)]
struct Config {
    label: &'static str,
    choice: PrefetcherChoice,
    features: Option<TriangelFeatures>,
}

fn configs() -> Vec<Config> {
    vec![
        Config {
            label: "Baseline",
            choice: PrefetcherChoice::Baseline,
            features: None,
        },
        Config {
            label: "Triage",
            choice: PrefetcherChoice::Triage,
            features: None,
        },
        Config {
            label: "Triangel",
            choice: PrefetcherChoice::Triangel,
            features: None,
        },
        Config {
            label: "Triangel+EvictTrain",
            choice: PrefetcherChoice::Triangel,
            features: Some(TriangelFeatures {
                train_on_eviction: true,
                ..TriangelFeatures::all()
            }),
        },
    ]
}

fn build(source: impl TraceSource + Send + 'static, cfg: &Config) -> SimSession {
    let mut b = SimSession::builder()
        .workload(source)
        .prefetcher(cfg.choice)
        .warmup(WARMUP)
        .accesses(ACCESSES)
        .sizing_window(1_500);
    if let Some(f) = cfg.features {
        b = b.triangel_features(f);
    }
    b.build().expect("well-formed session")
}

/// Renders everything observable about a finished run: the report's
/// exhaustive Debug (all stats structs derive Debug field-by-field) and
/// the prefetcher's internal diagnostic counters.
fn fingerprint(session: &SimSession) -> String {
    format!(
        "{:?} | pf={}",
        session.report(),
        session.engine().system().prefetcher_probe(0).render(),
    )
}

/// Runs uninterrupted; returns the fingerprint.
fn run_straight(make: &dyn Fn() -> SimSession) -> String {
    let mut s = make();
    let ran = s.run_segment(WARMUP + ACCESSES);
    assert_eq!(ran, WARMUP + ACCESSES);
    assert!(s.is_complete());
    fingerprint(&s)
}

/// Runs with interrupts at `CUTS`, crossing a snapshot into a fresh
/// session at each; returns the fingerprint.
fn run_interrupted(make: &dyn Fn() -> SimSession) -> String {
    let mut s = make();
    let mut done = 0u64;
    for cut in CUTS {
        s.run_segment(cut - done);
        done = cut;
        assert_eq!(s.executed_accesses(), done);
        let bytes = s.snapshot().expect("shipped pipelines snapshot");
        let mut fresh = make();
        fresh.restore(&bytes).expect("snapshot restores");
        assert_eq!(fresh.executed_accesses(), done);
        s = fresh;
    }
    s.run_segment(u64::MAX);
    assert!(s.is_complete());
    fingerprint(&s)
}

fn assert_equivalent(label: String, make: &dyn Fn() -> SimSession) {
    let straight = run_straight(make);
    let resumed = run_interrupted(make);
    assert_eq!(
        straight, resumed,
        "{label}: interrupted run diverged from uninterrupted run"
    );
}

#[test]
fn every_spec_generator_and_config_is_snapshot_equivalent() {
    for wl in SpecWorkload::ALL {
        for cfg in configs() {
            let make = move || build(wl.generator(11), &cfg);
            assert_equivalent(format!("{} x {}", wl.label(), cfg.label), &make);
        }
    }
}

#[test]
fn graph500_bfs_is_snapshot_equivalent() {
    // The BFS carries the largest generator state surface (visited
    // map, frontier queue, access buffer); the graph itself is static
    // and shared by every session.
    let graph = Graph500Config::tiny().build_trace().graph_handle();
    for cfg in configs() {
        let graph = graph.clone();
        let make = move || {
            build(
                triangel_workloads::graph500::BfsTrace::new("tiny", graph.clone(), 7),
                &cfg,
            )
        };
        assert_equivalent(format!("g500-tiny x {}", cfg.label), &make);
    }
}

#[test]
fn multiprogrammed_pair_is_snapshot_equivalent() {
    for cfg in configs() {
        let make = move || {
            let mut b = SimSession::builder()
                .workload(SpecWorkload::Xalan.generator(11))
                .workload(SpecWorkload::Omnetpp.generator(11 ^ 0x9999))
                .prefetcher(cfg.choice)
                .warmup(WARMUP)
                .accesses(ACCESSES)
                .sizing_window(1_500);
            if let Some(f) = cfg.features {
                b = b.triangel_features(f);
            }
            b.build().expect("well-formed session")
        };
        assert_equivalent(format!("pair x {}", cfg.label), &make);
    }
}

#[test]
fn interval_series_is_snapshot_equivalent() {
    // A sampling period of 700 interleaves awkwardly with both CUTS
    // (one cut mid-warm-up, one mid-interval of measurement), so resume
    // exercises partial-interval continuation, and the final measured
    // count (3 500 = 5 × 700) pins the closing boundary sample.
    let make = || {
        SimSession::builder()
            .workload(SpecWorkload::Mcf.generator(11))
            .prefetcher(PrefetcherChoice::Triangel)
            .warmup(WARMUP)
            .accesses(ACCESSES)
            .sizing_window(1_500)
            .sample_every(700)
            .build()
            .expect("well-formed session")
    };

    let mut straight = make();
    straight.run_segment(u64::MAX);
    assert!(straight.is_complete());
    let straight_series = straight.report().intervals.expect("sampling was enabled");
    assert_eq!(straight_series.every, 700);
    assert_eq!(straight_series.len(), (ACCESSES / 700) as usize);

    let mut s = make();
    let mut done = 0u64;
    for cut in CUTS {
        s.run_segment(cut - done);
        done = cut;
        let bytes = s.snapshot().expect("sampled sessions snapshot");
        let mut fresh = make();
        fresh.restore(&bytes).expect("sampled snapshot restores");
        s = fresh;
    }
    s.run_segment(u64::MAX);
    assert!(s.is_complete());
    let resumed_series = s.report().intervals.expect("sampling survived resume");
    assert_eq!(
        straight_series, resumed_series,
        "interval series diverged across interrupt→resume"
    );
    // And the full report fingerprints (aggregates + probes) match.
    assert_eq!(fingerprint(&straight), fingerprint(&s));

    // A snapshot from a sampled session will not restore into a
    // session with a different (or absent) sampling period.
    let bytes = make().snapshot().unwrap();
    let mut unsampled = build(
        SpecWorkload::Mcf.generator(11),
        &Config {
            label: "Triangel",
            choice: PrefetcherChoice::Triangel,
            features: None,
        },
    );
    assert!(unsampled.restore(&bytes).is_err());
}

#[test]
fn snapshot_restore_rejects_mismatched_sessions() {
    let cfg = configs()[2];
    let mut a = build(SpecWorkload::Xalan.generator(11), &cfg);
    a.run_segment(100);
    let bytes = a.snapshot().unwrap();

    // Different scale: structural mismatch reported, not silently
    // accepted.
    let mut wrong_scale = SimSession::builder()
        .workload(SpecWorkload::Xalan.generator(11))
        .prefetcher(cfg.choice)
        .warmup(WARMUP + 1)
        .accesses(ACCESSES)
        .build()
        .unwrap();
    assert!(wrong_scale.restore(&bytes).is_err());

    // Different prefetcher family: variant mismatch.
    let mut wrong_pf = SimSession::builder()
        .workload(SpecWorkload::Xalan.generator(11))
        .prefetcher(PrefetcherChoice::Triage)
        .warmup(WARMUP)
        .accesses(ACCESSES)
        .build()
        .unwrap();
    assert!(wrong_pf.restore(&bytes).is_err());

    // Truncation is loud.
    let mut fresh = build(SpecWorkload::Xalan.generator(11), &cfg);
    assert!(fresh.restore(&bytes[..bytes.len() - 1]).is_err());

    // A bad version number is a typed error.
    let mut versioned = bytes.clone();
    // magic is length-prefixed (8 bytes of length + 8 bytes of magic);
    // the version u32 follows.
    versioned[16] = 0xFF;
    assert!(matches!(
        fresh.restore(&versioned),
        Err(triangel_types::snap::SnapError::Version { .. })
    ));
}
