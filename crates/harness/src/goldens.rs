//! The pinned golden sweeps, shared by the fixture tests and the
//! `bless` devtool.
//!
//! A golden fixture is the byte-exact [`crate::emit::sweep_to_json`]
//! rendering of one of these sweeps, committed under
//! `crates/harness/tests/fixtures/`. The tests assert the current code
//! reproduces the committed bytes at `--jobs 1` and `--jobs 8`; the
//! `bless` binary (`cargo run -p triangel-bench --bin bless`)
//! regenerates them when — and only when — a behaviour change is being
//! landed deliberately. Defining the sweeps here, once, keeps the two
//! sides incapable of drifting apart.
//!
//! Three sweeps are pinned:
//!
//! * [`golden_sweep`] — the original pre-refactor pin: every prefetcher
//!   family with its **default** (gate-off) configuration. Any diff
//!   here means default behaviour changed.
//! * [`evict_train_sweep`] — the same workload shapes with the
//!   experimental `train_on_eviction` gate **on** for every
//!   Triangel-family job, at a scale where temporal fills actually die
//!   and train. Any diff here means the eviction-training mechanism
//!   changed.
//! * [`multicore_sweep`] — four-core jobs on the contended N-core
//!   timing model (banked shared LLC, per-channel DRAM, MSHR
//!   back-pressure, cycle-ordered stepping). Any diff here means the
//!   contention machinery changed.

use std::path::PathBuf;

use triangel_sim::{PrefetcherChoice, TriangelFeatures};
use triangel_workloads::spec::SpecWorkload;

use crate::emit;
use crate::job::{JobSpec, MapperSpec, RunParams, WorkloadSpec};
use crate::sweep::{Sweep, SweepOptions};

/// Directory holding the committed fixtures.
fn fixtures_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures"))
}

/// Path of the gate-off (pre-refactor) fixture.
pub fn golden_fixture_path() -> PathBuf {
    fixtures_dir().join("golden_sweep.json")
}

/// Path of the gate-on (eviction-training) fixture.
pub fn evict_train_fixture_path() -> PathBuf {
    fixtures_dir().join("golden_evict_train.json")
}

/// Path of the N-core contention-model fixture.
pub fn multicore_fixture_path() -> PathBuf {
    fixtures_dir().join("golden_multicore.json")
}

/// Scale of [`golden_sweep`]: small enough to run in seconds, long
/// enough for every prefetcher family to train, fill, hit and evict.
pub fn golden_params() -> RunParams {
    RunParams {
        warmup: 3_000,
        accesses: 3_000,
        sizing_window: 1_500,
        seed: 11,
    }
}

/// The gate-off pinned sweep: three single-core workloads under five
/// configurations, a multiprogrammed pair, and two fragmented-mapping
/// jobs (the fig18/19 shape).
pub fn golden_sweep() -> Sweep {
    let params = golden_params();
    let mut sweep = Sweep::new();
    for wl in [SpecWorkload::Xalan, SpecWorkload::Mcf, SpecWorkload::Sphinx] {
        for pf in [
            PrefetcherChoice::Baseline,
            PrefetcherChoice::Triage,
            PrefetcherChoice::TriageDeg4Look2,
            PrefetcherChoice::Triangel,
            PrefetcherChoice::TriangelBloom,
        ] {
            sweep.push(JobSpec::new(WorkloadSpec::Spec(wl), pf, params));
        }
    }
    sweep.push(JobSpec::new(
        WorkloadSpec::Pair(SpecWorkload::Xalan, SpecWorkload::Omnetpp),
        PrefetcherChoice::Triangel,
        params,
    ));
    for pf in [PrefetcherChoice::Triage, PrefetcherChoice::Triangel] {
        sweep.push(
            JobSpec::new(WorkloadSpec::Spec(SpecWorkload::Gcc166), pf, params)
                .mapper(MapperSpec::Realistic(7)),
        );
    }
    sweep
}

/// The feature set a Triangel-family choice runs with by default, with
/// the eviction-training gate switched on. The override must start
/// from the choice's *own* base features — overriding `TriangelBloom`
/// with `all()` would silently re-enable its Set Dueller.
pub fn gated_features(choice: PrefetcherChoice) -> TriangelFeatures {
    let base = match choice {
        PrefetcherChoice::TriangelBloom => TriangelFeatures {
            set_dueller: false,
            ..TriangelFeatures::all()
        },
        PrefetcherChoice::TriangelNoMrb => TriangelFeatures {
            metadata_reuse_buffer: false,
            ..TriangelFeatures::all()
        },
        PrefetcherChoice::TriangelLadder(s) => TriangelFeatures::ladder(s),
        _ => TriangelFeatures::all(),
    };
    TriangelFeatures {
        train_on_eviction: true,
        ..base
    }
}

/// Scale of [`evict_train_sweep`]: large enough that temporal fills
/// die (and eviction training demonstrably fires — the ladder-0 cells
/// change their fill/waste counts), small enough for test suites.
pub fn evict_train_params() -> RunParams {
    RunParams {
        warmup: 25_000,
        accesses: 25_000,
        sizing_window: 8_000,
        seed: 11,
    }
}

/// The gate-on pinned sweep: the golden shapes with `train_on_eviction`
/// set on every Triangel-family job. Ladder steps 0 and 2 are included
/// because their ungated prefetching exercises the training path
/// heavily at this scale; the full configurations pin the gate's
/// interaction with the classifier/MRB machinery.
pub fn evict_train_sweep() -> Sweep {
    let params = evict_train_params();
    let mut sweep = Sweep::new();
    for wl in [SpecWorkload::Xalan, SpecWorkload::Mcf, SpecWorkload::Sphinx] {
        for pf in [
            PrefetcherChoice::TriangelLadder(0),
            PrefetcherChoice::TriangelLadder(2),
            PrefetcherChoice::Triangel,
            PrefetcherChoice::TriangelBloom,
        ] {
            sweep.push(
                JobSpec::new(WorkloadSpec::Spec(wl), pf, params).features(gated_features(pf)),
            );
        }
    }
    sweep.push(
        JobSpec::new(
            WorkloadSpec::Pair(SpecWorkload::Xalan, SpecWorkload::Omnetpp),
            PrefetcherChoice::Triangel,
            params,
        )
        .features(gated_features(PrefetcherChoice::Triangel)),
    );
    let ladder0 = PrefetcherChoice::TriangelLadder(0);
    sweep.push(
        JobSpec::new(WorkloadSpec::Spec(SpecWorkload::Gcc166), ladder0, params)
            .mapper(MapperSpec::Realistic(7))
            .features(gated_features(ladder0)),
    );
    sweep
}

/// Scale of [`multicore_sweep`]: long enough for the shared-LLC and
/// DRAM arbitration to actually queue requests behind each other,
/// short enough for test suites.
pub fn multicore_params() -> RunParams {
    RunParams {
        warmup: 4_000,
        accesses: 4_000,
        sizing_window: 2_000,
        seed: 11,
    }
}

/// The N-core pinned sweep: the contention timing model
/// ([`triangel_sim::ContentionConfig::scaled`]) at four cores, under
/// Baseline and Triangel, for a replicated single workload and a
/// heterogeneous four-way mix. Any diff here means the shared-LLC bank
/// arbiter, the DRAM channel scheduler, the MSHR back-pressure, or the
/// cycle-ordered core stepping changed.
pub fn multicore_sweep() -> Sweep {
    let params = multicore_params();
    let mut sweep = Sweep::new();
    for pf in [PrefetcherChoice::Baseline, PrefetcherChoice::Triangel] {
        sweep.push(JobSpec::new(WorkloadSpec::Spec(SpecWorkload::Mcf), pf, params).with_cores(4));
    }
    sweep.push(
        JobSpec::new(
            WorkloadSpec::Multi(vec![
                WorkloadSpec::Spec(SpecWorkload::Xalan),
                WorkloadSpec::Spec(SpecWorkload::Mcf),
                WorkloadSpec::Spec(SpecWorkload::Omnetpp),
                WorkloadSpec::Spec(SpecWorkload::Sphinx),
            ]),
            PrefetcherChoice::Triangel,
            params,
        )
        .with_cores(4),
    );
    sweep
}

/// Renders a sweep the way fixtures are stored: executed serially on a
/// private cache, serialized as deterministic JSON.
pub fn render(sweep: &Sweep) -> String {
    emit::sweep_to_json(&sweep.run(&SweepOptions::serial()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gated_features_start_from_each_choice_base() {
        let bloom = gated_features(PrefetcherChoice::TriangelBloom);
        assert!(bloom.train_on_eviction && !bloom.set_dueller);
        let nomrb = gated_features(PrefetcherChoice::TriangelNoMrb);
        assert!(nomrb.train_on_eviction && !nomrb.metadata_reuse_buffer);
        let l0 = gated_features(PrefetcherChoice::TriangelLadder(0));
        assert_eq!(
            TriangelFeatures {
                train_on_eviction: false,
                ..l0
            },
            TriangelFeatures::none()
        );
        let full = gated_features(PrefetcherChoice::Triangel);
        assert_eq!(
            TriangelFeatures {
                train_on_eviction: false,
                ..full
            },
            TriangelFeatures::all()
        );
    }

    #[test]
    fn every_evict_train_job_is_gated() {
        for job in evict_train_sweep().jobs() {
            let f = job.features.expect("gate-on sweep sets features");
            assert!(f.train_on_eviction, "job {} is not gated", job.key());
            assert!(job.key().contains("train_on_eviction: true"));
        }
    }
}
