//! Reproduces Fig. 19: accuracy of Triage's lookup-table format with 11
//! and 10 offset bits (Section 6.5).
//!
//! The 10-bit variant gives the lookup table twice as many distinct
//! upper-bit regions to track ("roughly equivalent to halving
//! physical-page locality or doubling page fragmentation"); when its
//! 1024 entries are exhausted, stale indices silently reconstruct wrong
//! addresses and accuracy collapses.

use triangel_bench::SweepParams;
use triangel_markov::TargetFormat;
use triangel_sim::report::FigureTable;
use triangel_sim::{Comparison, Experiment, PrefetcherChoice};
use triangel_workloads::paging::PageMapper;
use triangel_workloads::spec::SpecWorkload;

fn main() {
    let p = SweepParams::from_env();
    let variants =
        [("11-bit", TargetFormat::triage_default()), ("10-bit", TargetFormat::triage_10b_offset())];
    let mut table = FigureTable::new(
        "Fig. 19: Triage LUT accuracy by offset width",
        "prefetched lines used before L2 eviction (fragmented page mapping)",
        variants.iter().map(|(n, _)| n.to_string()).collect(),
    );
    for wl in SpecWorkload::ALL {
        eprintln!("[fig19] {} / Baseline", wl.label());
        let base = Experiment::new(wl.generator(p.seed))
            .warmup(p.warmup)
            .accesses(p.accesses)
            .page_mapper(PageMapper::realistic(p.seed))
            .run();
        let mut row = Vec::new();
        for (name, f) in variants {
            eprintln!("[fig19] {} / {name}", wl.label());
            let run = Experiment::new(wl.generator(p.seed))
                .warmup(p.warmup)
                .accesses(p.accesses)
                .page_mapper(PageMapper::realistic(p.seed))
                .prefetcher(PrefetcherChoice::TriageFormat(f))
                .run();
            row.push(Comparison::new(&base, &run).accuracy);
        }
        table.push_row(wl.label(), row);
    }
    table.print();
}
