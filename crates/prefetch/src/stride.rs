//! The baseline L1D stride prefetcher (Chen & Baer, ASPLOS 1992).

use crate::{CacheView, PrefetchRequest, Prefetcher, TrainEvent, TrainKind};
use triangel_types::arena::ArenaMap;
use triangel_types::{LineAddr, Pc};

/// Per-PC stride tracking state.
#[derive(Debug, Clone, Copy)]
struct StrideEntry {
    last_line: LineAddr,
    stride: i64,
    confidence: u8,
}

impl Default for StrideEntry {
    fn default() -> Self {
        StrideEntry {
            last_line: LineAddr::new(0),
            stride: 0,
            confidence: 0,
        }
    }
}

/// A PC-localized stride prefetcher, degree 8 at the L1D in the paper's
/// baseline (Table 2).
///
/// On every L1 access it computes the delta to the PC's previous line;
/// two consecutive matching deltas lock the stride and issue
/// `degree` prefetches down the stream. Temporal prefetchers only see
/// value beyond what this captures, so it must be present in both
/// baseline and prefetcher configurations.
#[derive(Debug)]
pub struct StridePrefetcher {
    /// PC → stride state, touched on every L1 access. A fixed-capacity
    /// sorted-key arena map: probes binary-search one contiguous key
    /// array, the eviction policy (drop the smallest PC when full) is
    /// `O(1)` off the front, and iteration order is deterministic by
    /// construction.
    table: ArenaMap<StrideEntry>,
    degree: usize,
    issued: u64,
}

impl StridePrefetcher {
    /// Creates a stride prefetcher with a `capacity`-entry table and the
    /// given degree.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `degree` is zero.
    pub fn new(capacity: usize, degree: usize) -> Self {
        assert!(capacity > 0 && degree > 0);
        StridePrefetcher {
            table: ArenaMap::new(capacity),
            degree,
            issued: 0,
        }
    }

    /// The paper's baseline configuration: degree-8 (Table 2).
    pub fn baseline() -> Self {
        StridePrefetcher::new(64, 8)
    }

    /// Processes one training event with a statically-known cache view.
    ///
    /// This is the monomorphized form of
    /// [`Prefetcher::on_event`] — the simulator calls it directly on
    /// every L1 access, so the whole delta/confidence update inlines
    /// into the access loop. The trait method forwards here.
    pub fn handle<V: CacheView + ?Sized>(
        &mut self,
        ev: &TrainEvent,
        _caches: &V,
        out: &mut Vec<PrefetchRequest>,
    ) {
        if ev.kind != TrainKind::L1Access {
            return;
        }
        self.evict_if_full(ev.pc);
        let entry = self
            .table
            .get_mut_or_insert_with(ev.pc.get(), || StrideEntry {
                last_line: ev.line,
                stride: 0,
                confidence: 0,
            });
        let delta = ev.line.index() as i64 - entry.last_line.index() as i64;
        if delta == entry.stride && delta != 0 {
            entry.confidence = entry.confidence.saturating_add(1);
        } else {
            entry.stride = delta;
            entry.confidence = 0;
        }
        entry.last_line = ev.line;
        if entry.confidence >= 2 {
            let stride = entry.stride;
            for d in 1..=self.degree as i64 {
                out.push(PrefetchRequest {
                    line: ev.line.offset(stride * d),
                    pc: ev.pc,
                    issue_delay: 0,
                });
            }
            self.issued += self.degree as u64;
        }
    }

    fn evict_if_full(&mut self, pc: Pc) {
        if self.table.len() >= self.table.capacity() && !self.table.contains_key(pc.get()) {
            // Deterministic eviction: drop the smallest key. A real table
            // would be set-indexed by PC; the effect is equivalent for
            // our stream counts (well under capacity).
            if let Some(k) = self.table.min_key() {
                self.table.remove(k);
            }
        }
    }
}

impl Prefetcher for StridePrefetcher {
    fn on_event(
        &mut self,
        ev: &TrainEvent,
        caches: &dyn CacheView,
        out: &mut Vec<PrefetchRequest>,
    ) {
        self.handle(ev, caches, out);
    }

    fn name(&self) -> &str {
        "stride"
    }

    fn stats(&self) -> crate::PrefetcherStats {
        crate::PrefetcherStats {
            prefetches_issued: self.issued,
            ..Default::default()
        }
    }
}

use triangel_types::snap::{SnapError, SnapReader, SnapWriter, Snapshot};

impl Snapshot for StridePrefetcher {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        // The arena map iterates in ascending PC order, so the bytes
        // are deterministic without an explicit sort.
        w.usize(self.table.len());
        for (pc, e) in self.table.iter() {
            w.u64(pc);
            w.u64(e.last_line.index());
            w.i64(e.stride);
            w.u8(e.confidence);
        }
        w.u64(self.issued);
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        let n = r.usize()?;
        triangel_types::snap::snap_check(
            n <= self.table.capacity(),
            "stride table above capacity",
        )?;
        self.table.clear();
        for _ in 0..n {
            let pc = r.u64()?;
            let e = StrideEntry {
                last_line: LineAddr::new(r.u64()?),
                stride: r.i64()?,
                confidence: r.u8()?,
            };
            *self.table.get_mut_or_insert_with(pc, StrideEntry::default) = e;
        }
        self.issued = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NullCacheView;
    use triangel_types::Cycle;

    fn ev(pc: u64, line: u64, cycle: Cycle) -> TrainEvent {
        TrainEvent {
            pc: Pc::new(pc),
            line: LineAddr::new(line),
            kind: TrainKind::L1Access,
            cycle,
            l2_fills: 0,
        }
    }

    fn drive(pf: &mut StridePrefetcher, pc: u64, lines: &[u64]) -> Vec<PrefetchRequest> {
        let mut out = Vec::new();
        for (i, l) in lines.iter().enumerate() {
            out.clear();
            pf.on_event(&ev(pc, *l, i as Cycle), &NullCacheView, &mut out);
        }
        out
    }

    #[test]
    fn locks_onto_unit_stride() {
        let mut pf = StridePrefetcher::new(16, 4);
        let out = drive(&mut pf, 1, &[10, 11, 12, 13]);
        let lines: Vec<u64> = out.iter().map(|r| r.line.index()).collect();
        assert_eq!(lines, vec![14, 15, 16, 17]);
    }

    #[test]
    fn locks_onto_negative_stride() {
        let mut pf = StridePrefetcher::new(16, 2);
        let out = drive(&mut pf, 1, &[100, 97, 94, 91]);
        let lines: Vec<u64> = out.iter().map(|r| r.line.index()).collect();
        assert_eq!(lines, vec![88, 85]);
    }

    #[test]
    fn random_pattern_stays_quiet() {
        let mut pf = StridePrefetcher::new(16, 8);
        let out = drive(&mut pf, 1, &[5, 90, 3, 77, 21, 60]);
        assert!(out.is_empty());
    }

    #[test]
    fn streams_are_pc_separated() {
        let mut pf = StridePrefetcher::new(16, 2);
        // Interleave two PCs with different strides; both must lock.
        let mut out = Vec::new();
        let mut last = Vec::new();
        for i in 0..6u64 {
            out.clear();
            pf.on_event(&ev(1, 10 + i, 0), &NullCacheView, &mut out);
            if !out.is_empty() {
                last = out.clone();
            }
            out.clear();
            pf.on_event(&ev(2, 1000 + 4 * i, 0), &NullCacheView, &mut out);
        }
        assert!(!last.is_empty());
        assert!(!out.is_empty());
        assert_eq!(out[0].line.index() % 4, (1000 + 4 * 5 + 4) % 4);
    }

    #[test]
    fn ignores_l2_events() {
        let mut pf = StridePrefetcher::new(16, 2);
        let mut out = Vec::new();
        for i in 0..5 {
            let mut e = ev(1, 10 + i, 0);
            e.kind = TrainKind::L2Miss;
            pf.on_event(&e, &NullCacheView, &mut out);
        }
        assert!(out.is_empty());
    }

    #[test]
    fn zero_stride_never_prefetches() {
        let mut pf = StridePrefetcher::new(16, 2);
        let out = drive(&mut pf, 1, &[42, 42, 42, 42, 42]);
        assert!(out.is_empty());
    }

    #[test]
    fn capacity_evicts_smallest_pc() {
        let mut pf = StridePrefetcher::new(2, 2);
        drive(&mut pf, 10, &[100]);
        drive(&mut pf, 20, &[200]);
        drive(&mut pf, 30, &[300]); // evicts PC 10
        assert_eq!(pf.table.len(), 2);
        assert!(!pf.table.contains_key(10));
        assert!(pf.table.contains_key(20));
        assert!(pf.table.contains_key(30));
        // Touching a resident PC at capacity does not evict.
        drive(&mut pf, 20, &[201]);
        assert!(pf.table.contains_key(30));
    }

    #[test]
    fn snapshot_roundtrip_preserves_streams() {
        let mut pf = StridePrefetcher::new(16, 2);
        drive(&mut pf, 9, &[50, 51, 52]);
        drive(&mut pf, 3, &[10, 12, 14]);
        let mut w = SnapWriter::new();
        pf.save(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut q = StridePrefetcher::new(16, 2);
        let mut r = SnapReader::new(&bytes);
        q.restore(&mut r).unwrap();
        r.finish().unwrap();
        // Both continue identically.
        let a = drive(&mut pf, 9, &[53]);
        let b = drive(&mut q, 9, &[53]);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }
}
