//! Reproduces Fig. 17: slowdown and DRAM traffic on Graph500 search,
//! the paper's adversarial workload (Section 6.4).
//!
//! Neither input has exploitable temporal correlation: `s16 e10` fits
//! the Markov range but repeats too little; `s21 e10`'s reuse distances
//! exceed any on-chip capacity. Temporal prefetchers should ideally do
//! nothing; the paper shows the Triage variants slowing the system
//! dramatically while Triangel's classifiers largely switch off.
//!
//! Declarative definition: `triangel_bench::figures` registry entry
//! `"fig17"`, executed by the `triangel-harness` scheduler
//! (`--jobs N` controls worker threads; results are identical for any
//! value).

fn main() {
    triangel_bench::figures::run_main("fig17");
}
