//! Queue-based DRAM model.

use triangel_types::Cycle;

/// DRAM channel parameters.
///
/// The model is a single deterministic-service-time queue: each line
/// transfer occupies the channel for `service_interval` cycles and every
/// request additionally pays `access_latency` cycles of array/command
/// latency. When the channel is saturated, requests queue and the
/// *effective* latency grows — exactly the effect that punishes
/// inaccurate high-degree prefetching in the paper's multiprogrammed and
/// adversarial experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Fixed access latency in core cycles (row activation + CAS + bus).
    pub access_latency: Cycle,
    /// Channel occupancy per 64-byte line, in core cycles.
    pub service_interval: Cycle,
    /// Maximum requests queued ahead of a new arrival before the model
    /// reports heavy congestion (used for stats only; arrivals are never
    /// rejected).
    pub queue_depth: usize,
    /// Number of independent channels. Lines are striped across channels
    /// by line index (`line % channels`), so a request only queues behind
    /// earlier transfers on *its* channel. `1` reproduces the original
    /// single-queue model exactly.
    pub channels: usize,
}

impl DramConfig {
    /// LPDDR5-5500, one 16-bit channel (Table 2 of the paper), for a
    /// 2 GHz core: ~55 ns idle latency is ~110 core cycles. The service
    /// interval is calibrated so the channel prices aggressive prefetch
    /// traffic the way the paper's system does (effective per-line
    /// occupancy including command/activation overheads on a single
    /// narrow channel), rather than the theoretical peak burst rate.
    pub fn lpddr5() -> Self {
        DramConfig {
            access_latency: 110,
            service_interval: 36,
            queue_depth: 32,
            channels: 1,
        }
    }

    /// An LPDDR5 package with `n` independent channels, used by the
    /// N-core configurations: aggregate bandwidth scales with the channel
    /// count while per-request latency is unchanged.
    pub fn lpddr5_channels(n: usize) -> Self {
        DramConfig {
            channels: n.max(1),
            ..DramConfig::lpddr5()
        }
    }

    /// A wider configuration used in tests to isolate latency effects.
    pub fn unconstrained() -> Self {
        DramConfig {
            access_latency: 110,
            service_interval: 0,
            queue_depth: 1024,
            channels: 1,
        }
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig::lpddr5()
    }
}

/// What happened to a single DRAM request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramRequestOutcome {
    /// Cycle at which the requested line is available at the L3.
    pub completes_at: Cycle,
    /// Cycles the request waited behind earlier transfers.
    pub queue_delay: Cycle,
}

/// Aggregate DRAM event counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Demand (miss) line reads.
    pub demand_reads: u64,
    /// Prefetch line reads.
    pub prefetch_reads: u64,
    /// Total cycles spent queued (congestion indicator).
    pub total_queue_delay: u64,
    /// Requests that found `queue_depth` or more transfers ahead of them.
    pub congested_requests: u64,
}

impl DramStats {
    /// Total line reads (the paper's "DRAM traffic" metric, Fig. 11).
    pub fn total_reads(&self) -> u64 {
        self.demand_reads + self.prefetch_reads
    }

    /// Mean queueing delay per request, in cycles.
    pub fn mean_queue_delay(&self) -> f64 {
        let n = self.total_reads();
        if n == 0 {
            0.0
        } else {
            self.total_queue_delay as f64 / n as f64
        }
    }
}

impl triangel_obs::Probe for DramStats {
    fn probe(&self, out: &mut triangel_obs::ProbeSet) {
        out.record("demand_reads", self.demand_reads);
        out.record("prefetch_reads", self.prefetch_reads);
        out.record("total_queue_delay", self.total_queue_delay);
        out.record("congested_requests", self.congested_requests);
    }
}

/// The DRAM package: one or more independently queued channels.
///
/// # Examples
///
/// ```
/// use triangel_mem::{Dram, DramConfig};
///
/// let mut dram = Dram::new(DramConfig { access_latency: 100, service_interval: 10, queue_depth: 4, channels: 1 });
/// let out = dram.request(0, false);
/// assert_eq!(out.completes_at, 110); // service + latency
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    channel_free_at: Vec<Cycle>,
    stats: DramStats,
}

impl Dram {
    /// Creates a DRAM package.
    pub fn new(cfg: DramConfig) -> Self {
        Dram {
            channel_free_at: vec![0; cfg.channels.max(1)],
            cfg,
            stats: DramStats::default(),
        }
    }

    /// Returns the configuration.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Issues a line read at cycle `now` on channel 0; returns when it
    /// completes. Convenience for single-channel configurations and
    /// tests; multi-channel callers use [`Dram::request_line`].
    pub fn request(&mut self, now: Cycle, is_prefetch: bool) -> DramRequestOutcome {
        self.request_line(now, 0, is_prefetch)
    }

    /// Issues a read of line index `line` at cycle `now`; the channel is
    /// chosen by striping (`line % channels`) so the mapping is a pure
    /// function of the address and the outcome is independent of request
    /// order across channels.
    pub fn request_line(&mut self, now: Cycle, line: u64, is_prefetch: bool) -> DramRequestOutcome {
        let ch = (line % self.channel_free_at.len() as u64) as usize;
        let start = now.max(self.channel_free_at[ch]);
        let queue_delay = start - now;
        self.channel_free_at[ch] = start + self.cfg.service_interval;
        let completes_at = start + self.cfg.service_interval + self.cfg.access_latency;

        if is_prefetch {
            self.stats.prefetch_reads += 1;
        } else {
            self.stats.demand_reads += 1;
        }
        self.stats.total_queue_delay += queue_delay;
        if queue_delay as usize >= self.cfg.queue_depth * self.cfg.service_interval.max(1) as usize
        {
            self.stats.congested_requests += 1;
        }
        DramRequestOutcome {
            completes_at,
            queue_delay,
        }
    }

    /// Returns accumulated statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Resets statistics (e.g. after warm-up) without clearing channel
    /// occupancy.
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }
}

use triangel_types::snap::{SnapError, SnapReader, SnapWriter, Snapshot};

impl Snapshot for DramStats {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.u64(self.demand_reads);
        w.u64(self.prefetch_reads);
        w.u64(self.total_queue_delay);
        w.u64(self.congested_requests);
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.demand_reads = r.u64()?;
        self.prefetch_reads = r.u64()?;
        self.total_queue_delay = r.u64()?;
        self.congested_requests = r.u64()?;
        Ok(())
    }
}

impl Snapshot for Dram {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.usize(self.channel_free_at.len());
        for &free_at in &self.channel_free_at {
            w.u64(free_at);
        }
        self.stats.save(w)
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        let n = r.usize()?;
        if n != self.channel_free_at.len() {
            return Err(SnapError::corrupt(format!(
                "DRAM channel count mismatch: snapshot has {n}, config has {}",
                self.channel_free_at.len()
            )));
        }
        for free_at in &mut self.channel_free_at {
            *free_at = r.u64()?;
        }
        self.stats.restore(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_request_pays_base_latency() {
        let mut d = Dram::new(DramConfig {
            access_latency: 100,
            service_interval: 10,
            queue_depth: 4,
            channels: 1,
        });
        let out = d.request(500, false);
        assert_eq!(out.completes_at, 610);
        assert_eq!(out.queue_delay, 0);
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut d = Dram::new(DramConfig {
            access_latency: 100,
            service_interval: 10,
            queue_depth: 4,
            channels: 1,
        });
        let a = d.request(0, false);
        let b = d.request(0, false);
        let c = d.request(0, false);
        assert_eq!(a.completes_at, 110);
        assert_eq!(b.completes_at, 120);
        assert_eq!(c.completes_at, 130);
        assert_eq!(c.queue_delay, 20);
    }

    #[test]
    fn channel_drains_when_idle() {
        let mut d = Dram::new(DramConfig {
            access_latency: 100,
            service_interval: 10,
            queue_depth: 4,
            channels: 1,
        });
        d.request(0, false);
        // Long gap: no queueing for the next request.
        let out = d.request(1000, false);
        assert_eq!(out.queue_delay, 0);
    }

    #[test]
    fn stats_split_demand_and_prefetch() {
        let mut d = Dram::new(DramConfig::lpddr5());
        d.request(0, false);
        d.request(0, true);
        d.request(0, true);
        assert_eq!(d.stats().demand_reads, 1);
        assert_eq!(d.stats().prefetch_reads, 2);
        assert_eq!(d.stats().total_reads(), 3);
    }

    #[test]
    fn congestion_detected_under_flood() {
        let cfg = DramConfig {
            access_latency: 100,
            service_interval: 10,
            queue_depth: 4,
            channels: 1,
        };
        let mut d = Dram::new(cfg);
        for _ in 0..100 {
            d.request(0, true);
        }
        assert!(d.stats().congested_requests > 0);
        assert!(d.stats().mean_queue_delay() > 0.0);
    }

    #[test]
    fn channels_queue_independently() {
        let mut d = Dram::new(DramConfig {
            access_latency: 100,
            service_interval: 10,
            queue_depth: 4,
            channels: 2,
        });
        // Lines 0 and 2 share channel 0; line 1 rides channel 1 untouched.
        let a = d.request_line(0, 0, false);
        let b = d.request_line(0, 2, false);
        let c = d.request_line(0, 1, false);
        assert_eq!(a.completes_at, 110);
        assert_eq!(b.completes_at, 120);
        assert_eq!(c.completes_at, 110);
        assert_eq!(c.queue_delay, 0);
    }

    #[test]
    fn single_channel_striping_matches_request() {
        let mut striped = Dram::new(DramConfig::lpddr5());
        let mut plain = Dram::new(DramConfig::lpddr5());
        for line in [7u64, 9, 11, 7, 1024] {
            assert_eq!(
                striped.request_line(3, line, false),
                plain.request(3, false)
            );
        }
        assert_eq!(striped.stats(), plain.stats());
    }

    #[test]
    fn more_channels_reduce_queueing() {
        let cfg = DramConfig {
            access_latency: 100,
            service_interval: 10,
            queue_depth: 4,
            channels: 1,
        };
        let mut one = Dram::new(cfg);
        let mut four = Dram::new(DramConfig { channels: 4, ..cfg });
        for line in 0..64u64 {
            one.request_line(0, line, true);
            four.request_line(0, line, true);
        }
        assert!(four.stats().total_queue_delay < one.stats().total_queue_delay);
    }

    #[test]
    fn snapshot_rejects_channel_count_mismatch() {
        use triangel_types::snap::{SnapReader, SnapWriter, Snapshot};
        let mut d = Dram::new(DramConfig::lpddr5_channels(2));
        d.request_line(0, 0, false);
        let mut w = SnapWriter::new();
        d.save(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut other = Dram::new(DramConfig::lpddr5());
        let mut r = SnapReader::new(&bytes);
        assert!(other.restore(&mut r).is_err());
    }

    #[test]
    fn unconstrained_never_queues() {
        let mut d = Dram::new(DramConfig::unconstrained());
        for _ in 0..100 {
            assert_eq!(d.request(5, false).queue_delay, 0);
        }
    }
}
