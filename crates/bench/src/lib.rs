//! Shared infrastructure for the figure-reproduction harness.
//!
//! Every binary in `src/bin/` regenerates one of the paper's tables or
//! figures; all of them are declarative job lists executed by
//! [`triangel_harness`] (see the [`figures`] registry, which maps
//! experiment names to definitions). Figures 10–15 share one sweep over
//! the seven SPEC-like workloads; [`SpecSweep`] runs it once and
//! exposes each figure's metric as a [`FigureTable`].
//!
//! Scale knobs (environment variables, so the same binaries serve smoke
//! tests and full runs):
//!
//! * `TRIANGEL_QUICK=1` — small warm-up/measurement for CI smoke runs.
//! * `TRIANGEL_WARMUP` / `TRIANGEL_ACCESSES` — explicit per-core access
//!   counts.
//!
//! Command-line knobs (every binary): `--jobs N` sets the worker-thread
//! count (default: one per core; results are bit-identical whatever the
//! value). `all_figures` additionally takes `--filter <regex>` and
//! `--out-dir <dir>` (JSON/CSV emission).

pub mod figures;

use triangel_harness::{GridResult, GridSpec, RunParams, SweepOptions};
use triangel_sim::report::FigureTable;
use triangel_sim::{Comparison, PrefetcherChoice, RunReport};
use triangel_workloads::spec::SpecWorkload;

/// Scale parameters for a sweep.
#[derive(Debug, Clone, Copy)]
pub struct SweepParams {
    /// Warm-up accesses per core (not measured).
    pub warmup: u64,
    /// Measured accesses per core.
    pub accesses: u64,
    /// Set Dueller / Bloom sizing window.
    pub sizing_window: u64,
    /// Workload seed.
    pub seed: u64,
}

impl SweepParams {
    /// Full-scale parameters used for the recorded results in
    /// EXPERIMENTS.md.
    pub fn full() -> Self {
        SweepParams {
            warmup: 2_000_000,
            accesses: 1_500_000,
            sizing_window: 150_000,
            seed: 42,
        }
    }

    /// Reduced parameters for smoke runs.
    pub fn quick() -> Self {
        SweepParams {
            warmup: 400_000,
            accesses: 300_000,
            sizing_window: 60_000,
            seed: 42,
        }
    }

    /// Resolves parameters from the environment (see module docs).
    pub fn from_env() -> Self {
        let mut p = if quick_mode() {
            SweepParams::quick()
        } else {
            SweepParams::full()
        };
        if let Ok(w) = std::env::var("TRIANGEL_WARMUP") {
            p.warmup = w.parse().expect("TRIANGEL_WARMUP must be an integer");
        }
        if let Ok(a) = std::env::var("TRIANGEL_ACCESSES") {
            p.accesses = a.parse().expect("TRIANGEL_ACCESSES must be an integer");
        }
        p
    }

    /// The harness-level run parameters these scale knobs describe.
    pub fn run_params(&self) -> RunParams {
        RunParams {
            warmup: self.warmup,
            accesses: self.accesses,
            sizing_window: self.sizing_window,
            seed: self.seed,
        }
    }
}

impl Default for SweepParams {
    fn default() -> Self {
        SweepParams::full()
    }
}

/// Whether `TRIANGEL_QUICK=1` is set.
pub fn quick_mode() -> bool {
    std::env::var("TRIANGEL_QUICK").is_ok_and(|v| v == "1")
}

/// Runs one workload under one prefetcher configuration (serial
/// convenience wrapper; sweeps go through [`SpecSweep`] or a
/// [`GridSpec`] so they parallelize and share baselines).
pub fn run_spec(wl: SpecWorkload, choice: PrefetcherChoice, p: &SweepParams) -> RunReport {
    triangel_harness::JobSpec::new(
        triangel_harness::WorkloadSpec::Spec(wl),
        choice,
        p.run_params(),
    )
    .run()
    .expect("well-formed single-core spec job")
}

/// The figures-10-to-15 sweep: every workload under the baseline and a
/// set of prefetcher configurations, executed by the harness scheduler.
#[derive(Debug)]
pub struct SpecSweep {
    grid: GridResult,
}

impl SpecSweep {
    /// The configurations plotted in Figs. 10–13: Triage, Triage-Deg4,
    /// Triage-Deg4-Look2, Triangel, Triangel-Bloom.
    pub fn paper_configs() -> Vec<PrefetcherChoice> {
        vec![
            PrefetcherChoice::Triage,
            PrefetcherChoice::TriageDeg4,
            PrefetcherChoice::TriageDeg4Look2,
            PrefetcherChoice::Triangel,
            PrefetcherChoice::TriangelBloom,
        ]
    }

    /// The one configuration list the Figs. 10–15 sweep carries:
    /// [`SpecSweep::paper_configs`] plus the No-MRB ablation of
    /// Figs. 14–15. Both the standalone `fig10`–`fig15` binaries and
    /// `all_figures` run (and print) exactly these columns, so their
    /// outputs agree byte for byte — the seed's standalone binaries
    /// dropped the No-MRB column while `all_figures` printed it.
    pub fn paper_configs_with_nomrb() -> Vec<PrefetcherChoice> {
        let mut c = SpecSweep::paper_configs();
        c.push(PrefetcherChoice::TriangelNoMrb);
        c
    }

    /// Runs the sweep serially (see [`SpecSweep::run_opts`]).
    pub fn run(configs: Vec<PrefetcherChoice>, p: &SweepParams) -> Self {
        SpecSweep::run_opts(configs, p, &SweepOptions::serial().with_progress())
    }

    /// Runs the sweep under explicit scheduler options.
    pub fn run_opts(configs: Vec<PrefetcherChoice>, p: &SweepParams, opts: &SweepOptions) -> Self {
        let grid = GridSpec::new(p.run_params()).spec_rows().columns(configs);
        SpecSweep {
            grid: grid.run(opts).unwrap_or_else(|e| panic!("{e}")),
        }
    }

    /// Scheduler counters for the underlying sweep.
    pub fn stats(&self) -> triangel_harness::SweepStats {
        self.grid.stats
    }

    /// Per-workload, per-configuration comparison against baseline.
    pub fn comparison(&self, wl_idx: usize, cfg_idx: usize) -> Comparison {
        self.grid.comparison(wl_idx, cfg_idx)
    }

    /// Baseline report for one workload.
    pub fn baseline(&self, wl_idx: usize) -> &RunReport {
        self.grid.baseline(wl_idx)
    }

    /// Run report for one workload/configuration.
    pub fn run_report(&self, wl_idx: usize, cfg_idx: usize) -> &RunReport {
        self.grid.report(wl_idx, cfg_idx)
    }

    /// The configuration labels (column headers).
    pub fn config_labels(&self) -> Vec<String> {
        self.grid.col_labels().to_vec()
    }

    /// Folds a metric into a figure table over every column the sweep
    /// carries. All of Figs. 10–15 print the sweep's full configuration
    /// list, so standalone binaries and `all_figures` (which share this
    /// fold) produce identical tables.
    fn table_all(&self, title: &str, metric: &str, f: impl Fn(Comparison) -> f64) -> FigureTable {
        let labels = self.config_labels();
        let wanted: Vec<&str> = labels.iter().map(String::as_str).collect();
        self.grid.table_for(title, metric, &wanted, f)
    }

    /// Fig. 10: speedup over the stride-only baseline.
    pub fn fig10_speedup(&self) -> FigureTable {
        self.table_all(
            "Fig. 10: Speedup",
            "IPC relative to stride-only baseline",
            |c| c.speedup,
        )
    }

    /// Fig. 11: normalized DRAM traffic.
    pub fn fig11_traffic(&self) -> FigureTable {
        self.table_all(
            "Fig. 11: Normalized DRAM Traffic",
            "DRAM line reads relative to baseline (lower is better)",
            |c| c.dram_traffic,
        )
    }

    /// Fig. 12: accuracy.
    pub fn fig12_accuracy(&self) -> FigureTable {
        self.table_all(
            "Fig. 12: Accuracy",
            "prefetched lines used before L2 eviction",
            |c| c.accuracy,
        )
    }

    /// Fig. 13: coverage.
    pub fn fig13_coverage(&self) -> FigureTable {
        self.table_all(
            "Fig. 13: Coverage",
            "baseline L2 demand misses eliminated",
            |c| c.coverage,
        )
    }

    /// Fig. 14: normalized L3 accesses.
    pub fn fig14_l3(&self) -> FigureTable {
        self.table_all(
            "Fig. 14: Normalized L3 Accesses",
            "L3 data + Markov-table accesses relative to baseline (lower is better)",
            |c| c.l3_accesses,
        )
    }

    /// Fig. 15: normalized DRAM+L3 dynamic energy.
    pub fn fig15_energy(&self) -> FigureTable {
        self.table_all(
            "Fig. 15: Normalized DRAM+L3 Dynamic Energy",
            "25 units/DRAM access + 1 unit/L3 access, relative to baseline",
            |c| c.energy,
        )
    }

    /// The DRAM share of each run's energy (Fig. 15's hashed bars).
    pub fn fig15_dram_fraction(&self) -> FigureTable {
        self.table_all(
            "Fig. 15 (hashed): DRAM share of dynamic energy",
            "fraction of energy units from DRAM",
            |c| c.energy_dram_fraction,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_params_cover_dueller_startup() {
        let p = SweepParams::full();
        assert!(
            p.warmup > p.sizing_window * 2,
            "warm-up must cover dueller start-up"
        );
    }

    #[test]
    fn paper_configs_order_matches_figures() {
        let labels: Vec<String> = SpecSweep::paper_configs()
            .iter()
            .map(|c| c.label())
            .collect();
        assert_eq!(
            labels,
            vec![
                "Triage",
                "Triage-Deg4",
                "Triage-Deg4-Look2",
                "Triangel",
                "Triangel-Bloom"
            ]
        );
    }

    #[test]
    fn spec_sweep_shares_baselines_and_serves_subset_figures() {
        let p = SweepParams {
            warmup: 2_000,
            accesses: 2_000,
            sizing_window: 1_000,
            seed: 5,
        };
        let sweep = SpecSweep::run_opts(
            SpecSweep::paper_configs_with_nomrb(),
            &p,
            &SweepOptions::parallel(4),
        );
        // 7 workloads x (1 baseline + 6 configs), no duplicates.
        assert_eq!(sweep.stats().jobs, 49);
        assert_eq!(sweep.stats().executed, 49);
        // Every figure of the shared sweep prints the same 6 columns,
        // whether invoked standalone or through all_figures.
        assert_eq!(sweep.fig10_speedup().configs().len(), 6);
        assert_eq!(sweep.fig14_l3().configs().len(), 6);
        assert_eq!(
            sweep.fig13_coverage().configs(),
            sweep.config_labels().as_slice()
        );
    }
}
