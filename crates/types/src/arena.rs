//! Fixed-capacity, allocation-free arenas for hot metadata tables.
//!
//! The simulator's metadata structures (the Markov table, the stride
//! table, training tables, the issue table) model fixed-size SRAM: a
//! bounded number of tagged slots, scanned a set at a time. Modelling
//! them as `Vec<Option<Entry>>` or `HashMap` costs a pointer-chasing,
//! branch-heavy representation for what the hardware does with one
//! contiguous tag sweep. This module provides the shared storage layer:
//!
//! * [`SetArena`] — a set-associative arena in struct-of-arrays layout:
//!   a packed tag array, one validity bitmask per set, and a parallel
//!   payload array. A whole-set tag probe touches only `ways`
//!   contiguous `u16`s plus one `u64` mask.
//! * [`GenArena`] — a generational free-list arena for chained
//!   structures whose elements are created and destroyed out of order
//!   but must never move (stable handles).
//! * [`ArenaMap`] — a fixed-capacity `u64`-keyed map with a sorted key
//!   index over a [`GenArena`], for small capacity-bounded tables that
//!   evict by smallest key and iterate in key order deterministically.
//!
//! # Layout invariants
//!
//! [`SetArena`] with `S` sets and `W` ways (`1 ≤ W ≤ 64`) maintains:
//!
//! * `tags.len() == slots.len() == S * W`; slot `(set, way)` lives at
//!   flat index `set * W + way`, so one set's tags are contiguous.
//! * `valid.len() == S`; bit `way` of `valid[set]` is set iff the slot
//!   holds a live entry. Bits `W..64` are always zero.
//! * The payload of every *invalid* slot is `T::default()`, and its tag
//!   is `0`. Invalidation restores both, so the arena's byte image
//!   (and its [`Snapshot`] serialization) is a pure function of the
//!   live entries — two arenas holding the same entries are
//!   indistinguishable regardless of eviction history.
//! * Probes ([`SetArena::find`]), free-slot selection
//!   ([`SetArena::first_free`]) and iteration all proceed in ascending
//!   way order, matching a linear scan over an `Option<Entry>` array —
//!   replacing one representation with the other is behaviour-
//!   preserving by construction.
//!
//! [`GenArena`] with capacity `C` maintains:
//!
//! * `slots.len() == gens.len() == C`; no reallocation ever occurs.
//! * `gens[i]` is odd iff slot `i` is occupied (allocation and release
//!   each increment the generation), so a stale [`GenIdx`] — one whose
//!   slot was freed, or freed and re-used — never resolves.
//! * The free list is a LIFO stack, so allocation order is a
//!   deterministic function of the operation history.
//! * The payload of every free slot is `T::default()` (same
//!   canonical-bytes argument as above).

use crate::snap::{snap_check, SnapError, SnapReader, SnapWriter, Snapshot};

/// A set-associative arena: `sets x ways` tagged slots in
/// struct-of-arrays layout (packed tags, per-set valid bitmask,
/// parallel payloads).
///
/// See the [module docs](self) for the layout invariants.
#[derive(Debug, Clone)]
pub struct SetArena<T> {
    sets: usize,
    ways: usize,
    tags: Vec<u16>,
    valid: Vec<u64>,
    slots: Vec<T>,
}

impl<T: Default> SetArena<T> {
    /// An empty arena of `sets x ways` slots.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is zero or `ways` is not in `1..=64` (the
    /// validity mask is one `u64` per set).
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0, "arena needs at least one set");
        assert!((1..=64).contains(&ways), "arena ways must be in 1..=64");
        SetArena {
            sets,
            ways,
            tags: vec![0; sets * ways],
            valid: vec![0; sets],
            slots: (0..sets * ways).map(|_| T::default()).collect(),
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Ways (slots) per set.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total slot count (`sets * ways`).
    pub fn capacity(&self) -> usize {
        self.sets * self.ways
    }

    #[inline]
    fn base(&self, set: usize) -> usize {
        debug_assert!(set < self.sets);
        set * self.ways
    }

    /// Whether slot `(set, way)` holds a live entry.
    #[inline]
    pub fn is_valid(&self, set: usize, way: usize) -> bool {
        debug_assert!(way < self.ways);
        self.valid[set] & (1u64 << way) != 0
    }

    /// The tag stored at `(set, way)`; `0` for invalid slots.
    #[inline]
    pub fn tag(&self, set: usize, way: usize) -> u16 {
        self.tags[self.base(set) + way]
    }

    /// The payload at `(set, way)`, regardless of validity (invalid
    /// slots hold `T::default()`).
    #[inline]
    pub fn payload(&self, set: usize, way: usize) -> &T {
        &self.slots[self.base(set) + way]
    }

    /// Mutable payload access at `(set, way)`. The caller is
    /// responsible for only mutating live slots (mutating an invalid
    /// slot breaks the canonical-bytes invariant).
    #[inline]
    pub fn payload_mut(&mut self, set: usize, way: usize) -> &mut T {
        let i = self.base(set) + way;
        &mut self.slots[i]
    }

    /// The live entry at `(set, way)`, or `None` for an invalid slot.
    #[inline]
    pub fn get(&self, set: usize, way: usize) -> Option<(u16, &T)> {
        if self.is_valid(set, way) {
            Some((self.tag(set, way), self.payload(set, way)))
        } else {
            None
        }
    }

    /// The lowest-numbered valid way in `set` whose tag equals `tag`,
    /// or `None`.
    ///
    /// This is the whole-set probe: the tag comparisons run over the
    /// set's contiguous tag slice (auto-vectorizable), then the match
    /// bits are intersected with the validity mask.
    #[inline]
    pub fn find(&self, set: usize, tag: u16) -> Option<usize> {
        let base = self.base(set);
        let tags = &self.tags[base..base + self.ways];
        let mut hits = 0u64;
        for (w, &t) in tags.iter().enumerate() {
            hits |= ((t == tag) as u64) << w;
        }
        let m = hits & self.valid[set];
        if m != 0 {
            Some(m.trailing_zeros() as usize)
        } else {
            None
        }
    }

    /// The lowest-numbered invalid way in `set`, or `None` when the set
    /// is full. Equivalent to `position(|slot| slot.is_none())` on the
    /// `Option`-array representation.
    #[inline]
    pub fn first_free(&self, set: usize) -> Option<usize> {
        let free = !self.valid[set] & Self::mask(self.ways);
        if free != 0 {
            Some(free.trailing_zeros() as usize)
        } else {
            None
        }
    }

    const fn mask(ways: usize) -> u64 {
        if ways >= 64 {
            u64::MAX
        } else {
            (1u64 << ways) - 1
        }
    }

    /// Installs (or overwrites) the entry at `(set, way)`.
    #[inline]
    pub fn insert(&mut self, set: usize, way: usize, tag: u16, payload: T) {
        debug_assert!(way < self.ways);
        let i = self.base(set) + way;
        self.tags[i] = tag;
        self.slots[i] = payload;
        self.valid[set] |= 1u64 << way;
    }

    /// Invalidates `(set, way)` and returns its former entry, resetting
    /// the slot to the canonical empty state (`tag 0`,
    /// `T::default()`). Returns `None` if the slot was already invalid.
    pub fn take(&mut self, set: usize, way: usize) -> Option<(u16, T)> {
        if !self.is_valid(set, way) {
            return None;
        }
        let i = self.base(set) + way;
        self.valid[set] &= !(1u64 << way);
        let tag = std::mem::take(&mut self.tags[i]);
        let payload = std::mem::take(&mut self.slots[i]);
        Some((tag, payload))
    }

    /// Live entries in `set` (popcount of the validity mask).
    #[inline]
    pub fn set_occupancy(&self, set: usize) -> usize {
        self.valid[set].count_ones() as usize
    }

    /// Live entries across the whole arena.
    pub fn occupancy(&self) -> usize {
        self.valid.iter().map(|m| m.count_ones() as usize).sum()
    }

    /// Invalidates every slot, restoring the canonical empty state.
    pub fn clear(&mut self) {
        self.valid.iter_mut().for_each(|m| *m = 0);
        self.tags.iter_mut().for_each(|t| *t = 0);
        self.slots.iter_mut().for_each(|s| *s = T::default());
    }

    /// Iterates live entries as `(set, way, tag, &payload)` in
    /// ascending `(set, way)` order — the same order a flat linear scan
    /// over the `Option`-array representation visits them.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, u16, &T)> {
        (0..self.sets).flat_map(move |set| {
            let mut m = self.valid[set];
            std::iter::from_fn(move || {
                if m == 0 {
                    return None;
                }
                let way = m.trailing_zeros() as usize;
                m &= m - 1;
                Some((set, way, self.tag(set, way), self.payload(set, way)))
            })
        })
    }

    /// Removes every live entry and returns them as
    /// `(set, way, tag, payload)` in ascending `(set, way)` order (the
    /// re-index drain used by partition resizing).
    pub fn drain_entries(&mut self) -> Vec<(usize, usize, u16, T)> {
        let mut out = Vec::with_capacity(self.occupancy());
        for set in 0..self.sets {
            let mut m = self.valid[set];
            while m != 0 {
                let way = m.trailing_zeros() as usize;
                m &= m - 1;
                let i = set * self.ways + way;
                out.push((
                    set,
                    way,
                    std::mem::take(&mut self.tags[i]),
                    std::mem::take(&mut self.slots[i]),
                ));
            }
            self.valid[set] = 0;
        }
        out
    }
}

impl<T: Default + Snapshot> Snapshot for SetArena<T> {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.usize(self.sets);
        w.usize(self.ways);
        for set in 0..self.sets {
            w.u64(self.valid[set]);
            let mut m = self.valid[set];
            while m != 0 {
                let way = m.trailing_zeros() as usize;
                m &= m - 1;
                w.u16(self.tag(set, way));
                self.payload(set, way).save(w)?;
            }
        }
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        r.expect_len(self.sets, "arena sets")?;
        r.expect_len(self.ways, "arena ways")?;
        self.clear();
        for set in 0..self.sets {
            let mask = r.u64()?;
            snap_check(
                mask & !Self::mask(self.ways) == 0,
                "arena validity mask has bits beyond the way count",
            )?;
            self.valid[set] = mask;
            let mut m = mask;
            while m != 0 {
                let way = m.trailing_zeros() as usize;
                m &= m - 1;
                let i = set * self.ways + way;
                self.tags[i] = r.u16()?;
                self.slots[i].restore(r)?;
            }
        }
        Ok(())
    }
}

/// A stable handle into a [`GenArena`].
///
/// Holds the slot index and the generation observed at allocation;
/// resolving a handle after its slot was freed (or re-used) fails
/// rather than aliasing the new occupant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GenIdx {
    idx: u32,
    gen: u32,
}

impl GenIdx {
    /// The raw slot index (for diagnostics; resolution goes through
    /// [`GenArena::get`]).
    pub fn index(self) -> usize {
        self.idx as usize
    }
}

/// A fixed-capacity generational free-list arena.
///
/// Elements are allocated and released out of order but never move, so
/// chained structures can hold [`GenIdx`] handles across arbitrary
/// churn. See the [module docs](self) for the layout invariants.
#[derive(Debug, Clone)]
pub struct GenArena<T> {
    slots: Vec<T>,
    gens: Vec<u32>,
    free: Vec<u32>,
    len: usize,
}

impl<T: Default> GenArena<T> {
    /// An empty arena with room for `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or exceeds `u32::MAX` slots.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "arena needs at least one slot");
        assert!(u32::try_from(capacity).is_ok(), "arena capacity over u32");
        GenArena {
            slots: (0..capacity).map(|_| T::default()).collect(),
            gens: vec![0; capacity],
            // LIFO stack popping from the back: slot 0 allocates first.
            free: (0..capacity as u32).rev().collect(),
            len: 0,
        }
    }

    /// Live element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no elements are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether every slot is occupied.
    pub fn is_full(&self) -> bool {
        self.len == self.slots.len()
    }

    /// Total slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Allocates a slot for `value`, or returns `None` (with `value`
    /// dropped) when the arena is full.
    pub fn insert(&mut self, value: T) -> Option<GenIdx> {
        let idx = self.free.pop()?;
        let i = idx as usize;
        self.gens[i] = self.gens[i].wrapping_add(1); // now odd: occupied
        self.slots[i] = value;
        self.len += 1;
        Some(GenIdx {
            idx,
            gen: self.gens[i],
        })
    }

    #[inline]
    fn live(&self, id: GenIdx) -> bool {
        let i = id.idx as usize;
        i < self.gens.len() && self.gens[i] == id.gen && id.gen & 1 == 1
    }

    /// Resolves a handle to its element, or `None` if stale.
    #[inline]
    pub fn get(&self, id: GenIdx) -> Option<&T> {
        if self.live(id) {
            Some(&self.slots[id.idx as usize])
        } else {
            None
        }
    }

    /// Mutable handle resolution, or `None` if stale.
    #[inline]
    pub fn get_mut(&mut self, id: GenIdx) -> Option<&mut T> {
        if self.live(id) {
            Some(&mut self.slots[id.idx as usize])
        } else {
            None
        }
    }

    /// Releases the element behind `id`, restoring the slot to the
    /// canonical empty state. Returns `None` if the handle is stale.
    pub fn remove(&mut self, id: GenIdx) -> Option<T> {
        if !self.live(id) {
            return None;
        }
        let i = id.idx as usize;
        self.gens[i] = self.gens[i].wrapping_add(1); // now even: free
        self.free.push(id.idx);
        self.len -= 1;
        Some(std::mem::take(&mut self.slots[i]))
    }

    /// Iterates live elements as `(handle, &element)` in ascending slot
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (GenIdx, &T)> {
        self.gens
            .iter()
            .enumerate()
            .filter(|(_, g)| *g & 1 == 1)
            .map(|(i, g)| {
                (
                    GenIdx {
                        idx: i as u32,
                        gen: *g,
                    },
                    &self.slots[i],
                )
            })
    }
}

impl<T: Default + Snapshot> Snapshot for GenArena<T> {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.usize(self.capacity());
        for g in &self.gens {
            w.u32(*g);
        }
        w.usize(self.free.len());
        for f in &self.free {
            w.u32(*f);
        }
        for (i, g) in self.gens.iter().enumerate() {
            if g & 1 == 1 {
                self.slots[i].save(w)?;
            }
        }
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        r.expect_len(self.capacity(), "gen-arena capacity")?;
        for g in &mut self.gens {
            *g = r.u32()?;
        }
        let free_len = r.usize()?;
        snap_check(free_len <= self.capacity(), "gen-arena free list too long")?;
        self.free.clear();
        for _ in 0..free_len {
            let f = r.u32()?;
            snap_check((f as usize) < self.capacity(), "gen-arena free index")?;
            self.free.push(f);
        }
        self.len = 0;
        for i in 0..self.slots.len() {
            if self.gens[i] & 1 == 1 {
                self.slots[i].restore(r)?;
                self.len += 1;
            } else {
                self.slots[i] = T::default();
            }
        }
        snap_check(
            self.len + self.free.len() == self.capacity(),
            "gen-arena free list disagrees with generations",
        )
    }
}

/// A fixed-capacity `u64 -> V` map with a sorted key index over a
/// [`GenArena`].
///
/// Keys live in one sorted array (binary-searched probes, ascending
/// deterministic iteration, O(1) smallest-key eviction); values live in
/// the arena and never move. This replaces hash maps for small
/// capacity-bounded tables — the stride table's "evict the smallest PC
/// when full" policy and its sorted snapshot order both fall out of the
/// representation.
#[derive(Debug, Clone)]
pub struct ArenaMap<V> {
    keys: Vec<u64>,
    handles: Vec<GenIdx>,
    arena: GenArena<V>,
}

impl<V: Default> ArenaMap<V> {
    /// An empty map with room for `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        ArenaMap {
            keys: Vec::with_capacity(capacity),
            handles: Vec::with_capacity(capacity),
            arena: GenArena::new(capacity),
        }
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Maximum entry count.
    pub fn capacity(&self) -> usize {
        self.arena.capacity()
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: u64) -> bool {
        self.keys.binary_search(&key).is_ok()
    }

    /// The value under `key`, if present.
    pub fn get(&self, key: u64) -> Option<&V> {
        let i = self.keys.binary_search(&key).ok()?;
        self.arena.get(self.handles[i])
    }

    /// Mutable access to the value under `key`, if present.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        let i = self.keys.binary_search(&key).ok()?;
        self.arena.get_mut(self.handles[i])
    }

    /// The smallest key currently present.
    pub fn min_key(&self) -> Option<u64> {
        self.keys.first().copied()
    }

    /// Returns the value under `key`, inserting `f()` first if absent.
    ///
    /// # Panics
    ///
    /// Panics if `key` is absent and the map is full — the map is
    /// fixed-capacity, so callers evict before inserting (see
    /// [`ArenaMap::remove`] / [`ArenaMap::min_key`]).
    pub fn get_mut_or_insert_with(&mut self, key: u64, f: impl FnOnce() -> V) -> &mut V {
        match self.keys.binary_search(&key) {
            Ok(i) => self
                .arena
                .get_mut(self.handles[i])
                .expect("key index holds live handles"),
            Err(i) => {
                let handle = self
                    .arena
                    .insert(f())
                    .expect("ArenaMap insert above capacity");
                self.keys.insert(i, key);
                self.handles.insert(i, handle);
                self.arena
                    .get_mut(handle)
                    .expect("freshly allocated handle is live")
            }
        }
    }

    /// Removes `key`, returning its value.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let i = self.keys.binary_search(&key).ok()?;
        self.keys.remove(i);
        let handle = self.handles.remove(i);
        self.arena.remove(handle)
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        while let Some(k) = self.min_key() {
            self.remove(k);
        }
    }

    /// Iterates entries in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.keys.iter().zip(&self.handles).map(|(k, h)| {
            (
                *k,
                self.arena.get(*h).expect("key index holds live handles"),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    impl Snapshot for u64 {
        fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
            w.u64(*self);
            Ok(())
        }

        fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
            *self = r.u64()?;
            Ok(())
        }
    }

    #[test]
    fn set_arena_find_matches_linear_scan_order() {
        let mut a: SetArena<u64> = SetArena::new(4, 8);
        a.insert(1, 5, 0x77, 500);
        a.insert(1, 2, 0x77, 200);
        // Two ways share a tag: the lower way must win, as a linear
        // scan over Option slots would find it first.
        assert_eq!(a.find(1, 0x77), Some(2));
        a.take(1, 2);
        assert_eq!(a.find(1, 0x77), Some(5));
        assert_eq!(a.find(1, 0x99), None);
        assert_eq!(a.find(0, 0x77), None);
    }

    #[test]
    fn set_arena_invalid_slots_never_match() {
        let mut a: SetArena<u64> = SetArena::new(2, 4);
        a.insert(0, 1, 0x42, 7);
        let taken = a.take(0, 1);
        assert_eq!(taken, Some((0x42, 7)));
        // The tag bytes are reset, but even a zero probe must miss.
        assert_eq!(a.find(0, 0), None);
        assert_eq!(a.get(0, 1), None);
        assert_eq!(a.take(0, 1), None, "double-take is a no-op");
    }

    #[test]
    fn set_arena_first_free_is_lowest_way() {
        let mut a: SetArena<u64> = SetArena::new(1, 4);
        assert_eq!(a.first_free(0), Some(0));
        a.insert(0, 0, 1, 0);
        a.insert(0, 1, 2, 0);
        a.insert(0, 3, 3, 0);
        assert_eq!(a.first_free(0), Some(2));
        a.insert(0, 2, 4, 0);
        assert_eq!(a.first_free(0), None);
        assert_eq!(a.set_occupancy(0), 4);
    }

    #[test]
    fn set_arena_iter_is_set_major_ascending() {
        let mut a: SetArena<u64> = SetArena::new(3, 4);
        a.insert(2, 0, 9, 90);
        a.insert(0, 3, 7, 70);
        a.insert(0, 1, 8, 80);
        let order: Vec<_> = a.iter().map(|(s, w, t, v)| (s, w, t, *v)).collect();
        assert_eq!(order, vec![(0, 1, 8, 80), (0, 3, 7, 70), (2, 0, 9, 90)]);
        let drained = a.drain_entries();
        assert_eq!(drained, vec![(0, 1, 8, 80), (0, 3, 7, 70), (2, 0, 9, 90)]);
        assert_eq!(a.occupancy(), 0);
    }

    #[test]
    fn set_arena_snapshot_roundtrip_at_capacity() {
        // Boundary: every slot of every set valid (full masks), plus
        // the 64-way mask edge where the way mask is all ones.
        for ways in [1usize, 4, 64] {
            let mut a: SetArena<u64> = SetArena::new(2, ways);
            for set in 0..2 {
                for way in 0..ways {
                    a.insert(set, way, (set * ways + way) as u16, way as u64 * 3);
                }
            }
            assert_eq!(a.occupancy(), 2 * ways);
            let mut w = SnapWriter::new();
            a.save(&mut w).unwrap();
            let bytes = w.into_bytes();
            let mut b: SetArena<u64> = SetArena::new(2, ways);
            let mut r = SnapReader::new(&bytes);
            b.restore(&mut r).unwrap();
            r.finish().unwrap();
            assert_eq!(b.occupancy(), 2 * ways);
            let mut w2 = SnapWriter::new();
            b.save(&mut w2).unwrap();
            assert_eq!(bytes, w2.into_bytes(), "save-restore-save is stable");
        }
    }

    #[test]
    fn set_arena_snapshot_roundtrip_empty() {
        let a: SetArena<u64> = SetArena::new(4, 3);
        let mut w = SnapWriter::new();
        a.save(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut b: SetArena<u64> = SetArena::new(4, 3);
        let mut r = SnapReader::new(&bytes);
        b.restore(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(b.occupancy(), 0);
    }

    #[test]
    fn set_arena_snapshot_rejects_wrong_geometry() {
        let a: SetArena<u64> = SetArena::new(4, 3);
        let mut w = SnapWriter::new();
        a.save(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut b: SetArena<u64> = SetArena::new(4, 2);
        let mut r = SnapReader::new(&bytes);
        assert!(b.restore(&mut r).is_err());
    }

    #[test]
    fn set_arena_snapshot_is_canonical_after_churn() {
        // Same live entries via different histories → same bytes.
        let mut a: SetArena<u64> = SetArena::new(1, 4);
        a.insert(0, 1, 7, 70);
        let mut b: SetArena<u64> = SetArena::new(1, 4);
        b.insert(0, 0, 99, 1);
        b.insert(0, 1, 7, 70);
        b.insert(0, 2, 98, 2);
        b.take(0, 0);
        b.take(0, 2);
        let (mut wa, mut wb) = (SnapWriter::new(), SnapWriter::new());
        a.save(&mut wa).unwrap();
        b.save(&mut wb).unwrap();
        assert_eq!(wa.into_bytes(), wb.into_bytes());
    }

    #[test]
    fn gen_arena_stale_handles_never_resolve() {
        let mut a: GenArena<u64> = GenArena::new(2);
        let h1 = a.insert(11).unwrap();
        assert_eq!(a.get(h1), Some(&11));
        assert_eq!(a.remove(h1), Some(11));
        assert_eq!(a.get(h1), None, "freed handle is stale");
        let h2 = a.insert(22).unwrap();
        assert_eq!(h2.index(), h1.index(), "LIFO free list re-uses the slot");
        assert_eq!(a.get(h1), None, "re-used slot does not alias");
        assert_eq!(a.get(h2), Some(&22));
        assert_eq!(a.remove(h1), None);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn gen_arena_full_insert_fails() {
        let mut a: GenArena<u64> = GenArena::new(2);
        let _h1 = a.insert(1).unwrap();
        let h2 = a.insert(2).unwrap();
        assert!(a.is_full());
        assert_eq!(a.insert(3), None);
        a.remove(h2).unwrap();
        assert!(a.insert(4).is_some());
    }

    #[test]
    fn gen_arena_snapshot_roundtrip_at_capacity() {
        let mut a: GenArena<u64> = GenArena::new(3);
        let h0 = a.insert(10).unwrap();
        let _h1 = a.insert(20).unwrap();
        let _h2 = a.insert(30).unwrap();
        a.remove(h0).unwrap(); // free list: [0]
        let mut w = SnapWriter::new();
        a.save(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut b: GenArena<u64> = GenArena::new(3);
        let mut r = SnapReader::new(&bytes);
        b.restore(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(b.len(), 2);
        // The restored arena allocates the same slot next.
        let (ha, hb) = (a.insert(40).unwrap(), b.insert(40).unwrap());
        assert_eq!(ha, hb, "allocation order survives the round-trip");
        let va: Vec<_> = a.iter().map(|(h, v)| (h, *v)).collect();
        let vb: Vec<_> = b.iter().map(|(h, v)| (h, *v)).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn arena_map_sorted_semantics() {
        let mut m: ArenaMap<u64> = ArenaMap::new(3);
        *m.get_mut_or_insert_with(30, || 3) += 0;
        *m.get_mut_or_insert_with(10, || 1) += 0;
        *m.get_mut_or_insert_with(20, || 2) += 0;
        assert_eq!(m.len(), 3);
        assert_eq!(m.min_key(), Some(10));
        assert_eq!(m.get(20), Some(&2));
        assert!(m.contains_key(30));
        let items: Vec<_> = m.iter().map(|(k, v)| (k, *v)).collect();
        assert_eq!(items, vec![(10, 1), (20, 2), (30, 3)]);
        // Existing key: no insert, value returned.
        *m.get_mut_or_insert_with(20, || 99) += 5;
        assert_eq!(m.get(20), Some(&7));
        // Capacity-bound eviction protocol: evict min, then insert.
        let min = m.min_key().unwrap();
        assert_eq!(m.remove(min), Some(1));
        *m.get_mut_or_insert_with(5, || 50) += 0;
        assert_eq!(m.min_key(), Some(5));
        assert_eq!(m.len(), 3);
    }

    #[test]
    #[should_panic(expected = "ArenaMap insert above capacity")]
    fn arena_map_insert_above_capacity_panics() {
        let mut m: ArenaMap<u64> = ArenaMap::new(1);
        m.get_mut_or_insert_with(1, || 1);
        m.get_mut_or_insert_with(2, || 2);
    }
}
