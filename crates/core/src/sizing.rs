//! Hardware sizing of Triangel's structures (Table 1 of the paper).

use crate::config::TriangelConfig;

/// Size of one dedicated structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructureSize {
    /// Structure name as in Table 1.
    pub name: &'static str,
    /// Entry count (the Set Dueller reports `64x(8+16)` tag slots).
    pub entries: usize,
    /// Dedicated storage in bytes.
    pub bytes: usize,
}

/// Computes Table 1 from a configuration.
///
/// Field widths follow Figs. 5, 7 and 8:
/// * training entry: 10 (PC-tag) + 2x31 (LastAddr) + 32 (timestamp) +
///   4 (ReuseConf) + 2x4 (PatternConf) + 4 (SampleRate) + 1 (lookahead)
///   + 1 (valid) = 122 bits;
/// * sampler entry: 22 (addr tag) + 9 (train-idx) + 31 (target) +
///   32 (timestamp) + 1 (used) = 95 bits;
/// * SCS entry: 31 (target) + 9 (train-idx) + 32 (deadline) + 1 (valid)
///   = 73 bits;
/// * MRB entry: 14 (lookup tag) + 31 (target) + 1 (confidence) =
///   46 bits;
/// * Set Dueller: 64 sets x (8 Markov + 16 cache) 10-bit hash-tags plus
///   nine 32-bit counters and recency state.
///
/// # Examples
///
/// ```
/// use triangel_core::{structure_sizes, TriangelConfig};
///
/// let sizes = structure_sizes(&TriangelConfig::paper_default());
/// let total: usize = sizes.iter().map(|s| s.bytes).sum();
/// assert_eq!(total, 18_050); // Table 1's 17.6 KiB
/// ```
pub fn structure_sizes(cfg: &TriangelConfig) -> Vec<StructureSize> {
    let bits_to_bytes = |bits: usize| bits / 8;
    let training_bits = 122 * cfg.training_entries;
    let sampler_bits = 95 * cfg.sampler_entries;
    let scs_bits = 73 * cfg.scs_entries;
    let mrb_bits = 46 * cfg.mrb_entries;
    // 64 sets x 24 tags x 10 bits, 9 x 32-bit counters, and per-set
    // recency state (24 x 5-bit stack positions over 64 sets packs into
    // 150 bytes with the counters' residue).
    let dueller_tags = 64 * (8 + 16) * 10;
    let dueller_counters = 9 * 32;
    let dueller_recency = 1200;

    vec![
        StructureSize {
            name: "Training Table",
            entries: cfg.training_entries,
            bytes: bits_to_bytes(training_bits),
        },
        StructureSize {
            name: "History Sampler",
            entries: cfg.sampler_entries,
            bytes: bits_to_bytes(sampler_bits),
        },
        StructureSize {
            name: "Second-Chance Sampler",
            entries: cfg.scs_entries,
            bytes: bits_to_bytes(scs_bits),
        },
        StructureSize {
            name: "Metadata Reuse Buffer",
            entries: cfg.mrb_entries,
            bytes: bits_to_bytes(mrb_bits),
        },
        StructureSize {
            name: "Set Dueller",
            entries: 64 * (8 + 16),
            bytes: bits_to_bytes(dueller_tags + dueller_counters + dueller_recency),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table_1() {
        let sizes = structure_sizes(&TriangelConfig::paper_default());
        let by_name = |n: &str| sizes.iter().find(|s| s.name == n).unwrap().bytes;
        assert_eq!(by_name("Training Table"), 7808);
        assert_eq!(by_name("History Sampler"), 6080);
        assert_eq!(by_name("Second-Chance Sampler"), 584);
        assert_eq!(by_name("Metadata Reuse Buffer"), 1472);
        assert_eq!(by_name("Set Dueller"), 2106);
        let total: usize = sizes.iter().map(|s| s.bytes).sum();
        // 17.6 KiB, versus Triage's 219.5 KiB (Section 4.8).
        assert_eq!(total, 18_050);
        assert!((total as f64 / 1024.0 - 17.6).abs() < 0.1);
    }

    #[test]
    fn entries_match_table_1() {
        let sizes = structure_sizes(&TriangelConfig::paper_default());
        let by_name = |n: &str| sizes.iter().find(|s| s.name == n).unwrap().entries;
        assert_eq!(by_name("Training Table"), 512);
        assert_eq!(by_name("History Sampler"), 512);
        assert_eq!(by_name("Second-Chance Sampler"), 64);
        assert_eq!(by_name("Metadata Reuse Buffer"), 256);
        assert_eq!(by_name("Set Dueller"), 64 * 24);
    }
}
