//! The `features` ablation: the Fig. 20 feature ladder, each step run
//! with and without the experimental `train_on_eviction` gate, at a
//! fixed smoke scale. Emits `BENCH_features_smoke.json` (the
//! un-suffixed `BENCH_features.json` at the repo root is the campaign
//! runner's full-scale record).

fn main() {
    triangel_bench::figures::run_main("features");
}
