//! The paper-scale campaign runner: checkpointable, resumable runs of
//! the `features` ablation and the headline (Figs. 10–15) sweep.
//!
//! Unlike the figure binaries (which run a sweep to completion in one
//! process), this binary drives its jobs through
//! [`triangel_harness::Campaign`]: every simulation advances in
//! segments, snapshots its full state under `--out-dir` after each, and
//! resumes from the manifest on the next invocation. Killing the
//! process at any point loses at most one segment per in-flight job.
//!
//! ```text
//! campaign --figure features --scale full --out-dir campaign-out
//! ```
//!
//! Flags:
//!
//! * `--figure features|spec` — which experiment to run (default
//!   `features`: the Fig. 20 ladder ± EvictTrain; `spec` is the shared
//!   Figs. 10–15 sweep).
//! * `--scale full|smoke` — paper scale (1M warm-up + 2M measured
//!   accesses per core) or the figure's smoke scale.
//! * `--jobs N` — worker threads (0 = one per core; results are
//!   byte-identical whatever the value).
//! * `--out-dir DIR` — snapshot/manifest/artefact directory (default
//!   `campaign-out`). Re-running with the same directory resumes.
//! * `--segment N` — checkpoint interval in accesses per core.
//! * `--max-segments K` — stop after K segments (forced interrupt; CI
//!   uses this to exercise resume).
//! * `--wall-budget-secs S` — stop issuing segments after S seconds.
//! * `--store DIR` — bridge the campaign to the shared cross-process
//!   result store: finished jobs found there are served without
//!   executing (counted as loaded), and every report the campaign
//!   completes is published back, so daemons and sweeps over the same
//!   grid get hits.
//! * `--trace PATH` — record the campaign's wall-time spans (one per
//!   job and per executed segment, on named worker lanes) as Chrome
//!   `trace_event` JSON for <https://ui.perfetto.dev>. Host-only:
//!   results and artefacts are byte-identical with or without it.
//! * `--quiet` — suppress per-segment progress.
//!
//! Exit status: 0 when the campaign (and its figure artefacts) are
//! complete, 3 when a budget interrupted it (resume by re-running), 1
//! on job failures, 2 on usage errors.

use std::path::PathBuf;
use std::time::Duration;

use triangel_bench::figures;
use triangel_bench::SweepParams;
use triangel_harness::{Campaign, CampaignOptions, GridSpec, JobOutcome, RunParams, SweepOptions};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Figure {
    Features,
    Spec,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scale {
    Full,
    Smoke,
}

#[derive(Debug)]
struct Cli {
    figure: Figure,
    scale: Scale,
    jobs: usize,
    out_dir: PathBuf,
    segment: u64,
    max_segments: Option<u64>,
    wall_budget_secs: Option<u64>,
    store: Option<PathBuf>,
    trace: Option<PathBuf>,
    quiet: bool,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            figure: Figure::Features,
            scale: Scale::Smoke,
            jobs: 0,
            out_dir: PathBuf::from("campaign-out"),
            segment: 250_000,
            max_segments: None,
            wall_budget_secs: None,
            store: None,
            trace: None,
            quiet: false,
        }
    }
}

fn parse_cli(args: impl Iterator<Item = String>) -> Result<Cli, String> {
    let mut cli = Cli::default();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--figure" => {
                cli.figure = match value("--figure")?.as_str() {
                    "features" => Figure::Features,
                    "spec" => Figure::Spec,
                    other => return Err(format!("unknown figure `{other}` (features|spec)")),
                }
            }
            "--scale" => {
                cli.scale = match value("--scale")?.as_str() {
                    "full" => Scale::Full,
                    "smoke" => Scale::Smoke,
                    other => return Err(format!("unknown scale `{other}` (full|smoke)")),
                }
            }
            "--jobs" => {
                let v = value("--jobs")?;
                cli.jobs = v.parse().map_err(|_| format!("bad --jobs value `{v}`"))?;
            }
            "--out-dir" => cli.out_dir = PathBuf::from(value("--out-dir")?),
            "--segment" => {
                let v = value("--segment")?;
                cli.segment = v
                    .parse()
                    .map_err(|_| format!("bad --segment value `{v}`"))?;
                if cli.segment == 0 {
                    return Err("--segment must be positive".into());
                }
            }
            "--max-segments" => {
                let v = value("--max-segments")?;
                cli.max_segments =
                    Some(v.parse().map_err(|_| format!("bad --max-segments `{v}`"))?);
            }
            "--wall-budget-secs" => {
                let v = value("--wall-budget-secs")?;
                cli.wall_budget_secs = Some(
                    v.parse()
                        .map_err(|_| format!("bad --wall-budget-secs `{v}`"))?,
                );
            }
            "--store" => cli.store = Some(PathBuf::from(value("--store")?)),
            "--trace" => cli.trace = Some(PathBuf::from(value("--trace")?)),
            "--quiet" => cli.quiet = true,
            other => {
                return Err(format!(
                    "unknown argument `{other}` (expected --figure features|spec, \
                     --scale full|smoke, --jobs N, --out-dir DIR, --segment N, \
                     --max-segments K, --wall-budget-secs S, --store DIR, \
                     --trace PATH, --quiet)"
                ))
            }
        }
    }
    Ok(cli)
}

/// The scale each figure runs at. `full` is the paper methodology:
/// 1M-access warm-up plus 2M measured accesses per core.
fn params_for(figure: Figure, scale: Scale) -> RunParams {
    match (figure, scale) {
        (_, Scale::Full) => figures::FEATURES_FULL_PARAMS,
        (Figure::Features, Scale::Smoke) => figures::FEATURES_PARAMS,
        (Figure::Spec, Scale::Smoke) => SweepParams::quick().run_params(),
    }
}

fn grid_for(figure: Figure, params: RunParams) -> GridSpec {
    match figure {
        Figure::Features => figures::features_grid(params),
        Figure::Spec => {
            let mut grid = GridSpec::new(params).spec_rows();
            for choice in triangel_bench::SpecSweep::paper_configs_with_nomrb() {
                grid = grid.column(choice);
            }
            grid
        }
    }
}

fn main() {
    let cli = match parse_cli(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let params = params_for(cli.figure, cli.scale);
    let grid = grid_for(cli.figure, params);

    let mut opts = CampaignOptions::new(&cli.out_dir)
        .workers(cli.jobs)
        .segment_accesses(cli.segment);
    if !cli.quiet {
        opts = opts.with_progress();
    }
    if let Some(k) = cli.max_segments {
        opts = opts.max_segments(k);
    }
    if let Some(s) = cli.wall_budget_secs {
        opts = opts.wall_budget(Duration::from_secs(s));
    }
    let shared_store = cli.store.as_ref().map(|dir| {
        let store = triangel_harness::ResultStore::open(dir).unwrap_or_else(|e| {
            eprintln!("cannot open result store at {}: {e}", dir.display());
            std::process::exit(2);
        });
        std::sync::Arc::new(store)
    });
    if let Some(store) = &shared_store {
        opts = opts.with_store(store.clone());
    }
    let trace = cli
        .trace
        .as_ref()
        .map(|_| std::sync::Arc::new(triangel_obs::TraceBuffer::new()));
    if let Some(t) = &trace {
        opts = opts.with_trace(t.clone());
    }

    let t0 = std::time::Instant::now();
    let report = Campaign::new()
        .jobs(grid.jobs())
        .run(&opts)
        .unwrap_or_else(|e| {
            eprintln!("campaign I/O failure under {}: {e}", cli.out_dir.display());
            std::process::exit(1);
        });
    let s = &report.stats;
    eprintln!(
        "[campaign] {} unique job(s): {} done ({} loaded from disk, {} resumed), \
         {} interrupted, {} failed — {} segment(s), {} accesses in {:.1}s",
        s.unique,
        s.completed,
        s.loaded,
        s.resumed,
        s.interrupted,
        s.errors,
        s.segments_run,
        s.accesses_run,
        t0.elapsed().as_secs_f64(),
    );
    if let Some(store) = &shared_store {
        eprintln!("[store] {}", store.stats().render());
    }

    // Written before any exit below: an interrupted campaign's trace is
    // exactly the one worth looking at.
    if let (Some(path), Some(t)) = (&cli.trace, &trace) {
        if let Err(e) = std::fs::write(path, t.to_json()) {
            eprintln!("failed to write trace to {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("[trace] {} event(s) -> {}", t.len(), path.display());
    }

    for (key, outcome) in report.keys.iter().zip(&report.outcomes) {
        if let JobOutcome::Failed(e) = outcome {
            eprintln!("[campaign] FAILED {key}: {}", e.message);
        }
    }
    if s.errors > 0 {
        std::process::exit(1);
    }
    if !report.is_complete() {
        eprintln!(
            "[campaign] interrupted by budget; re-run with the same --out-dir ({}) to resume",
            cli.out_dir.display()
        );
        std::process::exit(3);
    }

    // Complete: fold the figure outputs entirely from the campaign's
    // result cache (zero re-execution) and emit them under --out-dir.
    let fold_opts = SweepOptions::serial().with_cache(report.cache.clone());
    let outputs = match cli.figure {
        Figure::Features => {
            let result = grid.run(&fold_opts).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(
                result.stats.executed, 0,
                "folds must hit the campaign cache"
            );
            // The un-suffixed name is the full-scale record; smoke
            // runs share the smoke figure's artifact name, so CI can
            // diff them and nothing clobbers the committed full-scale
            // BENCH_features.json.
            let artifact = match cli.scale {
                Scale::Full => "BENCH_features",
                Scale::Smoke => "BENCH_features_smoke",
            };
            figures::features_outputs(&result, params, artifact)
        }
        Figure::Spec => {
            let sweep = triangel_bench::SpecSweep::run_opts(
                triangel_bench::SpecSweep::paper_configs_with_nomrb(),
                &SweepParams {
                    warmup: params.warmup,
                    accesses: params.accesses,
                    sizing_window: params.sizing_window,
                    seed: params.seed,
                },
                &fold_opts,
            );
            assert_eq!(
                sweep.stats().executed,
                0,
                "folds must hit the campaign cache"
            );
            vec![
                figures::FigureOutput::Table(sweep.fig10_speedup()),
                figures::FigureOutput::Table(sweep.fig11_traffic()),
                figures::FigureOutput::Table(sweep.fig12_accuracy()),
                figures::FigureOutput::Table(sweep.fig13_coverage()),
                figures::FigureOutput::Table(sweep.fig14_l3()),
                figures::FigureOutput::Table(sweep.fig15_energy()),
            ]
        }
    };
    for out in &outputs {
        out.print();
    }
    let name = match cli.figure {
        Figure::Features => "features",
        Figure::Spec => "spec",
    };
    if let Err(e) = figures::emit_selected(&cli.out_dir, name, &outputs, true) {
        eprintln!("failed to emit {name} to {}: {e}", cli.out_dir.display());
        std::process::exit(1);
    }
}
