//! ChampSim-style binary trace files: recording and replay.
//!
//! A trace file is a versioned header followed by fixed-width pc/addr
//! records, one per memory access:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  "TRGLTRC\0"
//! 8       4     format version (little-endian u32)
//! 12      8     record count   (little-endian u64)
//! 20      8     fnv1a-64 checksum of the record payload
//! 28      18×N  records: pc u64 | vaddr u64 | flags u8 | work u8
//! ```
//!
//! `flags` bit 0 is [`MemoryAccess::dependent`]; the remaining bits
//! must be zero in version 1. All integers are little-endian. The
//! count and checksum are patched into the header when recording
//! finishes, so a crashed recorder leaves a file that fails
//! validation loudly instead of replaying a truncated run.
//!
//! Replay goes through [`FileTrace`], a [`TraceSource`] that streams
//! records through a buffered reader in ring-sized chunks. Unlike
//! [`RecordedTrace`](crate::trace::RecordedTrace) it has an explicit
//! end-of-trace policy ([`EndPolicy`]): a finite trace either loops
//! with a visible wrap counter or refuses (panics) to fabricate
//! accesses past the end. Its snapshot carries the record cursor, so
//! an interrupted campaign resumes mid-trace byte-identically.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use triangel_types::snap::{snap_check, SnapError, SnapReader, SnapWriter};
use triangel_types::{Addr, Pc};

use crate::trace::{AccessRing, MemoryAccess, TraceReplayStats, TraceSource};

/// First eight bytes of every trace file.
pub const TRACE_MAGIC: [u8; 8] = *b"TRGLTRC\0";

/// Current trace-file format version.
pub const TRACE_FORMAT_VERSION: u32 = 1;

/// Bytes of header before the first record.
pub const TRACE_HEADER_LEN: u64 = 28;

/// Bytes per record: pc + vaddr + flags + work.
pub const TRACE_RECORD_LEN: u64 = 18;

const FLAG_DEPENDENT: u8 = 1;

fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// The validated header of a trace file: record count and payload
/// checksum. Cheap to read (no payload scan), so harness content keys
/// can bind a job to the exact bytes it will replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceFileHeader {
    /// Number of records in the file.
    pub records: u64,
    /// fnv1a-64 over the record payload.
    pub checksum: u64,
}

impl TraceFileHeader {
    /// A compact digest of the header (count and checksum folded
    /// together), used in job content keys.
    pub fn digest(&self) -> u64 {
        let mut bytes = [0u8; 16];
        bytes[..8].copy_from_slice(&self.records.to_le_bytes());
        bytes[8..].copy_from_slice(&self.checksum.to_le_bytes());
        fnv1a(FNV_OFFSET, &bytes)
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn parse_header(path: &Path, raw: &[u8; 28], file_len: u64) -> io::Result<TraceFileHeader> {
    if raw[..8] != TRACE_MAGIC {
        return Err(bad(format!(
            "{}: not a trace file (bad magic)",
            path.display()
        )));
    }
    let version = u32::from_le_bytes(raw[8..12].try_into().unwrap());
    if version != TRACE_FORMAT_VERSION {
        return Err(bad(format!(
            "{}: trace format version {version}, this build reads {TRACE_FORMAT_VERSION}",
            path.display()
        )));
    }
    let records = u64::from_le_bytes(raw[12..20].try_into().unwrap());
    let checksum = u64::from_le_bytes(raw[20..28].try_into().unwrap());
    if records == 0 {
        return Err(bad(format!(
            "{}: empty trace (recorder crashed before finish?)",
            path.display()
        )));
    }
    let expect = TRACE_HEADER_LEN + records * TRACE_RECORD_LEN;
    if file_len != expect {
        return Err(bad(format!(
            "{}: {file_len} bytes on disk, header promises {expect} ({records} records)",
            path.display()
        )));
    }
    Ok(TraceFileHeader { records, checksum })
}

/// Reads and validates a trace file's header without touching the
/// payload (record count vs. file length is checked; the checksum is
/// only verified by [`FileTrace::open`]).
///
/// # Errors
///
/// I/O errors, or [`io::ErrorKind::InvalidData`] on bad magic, an
/// unknown version, or a length mismatch.
pub fn read_trace_header(path: impl AsRef<Path>) -> io::Result<TraceFileHeader> {
    let path = path.as_ref();
    let mut file = File::open(path)?;
    let file_len = file.metadata()?.len();
    if file_len < TRACE_HEADER_LEN {
        return Err(bad(format!(
            "{}: shorter than a trace header",
            path.display()
        )));
    }
    let mut raw = [0u8; 28];
    file.read_exact(&mut raw)?;
    parse_header(path, &raw, file_len)
}

/// Streams memory accesses into a trace file.
///
/// Records are buffered and checksummed as they are pushed;
/// [`TraceFileWriter::finish`] patches the record count and checksum
/// into the header. Dropping the writer without calling `finish`
/// leaves the header zeroed, which every reader rejects.
#[derive(Debug)]
pub struct TraceFileWriter {
    out: BufWriter<File>,
    path: PathBuf,
    records: u64,
    hash: u64,
}

impl TraceFileWriter {
    /// Creates (truncating) `path` and writes a placeholder header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn create(path: impl Into<PathBuf>) -> io::Result<Self> {
        let path = path.into();
        let file = File::create(&path)?;
        let mut out = BufWriter::new(file);
        out.write_all(&TRACE_MAGIC)?;
        out.write_all(&TRACE_FORMAT_VERSION.to_le_bytes())?;
        out.write_all(&[0u8; 16])?; // count + checksum, patched by finish()
        Ok(TraceFileWriter {
            out,
            path,
            records: 0,
            hash: FNV_OFFSET,
        })
    }

    /// Appends one access.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn push(&mut self, access: &MemoryAccess) -> io::Result<()> {
        let mut rec = [0u8; TRACE_RECORD_LEN as usize];
        rec[..8].copy_from_slice(&access.pc.get().to_le_bytes());
        rec[8..16].copy_from_slice(&access.vaddr.get().to_le_bytes());
        rec[16] = if access.dependent { FLAG_DEPENDENT } else { 0 };
        rec[17] = access.work;
        self.out.write_all(&rec)?;
        self.hash = fnv1a(self.hash, &rec);
        self.records += 1;
        Ok(())
    }

    /// Patches the final record count and checksum into the header and
    /// flushes, returning the header a reader will see.
    ///
    /// # Errors
    ///
    /// I/O errors, or [`io::ErrorKind::InvalidData`] if no records
    /// were pushed (an empty trace cannot replay).
    pub fn finish(mut self) -> io::Result<TraceFileHeader> {
        if self.records == 0 {
            return Err(bad(format!(
                "{}: refusing to finish an empty trace",
                self.path.display()
            )));
        }
        self.out.flush()?;
        let file = self.out.get_mut();
        file.seek(SeekFrom::Start(12))?;
        file.write_all(&self.records.to_le_bytes())?;
        file.write_all(&self.hash.to_le_bytes())?;
        file.sync_all()?;
        Ok(TraceFileHeader {
            records: self.records,
            checksum: self.hash,
        })
    }
}

/// Records `accesses` draws from `source` into a trace file at `path`.
///
/// This is the capture half of the `trace_record` devtool: any
/// generator (or any other [`TraceSource`]) becomes a replayable
/// on-disk trace.
///
/// # Errors
///
/// Propagates I/O errors from writing the file.
pub fn record_trace(
    source: &mut dyn TraceSource,
    accesses: u64,
    path: impl Into<PathBuf>,
) -> io::Result<TraceFileHeader> {
    let mut w = TraceFileWriter::create(path)?;
    for _ in 0..accesses {
        w.push(&source.next_access())?;
    }
    w.finish()
}

/// What a [`FileTrace`] does when the recording runs out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndPolicy {
    /// Seek back to the first record and keep replaying, counting
    /// wraps (visible through [`TraceSource::replay_stats`] and the
    /// probe registry). This is what simulation jobs use: the engine
    /// assumes infinite sources.
    Loop,
    /// Refuse to fabricate accesses past the end: panic, naming the
    /// trace and its length. For tools and tests that must consume a
    /// recording exactly once.
    Strict,
}

/// Replays a trace file as a [`TraceSource`].
///
/// Opening validates the header *and* the payload checksum (one
/// streaming pass), so a truncated or bit-flipped file fails loudly
/// up front rather than perturbing a simulation. Replay then reads
/// ring-sized chunks through a buffered reader. The snapshot carries
/// the record cursor and wrap count; restore seeks the file, so an
/// interrupted campaign resumes mid-trace byte-identically.
#[derive(Debug)]
pub struct FileTrace {
    name: String,
    reader: BufReader<File>,
    records: u64,
    pos: u64,
    wraps: u64,
    policy: EndPolicy,
    scratch: Vec<u8>,
}

impl FileTrace {
    /// Opens `path`, validating header and payload checksum.
    ///
    /// # Errors
    ///
    /// I/O errors, or [`io::ErrorKind::InvalidData`] on any
    /// validation failure.
    pub fn open(path: impl AsRef<Path>, policy: EndPolicy) -> io::Result<Self> {
        let path = path.as_ref();
        let header = read_trace_header(path)?;
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "trace".to_string());
        let mut reader = BufReader::new(File::open(path)?);
        reader.seek(SeekFrom::Start(TRACE_HEADER_LEN))?;
        let mut hash = FNV_OFFSET;
        let mut buf = vec![0u8; 64 * 1024];
        loop {
            let n = reader.read(&mut buf)?;
            if n == 0 {
                break;
            }
            hash = fnv1a(hash, &buf[..n]);
        }
        if hash != header.checksum {
            return Err(bad(format!(
                "{}: payload checksum mismatch (file corrupt or recorder crashed)",
                path.display()
            )));
        }
        reader.seek(SeekFrom::Start(TRACE_HEADER_LEN))?;
        Ok(FileTrace {
            name,
            reader,
            records: header.records,
            pos: 0,
            wraps: 0,
            policy,
            scratch: Vec::new(),
        })
    }

    /// Records in one full pass of the trace.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// How many times replay has wrapped back to the first record.
    pub fn wraps(&self) -> u64 {
        self.wraps
    }

    /// Handles the cursor sitting at end-of-trace per the policy.
    fn handle_end(&mut self) {
        match self.policy {
            EndPolicy::Loop => {
                self.seek_to(0).expect("trace file seek");
                self.wraps += 1;
            }
            EndPolicy::Strict => panic!(
                "trace `{}` exhausted after {} records (strict end-of-trace policy)",
                self.name, self.records
            ),
        }
    }

    fn seek_to(&mut self, record: u64) -> io::Result<()> {
        self.reader.seek(SeekFrom::Start(
            TRACE_HEADER_LEN + record * TRACE_RECORD_LEN,
        ))?;
        self.pos = record;
        Ok(())
    }

    fn decode(rec: &[u8]) -> MemoryAccess {
        MemoryAccess {
            pc: Pc::new(u64::from_le_bytes(rec[..8].try_into().unwrap())),
            vaddr: Addr::new(u64::from_le_bytes(rec[8..16].try_into().unwrap())),
            dependent: rec[16] & FLAG_DEPENDENT != 0,
            work: rec[17],
        }
    }
}

impl TraceSource for FileTrace {
    fn next_access(&mut self) -> MemoryAccess {
        if self.pos == self.records {
            self.handle_end();
        }
        let mut rec = [0u8; TRACE_RECORD_LEN as usize];
        self.reader
            .read_exact(&mut rec)
            .unwrap_or_else(|e| panic!("trace `{}`: read at record {}: {e}", self.name, self.pos));
        self.pos += 1;
        FileTrace::decode(&rec)
    }

    fn fill(&mut self, ring: &mut AccessRing) -> usize {
        // Chunked replay: one buffered read per contiguous run instead
        // of one per access, wrapping (or refusing) at end-of-trace.
        let want = ring.remaining();
        let mut delivered = 0;
        while delivered < want {
            if self.pos == self.records {
                self.handle_end();
            }
            let run = ((want - delivered) as u64).min(self.records - self.pos) as usize;
            self.scratch.resize(run * TRACE_RECORD_LEN as usize, 0);
            self.reader
                .read_exact(&mut self.scratch)
                .unwrap_or_else(|e| {
                    panic!("trace `{}`: read at record {}: {e}", self.name, self.pos)
                });
            for i in 0..run {
                let rec =
                    &self.scratch[i * TRACE_RECORD_LEN as usize..][..TRACE_RECORD_LEN as usize];
                let pushed = ring.push(FileTrace::decode(rec));
                debug_assert!(pushed, "remaining() slots must accept pushes");
                if !pushed {
                    // Rewind to the first undelivered record so the
                    // cursor stays in sync with what the ring took.
                    self.seek_to(self.pos).expect("trace file seek");
                    return delivered;
                }
                self.pos += 1;
                delivered += 1;
            }
        }
        delivered
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.u64(self.pos);
        w.u64(self.wraps);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        let pos = r.u64()?;
        snap_check(pos <= self.records, "trace-file cursor out of range")?;
        self.wraps = r.u64()?;
        self.seek_to(pos)
            .map_err(|e| SnapError::corrupt(format!("trace-file seek on restore: {e}")))?;
        Ok(())
    }

    fn replay_stats(&self) -> Option<TraceReplayStats> {
        Some(TraceReplayStats {
            records: self.records,
            wraps: self.wraps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::RecordedTrace;

    fn sample_accesses(n: u64) -> Vec<MemoryAccess> {
        (0..n)
            .map(|i| {
                let a = MemoryAccess::new(Pc::new(0x1000 + i), Addr::new((9 << 40) + i * 64))
                    .with_work((i % 7) as u8);
                if i % 3 == 0 {
                    a.dependent()
                } else {
                    a
                }
            })
            .collect()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("triangel-trace-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn round_trips_every_field() {
        let path = tmp("round.trc");
        let accs = sample_accesses(10);
        let mut src = RecordedTrace::new("src", accs.clone());
        let header = record_trace(&mut src, 10, &path).unwrap();
        assert_eq!(header.records, 10);
        assert_eq!(read_trace_header(&path).unwrap(), header);

        let mut replay = FileTrace::open(&path, EndPolicy::Strict).unwrap();
        for want in &accs {
            assert_eq!(replay.next_access(), *want);
        }
    }

    #[test]
    fn fill_matches_next_across_wraps() {
        let path = tmp("fill.trc");
        let mut src = RecordedTrace::new("src", sample_accesses(5));
        record_trace(&mut src, 5, &path).unwrap();

        let mut by_next = FileTrace::open(&path, EndPolicy::Loop).unwrap();
        let mut by_fill = FileTrace::open(&path, EndPolicy::Loop).unwrap();
        let mut ring = AccessRing::with_capacity(7); // not a divisor of 5
        for _ in 0..6 {
            by_fill.fill(&mut ring);
            while let Some(a) = ring.pop() {
                assert_eq!(a, by_next.next_access());
            }
        }
        assert_eq!(by_fill.wraps(), by_next.wraps());
        assert!(by_fill.wraps() >= 8);
    }

    #[test]
    fn snapshot_resumes_mid_trace() {
        let path = tmp("snap.trc");
        let mut src = RecordedTrace::new("src", sample_accesses(6));
        record_trace(&mut src, 6, &path).unwrap();

        let mut a = FileTrace::open(&path, EndPolicy::Loop).unwrap();
        for _ in 0..8 {
            a.next_access(); // one wrap, cursor mid-trace
        }
        let mut w = SnapWriter::new();
        a.save_state(&mut w).unwrap();
        let bytes = w.into_bytes();

        let mut b = FileTrace::open(&path, EndPolicy::Loop).unwrap();
        let mut r = SnapReader::new(&bytes);
        b.restore_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(b.wraps(), a.wraps());
        for _ in 0..10 {
            assert_eq!(b.next_access(), a.next_access());
        }
    }

    #[test]
    #[should_panic(expected = "strict end-of-trace policy")]
    fn strict_policy_refuses_to_wrap() {
        let path = tmp("strict.trc");
        let mut src = RecordedTrace::new("src", sample_accesses(3));
        record_trace(&mut src, 3, &path).unwrap();
        let mut replay = FileTrace::open(&path, EndPolicy::Strict).unwrap();
        for _ in 0..4 {
            replay.next_access();
        }
    }

    #[test]
    fn corrupt_payload_rejected_at_open() {
        let path = tmp("corrupt.trc");
        let mut src = RecordedTrace::new("src", sample_accesses(4));
        record_trace(&mut src, 4, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let err = FileTrace::open(&path, EndPolicy::Loop).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn truncated_file_rejected_by_header_read() {
        let path = tmp("trunc.trc");
        let mut src = RecordedTrace::new("src", sample_accesses(4));
        record_trace(&mut src, 4, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let err = read_trace_header(&path).unwrap_err();
        assert!(err.to_string().contains("header promises"), "{err}");
    }

    #[test]
    fn unfinished_recording_rejected() {
        let path = tmp("unfinished.trc");
        let mut w = TraceFileWriter::create(&path).unwrap();
        w.push(&MemoryAccess::new(Pc::new(1), Addr::new(64)))
            .unwrap();
        drop(w); // never finished: header still zeroed
        let err = read_trace_header(&path).unwrap_err();
        assert!(err.to_string().contains("empty trace"), "{err}");
    }

    #[test]
    fn header_digest_tracks_content() {
        let p1 = tmp("dig1.trc");
        let p2 = tmp("dig2.trc");
        let mut s1 = RecordedTrace::new("s", sample_accesses(8));
        let mut s2 = RecordedTrace::new("s", sample_accesses(8));
        let h1 = record_trace(&mut s1, 8, &p1).unwrap();
        let h2 = record_trace(&mut s2, 8, &p2).unwrap();
        assert_eq!(h1.digest(), h2.digest());
        let mut s3 = RecordedTrace::new("s", sample_accesses(9));
        let p3 = tmp("dig3.trc");
        let h3 = record_trace(&mut s3, 9, &p3).unwrap();
        assert_ne!(h1.digest(), h3.digest());
    }
}
