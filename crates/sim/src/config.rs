//! System configuration (Table 2 of the paper).

use triangel_cache::replacement::PolicyKind;
use triangel_cache::CacheConfig;
use triangel_mem::DramConfig;
use triangel_types::Cycle;

/// Shared-resource contention knobs for multi-core runs.
///
/// Every field defaults to the *legacy* (no contention) behaviour so the
/// pinned single- and dual-core goldens are byte-identical; the N-core
/// configurations built by [`SystemConfig::paper_n_core`] turn the
/// contention machinery on via [`ContentionConfig::scaled`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContentionConfig {
    /// Number of L3 banks contended by cores. `0` disables bank
    /// arbitration entirely (legacy eager uncontended service).
    pub l3_banks: usize,
    /// Bank occupancy per L3 access, in cycles. Only meaningful when
    /// `l3_banks > 0`.
    pub l3_bank_service: Cycle,
    /// When set, demand L2 misses occupy an MSHR entry for the duration
    /// of the miss, so a full MSHR file genuinely delays later demands
    /// and prefetches (back-pressure) instead of only dropping
    /// prefetches.
    pub mshr_demand_occupancy: bool,
    /// When set, the engine steps cores in cycle order (the core whose
    /// retire clock is furthest behind goes first; ties break on core
    /// index) instead of fixed round-robin, so faster cores genuinely
    /// race ahead.
    pub cycle_ordered: bool,
}

impl ContentionConfig {
    /// The pre-N-core behaviour: no bank arbitration, no MSHR demand
    /// occupancy, fixed round-robin core stepping.
    pub fn legacy() -> Self {
        ContentionConfig {
            l3_banks: 0,
            l3_bank_service: 0,
            mshr_demand_occupancy: false,
            cycle_ordered: false,
        }
    }

    /// Contention scaled for an `n`-core system: 4 L3 banks per core
    /// pair (min 4), a 4-cycle bank service interval, MSHR demand
    /// occupancy, and cycle-ordered stepping.
    pub fn scaled(n_cores: usize) -> Self {
        ContentionConfig {
            l3_banks: (n_cores * 2).max(4),
            l3_bank_service: 4,
            mshr_demand_occupancy: true,
            cycle_ordered: true,
        }
    }
}

impl Default for ContentionConfig {
    fn default() -> Self {
        ContentionConfig::legacy()
    }
}

/// Core and memory-system parameters, defaulting to the paper's setup
/// (Table 2: a Cortex-X2-like 5-wide core at 2 GHz).
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Issue/commit width in instructions per cycle (5).
    pub width: u64,
    /// Reorder-buffer capacity in instructions (288).
    pub rob_entries: usize,
    /// L1 data cache (64 KiB, 4-way, 4-cycle).
    pub l1: CacheConfig,
    /// L2 cache (512 KiB, 8-way, 9-cycle), where temporal prefetchers
    /// train and fill.
    pub l2: CacheConfig,
    /// L2 MSHRs (32).
    pub l2_mshrs: usize,
    /// Shared L3 (2 MiB/core, 16-way, 20-cycle), hosting the Markov
    /// partition.
    pub l3: CacheConfig,
    /// Maximum L3 ways the Markov partition may claim (8 = half).
    pub max_markov_ways: usize,
    /// DRAM channel.
    pub dram: DramConfig,
    /// Degree of the baseline L1 stride prefetcher (8).
    pub stride_degree: usize,
    /// Number of cores this configuration was sized for. The engine
    /// derives the actual core count from the workload sources; this
    /// field records the sizing intent and drives builder defaults.
    pub n_cores: usize,
    /// Shared-resource contention model (see [`ContentionConfig`]).
    pub contention: ContentionConfig,
}

impl SystemConfig {
    /// The paper's single-core configuration.
    pub fn paper_single_core() -> Self {
        SystemConfig {
            width: 5,
            rob_entries: 288,
            l1: CacheConfig::new("L1D", 64 * 1024, 4, PolicyKind::Lru).with_hit_latency(4),
            l2: CacheConfig::new("L2", 512 * 1024, 8, PolicyKind::Lru).with_hit_latency(9),
            l3: CacheConfig::new("L3", 2 * 1024 * 1024, 16, PolicyKind::Srrip).with_hit_latency(20),
            l2_mshrs: 32,
            max_markov_ways: 8,
            dram: DramConfig::lpddr5(),
            stride_degree: 8,
            n_cores: 1,
            contention: ContentionConfig::legacy(),
        }
    }

    /// The two-core multiprogrammed configuration (Section 6.3):
    /// private L1/L2 per core, shared 4 MiB L3 (2 MiB/core) and DRAM.
    ///
    /// Kept on the legacy (uncontended) timing model so the pinned
    /// dual-core goldens from earlier PRs stay byte-identical; new
    /// multi-core studies should prefer [`SystemConfig::paper_n_core`],
    /// which turns on shared-LLC and DRAM-bandwidth arbitration.
    pub fn paper_dual_core() -> Self {
        let mut cfg = SystemConfig::paper_single_core();
        cfg.l3 =
            CacheConfig::new("L3", 4 * 1024 * 1024, 16, PolicyKind::Srrip).with_hit_latency(20);
        cfg.n_cores = 2;
        cfg
    }

    /// An `n`-core configuration with the paper's per-core resources and
    /// contention turned on: private L1/L2/MSHRs/prefetchers per core, a
    /// shared L3 scaled at 2 MiB per core (16-way SRRIP), DRAM bandwidth
    /// scaled at one LPDDR5 channel per two cores (min 1), banked L3
    /// arbitration, MSHR demand back-pressure, and cycle-ordered core
    /// stepping.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is zero.
    pub fn paper_n_core(n_cores: usize) -> Self {
        assert!(n_cores > 0, "paper_n_core requires at least one core");
        let mut cfg = SystemConfig::paper_single_core();
        // 2 MiB per core, rounded *up* to the next power-of-two set
        // count (the cache model indexes by bit masking), so
        // non-power-of-two core counts get at least their share.
        let ideal_sets = n_cores as u64 * 2 * 1024 * 1024 / (16 * 64);
        let sets = ideal_sets.next_power_of_two();
        cfg.l3 = CacheConfig::new("L3", sets * 16 * 64, 16, PolicyKind::Srrip).with_hit_latency(20);
        cfg.dram = DramConfig::lpddr5_channels(n_cores.div_ceil(2));
        cfg.n_cores = n_cores;
        cfg.contention = ContentionConfig::scaled(n_cores);
        cfg
    }

    /// A scaled-down configuration for fast unit tests.
    pub fn tiny() -> Self {
        SystemConfig {
            width: 4,
            rob_entries: 64,
            l1: CacheConfig::new("L1D", 4 * 1024, 4, PolicyKind::Lru).with_hit_latency(2),
            l2: CacheConfig::new("L2", 16 * 1024, 8, PolicyKind::Lru).with_hit_latency(6),
            l3: CacheConfig::new("L3", 64 * 1024, 16, PolicyKind::Lru).with_hit_latency(15),
            l2_mshrs: 8,
            max_markov_ways: 8,
            dram: DramConfig::lpddr5(),
            stride_degree: 4,
            n_cores: 1,
            contention: ContentionConfig::legacy(),
        }
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::paper_single_core()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry() {
        let cfg = SystemConfig::paper_single_core();
        assert_eq!(cfg.l1.sets(), 256);
        assert_eq!(cfg.l2.sets(), 1024);
        assert_eq!(cfg.l3.sets(), 2048);
        assert_eq!(cfg.l3.hit_latency(), 20);
    }

    #[test]
    fn dual_core_doubles_l3() {
        let cfg = SystemConfig::paper_dual_core();
        assert_eq!(cfg.l3.size_bytes(), 4 * 1024 * 1024);
        // Dual-core stays on the legacy timing model (pinned goldens).
        assert_eq!(cfg.contention, ContentionConfig::legacy());
    }

    #[test]
    fn n_core_scales_llc_and_bandwidth() {
        for n in [1usize, 2, 4, 8] {
            let cfg = SystemConfig::paper_n_core(n);
            assert_eq!(cfg.n_cores, n);
            assert_eq!(cfg.l3.size_bytes(), n as u64 * 2 * 1024 * 1024);
            assert_eq!(cfg.dram.channels, n.div_ceil(2));
            assert!(cfg.contention.l3_banks >= 4);
            assert!(cfg.contention.mshr_demand_occupancy);
            assert!(cfg.contention.cycle_ordered);
        }
    }

    #[test]
    fn n_core_rounds_odd_counts_up_to_a_power_of_two_llc() {
        // 3 cores would want 6 MiB; the model indexes sets by bit
        // masking, so the share rounds up to 8 MiB rather than down.
        let cfg = SystemConfig::paper_n_core(3);
        assert_eq!(cfg.l3.size_bytes(), 8 * 1024 * 1024);
        assert_eq!(cfg.dram.channels, 2);
    }

    #[test]
    fn n_core_one_matches_single_core_geometry() {
        let one = SystemConfig::paper_n_core(1);
        let single = SystemConfig::paper_single_core();
        assert_eq!(one.l3.size_bytes(), single.l3.size_bytes());
        assert_eq!(one.dram.channels, 1);
    }
}
