//! System configuration (Table 2 of the paper).

use triangel_cache::replacement::PolicyKind;
use triangel_cache::CacheConfig;
use triangel_mem::DramConfig;

/// Core and memory-system parameters, defaulting to the paper's setup
/// (Table 2: a Cortex-X2-like 5-wide core at 2 GHz).
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Issue/commit width in instructions per cycle (5).
    pub width: u64,
    /// Reorder-buffer capacity in instructions (288).
    pub rob_entries: usize,
    /// L1 data cache (64 KiB, 4-way, 4-cycle).
    pub l1: CacheConfig,
    /// L2 cache (512 KiB, 8-way, 9-cycle), where temporal prefetchers
    /// train and fill.
    pub l2: CacheConfig,
    /// L2 MSHRs (32).
    pub l2_mshrs: usize,
    /// Shared L3 (2 MiB/core, 16-way, 20-cycle), hosting the Markov
    /// partition.
    pub l3: CacheConfig,
    /// Maximum L3 ways the Markov partition may claim (8 = half).
    pub max_markov_ways: usize,
    /// DRAM channel.
    pub dram: DramConfig,
    /// Degree of the baseline L1 stride prefetcher (8).
    pub stride_degree: usize,
}

impl SystemConfig {
    /// The paper's single-core configuration.
    pub fn paper_single_core() -> Self {
        SystemConfig {
            width: 5,
            rob_entries: 288,
            l1: CacheConfig::new("L1D", 64 * 1024, 4, PolicyKind::Lru).with_hit_latency(4),
            l2: CacheConfig::new("L2", 512 * 1024, 8, PolicyKind::Lru).with_hit_latency(9),
            l3: CacheConfig::new("L3", 2 * 1024 * 1024, 16, PolicyKind::Srrip).with_hit_latency(20),
            l2_mshrs: 32,
            max_markov_ways: 8,
            dram: DramConfig::lpddr5(),
            stride_degree: 8,
        }
    }

    /// The two-core multiprogrammed configuration (Section 6.3):
    /// private L1/L2 per core, shared 4 MiB L3 (2 MiB/core) and DRAM.
    pub fn paper_dual_core() -> Self {
        let mut cfg = SystemConfig::paper_single_core();
        cfg.l3 =
            CacheConfig::new("L3", 4 * 1024 * 1024, 16, PolicyKind::Srrip).with_hit_latency(20);
        cfg
    }

    /// A scaled-down configuration for fast unit tests.
    pub fn tiny() -> Self {
        SystemConfig {
            width: 4,
            rob_entries: 64,
            l1: CacheConfig::new("L1D", 4 * 1024, 4, PolicyKind::Lru).with_hit_latency(2),
            l2: CacheConfig::new("L2", 16 * 1024, 8, PolicyKind::Lru).with_hit_latency(6),
            l3: CacheConfig::new("L3", 64 * 1024, 16, PolicyKind::Lru).with_hit_latency(15),
            l2_mshrs: 8,
            max_markov_ways: 8,
            dram: DramConfig::lpddr5(),
            stride_degree: 4,
        }
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::paper_single_core()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry() {
        let cfg = SystemConfig::paper_single_core();
        assert_eq!(cfg.l1.sets(), 256);
        assert_eq!(cfg.l2.sets(), 1024);
        assert_eq!(cfg.l3.sets(), 2048);
        assert_eq!(cfg.l3.hit_latency(), 20);
    }

    #[test]
    fn dual_core_doubles_l3() {
        let cfg = SystemConfig::paper_dual_core();
        assert_eq!(cfg.l3.size_bytes(), 4 * 1024 * 1024);
    }
}
