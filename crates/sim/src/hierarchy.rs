//! The memory hierarchy: per-core L1/L2 + prefetchers, shared L3 + DRAM.

use crate::config::SystemConfig;
use crate::dispatch::PrefetcherImpl;
use triangel_cache::replacement::all_ways;
use triangel_cache::{Cache, EvictedLine, Mshr};
use triangel_mem::Dram;
use triangel_prefetch::{
    CacheView, EvictNotice, PrefetchRequest, Prefetcher, PrefetcherStats, StridePrefetcher,
    TrainEvent, TrainKind,
};
use triangel_types::{Cycle, FillSource, LineAddr, LineMeta, Pc};

/// Per-core accuracy/traffic bookkeeping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Lines the temporal prefetcher filled into the L2.
    pub temporal_fills: u64,
    /// Of those, lines demand-used before L2 eviction (accuracy
    /// numerator, Fig. 12).
    pub temporal_used: u64,
    /// Of those, lines evicted unused (accuracy denominator
    /// complement).
    pub temporal_wasted: u64,
    /// Prefetch requests dropped for MSHR pressure.
    pub prefetches_dropped: u64,
    /// Total L2 fills (the Second-Chance Sampler's proximity clock).
    pub l2_fills: u64,
}

impl CoreStats {
    /// Prefetch accuracy over *resolved* lines only:
    /// `used / (used + wasted)`. A temporal fill resolves either by
    /// first demand use (`temporal_used`) or by unused eviction
    /// (`temporal_wasted`); lines still resident and untouched at
    /// measurement end are not counted in either direction. Returns
    /// `0.0` when nothing has resolved.
    pub fn accuracy(&self) -> f64 {
        let resolved = self.temporal_used + self.temporal_wasted;
        if resolved == 0 {
            0.0
        } else {
            self.temporal_used as f64 / resolved as f64
        }
    }
}

impl triangel_obs::Probe for CoreStats {
    fn probe(&self, out: &mut triangel_obs::ProbeSet) {
        out.record("temporal_fills", self.temporal_fills);
        out.record("temporal_used", self.temporal_used);
        out.record("temporal_wasted", self.temporal_wasted);
        out.record("prefetches_dropped", self.prefetches_dropped);
        out.record("l2_fills", self.l2_fills);
    }
}

/// One core's private memory-side state.
///
/// Everything the old side tables tracked — fill-completion times and
/// temporal-fill attribution — now lives in the L2's own lines (see
/// [`triangel_types::LineMeta`]), so there is nothing per-line to keep
/// in sync, prune, or look up here.
#[derive(Debug)]
struct CoreMem {
    l1: Cache,
    l2: Cache,
    mshr: Mshr,
    stride: StridePrefetcher,
    /// Enum-dispatched: the default pipeline's train/lookup path has no
    /// virtual call (see [`PrefetcherImpl`]).
    temporal: PrefetcherImpl,
    stats: CoreStats,
    pf_snapshot: PrefetcherStats,
    req_buf: Vec<PrefetchRequest>,
}

struct ViewPair<'a> {
    l2: &'a Cache,
    l3: &'a Cache,
}

impl CacheView for ViewPair<'_> {
    fn in_l2(&self, line: LineAddr) -> bool {
        self.l2.contains(line)
    }
    fn in_l3(&self, line: LineAddr) -> bool {
        self.l3.contains(line)
    }
    fn l2_meta(&self, line: LineAddr) -> Option<LineMeta> {
        self.l2.line_meta(line)
    }
}

/// The assembled memory system.
///
/// Fills are applied eagerly and each line records its own completion
/// timestamp (`LineMeta::ready_at`), which is exact because the engine
/// issues accesses in non-decreasing time order; the MSHR file bounds
/// outstanding misses and drops prefetches under pressure, as hardware
/// does. Used/wasted prefetch attribution happens on the line itself:
/// at first demand use (the tagged prefetch hit) and at eviction, where
/// the dying line's metadata word names the prefetcher that filled it.
#[derive(Debug)]
pub struct MemorySystem {
    cfg: SystemConfig,
    cores: Vec<CoreMem>,
    l3: Cache,
    dram: Dram,
    /// Hit latencies cached out of `cfg` for the per-access path.
    l1_lat: Cycle,
    l2_lat: Cycle,
    l3_lat: Cycle,
    /// L3 ways currently ceded to the Markov partition (max over cores'
    /// wishes; the partition is shared in multiprogrammed mode,
    /// Section 6.3).
    markov_ways: usize,
    /// Per-bank busy-until clocks for L3 arbitration; empty when
    /// `cfg.contention.l3_banks == 0` (legacy uncontended service).
    /// Banks are selected by line index; ties between cores are broken
    /// by arrival order, which the engine's cycle-ordered stepping makes
    /// deterministic (lowest retire clock first, then core index).
    l3_bank_free: Vec<Cycle>,
}

impl MemorySystem {
    /// Builds the system with one boxed temporal prefetcher per core.
    ///
    /// Compatibility shim: every prefetcher is wrapped in
    /// [`PrefetcherImpl::Dyn`], so this path keeps the virtual call per
    /// training event. The default pipeline
    /// ([`SimSession`](crate::SimSession), [`crate::Experiment`]) uses
    /// [`MemorySystem::with_prefetchers`] with enum-dispatched
    /// prefetchers instead.
    ///
    /// Kept deliberately (shim audit): this is the only way to drive
    /// the hierarchy with a user-supplied `Prefetcher` implementation
    /// from outside the workspace, and the dispatch-equivalence test
    /// uses it as the independent reference for the enum path.
    ///
    /// # Panics
    ///
    /// Panics if `temporal` is empty.
    pub fn new(cfg: SystemConfig, temporal: Vec<Box<dyn Prefetcher>>) -> Self {
        MemorySystem::with_prefetchers(cfg, temporal.into_iter().map(Into::into).collect())
    }

    /// Builds the system with one temporal prefetcher per core.
    ///
    /// # Panics
    ///
    /// Panics if `temporal` is empty.
    pub fn with_prefetchers(cfg: SystemConfig, temporal: Vec<PrefetcherImpl>) -> Self {
        assert!(!temporal.is_empty(), "at least one core required");
        let cores = temporal
            .into_iter()
            .map(|t| CoreMem {
                l1: Cache::new(cfg.l1.clone()),
                l2: Cache::new(cfg.l2.clone()),
                mshr: Mshr::new(cfg.l2_mshrs),
                stride: StridePrefetcher::new(64, cfg.stride_degree),
                temporal: t,
                stats: CoreStats::default(),
                pf_snapshot: PrefetcherStats::default(),
                req_buf: Vec::new(),
            })
            .collect();
        MemorySystem {
            l3: Cache::new(cfg.l3.clone()),
            dram: Dram::new(cfg.dram),
            cores,
            markov_ways: 0,
            l1_lat: cfg.l1.hit_latency(),
            l2_lat: cfg.l2.hit_latency(),
            l3_lat: cfg.l3.hit_latency(),
            l3_bank_free: vec![0; cfg.contention.l3_banks],
            cfg,
        }
    }

    /// Claims an L3 bank slot for an access to `line` arriving at `t`;
    /// returns the cycle the bank actually services it. A no-op (returns
    /// `t`) when bank arbitration is disabled.
    fn arbitrate_l3(&mut self, t: Cycle, line: LineAddr) -> Cycle {
        if self.l3_bank_free.is_empty() {
            return t;
        }
        let bank = (line.index() % self.l3_bank_free.len() as u64) as usize;
        let start = t.max(self.l3_bank_free[bank]);
        self.l3_bank_free[bank] = start + self.cfg.contention.l3_bank_service;
        start
    }

    /// Number of cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Performs one demand access; returns the cycle the data is ready.
    pub fn demand_access(&mut self, core_idx: usize, pc: Pc, line: LineAddr, t: Cycle) -> Cycle {
        let l1_lat = self.l1_lat;
        let l2_lat = self.l2_lat;

        // --- L1 ---
        let l1_hit = self.cores[core_idx].l1.access(line, Some(pc), false).hit;
        self.train_stride(core_idx, pc, line, t);
        if l1_hit {
            return t + l1_lat;
        }

        // --- L2 ---
        let t2 = t + l1_lat;
        self.cores[core_idx].mshr.retire_until(t2);
        let l2_out = self.cores[core_idx].l2.access(line, Some(pc), false);
        if l2_out.hit {
            // Data may still be in flight (late prefetch): the line's
            // own metadata word records when its fill completes.
            let meta = l2_out.meta.expect("hit carries metadata");
            let ready = (t2 + l2_lat).max(meta.ready_at);
            if l2_out.prefetch_hit {
                if meta.source == FillSource::Temporal {
                    self.cores[core_idx].stats.temporal_used += 1;
                }
                self.train_temporal(core_idx, pc, line, TrainKind::L2PrefetchHit, t2);
            }
            self.fill_l1(core_idx, pc, line);
            return ready;
        }

        // --- L2 miss: wait for an MSHR slot if the file is full ---
        let mut t3 = t2 + l2_lat;
        if self.cores[core_idx].mshr.is_full() {
            if let Some(earliest) = self.cores[core_idx].mshr.earliest_ready() {
                t3 = t3.max(earliest);
                self.cores[core_idx].mshr.retire_until(t3);
            }
        }

        // --- L3 ---
        let l3_lat = self.l3_lat;
        let t3 = self.arbitrate_l3(t3, line);
        let l3_hit = self.l3.access(line, Some(pc), false).hit;
        let ready = if l3_hit {
            t3 + l3_lat
        } else {
            let fetched = self
                .dram
                .request_line(t3 + l3_lat, line.index(), false)
                .completes_at;
            self.fill_l3(line, pc, FillSource::Demand);
            fetched
        };

        // With demand occupancy on, the miss holds an MSHR entry until
        // its data lands, so a full file genuinely back-pressures later
        // demands and prefetches instead of only dropping prefetches.
        if self.cfg.contention.mshr_demand_occupancy {
            self.cores[core_idx].mshr.allocate(line, ready, false);
        }

        self.fill_l2(core_idx, pc, line, FillSource::Demand, ready);
        self.fill_l1(core_idx, pc, line);

        // Train the temporal prefetcher on the miss and issue whatever
        // it wants, after the demand request is in the DRAM queue.
        self.train_temporal(core_idx, pc, line, TrainKind::L2Miss, t2);
        ready
    }

    fn fill_l1(&mut self, core_idx: usize, pc: Pc, line: LineAddr) {
        self.cores[core_idx].l1.fill(line, Some(pc), false);
    }

    fn fill_l3(&mut self, line: LineAddr, pc: Pc, source: FillSource) {
        self.l3
            .fill_at(line, Some(pc), source, source.is_prefetch(), 0);
    }

    /// Fills the L2. The line itself records who filled it and when the
    /// data arrives; the dying victim's metadata word settles accuracy
    /// accounting on the spot and is handed to the temporal prefetcher
    /// as an eviction notice.
    ///
    /// Note the tag-bit policy: only *temporal* fills are
    /// prefetch-tagged at the L2. Stride fills behave demand-like here
    /// (the stride prefetcher is part of the baseline, so its hits must
    /// not train the temporal prefetcher), while still being attributed
    /// to the stride engine in their metadata word.
    fn fill_l2(
        &mut self,
        core_idx: usize,
        pc: Pc,
        line: LineAddr,
        source: FillSource,
        ready: Cycle,
    ) {
        let core = &mut self.cores[core_idx];
        let tagged = source == FillSource::Temporal;
        let out = core.l2.fill_at(line, Some(pc), source, tagged, ready);
        core.stats.l2_fills += 1;
        if let Some(ev) = out.evicted {
            // The victim holds its frame until the replacement's data
            // lands, so the incoming fill's completion time is the
            // eviction's effective cycle.
            Self::settle_l2_eviction(core, &ev, ready);
        }
        if tagged {
            core.stats.temporal_fills += 1;
        }
    }

    /// Attributes a dying L2 line and notifies the temporal prefetcher,
    /// handing it the line's full metadata word plus the eviction's
    /// effective cycle and fill-clock ordinal (the eviction-training
    /// inputs).
    fn settle_l2_eviction(core: &mut CoreMem, ev: &EvictedLine, evict_cycle: Cycle) {
        if ev.source == FillSource::Temporal && ev.was_unused_prefetch {
            core.stats.temporal_wasted += 1;
        }
        core.temporal.on_l2_evict(&EvictNotice {
            line: ev.line,
            meta: ev.meta(),
            was_unused_prefetch: ev.was_unused_prefetch,
            evict_cycle,
            evict_seq: ev.evict_seq,
            fill_pc: ev.fill_pc,
        });
    }

    /// Trains the stride prefetcher (every L1 access) and issues its
    /// prefetches into L1+L2.
    fn train_stride(&mut self, core_idx: usize, pc: Pc, line: LineAddr, t: Cycle) {
        let mut reqs = std::mem::take(&mut self.cores[core_idx].req_buf);
        reqs.clear();
        {
            let core = &mut self.cores[core_idx];
            let ev = TrainEvent {
                pc,
                line,
                kind: TrainKind::L1Access,
                cycle: t,
                l2_fills: core.stats.l2_fills,
            };
            let view = ViewPair {
                l2: &core.l2,
                l3: &self.l3,
            };
            // Inherent generic method: monomorphizes over `ViewPair`.
            core.stride.handle(&ev, &view, &mut reqs);
        }
        for req in &reqs {
            self.issue_prefetch(core_idx, *req, t, false);
        }
        self.cores[core_idx].req_buf = reqs;
    }

    /// Trains the temporal prefetcher and issues its prefetches into L2.
    fn train_temporal(
        &mut self,
        core_idx: usize,
        pc: Pc,
        line: LineAddr,
        kind: TrainKind,
        t: Cycle,
    ) {
        let mut reqs = std::mem::take(&mut self.cores[core_idx].req_buf);
        reqs.clear();
        {
            let core = &mut self.cores[core_idx];
            let ev = TrainEvent {
                pc,
                line,
                kind,
                cycle: t,
                l2_fills: core.stats.l2_fills,
            };
            let view = ViewPair {
                l2: &core.l2,
                l3: &self.l3,
            };
            core.temporal.on_event(&ev, &view, &mut reqs);
        }
        for req in &reqs {
            self.issue_prefetch(core_idx, *req, t, true);
        }
        self.cores[core_idx].req_buf = reqs;
        self.update_partition();
    }

    /// Issues one prefetch request (stride fills L1 too; temporal fills
    /// only the L2, as in the paper).
    fn issue_prefetch(&mut self, core_idx: usize, req: PrefetchRequest, t: Cycle, temporal: bool) {
        let t = t + req.issue_delay;
        let source = if temporal {
            FillSource::Temporal
        } else {
            FillSource::Stride
        };
        if self.cores[core_idx].l2.contains(req.line) {
            if !temporal && !self.cores[core_idx].l1.contains(req.line) {
                self.cores[core_idx].l1.fill(req.line, Some(req.pc), true);
            }
            return;
        }
        self.cores[core_idx].mshr.retire_until(t);
        if self.cores[core_idx].mshr.is_full() {
            self.cores[core_idx].stats.prefetches_dropped += 1;
            return;
        }
        let l3_lat = self.l3_lat;
        let t = self.arbitrate_l3(t, req.line);
        let l3_hit = self.l3.access(req.line, Some(req.pc), true).hit;
        let ready = if l3_hit {
            t + l3_lat
        } else {
            let fetched = self
                .dram
                .request_line(t + l3_lat, req.line.index(), true)
                .completes_at;
            self.fill_l3(req.line, req.pc, source);
            fetched
        };
        self.cores[core_idx].mshr.allocate(req.line, ready, true);
        self.fill_l2(core_idx, req.pc, req.line, source, ready);
        if !temporal {
            self.cores[core_idx].l1.fill(req.line, Some(req.pc), true);
        }
    }

    /// Applies the prefetchers' partition wishes to the L3 data mask
    /// (shared partition: the maximum wish wins).
    fn update_partition(&mut self) {
        let want = self
            .cores
            .iter()
            .map(|c| c.temporal.desired_markov_ways())
            .max()
            .unwrap_or(0)
            .min(self.cfg.max_markov_ways);
        if want != self.markov_ways {
            self.markov_ways = want;
            let total = self.cfg.l3.ways();
            let mask = all_ways(total) & !all_ways(want);
            let _flushed = self.l3.set_way_mask(mask);
        }
    }

    /// Resets all measurement counters (after warm-up), keeping cache
    /// and predictor state.
    pub fn reset_measurement(&mut self) {
        for core in &mut self.cores {
            core.l1.reset_stats();
            core.l2.reset_stats();
            core.stats = CoreStats::default();
            core.pf_snapshot = core.temporal.stats();
        }
        self.l3.reset_stats();
        self.dram.reset_stats();
    }

    /// Per-core accuracy/traffic counters.
    pub fn core_stats(&self, core_idx: usize) -> CoreStats {
        self.cores[core_idx].stats
    }

    /// Per-core L2 statistics.
    pub fn l2_stats(&self, core_idx: usize) -> triangel_cache::CacheStats {
        self.cores[core_idx].l2.stats()
    }

    /// Shared L3 statistics.
    pub fn l3_stats(&self) -> triangel_cache::CacheStats {
        self.l3.stats()
    }

    /// DRAM statistics.
    pub fn dram_stats(&self) -> triangel_mem::DramStats {
        self.dram.stats()
    }

    /// Temporal-prefetcher statistics since the last measurement reset.
    pub fn prefetcher_stats(&self, core_idx: usize) -> PrefetcherStats {
        let now = self.cores[core_idx].temporal.stats();
        let snap = self.cores[core_idx].pf_snapshot;
        PrefetcherStats {
            prefetches_issued: now.prefetches_issued - snap.prefetches_issued,
            markov_reads: now.markov_reads - snap.markov_reads,
            markov_writes: now.markov_writes - snap.markov_writes,
            mrb_hits: now.mrb_hits - snap.mrb_hits,
            updates_suppressed: now.updates_suppressed - snap.updates_suppressed,
        }
    }

    /// The temporal prefetcher's display name.
    pub fn prefetcher_name(&self, core_idx: usize) -> &str {
        self.cores[core_idx].temporal.name()
    }

    /// The temporal prefetcher's named internal counters.
    pub fn prefetcher_probe(&self, core_idx: usize) -> triangel_obs::ProbeSet {
        let mut out = triangel_obs::ProbeSet::new();
        self.cores[core_idx].temporal.probe(&mut out);
        out
    }

    /// The temporal prefetcher's Markov `(occupancy, capacity)` in
    /// entries; `(0, 0)` without a Markov table.
    pub fn markov_occupancy(&self, core_idx: usize) -> (u64, u64) {
        self.cores[core_idx].temporal.markov_occupancy()
    }

    /// L3 ways the temporal prefetcher currently wants.
    pub fn desired_markov_ways(&self, core_idx: usize) -> usize {
        self.cores[core_idx].temporal.desired_markov_ways()
    }

    /// The temporal prefetcher's Set-Dueller counters, if it has one.
    pub fn dueller_counters(&self, core_idx: usize) -> Option<[u64; 9]> {
        self.cores[core_idx].temporal.dueller_counters()
    }

    /// Exports the whole hierarchy's named counters: per-core L2,
    /// accuracy bookkeeping and prefetcher internals under `core<i>.`,
    /// then the shared L3, DRAM and Markov partition allocation.
    pub fn probe(&self, out: &mut triangel_obs::ProbeSet) {
        for (i, core) in self.cores.iter().enumerate() {
            out.scoped(&format!("core{i}"), |out| {
                out.scoped("l2", |out| {
                    triangel_obs::Probe::probe(&core.l2.stats(), out);
                });
                out.scoped("stats", |out| {
                    triangel_obs::Probe::probe(&core.stats, out);
                });
                out.scoped("pf", |out| core.temporal.probe(out));
            });
        }
        out.scoped("l3", |out| {
            triangel_obs::Probe::probe(&self.l3.stats(), out);
        });
        out.scoped("dram", |out| {
            triangel_obs::Probe::probe(&self.dram.stats(), out);
        });
        out.record("markov_ways", self.markov_ways as u64);
    }

    /// Current Markov partition allocation (ways of the L3).
    pub fn markov_ways(&self) -> usize {
        self.markov_ways
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }
}

use triangel_types::snap::{SnapError, SnapReader, SnapWriter, Snapshot};

impl Snapshot for CoreStats {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.u64(self.temporal_fills);
        w.u64(self.temporal_used);
        w.u64(self.temporal_wasted);
        w.u64(self.prefetches_dropped);
        w.u64(self.l2_fills);
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.temporal_fills = r.u64()?;
        self.temporal_used = r.u64()?;
        self.temporal_wasted = r.u64()?;
        self.prefetches_dropped = r.u64()?;
        self.l2_fills = r.u64()?;
        Ok(())
    }
}

impl Snapshot for CoreMem {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        self.l1.save(w)?;
        self.l2.save(w)?;
        self.mshr.save(w)?;
        self.stride.save(w)?;
        self.temporal.save(w)?;
        self.stats.save(w)?;
        self.pf_snapshot.save(w)
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.l1.restore(r)?;
        self.l2.restore(r)?;
        self.mshr.restore(r)?;
        self.stride.restore(r)?;
        self.temporal.restore(r)?;
        self.stats.restore(r)?;
        self.pf_snapshot.restore(r)
    }
}

impl Snapshot for MemorySystem {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.usize(self.cores.len());
        for core in &self.cores {
            core.save(w)?;
        }
        self.l3.save(w)?;
        self.dram.save(w)?;
        w.usize(self.markov_ways);
        w.usize(self.l3_bank_free.len());
        for &free_at in &self.l3_bank_free {
            w.u64(free_at);
        }
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        r.expect_len(self.cores.len(), "cores")?;
        for core in &mut self.cores {
            core.restore(r)?;
        }
        self.l3.restore(r)?;
        self.dram.restore(r)?;
        self.markov_ways = r.usize()?;
        r.expect_len(self.l3_bank_free.len(), "l3 banks")?;
        for free_at in &mut self.l3_bank_free {
            *free_at = r.u64()?;
        }
        Ok(())
    }
}
