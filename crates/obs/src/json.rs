//! Minimal hand-rolled JSON support: emit helpers and a validating
//! parser.
//!
//! The container is offline, so no serde. Emitters in this workspace
//! build JSON with `format!`; this module provides the two primitives
//! they share ([`escape`], [`fmt_f64`]) plus a small recursive-descent
//! parser ([`parse`]) used by unit tests to pin that every emitted
//! document is well-formed and round-trips its schema. Numbers keep
//! their raw source token so `u64` counters survive exactly.

use std::fmt::Write as _;

/// Escapes `s` as a JSON string, including the surrounding quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number token.
///
/// Uses Rust's shortest round-trip representation; non-finite values
/// (which JSON cannot carry) become `null`.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// A parsed JSON value.
///
/// Objects preserve key order; numbers keep their raw token (see
/// [`Value::as_u64`] / [`Value::as_f64`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its raw source token.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The number as an exact `u64`, if this is an integer token in
    /// range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// The number as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// A human-readable description of the first syntax error, with its
/// byte offset.
pub fn parse(src: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

/// Checks that `src` is a well-formed JSON document.
///
/// # Errors
///
/// See [`parse`].
pub fn validate(src: &str) -> Result<(), String> {
    parse(src).map(|_| ())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let s = p.pos;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            p.pos > s
        };
        if !digits(self) {
            return Err(format!("bad number at byte {start}"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(format!("bad number at byte {start}"));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(format!("bad number at byte {start}"));
            }
        }
        let tok = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        Ok(Value::Num(tok.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            // Surrogates are not recombined; tests only
                            // need BMP round-trips.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(format!("raw control char at byte {}", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let val = self.value()?;
            fields.push((key, val));
            self.ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_specials() {
        assert_eq!(escape("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn fmt_f64_tokens() {
        assert_eq!(fmt_f64(0.25), "0.25");
        assert_eq!(fmt_f64(2.0), "2.0");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }

    #[test]
    fn parse_round_trip() {
        let src = r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": null}, "e": true}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Null));
        assert_eq!(v.get("e"), Some(&Value::Bool(true)));
    }

    #[test]
    fn exact_u64_survives() {
        let big = u64::MAX - 1;
        let v = parse(&format!("{{\"n\": {big}}}")).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(big));
    }

    #[test]
    fn rejects_malformed() {
        assert!(validate("{").is_err());
        assert!(validate("[1,]").is_err());
        assert!(validate("{\"a\" 1}").is_err());
        assert!(validate("12 34").is_err());
        assert!(validate("\"unterminated").is_err());
    }

    #[test]
    fn escaped_emit_parses_back() {
        let nasty = "tab\there \"quoted\" back\\slash\nline";
        let doc = format!("{{{}: {}}}", escape("k"), escape(nasty));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(nasty));
    }
}
