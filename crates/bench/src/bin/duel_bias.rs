//! Extension study: the Set Dueller's bias factor B (Section 4.7,
//! footnote 11).
//!
//! B discounts modelled Markov-table hits by the DRAM cost of
//! prefetches (each Markov hit is worth `12 / B` cache hits). The paper
//! uses B = 2 and notes that "more aggressive tradeoff parameters...
//! do increase performance" at the cost of traffic; this binary sweeps
//! B over {1, 2, 4} to expose that tradeoff.
//!
//! Declarative definition: `triangel_bench::figures` registry entry
//! `"duel_bias"`, executed by the `triangel-harness` scheduler
//! (`--jobs N` controls worker threads; results are identical for any
//! value).

fn main() {
    triangel_bench::figures::run_main("duel_bias");
}
