//! Binary framing for persisted [`RunReport`]s.
//!
//! This is the on-disk report format shared by the campaign runner
//! (`<stem>.report.bin` artifacts), the [`crate::ResultStore`] entries,
//! and the simulation daemon's wire protocol. Version 2 appends the
//! optional interval time-series, so sampled jobs persist (and are
//! served) with their recorded series intact.

use triangel_sim::RunReport;
use triangel_types::snap::{snap_check, SnapError, SnapReader, SnapWriter, Snapshot};

/// Magic framing for persisted [`RunReport`]s.
pub const REPORT_MAGIC: [u8; 8] = *b"TRGLRPT\0";

/// Version of the persisted-report framing. v2 appends the optional
/// interval time-series, so sampled campaign jobs resume with their
/// recorded series intact.
pub const REPORT_VERSION: u32 = 2;

/// Serializes a [`RunReport`] in the snapshot framing.
pub fn report_to_bytes(report: &RunReport) -> Vec<u8> {
    let mut w = SnapWriter::new();
    w.bytes(&REPORT_MAGIC);
    w.u32(REPORT_VERSION);
    w.str(&report.workload);
    w.usize(report.cores.len());
    for c in &report.cores {
        w.str(&c.workload);
        w.str(&c.pf_name);
        w.u64(c.instructions);
        w.u64(c.cycles);
        let _ = c.l2.save(&mut w);
        let _ = c.core.save(&mut w);
        let _ = c.pf.save(&mut w);
    }
    let _ = report.l3.save(&mut w);
    let _ = report.dram.save(&mut w);
    w.usize(report.markov_ways);
    match &report.intervals {
        Some(series) => {
            w.bool(true);
            let _ = series.save(&mut w);
        }
        None => w.bool(false),
    }
    w.into_bytes()
}

/// Parses a report written by [`report_to_bytes`].
///
/// # Errors
///
/// [`SnapError`] on truncated, corrupt, or differently-versioned data.
pub fn report_from_bytes(bytes: &[u8]) -> Result<RunReport, SnapError> {
    let mut r = SnapReader::new(bytes);
    snap_check(r.bytes()? == REPORT_MAGIC, "bad report magic")?;
    let version = r.u32()?;
    if version != REPORT_VERSION {
        return Err(SnapError::Version {
            found: version,
            expected: REPORT_VERSION,
        });
    }
    let workload = r.str()?;
    let n = r.usize()?;
    snap_check(n > 0 && n <= 1024, "implausible core count")?;
    let mut cores = Vec::with_capacity(n);
    for _ in 0..n {
        let mut core = triangel_sim::CoreReport {
            workload: r.str()?,
            pf_name: r.str()?,
            instructions: r.u64()?,
            cycles: r.u64()?,
            l2: Default::default(),
            core: Default::default(),
            pf: Default::default(),
        };
        core.l2.restore(&mut r)?;
        core.core.restore(&mut r)?;
        core.pf.restore(&mut r)?;
        cores.push(core);
    }
    let mut report = RunReport {
        workload,
        cores,
        l3: Default::default(),
        dram: Default::default(),
        markov_ways: 0,
        intervals: None,
    };
    report.l3.restore(&mut r)?;
    report.dram.restore(&mut r)?;
    report.markov_ways = r.usize()?;
    if r.bool()? {
        // Mirror `IntervalSeries::save` by hand: its `restore` checks
        // the period against an already-configured session, but a
        // persisted report must accept whatever period it recorded.
        let every = r.u64()?;
        snap_check(every > 0, "sampled report with zero period")?;
        let n = r.usize()?;
        snap_check(n <= 1 << 24, "implausible sample count")?;
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            let mut s = triangel_obs::IntervalSample::default();
            s.restore(&mut r)?;
            samples.push(s);
        }
        report.intervals = Some(triangel_obs::IntervalSeries { every, samples });
    }
    r.finish()?;
    Ok(report)
}
