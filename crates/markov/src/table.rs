//! The in-L3 Markov table.

use crate::format::TargetFormat;
use crate::lut::LookupTable;
use triangel_cache::replacement::{
    all_ways, AccessMeta, Fifo, HawkEye, HawkEyeConfig, Lru, PolicyKind, Random, ReplacementPolicy,
    Rrip, RripMode, TreePlru,
};
use triangel_types::arena::SetArena;
use triangel_types::{xor_fold, LineAddr, Pc};

/// Geometry and policy of the Markov table.
#[derive(Debug, Clone, Copy)]
pub struct MarkovTableConfig {
    /// Number of L3 cache sets backing the partition (2048 for the
    /// paper's 2 MiB 16-way L3).
    pub sets: usize,
    /// Maximum ways the partition may claim (8 = half the L3).
    pub max_ways: usize,
    /// Entry format.
    pub format: TargetFormat,
    /// Lookup-address hashed-tag width. The paper evaluates 7 bits
    /// (Triage-ISR) as insufficient and uses 10 (Section 3.1 fn. 3).
    pub tag_bits: u32,
    /// Replacement among the entries of one line: Triage uses HawkEye,
    /// Triangel SRRIP (Section 5). Consulted by
    /// [`MarkovTableImpl::new`]; tables built directly through
    /// [`MarkovTable::with_policy`] use the policy they are given.
    pub replacement: PolicyKind,
}

impl MarkovTableConfig {
    /// Triangel's table: 42-bit direct entries, SRRIP (Sections 4.3, 5).
    pub fn triangel() -> Self {
        MarkovTableConfig {
            sets: 2048,
            max_ways: 8,
            format: TargetFormat::Direct42,
            tag_bits: 10,
            replacement: PolicyKind::Srrip,
        }
    }

    /// Our fixed Triage baseline: 32-bit LUT entries, HawkEye
    /// (Sections 3.1, 3.3).
    pub fn triage() -> Self {
        MarkovTableConfig {
            sets: 2048,
            max_ways: 8,
            format: TargetFormat::triage_default(),
            tag_bits: 10,
            replacement: PolicyKind::Hawkeye,
        }
    }

    /// Entry capacity at full partition allocation — the `MaxSize` used
    /// by ReuseConf and the samplers (196 608 for Triangel's 1 MiB).
    pub fn max_capacity_entries(&self) -> usize {
        self.sets * self.max_ways * self.format.entries_per_line()
    }
}

/// A successful Markov lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarkovHit {
    /// Reconstructed prefetch target.
    pub target: LineAddr,
    /// The entry's confidence bit.
    pub confidence: bool,
}

/// Event counts for the table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MarkovTableStats {
    /// Lookup accesses that reached the partition.
    pub reads: u64,
    /// Training writes to the partition.
    pub writes: u64,
    /// Entries displaced by replacement.
    pub entry_evictions: u64,
    /// Partition resizes.
    pub resizes: u64,
    /// Entries dropped during resize re-indexing (Section 3.2).
    pub reindex_drops: u64,
}

impl MarkovTableStats {
    /// Total partition accesses (for Fig. 14 / energy accounting).
    pub fn total_accesses(&self) -> u64 {
        self.reads + self.writes
    }
}

impl triangel_obs::Probe for MarkovTableStats {
    fn probe(&self, out: &mut triangel_obs::ProbeSet) {
        out.record("reads", self.reads);
        out.record("writes", self.writes);
        out.record("entry_evictions", self.entry_evictions);
        out.record("resizes", self.resizes);
        out.record("reindex_drops", self.reindex_drops);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StoredTarget {
    Direct(u64),
    Lut { idx: u16, offset: u32 },
}

impl Default for StoredTarget {
    fn default() -> Self {
        StoredTarget::Direct(0)
    }
}

/// The per-entry payload stored next to the arena tag: the confidence
/// bit and the encoded target.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct EntrySlot {
    conf: bool,
    target: StoredTarget,
}

use triangel_types::snap::{snap_check, SnapError, SnapReader, SnapWriter, Snapshot};

impl Snapshot for EntrySlot {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.bool(self.conf);
        match self.target {
            StoredTarget::Direct(t) => {
                w.u8(0);
                w.u64(t);
            }
            StoredTarget::Lut { idx, offset } => {
                w.u8(1);
                w.u16(idx);
                w.u32(offset);
            }
        }
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.conf = r.bool()?;
        self.target = match r.u8()? {
            0 => StoredTarget::Direct(r.u64()?),
            1 => StoredTarget::Lut {
                idx: r.u16()?,
                offset: r.u32()?,
            },
            b => return Err(SnapError::corrupt(format!("stored-target byte {b}"))),
        };
        Ok(())
    }
}

/// The Markov table: `sets x max_ways` cache lines, each holding
/// `entries_per_line` independently tagged entries.
///
/// Indexing follows Section 3.2: the L3 set comes from the lookup
/// address, the way (sub-set) from `tag-# % partition_ways`, and the
/// entries within the selected line are fully searched (16-way
/// associative for one line fetch). Resizing the partition changes the
/// sub-set function, so the whole table is re-indexed and overflow is
/// dropped.
///
/// Storage is a [`SetArena`] with one arena set per table *line*
/// (`sets * max_ways` lines of `entries_per_line` slots), so a lookup
/// probes one contiguous tag slice plus a validity mask — the SRAM
/// line-fetch the paper describes. The replacement policy is a type
/// parameter, monomorphizing its `on_hit`/`victim` bookkeeping into
/// the probe; the shipped combinations have the aliases
/// [`TriageMarkov`] and [`TriangelMarkov`], and runtime policy
/// selection goes through [`MarkovTableImpl`].
#[derive(Debug)]
pub struct MarkovTable<P: ReplacementPolicy> {
    cfg: MarkovTableConfig,
    set_bits: u32,
    ways: usize,
    entries: SetArena<EntrySlot>,
    repl: P,
    lut: Option<LookupTable>,
    stats: MarkovTableStats,
}

/// Triage's Markov table: HawkEye entry replacement (Section 3.3).
pub type TriageMarkov = MarkovTable<HawkEye>;

/// Triangel's Markov table: (S)RRIP entry replacement (Section 5).
pub type TriangelMarkov = MarkovTable<Rrip>;

impl<P: ReplacementPolicy> MarkovTable<P> {
    /// Creates an empty table with a zero-way (inactive) partition,
    /// using `repl` for entry replacement.
    ///
    /// `repl` must have been constructed for `sets * max_ways`
    /// replacement sets of `entries_per_line` ways (what
    /// [`MarkovTableImpl::new`] does from
    /// [`MarkovTableConfig::replacement`]).
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `max_ways` is zero.
    pub fn with_policy(cfg: MarkovTableConfig, repl: P) -> Self {
        assert!(
            cfg.sets.is_power_of_two(),
            "set count must be a power of two"
        );
        assert!(
            cfg.max_ways > 0,
            "partition needs at least one potential way"
        );
        let epl = cfg.format.entries_per_line();
        let lines = cfg.sets * cfg.max_ways;
        let lut = match cfg.format {
            TargetFormat::Lut { assoc, .. } => Some(LookupTable::new(assoc)),
            _ => None,
        };
        MarkovTable {
            cfg,
            set_bits: cfg.sets.trailing_zeros(),
            ways: 0,
            entries: SetArena::new(lines, epl),
            repl,
            lut,
            stats: MarkovTableStats::default(),
        }
    }

    /// Returns the configuration.
    pub fn config(&self) -> &MarkovTableConfig {
        &self.cfg
    }

    /// Current partition ways.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Current entry capacity.
    pub fn capacity_entries(&self) -> usize {
        self.cfg.sets * self.ways * self.cfg.format.entries_per_line()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> MarkovTableStats {
        self.stats
    }

    /// Access to the lookup table (for diagnostics), if the format has
    /// one.
    pub fn lut(&self) -> Option<&LookupTable> {
        self.lut.as_ref()
    }

    fn tag_of(&self, line: LineAddr) -> u16 {
        xor_fold(line.index() >> self.set_bits, self.cfg.tag_bits) as u16
    }

    fn set_of(&self, line: LineAddr) -> usize {
        (line.index() as usize) & (self.cfg.sets - 1)
    }

    /// The physical line (replacement set index) a lookup address maps
    /// to under the current partition size, or `None` when inactive.
    fn line_index(&self, line: LineAddr) -> Option<usize> {
        if self.ways == 0 {
            return None;
        }
        let tag = self.tag_of(line) as usize;
        let way = tag % self.ways;
        Some(self.set_of(line) * self.cfg.max_ways + way)
    }

    fn encode_target(&mut self, target: LineAddr) -> StoredTarget {
        match self.cfg.format {
            TargetFormat::Direct42 => {
                // 31-bit field: 128 GB of physical space (Section 4.3).
                StoredTarget::Direct(target.index() & ((1 << 31) - 1))
            }
            TargetFormat::Ideal32 => StoredTarget::Direct(target.index()),
            TargetFormat::Lut { offset_bits, .. } => {
                let offset = (target.index() & ((1 << offset_bits) - 1)) as u32;
                let upper = target.index() >> offset_bits;
                let idx = self
                    .lut
                    .as_mut()
                    .expect("LUT format has a LUT")
                    .index_for(upper);
                StoredTarget::Lut { idx, offset }
            }
        }
    }

    /// Reconstructs a stored target without touching LUT replacement
    /// state or statistics (the read-only decode `peek`, `train` and
    /// `train_on_evict` share).
    fn peek_target(&self, stored: StoredTarget) -> Option<LineAddr> {
        match (stored, self.cfg.format) {
            (StoredTarget::Direct(t), _) => Some(LineAddr::new(t)),
            (StoredTarget::Lut { idx, offset }, TargetFormat::Lut { offset_bits, .. }) => self
                .lut
                .as_ref()
                .and_then(|l| l.upper_at(idx))
                .map(|u| LineAddr::new((u << offset_bits) | offset as u64)),
            (StoredTarget::Lut { .. }, _) => unreachable!("LUT target under non-LUT format"),
        }
    }

    fn decode_target(&mut self, stored: StoredTarget) -> Option<LineAddr> {
        match (stored, self.cfg.format) {
            (StoredTarget::Direct(t), _) => Some(LineAddr::new(t)),
            (StoredTarget::Lut { idx, offset }, TargetFormat::Lut { offset_bits, .. }) => {
                let lut = self.lut.as_mut().expect("LUT format has a LUT");
                let upper = lut.upper_at(idx)?;
                lut.touch(idx);
                // If the slot was re-used since training, this silently
                // reconstructs the *wrong* region — Fig. 19's inaccuracy.
                Some(LineAddr::new((upper << offset_bits) | offset as u64))
            }
            (StoredTarget::Lut { .. }, _) => unreachable!("LUT target under non-LUT format"),
        }
    }

    /// Looks up the prefetch target recorded for `line`, counting one
    /// partition access.
    pub fn lookup(&mut self, line: LineAddr) -> Option<MarkovHit> {
        let line_idx = self.line_index(line)?;
        self.stats.reads += 1;
        let tag = self.tag_of(line);
        let way = self.entries.find(line_idx, tag)?;
        let meta = AccessMeta::prefetch(line, None);
        self.repl.on_hit(line_idx, way, &meta);
        let slot = *self.entries.payload(line_idx, way);
        let target = self.decode_target(slot.target)?;
        Some(MarkovHit {
            target,
            confidence: slot.conf,
        })
    }

    /// Peeks without counting an access or updating replacement (used by
    /// the Metadata Reuse Buffer's update-suppression check).
    pub fn peek(&self, line: LineAddr) -> Option<(LineAddr, bool)> {
        let line_idx = self.line_index(line)?;
        let tag = self.tag_of(line);
        let way = self.entries.find(line_idx, tag)?;
        let slot = self.entries.payload(line_idx, way);
        Some((self.peek_target(slot.target)?, slot.conf))
    }

    /// Trains the pair `(prev -> next)`, counting one partition access.
    ///
    /// Confidence-bit protocol (Section 3.4, following the public
    /// implementation): retraining with the same target sets confidence;
    /// a different target clears a set bit first and only replaces once
    /// the bit is clear.
    pub fn train(&mut self, prev: LineAddr, next: LineAddr, pc: Pc) {
        let Some(line_idx) = self.line_index(prev) else {
            return;
        };
        self.stats.writes += 1;
        let tag = self.tag_of(prev);
        let meta = AccessMeta::demand(prev, Some(pc));

        // Existing entry?
        if let Some(way) = self.entries.find(line_idx, tag) {
            let slot = *self.entries.payload(line_idx, way);
            let current = self.peek_target(slot.target);
            let same = current == Some(self.canonical_target(next));
            let updated = if same {
                EntrySlot { conf: true, ..slot }
            } else if slot.conf {
                EntrySlot {
                    conf: false,
                    ..slot
                }
            } else {
                EntrySlot {
                    conf: slot.conf,
                    target: self.encode_target(next),
                }
            };
            *self.entries.payload_mut(line_idx, way) = updated;
            self.repl.on_hit(line_idx, way, &meta);
            return;
        }

        // Allocate: empty slot first, else policy victim.
        let epl = self.cfg.format.entries_per_line();
        let way = self.entries.first_free(line_idx).unwrap_or_else(|| {
            let v = self.repl.victim(line_idx, all_ways(epl));
            self.stats.entry_evictions += 1;
            if self.entries.is_valid(line_idx, v) {
                let old_tag = self.entries.tag(line_idx, v);
                self.repl
                    .on_evict(line_idx, v, LineAddr::new(old_tag as u64));
            }
            v
        });
        let target = self.encode_target(next);
        self.entries.insert(
            line_idx,
            way,
            tag,
            EntrySlot {
                conf: false,
                target,
            },
        );
        self.repl.on_fill(line_idx, way, &meta);
    }

    /// Eviction-time entry update: the line prefetched from `prev`'s
    /// entry just left the L2, and `used` says whether a demand touched
    /// it first.
    ///
    /// The update extends the confidence protocol with ground truth
    /// from the dying line instead of a conflicting retrain: a *used*
    /// death sets the confidence bit (the pair demonstrably produced a
    /// useful prefetch), a *wasted* death clears a set bit, and a
    /// wasted death of an already-unconfident pair drops the entry
    /// outright, freeing the slot for a live pattern. The entry is
    /// only touched while it still stores exactly the target that was
    /// prefetched — if training moved it on since the prefetch issued,
    /// the feedback is stale and the entry is left alone.
    ///
    /// Counts one partition write when an entry is updated. Returns
    /// whether an update happened.
    pub fn train_on_evict(&mut self, prev: LineAddr, target: LineAddr, used: bool) -> bool {
        let Some(line_idx) = self.line_index(prev) else {
            return false;
        };
        let tag = self.tag_of(prev);
        let Some(way) = self.entries.find(line_idx, tag) else {
            return false;
        };
        let slot = *self.entries.payload(line_idx, way);
        let canonical = self.canonical_target(target);
        if self.peek_target(slot.target) != Some(canonical) {
            // Retrained since the prefetch issued: stale feedback.
            return false;
        }
        self.stats.writes += 1;
        if used {
            self.entries.payload_mut(line_idx, way).conf = true;
        } else if slot.conf {
            self.entries.payload_mut(line_idx, way).conf = false;
        } else {
            self.entries.take(line_idx, way);
            self.stats.entry_evictions += 1;
            self.repl.on_invalidate(line_idx, way);
        }
        true
    }

    /// What `target` will round-trip to under this format (for the
    /// same-target comparison): direct formats truncate to 31 bits.
    fn canonical_target(&self, target: LineAddr) -> LineAddr {
        match self.cfg.format {
            TargetFormat::Direct42 => LineAddr::new(target.index() & ((1 << 31) - 1)),
            _ => target,
        }
    }

    /// Resizes the partition, re-indexing surviving entries under the
    /// new sub-set function and dropping overflow. Returns `true` if the
    /// size changed.
    pub fn set_ways(&mut self, ways: usize) -> bool {
        let ways = ways.min(self.cfg.max_ways);
        if ways == self.ways {
            return false;
        }
        self.stats.resizes += 1;
        let old = self.entries.drain_entries();
        self.ways = ways;
        if ways == 0 {
            self.stats.reindex_drops += old.len() as u64;
            return true;
        }
        for (line_idx, _way, tag, slot) in old {
            let set = line_idx / self.cfg.max_ways;
            let way = (tag as usize) % ways;
            let new_line = set * self.cfg.max_ways + way;
            match self.entries.first_free(new_line) {
                Some(free) => self.entries.insert(new_line, free, tag, slot),
                None => self.stats.reindex_drops += 1,
            }
        }
        true
    }

    /// Number of valid entries currently stored.
    pub fn occupancy(&self) -> usize {
        self.entries.occupancy()
    }
}

impl Snapshot for MarkovTableStats {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.u64(self.reads);
        w.u64(self.writes);
        w.u64(self.entry_evictions);
        w.u64(self.resizes);
        w.u64(self.reindex_drops);
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.reads = r.u64()?;
        self.writes = r.u64()?;
        self.entry_evictions = r.u64()?;
        self.resizes = r.u64()?;
        self.reindex_drops = r.u64()?;
        Ok(())
    }
}

impl<P: ReplacementPolicy + Snapshot> Snapshot for MarkovTable<P> {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.usize(self.ways);
        self.entries.save(w)?;
        self.repl.save(w)?;
        match &self.lut {
            Some(lut) => {
                w.bool(true);
                lut.save(w)?;
            }
            None => w.bool(false),
        }
        self.stats.save(w)
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        let ways = r.usize()?;
        snap_check(ways <= self.cfg.max_ways, "Markov ways above maximum")?;
        self.ways = ways;
        self.entries.restore(r)?;
        self.repl.restore(r)?;
        let has_lut = r.bool()?;
        snap_check(has_lut == self.lut.is_some(), "LUT presence mismatch")?;
        if let Some(lut) = &mut self.lut {
            lut.restore(r)?;
        }
        self.stats.restore(r)
    }
}

impl<P: ReplacementPolicy> triangel_obs::Probe for MarkovTable<P> {
    fn probe(&self, out: &mut triangel_obs::ProbeSet) {
        out.record("ways", self.ways() as u64);
        out.record("capacity_entries", self.capacity_entries() as u64);
        out.record("occupancy", self.occupancy() as u64);
        triangel_obs::Probe::probe(&self.stats(), out);
    }
}

/// Every shipped Markov-table/policy combination as one concrete value.
///
/// The prefetchers select their replacement policy at runtime (Triage
/// defaults to HawkEye, Triangel to SRRIP, and the Section 3.3
/// replacement sweep tries every policy), so they store the table as
/// this enum: one branch-predictable match at each table operation's
/// entry, then a fully monomorphized probe/train body — instead of a
/// virtual call per replacement-policy touch inside the entry scan.
#[derive(Debug)]
pub enum MarkovTableImpl {
    /// Least recently used.
    Lru(MarkovTable<Lru>),
    /// First in, first out.
    Fifo(MarkovTable<Fifo>),
    /// Uniform random.
    Random(MarkovTable<Random>),
    /// Tree pseudo-LRU.
    TreePlru(MarkovTable<TreePlru>),
    /// RRIP, static or bimodal (Triangel's table).
    Rrip(TriangelMarkov),
    /// HawkEye (Triage's table).
    Hawkeye(TriageMarkov),
}

/// Forwards a method body to the concrete table in each variant.
macro_rules! each_table {
    ($self:expr, $t:ident => $body:expr) => {
        match $self {
            MarkovTableImpl::Lru($t) => $body,
            MarkovTableImpl::Fifo($t) => $body,
            MarkovTableImpl::Random($t) => $body,
            MarkovTableImpl::TreePlru($t) => $body,
            MarkovTableImpl::Rrip($t) => $body,
            MarkovTableImpl::Hawkeye($t) => $body,
        }
    };
}

impl MarkovTableImpl {
    /// Creates an empty table with a zero-way (inactive) partition,
    /// instantiating the policy selected by `cfg.replacement` with the
    /// same construction constants the caches use
    /// ([`PolicyKind::build_impl`]): the fixed `0xC0FFEE` seed for
    /// Random, static/bimodal mode for SRRIP/BRRIP, default HawkEye
    /// configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.sets` is not a power of two or `cfg.max_ways` is
    /// zero.
    pub fn new(cfg: MarkovTableConfig) -> Self {
        let lines = cfg.sets * cfg.max_ways;
        let epl = cfg.format.entries_per_line();
        match cfg.replacement {
            PolicyKind::Lru => {
                MarkovTableImpl::Lru(MarkovTable::with_policy(cfg, Lru::new(lines, epl)))
            }
            PolicyKind::Fifo => {
                MarkovTableImpl::Fifo(MarkovTable::with_policy(cfg, Fifo::new(lines, epl)))
            }
            PolicyKind::Random => MarkovTableImpl::Random(MarkovTable::with_policy(
                cfg,
                Random::new(lines, epl, 0xC0FFEE),
            )),
            PolicyKind::TreePlru => {
                MarkovTableImpl::TreePlru(MarkovTable::with_policy(cfg, TreePlru::new(lines, epl)))
            }
            PolicyKind::Srrip => MarkovTableImpl::Rrip(MarkovTable::with_policy(
                cfg,
                Rrip::new(lines, epl, RripMode::Static),
            )),
            PolicyKind::Brrip => MarkovTableImpl::Rrip(MarkovTable::with_policy(
                cfg,
                Rrip::new(lines, epl, RripMode::Bimodal),
            )),
            PolicyKind::Hawkeye => MarkovTableImpl::Hawkeye(MarkovTable::with_policy(
                cfg,
                HawkEye::new(lines, epl, HawkEyeConfig::default()),
            )),
        }
    }

    /// Returns the configuration.
    pub fn config(&self) -> &MarkovTableConfig {
        each_table!(self, t => t.config())
    }

    /// Current partition ways.
    pub fn ways(&self) -> usize {
        each_table!(self, t => t.ways())
    }

    /// Current entry capacity.
    pub fn capacity_entries(&self) -> usize {
        each_table!(self, t => t.capacity_entries())
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> MarkovTableStats {
        each_table!(self, t => t.stats())
    }

    /// Access to the lookup table (for diagnostics), if the format has
    /// one.
    pub fn lut(&self) -> Option<&LookupTable> {
        each_table!(self, t => t.lut())
    }

    /// Looks up the prefetch target recorded for `line` (see
    /// [`MarkovTable::lookup`]).
    #[inline]
    pub fn lookup(&mut self, line: LineAddr) -> Option<MarkovHit> {
        each_table!(self, t => t.lookup(line))
    }

    /// Peeks without counting an access or updating replacement (see
    /// [`MarkovTable::peek`]).
    #[inline]
    pub fn peek(&self, line: LineAddr) -> Option<(LineAddr, bool)> {
        each_table!(self, t => t.peek(line))
    }

    /// Trains the pair `(prev -> next)` (see [`MarkovTable::train`]).
    #[inline]
    pub fn train(&mut self, prev: LineAddr, next: LineAddr, pc: Pc) {
        each_table!(self, t => t.train(prev, next, pc))
    }

    /// Eviction-time entry update (see [`MarkovTable::train_on_evict`]).
    #[inline]
    pub fn train_on_evict(&mut self, prev: LineAddr, target: LineAddr, used: bool) -> bool {
        each_table!(self, t => t.train_on_evict(prev, target, used))
    }

    /// Resizes the partition (see [`MarkovTable::set_ways`]).
    pub fn set_ways(&mut self, ways: usize) -> bool {
        each_table!(self, t => t.set_ways(ways))
    }

    /// Number of valid entries currently stored.
    pub fn occupancy(&self) -> usize {
        each_table!(self, t => t.occupancy())
    }

    /// The snapshot discriminant for this policy variant.
    fn snap_tag(&self) -> u8 {
        match self {
            MarkovTableImpl::Lru(_) => 0,
            MarkovTableImpl::Fifo(_) => 1,
            MarkovTableImpl::Random(_) => 2,
            MarkovTableImpl::TreePlru(_) => 3,
            MarkovTableImpl::Rrip(_) => 4,
            MarkovTableImpl::Hawkeye(_) => 5,
        }
    }
}

impl Snapshot for MarkovTableImpl {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.u8(self.snap_tag());
        each_table!(self, t => t.save(w))
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        let tag = r.u8()?;
        snap_check(tag == self.snap_tag(), "Markov-table policy mismatch")?;
        each_table!(self, t => t.restore(r))
    }
}

impl triangel_obs::Probe for MarkovTableImpl {
    fn probe(&self, out: &mut triangel_obs::ProbeSet) {
        each_table!(self, t => triangel_obs::Probe::probe(t, out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(format: TargetFormat) -> MarkovTableConfig {
        MarkovTableConfig {
            sets: 64,
            max_ways: 4,
            format,
            tag_bits: 10,
            replacement: PolicyKind::Lru,
        }
    }

    fn table(format: TargetFormat) -> MarkovTableImpl {
        let mut t = MarkovTableImpl::new(cfg(format));
        t.set_ways(4);
        t
    }

    #[test]
    fn train_then_lookup_roundtrip_direct() {
        let mut t = table(TargetFormat::Direct42);
        t.train(LineAddr::new(100), LineAddr::new(555), Pc::new(1));
        let hit = t.lookup(LineAddr::new(100)).unwrap();
        assert_eq!(hit.target, LineAddr::new(555));
        assert!(!hit.confidence);
    }

    #[test]
    fn train_then_lookup_roundtrip_lut() {
        let mut t = table(TargetFormat::triage_default());
        t.train(LineAddr::new(100), LineAddr::new(555), Pc::new(1));
        assert_eq!(
            t.lookup(LineAddr::new(100)).unwrap().target,
            LineAddr::new(555)
        );
    }

    #[test]
    fn confidence_protocol() {
        let mut t = table(TargetFormat::Direct42);
        let x = LineAddr::new(7);
        let (y, z) = (LineAddr::new(70), LineAddr::new(700));
        t.train(x, y, Pc::new(1));
        assert!(!t.lookup(x).unwrap().confidence);
        t.train(x, y, Pc::new(1)); // same target -> confident
        assert!(t.lookup(x).unwrap().confidence);
        t.train(x, z, Pc::new(1)); // different: clears bit, keeps y
        let h = t.lookup(x).unwrap();
        assert_eq!(h.target, y);
        assert!(!h.confidence);
        t.train(x, z, Pc::new(1)); // now replaces
        assert_eq!(t.lookup(x).unwrap().target, z);
    }

    #[test]
    fn inactive_partition_stores_nothing() {
        let mut t = MarkovTableImpl::new(cfg(TargetFormat::Direct42));
        t.train(LineAddr::new(1), LineAddr::new(2), Pc::new(1));
        assert!(t.lookup(LineAddr::new(1)).is_none());
        assert_eq!(t.stats().writes, 0);
    }

    #[test]
    fn lut_eviction_redirects_target() {
        // Fill the LUT set that upper(555) maps to until its slot is
        // re-used; the old pair must now reconstruct a different target.
        let mut t = table(TargetFormat::triage_default());
        let x = LineAddr::new(100);
        let y = LineAddr::new((5 << 11) | 123); // upper 5, offset 123
        t.train(x, y, Pc::new(1));
        // 16 new uppers in the same LUT set (uppers ≡ 5 mod 64).
        for k in 1..=16u64 {
            let upper = 5 + 64 * k;
            let prev = LineAddr::new(200 + k);
            let tgt = LineAddr::new((upper << 11) | 9);
            t.train(prev, tgt, Pc::new(2));
        }
        let h = t.lookup(x).unwrap();
        assert_ne!(h.target, y, "stale LUT index must reconstruct wrongly");
        // Offset bits survive; upper bits are someone else's.
        assert_eq!(h.target.index() & 0x7FF, 123);
    }

    #[test]
    fn resize_reindexes_entries() {
        let mut t = table(TargetFormat::Direct42);
        for k in 0..200u64 {
            t.train(LineAddr::new(k * 3), LineAddr::new(k * 3 + 1), Pc::new(1));
        }
        let before = t.occupancy();
        assert!(before > 100);
        t.set_ways(2);
        // Entries survive (modulo overflow drops) and remain findable.
        let mut found = 0;
        for k in 0..200u64 {
            if t.lookup(LineAddr::new(k * 3)).is_some() {
                found += 1;
            }
        }
        assert!(found > 50, "only {found} found after resize");
        assert!(t.stats().resizes >= 2); // initial activate + shrink
    }

    #[test]
    fn shrink_to_zero_drops_everything() {
        let mut t = table(TargetFormat::Direct42);
        t.train(LineAddr::new(5), LineAddr::new(6), Pc::new(1));
        t.set_ways(0);
        assert_eq!(t.occupancy(), 0);
        assert!(t.lookup(LineAddr::new(5)).is_none());
    }

    #[test]
    fn capacity_tracks_ways() {
        let mut t = table(TargetFormat::Direct42);
        assert_eq!(t.capacity_entries(), 64 * 4 * 12);
        t.set_ways(2);
        assert_eq!(t.capacity_entries(), 64 * 2 * 12);
    }

    #[test]
    fn eviction_under_pressure() {
        let mut t = table(TargetFormat::Direct42);
        // Hammer one line: same set (addr % 64), tags mapping to one way.
        let mut inserted = 0u64;
        for k in 0..2000u64 {
            let prev = LineAddr::new(k * 64); // set 0 for all
            t.train(prev, LineAddr::new(1), Pc::new(1));
            inserted += 1;
        }
        assert!(inserted > 0);
        assert!(t.stats().entry_evictions > 0);
        // Occupancy bounded by capacity of set 0 across its 4 ways.
        assert!(t.occupancy() <= 4 * 12);
    }

    #[test]
    fn train_on_evict_reinforces_used_deaths() {
        let mut t = table(TargetFormat::Direct42);
        let (x, y) = (LineAddr::new(7), LineAddr::new(70));
        t.train(x, y, Pc::new(1));
        assert!(!t.lookup(x).unwrap().confidence);
        assert!(t.train_on_evict(x, y, true));
        assert!(
            t.lookup(x).unwrap().confidence,
            "used death sets confidence"
        );
    }

    #[test]
    fn train_on_evict_weakens_then_drops_wasted_deaths() {
        let mut t = table(TargetFormat::Direct42);
        let (x, y) = (LineAddr::new(7), LineAddr::new(70));
        t.train(x, y, Pc::new(1));
        t.train(x, y, Pc::new(1)); // confident
        assert!(t.train_on_evict(x, y, false));
        let h = t.lookup(x).unwrap();
        assert_eq!(h.target, y, "first wasted death only clears the bit");
        assert!(!h.confidence);
        assert!(t.train_on_evict(x, y, false));
        assert!(
            t.lookup(x).is_none(),
            "second wasted death drops the discredited entry"
        );
        assert!(!t.train_on_evict(x, y, false), "nothing left to update");
    }

    #[test]
    fn train_on_evict_ignores_stale_feedback() {
        let mut t = table(TargetFormat::Direct42);
        let (x, y, z) = (LineAddr::new(7), LineAddr::new(70), LineAddr::new(700));
        t.train(x, y, Pc::new(1));
        t.train(x, z, Pc::new(1)); // entry now holds y unconfident... retrain moved on
        t.train(x, z, Pc::new(1)); // replaces with z
        assert!(
            !t.train_on_evict(x, y, false),
            "feedback about y must not touch the entry now holding z"
        );
        assert_eq!(t.lookup(x).unwrap().target, z);
    }

    #[test]
    fn train_on_evict_counts_partition_writes() {
        let mut t = table(TargetFormat::Direct42);
        let (x, y) = (LineAddr::new(7), LineAddr::new(70));
        t.train(x, y, Pc::new(1));
        let before = t.stats().writes;
        assert!(t.train_on_evict(x, y, true));
        assert_eq!(t.stats().writes, before + 1);
        // Inactive partition: no-op.
        let mut empty = MarkovTableImpl::new(cfg(TargetFormat::Direct42));
        assert!(!empty.train_on_evict(x, y, true));
        assert_eq!(empty.stats().writes, 0);
    }

    #[test]
    fn aliasing_same_set_and_tag_is_possible() {
        // Construct two addresses with identical set and tag hash: the
        // 10-bit hash cannot tell them apart, so the second trains over
        // the first — the collision behaviour fn. 3 discusses. Uses the
        // generic table directly so the private tag hash is reachable.
        let c = cfg(TargetFormat::Direct42);
        let lines = c.sets * c.max_ways;
        let epl = c.format.entries_per_line();
        let mut t = MarkovTable::with_policy(c, Lru::new(lines, epl));
        t.set_ways(4);
        let a = LineAddr::new(64); // set 0, upper 1
        let tag_a = t.tag_of(a);
        let mut b = None;
        for k in 2..10_000u64 {
            let cand = LineAddr::new(k * 64);
            if cand != a && t.tag_of(cand) == tag_a {
                b = Some(cand);
                break;
            }
        }
        let b = b.expect("collision exists");
        t.train(a, LineAddr::new(111), Pc::new(1));
        t.train(b, LineAddr::new(222), Pc::new(1));
        t.train(b, LineAddr::new(222), Pc::new(1));
        // `a` now sees b's target: indistinguishable alias.
        assert_eq!(t.lookup(a).unwrap().target, LineAddr::new(222));
    }

    #[test]
    fn policy_aliases_match_build_constants() {
        // The enum constructor must select the variant the config names.
        let mut c = cfg(TargetFormat::Direct42);
        for (kind, tag) in [
            (PolicyKind::Lru, 0u8),
            (PolicyKind::Fifo, 1),
            (PolicyKind::Random, 2),
            (PolicyKind::TreePlru, 3),
            (PolicyKind::Srrip, 4),
            (PolicyKind::Brrip, 4),
            (PolicyKind::Hawkeye, 5),
        ] {
            c.replacement = kind;
            assert_eq!(MarkovTableImpl::new(c).snap_tag(), tag, "{kind:?}");
        }
    }

    #[test]
    fn snapshot_roundtrip_restores_behaviour() {
        let mut t = table(TargetFormat::triage_default());
        for k in 0..300u64 {
            t.train(LineAddr::new(k * 5), LineAddr::new(k * 5 + 2), Pc::new(k));
        }
        let mut w = SnapWriter::new();
        t.save(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut u = MarkovTableImpl::new(cfg(TargetFormat::triage_default()));
        let mut r = SnapReader::new(&bytes);
        u.restore(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(t.occupancy(), u.occupancy());
        assert_eq!(t.ways(), u.ways());
        assert_eq!(t.stats(), u.stats());
        for k in 0..300u64 {
            assert_eq!(t.peek(LineAddr::new(k * 5)), u.peek(LineAddr::new(k * 5)));
        }
    }
}
