//! Reproduces Fig. 20: the ablation study (Section 6.6).
//!
//! Starting from Triage Degree-4, each column enables one more Triangel
//! mechanism, in the paper's order: +Lookahead-2, +Triangel Metadata,
//! +BasePatternConf, +Second-Chance, +Metadata Reuse Buffer, +Set Duel,
//! +ReuseConf, +HighPatternConf. Both panels of the figure are printed:
//! (a) speedup, (b) normalized DRAM traffic.
//!
//! Declarative definition: `triangel_bench::figures` registry entry
//! `"fig20"`, executed by the `triangel-harness` scheduler
//! (`--jobs N` controls worker threads; results are identical for any
//! value).

fn main() {
    triangel_bench::figures::run_main("fig20");
}
