//! Reproduces Fig. 17: slowdown and DRAM traffic on Graph500 search,
//! the paper's adversarial workload (Section 6.4).
//!
//! Neither input has exploitable temporal correlation: `s16 e10` fits
//! the Markov range but repeats too little; `s21 e10`'s reuse distances
//! exceed any on-chip capacity. Temporal prefetchers should ideally do
//! nothing; the paper shows the Triage variants slowing the system
//! dramatically while Triangel's classifiers largely switch off.

use std::sync::Arc;

use triangel_bench::SweepParams;
use triangel_sim::report::FigureTable;
use triangel_sim::{Comparison, Experiment, PrefetcherChoice};
use triangel_workloads::graph500::{BfsTrace, Csr, Graph500Config};

fn main() {
    let p = SweepParams::from_env();
    let configs = [
        PrefetcherChoice::Triage,
        PrefetcherChoice::TriageDeg4,
        PrefetcherChoice::Triangel,
        PrefetcherChoice::TriangelBloom,
    ];
    let quick = std::env::var("TRIANGEL_QUICK").is_ok_and(|v| v == "1");
    let inputs: Vec<Graph500Config> = if quick {
        vec![Graph500Config::tiny()]
    } else {
        vec![Graph500Config::s16_e10(), Graph500Config::s21_e10()]
    };

    let labels: Vec<String> = configs.iter().map(|c| c.label()).collect();
    let mut slowdown = FigureTable::new(
        "Fig. 17 (left): Graph500 search slowdown",
        "baseline IPC / configuration IPC (higher = worse)",
        labels.clone(),
    )
    .without_geomean();
    let mut traffic = FigureTable::new(
        "Fig. 17 (right): Graph500 DRAM traffic",
        "DRAM line reads relative to baseline",
        labels,
    )
    .without_geomean();

    for input in inputs {
        eprintln!("[fig17] generating graph {}", input.label());
        // Build the graph once; every configuration's BFS shares it.
        let trace = input.build_trace();
        let graph: Arc<Csr> = trace.graph_handle();
        eprintln!(
            "[fig17] {}: {} vertices, {} edges, {:.1} MiB",
            input.label(),
            graph.n_vertices(),
            graph.n_entries() / 2,
            graph.footprint_bytes() as f64 / (1024.0 * 1024.0)
        );
        let fresh = |seed: u64| BfsTrace::new(input.label(), Arc::clone(&graph), seed);

        eprintln!("[fig17] {} / Baseline", input.label());
        let base = Experiment::new(fresh(p.seed))
            .warmup(p.warmup)
            .accesses(p.accesses)
            .sizing_window(p.sizing_window)
            .run();
        let mut slow_row = Vec::new();
        let mut traffic_row = Vec::new();
        for cfg in configs {
            eprintln!("[fig17] {} / {}", input.label(), cfg.label());
            let run = Experiment::new(fresh(p.seed))
                .warmup(p.warmup)
                .accesses(p.accesses)
                .sizing_window(p.sizing_window)
                .prefetcher(cfg)
                .run();
            let c = Comparison::new(&base, &run);
            slow_row.push(c.slowdown());
            traffic_row.push(c.dram_traffic);
        }
        slowdown.push_row(input.label(), slow_row);
        traffic.push_row(input.label(), traffic_row);
    }
    slowdown.print();
    traffic.print();
}
