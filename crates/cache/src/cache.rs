//! The set-associative cache model.

use crate::config::CacheConfig;
use crate::replacement::{all_ways, AccessMeta, ReplacementImpl, ReplacementPolicy, WayMask};
use triangel_types::{Cycle, FillSource, LineAddr, LineMeta, Pc};

/// One cache line's bookkeeping state, including the simulation
/// metadata word ([`LineMeta`]) that used to live in `MemorySystem`
/// side tables: who filled the line, when the fill's data arrives, and
/// whether a demand has touched it since.
#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: LineAddr,
    valid: bool,
    /// Prefetch tag bit: set when the line was filled by a prefetch and
    /// has not yet been demanded. The first demand hit to such a line is
    /// a "tagged prefetch hit" and trains temporal prefetchers exactly as
    /// a miss would (Section 2 of the paper).
    prefetch_tagged: bool,
    /// Who filled the line.
    source: FillSource,
    /// Cycle the fill's data arrives (late-prefetch timing).
    ready_at: Cycle,
    /// Whether the line has been demand-accessed since fill; used to
    /// classify evictions for accuracy accounting.
    used: bool,
    /// Ordinal of the fill that installed the line (the cache's fill
    /// clock at install time; see [`Cache`]'s `fill_clock`).
    fill_seq: u64,
    fill_pc: Option<Pc>,
}

impl Line {
    fn meta(&self) -> LineMeta {
        LineMeta {
            source: self.source,
            ready_at: self.ready_at,
            used: self.used,
            fill_seq: self.fill_seq,
        }
    }

    fn to_evicted(self, evict_seq: u64) -> EvictedLine {
        EvictedLine {
            line: self.tag,
            was_unused_prefetch: self.prefetch_tagged,
            was_used: self.used,
            source: self.source,
            ready_at: self.ready_at,
            fill_seq: self.fill_seq,
            evict_seq,
            fill_pc: self.fill_pc,
        }
    }
}

/// Result of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// The line was present.
    pub hit: bool,
    /// The line was present, was filled by a prefetch, and this was its
    /// first demand use — a *tagged prefetch hit*.
    pub prefetch_hit: bool,
    /// The hit line's metadata word (as of after this access updated
    /// it); `None` on a miss.
    pub meta: Option<LineMeta>,
}

/// Describes a line displaced by a fill or invalidation, carrying its
/// final metadata word so used/wasted prefetch attribution happens
/// exactly where the line dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// The displaced line address.
    pub line: LineAddr,
    /// The line was prefetched and never demand-used (a wasted prefetch).
    pub was_unused_prefetch: bool,
    /// The line was demand-used at least once while resident.
    pub was_used: bool,
    /// Who filled the line.
    pub source: FillSource,
    /// Cycle the line's fill completed (from its metadata word).
    pub ready_at: Cycle,
    /// Fill-clock ordinal of the fill that installed the dying line.
    pub fill_seq: u64,
    /// Fill-clock reading at the eviction itself. For a conflict
    /// eviction this is the incoming fill's own ordinal, so
    /// `fill_seq < evict_seq` holds strictly; invalidations and
    /// way-mask flushes read the clock without advancing it, so there
    /// `fill_seq <= evict_seq`.
    pub evict_seq: u64,
    /// PC recorded at fill time, if any.
    pub fill_pc: Option<Pc>,
}

impl EvictedLine {
    /// The dying line's metadata word.
    pub fn meta(&self) -> LineMeta {
        LineMeta {
            source: self.source,
            ready_at: self.ready_at,
            used: self.was_used,
            fill_seq: self.fill_seq,
        }
    }
}

/// Result of a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillOutcome {
    /// Whatever line had to be displaced, if the fill replaced one.
    pub evicted: Option<EvictedLine>,
    /// The set the line was installed into.
    pub set: usize,
    /// The way the line was installed into.
    pub way: usize,
}

/// Running event counts for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand lookups that hit.
    pub demand_hits: u64,
    /// Demand lookups that missed.
    pub demand_misses: u64,
    /// Tagged prefetch hits (subset of `demand_hits`).
    pub prefetch_hits: u64,
    /// Prefetch lookups (to decide whether a prefetch is redundant).
    pub prefetch_lookups: u64,
    /// Lines filled.
    pub fills: u64,
    /// Valid lines displaced by fills.
    pub evictions: u64,
}

impl CacheStats {
    /// Total demand accesses.
    pub fn demand_accesses(&self) -> u64 {
        self.demand_hits + self.demand_misses
    }

    /// Demand hit rate in `[0, 1]`; zero when no accesses were recorded.
    pub fn hit_rate(&self) -> f64 {
        let total = self.demand_accesses();
        if total == 0 {
            0.0
        } else {
            self.demand_hits as f64 / total as f64
        }
    }
}

impl triangel_obs::Probe for CacheStats {
    fn probe(&self, out: &mut triangel_obs::ProbeSet) {
        out.record("demand_hits", self.demand_hits);
        out.record("demand_misses", self.demand_misses);
        out.record("prefetch_hits", self.prefetch_hits);
        out.record("prefetch_lookups", self.prefetch_lookups);
        out.record("fills", self.fills);
        out.record("evictions", self.evictions);
    }
}

/// A set-associative cache with pluggable replacement, prefetch tag bits
/// and way masking (for the L3 Markov partition).
///
/// # Examples
///
/// ```
/// use triangel_cache::{Cache, CacheConfig};
/// use triangel_cache::replacement::PolicyKind;
/// use triangel_types::LineAddr;
///
/// let mut c = Cache::new(CacheConfig::new("L2", 512 * 1024, 8, PolicyKind::Lru));
/// let line = LineAddr::new(42);
/// assert!(!c.access(line, None, false).hit);
/// c.fill(line, None, true); // prefetch fill
/// let out = c.access(line, None, false);
/// assert!(out.hit && out.prefetch_hit); // first demand use of a prefetch
/// assert!(!c.access(line, None, false).prefetch_hit); // tag consumed
/// ```
#[derive(Debug)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    /// Enum-dispatched so victim selection inlines into the set scan
    /// (no virtual call per access).
    policy: ReplacementImpl,
    way_mask: WayMask,
    stats: CacheStats,
    /// Monotonic fill clock: incremented on every installing fill and
    /// stamped onto the installed line. Deliberately *not* part of
    /// [`CacheStats`] — `reset_stats` must never rewind it, or fill
    /// ordinals from before a measurement reset would compare wrongly
    /// against evictions after it.
    fill_clock: u64,
    /// Geometry cached out of `cfg` — `CacheConfig::sets` divides, and
    /// the hot path indexes on every access.
    ways: usize,
    set_mask: usize,
}

impl Cache {
    /// Builds a cache from its configuration.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        let ways = cfg.ways();
        let policy = cfg.policy().build_impl(sets, ways);
        Cache {
            lines: vec![Line::default(); sets * ways],
            policy,
            way_mask: all_ways(ways),
            cfg,
            stats: CacheStats::default(),
            fill_clock: 0,
            ways,
            set_mask: sets - 1,
        }
    }

    /// Returns the configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Returns accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets accumulated statistics (e.g. after warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Returns the set index a line maps to.
    pub fn set_of(&self, line: LineAddr) -> usize {
        (line.index() as usize) & self.set_mask
    }

    fn slot(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    fn find(&self, line: LineAddr) -> Option<(usize, usize)> {
        let set = self.set_of(line);
        let ways = self.ways;
        let base = set * ways;
        // One contiguous scan of the set — this is the single hottest
        // loop in the simulator (every access walks it at least once).
        self.lines[base..base + ways]
            .iter()
            .position(|l| l.valid && l.tag == line)
            .map(|w| (set, w))
    }

    /// Looks up `line`, updating replacement and prefetch-tag state.
    ///
    /// `is_prefetch` marks lookups made on behalf of the prefetcher (to
    /// filter redundant prefetches); they do not clear prefetch tags and
    /// are not counted as demand traffic.
    pub fn access(&mut self, line: LineAddr, pc: Option<Pc>, is_prefetch: bool) -> AccessOutcome {
        let meta = AccessMeta {
            line,
            pc,
            is_prefetch,
        };
        if is_prefetch {
            self.stats.prefetch_lookups += 1;
            let hit = self.find(line).is_some();
            return AccessOutcome {
                hit,
                prefetch_hit: false,
                meta: None,
            };
        }
        match self.find(line) {
            Some((set, way)) => {
                self.stats.demand_hits += 1;
                let slot = self.slot(set, way);
                let first_use_of_prefetch = self.lines[slot].prefetch_tagged;
                if first_use_of_prefetch {
                    self.stats.prefetch_hits += 1;
                    self.lines[slot].prefetch_tagged = false;
                }
                self.lines[slot].used = true;
                self.policy.on_hit(set, way, &meta);
                AccessOutcome {
                    hit: true,
                    prefetch_hit: first_use_of_prefetch,
                    meta: Some(self.lines[slot].meta()),
                }
            }
            None => {
                self.stats.demand_misses += 1;
                AccessOutcome {
                    hit: false,
                    prefetch_hit: false,
                    meta: None,
                }
            }
        }
    }

    /// Peeks for `line` without updating any state.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.find(line).is_some()
    }

    /// Peeks at `line`'s metadata word without updating any state
    /// (policy- and prefetcher-visible; `None` when not resident).
    pub fn line_meta(&self, line: LineAddr) -> Option<LineMeta> {
        let (set, way) = self.find(line)?;
        Some(self.lines[self.slot(set, way)].meta())
    }

    /// Installs `line`, evicting if necessary (convenience form of
    /// [`Cache::fill_at`]: a prefetch fill is attributed to the stride
    /// prefetcher and tagged, with an immediately-ready timestamp).
    pub fn fill(&mut self, line: LineAddr, pc: Option<Pc>, is_prefetch: bool) -> FillOutcome {
        let source = if is_prefetch {
            FillSource::Stride
        } else {
            FillSource::Demand
        };
        self.fill_at(line, pc, source, is_prefetch, 0)
    }

    /// Installs `line`, evicting if necessary, recording the full
    /// metadata word: who filled it (`source`), whether it gets the
    /// prefetch tag bit (`tagged` — the memory system tags temporal L2
    /// fills and L1/L3 prefetch fills, but treats stride fills into the
    /// L2 as demand-like), and when the fill's data arrives
    /// (`ready_at`).
    ///
    /// Filling a line already present refreshes its metadata instead of
    /// duplicating it: the word is overwritten, and a demand (untagged)
    /// refill clears the prefetch tag while a prefetch refill keeps the
    /// stronger (demand) tag state. A refresh does not advance the fill
    /// clock or restamp `fill_seq` — the line's install ordinal is the
    /// fill that actually brought it in.
    pub fn fill_at(
        &mut self,
        line: LineAddr,
        pc: Option<Pc>,
        source: FillSource,
        tagged: bool,
        ready_at: Cycle,
    ) -> FillOutcome {
        let meta = AccessMeta {
            line,
            pc,
            is_prefetch: source.is_prefetch(),
        };
        if let Some((set, way)) = self.find(line) {
            // Already present (e.g. demand fill racing a prefetch fill):
            // treat as a touch.
            let slot = self.slot(set, way);
            if !tagged {
                self.lines[slot].prefetch_tagged = false;
            }
            self.lines[slot].source = source;
            self.lines[slot].ready_at = ready_at;
            self.policy.on_hit(set, way, &meta);
            return FillOutcome {
                evicted: None,
                set,
                way,
            };
        }

        self.stats.fills += 1;
        self.fill_clock += 1;
        let set = self.set_of(line);
        // Fill an invalid eligible way first.
        let way = (0..self.cfg.ways())
            .filter(|w| self.way_mask & (1 << w) != 0)
            .find(|w| !self.lines[self.slot(set, *w)].valid)
            .unwrap_or_else(|| {
                let w = self.policy.victim(set, self.way_mask);
                debug_assert!(self.way_mask & (1 << w) != 0);
                w
            });

        let slot = self.slot(set, way);
        let evicted = if self.lines[slot].valid {
            self.stats.evictions += 1;
            let old = self.lines[slot];
            self.policy.on_evict(set, way, old.tag);
            Some(old.to_evicted(self.fill_clock))
        } else {
            None
        };

        self.lines[slot] = Line {
            tag: line,
            valid: true,
            prefetch_tagged: tagged,
            source,
            ready_at,
            used: !tagged,
            fill_seq: self.fill_clock,
            fill_pc: pc,
        };
        self.policy.on_fill(set, way, &meta);
        FillOutcome { evicted, set, way }
    }

    /// Invalidates `line` if present, returning its eviction record.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<EvictedLine> {
        let (set, way) = self.find(line)?;
        Some(self.invalidate_slot(set, way))
    }

    fn invalidate_slot(&mut self, set: usize, way: usize) -> EvictedLine {
        let slot = self.slot(set, way);
        let old = self.lines[slot];
        self.lines[slot].valid = false;
        self.policy.on_invalidate(set, way);
        old.to_evicted(self.fill_clock)
    }

    /// Restricts fills and victims to the ways in `mask`, invalidating
    /// any resident lines outside it. Returns the displaced lines.
    ///
    /// This is how the L3 hands ways over to the Markov partition
    /// (Section 3.2): shrinking the data mask flushes the surrendered
    /// ways.
    ///
    /// # Panics
    ///
    /// Panics if `mask` selects no way.
    pub fn set_way_mask(&mut self, mask: WayMask) -> Vec<EvictedLine> {
        assert!(
            mask & all_ways(self.cfg.ways()) != 0,
            "way mask must keep at least one way"
        );
        self.way_mask = mask;
        let mut flushed = Vec::new();
        for set in 0..self.cfg.sets() {
            for way in 0..self.cfg.ways() {
                if mask & (1 << way) == 0 && self.lines[self.slot(set, way)].valid {
                    flushed.push(self.invalidate_slot(set, way));
                }
            }
        }
        flushed
    }

    /// Returns the current way mask.
    pub fn way_mask(&self) -> WayMask {
        self.way_mask
    }

    /// Returns the number of valid lines currently resident.
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    /// Iterates over the valid resident lines (for diagnostics/tests).
    pub fn resident_lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.lines.iter().filter(|l| l.valid).map(|l| l.tag)
    }
}

use triangel_types::snap::{SnapError, SnapReader, SnapWriter, Snapshot};

impl Snapshot for CacheStats {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.u64(self.demand_hits);
        w.u64(self.demand_misses);
        w.u64(self.prefetch_hits);
        w.u64(self.prefetch_lookups);
        w.u64(self.fills);
        w.u64(self.evictions);
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.demand_hits = r.u64()?;
        self.demand_misses = r.u64()?;
        self.prefetch_hits = r.u64()?;
        self.prefetch_lookups = r.u64()?;
        self.fills = r.u64()?;
        self.evictions = r.u64()?;
        Ok(())
    }
}

impl Snapshot for Line {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.u64(self.tag.index());
        w.bool(self.valid);
        w.bool(self.prefetch_tagged);
        w.u8(self.source.snap_tag());
        w.u64(self.ready_at);
        w.bool(self.used);
        w.u64(self.fill_seq);
        w.opt_u64(self.fill_pc.map(|p| p.get()));
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.tag = LineAddr::new(r.u64()?);
        self.valid = r.bool()?;
        self.prefetch_tagged = r.bool()?;
        self.source = FillSource::from_snap_tag(r.u8()?)?;
        self.ready_at = r.u64()?;
        self.used = r.bool()?;
        self.fill_seq = r.u64()?;
        self.fill_pc = r.opt_u64()?.map(Pc::new);
        Ok(())
    }
}

impl Snapshot for Cache {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.usize(self.lines.len());
        for line in &self.lines {
            line.save(w)?;
        }
        self.policy.save(w)?;
        w.u64(self.way_mask);
        self.stats.save(w)?;
        w.u64(self.fill_clock);
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        r.expect_len(self.lines.len(), "cache lines")?;
        for line in &mut self.lines {
            line.restore(r)?;
        }
        self.policy.restore(r)?;
        self.way_mask = r.u64()?;
        self.stats.restore(r)?;
        self.fill_clock = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement::PolicyKind;

    fn tiny(ways: usize) -> Cache {
        // 4 sets x `ways`.
        Cache::new(CacheConfig::new(
            "t",
            4 * ways as u64 * 64,
            ways,
            PolicyKind::Lru,
        ))
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny(2);
        let l = LineAddr::new(5);
        assert!(!c.access(l, None, false).hit);
        c.fill(l, None, false);
        assert!(c.access(l, None, false).hit);
        assert_eq!(c.stats().demand_hits, 1);
        assert_eq!(c.stats().demand_misses, 1);
    }

    #[test]
    fn prefetch_tag_consumed_once() {
        let mut c = tiny(2);
        let l = LineAddr::new(9);
        c.fill(l, None, true);
        assert!(c.access(l, None, false).prefetch_hit);
        assert!(!c.access(l, None, false).prefetch_hit);
        assert_eq!(c.stats().prefetch_hits, 1);
    }

    #[test]
    fn prefetch_lookup_does_not_consume_tag() {
        let mut c = tiny(2);
        let l = LineAddr::new(9);
        c.fill(l, None, true);
        assert!(c.access(l, None, true).hit);
        assert!(c.access(l, None, false).prefetch_hit);
    }

    #[test]
    fn conflict_eviction_reports_victim() {
        let mut c = tiny(1);
        let a = LineAddr::new(0);
        let b = LineAddr::new(4); // same set (4 sets)
        c.fill(a, None, true);
        let out = c.fill(b, None, false);
        let ev = out.evicted.expect("must evict");
        assert_eq!(ev.line, a);
        assert!(ev.was_unused_prefetch);
        assert!(!ev.was_used);
    }

    #[test]
    fn used_bit_tracked_through_eviction() {
        let mut c = tiny(1);
        let a = LineAddr::new(0);
        let b = LineAddr::new(4);
        c.fill(a, None, true);
        c.access(a, None, false); // consume tag, mark used
        let ev = c.fill(b, None, false).evicted.unwrap();
        assert!(ev.was_used);
        assert!(!ev.was_unused_prefetch);
    }

    #[test]
    fn fill_clock_orders_fills_before_their_evictions() {
        let mut c = tiny(1);
        let a = LineAddr::new(0);
        let b = LineAddr::new(4); // same set
        c.fill(a, None, false);
        let seq_a = c.line_meta(a).unwrap().fill_seq;
        assert_eq!(seq_a, 1, "first fill stamps ordinal 1");
        // A refresh keeps the install ordinal and does not tick the clock.
        c.fill(a, None, false);
        assert_eq!(c.line_meta(a).unwrap().fill_seq, seq_a);
        // A conflict eviction carries the evicting fill's ordinal,
        // strictly after the victim's.
        let ev = c.fill(b, None, false).evicted.unwrap();
        assert_eq!(ev.fill_seq, seq_a);
        assert_eq!(ev.evict_seq, 2);
        assert!(ev.fill_seq < ev.evict_seq);
        assert_eq!(ev.meta().fill_seq, seq_a);
        // An invalidation reads the clock without advancing it.
        let ev = c.invalidate(b).unwrap();
        assert_eq!(ev.fill_seq, 2);
        assert_eq!(ev.evict_seq, 2, "invalidation does not tick the clock");
        // The clock survives a stats reset (it is not a statistic).
        c.fill(a, None, false);
        c.reset_stats();
        let ev = c.fill(b, None, false).evicted.unwrap();
        assert!(ev.fill_seq < ev.evict_seq);
        assert_eq!(ev.evict_seq, 4);
    }

    #[test]
    fn refill_does_not_duplicate() {
        let mut c = tiny(2);
        let l = LineAddr::new(3);
        c.fill(l, None, false);
        c.fill(l, None, false);
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn demand_refill_clears_prefetch_tag() {
        let mut c = tiny(2);
        let l = LineAddr::new(3);
        c.fill(l, None, true);
        c.fill(l, None, false);
        assert!(!c.access(l, None, false).prefetch_hit);
    }

    #[test]
    fn way_mask_restricts_and_flushes() {
        let mut c = tiny(4);
        // Fill all 4 ways of set 0.
        for i in 0..4u64 {
            c.fill(LineAddr::new(i * 4), None, false);
        }
        assert_eq!(c.occupancy(), 4);
        let flushed = c.set_way_mask(0b0011);
        assert_eq!(flushed.len(), 2);
        assert_eq!(c.occupancy(), 2);
        // New fills only land in ways 0..2: capacity of set 0 is now 2.
        for i in 0..8u64 {
            c.fill(LineAddr::new(i * 4), None, false);
        }
        let set0 = (0..4)
            .map(|i| LineAddr::new(i * 4))
            .filter(|l| c.contains(*l))
            .count();
        assert!(set0 <= 2);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn way_mask_cannot_be_empty() {
        let mut c = tiny(2);
        let _ = c.set_way_mask(0);
    }

    #[test]
    fn lru_order_respected() {
        let mut c = tiny(2);
        let a = LineAddr::new(0);
        let b = LineAddr::new(4);
        let d = LineAddr::new(8); // all map to set 0
        c.fill(a, None, false);
        c.fill(b, None, false);
        c.access(a, None, false); // a is MRU
        let ev = c.fill(d, None, false).evicted.unwrap();
        assert_eq!(ev.line, b);
    }

    #[test]
    fn metadata_word_travels_fill_hit_evict() {
        let mut c = tiny(1);
        let a = LineAddr::new(0);
        let b = LineAddr::new(4); // same set
        c.fill_at(a, Some(Pc::new(9)), FillSource::Temporal, true, 777);
        let m = c.line_meta(a).unwrap();
        assert_eq!(m.source, FillSource::Temporal);
        assert_eq!(m.ready_at, 777);
        assert!(!m.used);
        let out = c.access(a, None, false);
        assert!(out.prefetch_hit);
        let m = out.meta.unwrap();
        assert_eq!(m.ready_at, 777, "hit must surface the fill time");
        assert!(m.used, "meta reflects the access that just happened");
        let ev = c
            .fill_at(b, None, FillSource::Demand, false, 0)
            .evicted
            .unwrap();
        assert_eq!(ev.source, FillSource::Temporal, "attribution at death");
        assert!(ev.was_used);
        assert!(!ev.was_unused_prefetch);
    }

    #[test]
    fn untagged_prefetch_fill_is_demand_like_but_attributed() {
        // The memory system fills stride prefetches into the L2
        // untagged; they must not produce tagged prefetch hits, yet the
        // metadata word still records who brought the line in.
        let mut c = tiny(1);
        let a = LineAddr::new(0);
        c.fill_at(a, None, FillSource::Stride, false, 42);
        let out = c.access(a, None, false);
        assert!(out.hit && !out.prefetch_hit);
        assert_eq!(out.meta.unwrap().source, FillSource::Stride);
        assert_eq!(c.stats().prefetch_hits, 0);
    }

    #[test]
    fn miss_and_prefetch_lookup_carry_no_meta() {
        let mut c = tiny(2);
        let l = LineAddr::new(3);
        assert_eq!(c.access(l, None, false).meta, None);
        c.fill(l, None, true);
        assert_eq!(c.access(l, None, true).meta, None, "prefetch lookup");
        assert_eq!(c.line_meta(LineAddr::new(99)), None);
    }

    #[test]
    fn invalidate_returns_record() {
        let mut c = tiny(2);
        let l = LineAddr::new(7);
        c.fill(l, None, true);
        let ev = c.invalidate(l).unwrap();
        assert_eq!(ev.line, l);
        assert!(ev.was_unused_prefetch);
        assert!(!c.contains(l));
        assert!(c.invalidate(l).is_none());
    }
}
