//! The Triangel prefetcher: samplers, aggression control, and sizing
//! composed per Section 4 of the paper.

use crate::config::{SizingMechanism, TriangelConfig};
use crate::history_sampler::HistorySampler;
use crate::reuse_buffer::MetadataReuseBuffer;
use crate::second_chance::SecondChanceSampler;
use crate::set_dueller::SetDueller;
use crate::training::{TrainingTable, CONF_INIT};
use triangel_cache::replacement::PolicyKind;
use triangel_markov::{MarkovTableConfig, MarkovTableImpl};
use triangel_prefetch::{
    BloomFilter, CacheView, EvictNotice, IssueTable, PrefetchRequest, Prefetcher, PrefetcherStats,
    TrainEvent, TrainKind,
};
use triangel_types::{Cycle, LineAddr};

/// The Triangel temporal prefetcher.
///
/// Behaviour is controlled by [`TriangelConfig::features`]; with all
/// features off it degenerates to Triage-Degree-4 (the Fig. 20 ablation
/// baseline), and with all on it is the paper's default Triangel.
#[derive(Debug)]
pub struct Triangel {
    cfg: TriangelConfig,
    training: TrainingTable,
    sampler: HistorySampler,
    scs: SecondChanceSampler,
    mrb: MetadataReuseBuffer,
    dueller: SetDueller,
    bloom: BloomFilter,
    markov: MarkovTableImpl,
    max_size: u64,
    bloom_window_left: u64,
    desired_ways: usize,
    issued: u64,
    suppressed: u64,
    name: String,
    /// Diagnostic counters: (reuse_inc, reuse_dec, stale_victims,
    /// fresh_unused_victims, sampler_hits, mismatches).
    debug: [u64; 6],
    /// L2 eviction notices observed: (own temporal lines that died
    /// demand-used, own temporal lines that died unused). Always
    /// counted; the simulator settles accuracy stats itself.
    evict_seen: (u64, u64),
    /// Eviction-training state, live only behind
    /// `features.train_on_eviction`: which Markov entry produced each
    /// resident temporal fill.
    issue_table: IssueTable,
    /// Eviction-training diagnostics: (Markov entry updates applied,
    /// pattern-classifier deltas applied, premature deaths skipped).
    evict_train: [u64; 3],
}

impl Triangel {
    /// Builds Triangel from its configuration.
    pub fn new(cfg: TriangelConfig) -> Self {
        let f = cfg.features;
        let table_cfg = MarkovTableConfig {
            format: cfg.effective_format(),
            // Triangel uses the simpler SRRIP; before the metadata step
            // of the ablation the table is still Triage's (HawkEye).
            replacement: if f.triangel_metadata {
                PolicyKind::Srrip
            } else {
                PolicyKind::Hawkeye
            },
            ..cfg.table
        };
        let max_size = table_cfg.max_capacity_entries() as u64;
        // Naming ignores the experimental eviction-training gate (it is
        // orthogonal to the ablation features) and tags it as a suffix.
        let base = crate::config::TriangelFeatures {
            train_on_eviction: false,
            ..f
        };
        let with_dueller = crate::config::TriangelFeatures {
            set_dueller: true,
            ..base
        };
        let with_mrb = crate::config::TriangelFeatures {
            metadata_reuse_buffer: true,
            ..base
        };
        let mut name = if base == crate::config::TriangelFeatures::all() {
            "Triangel".to_string()
        } else if cfg.sizing() == SizingMechanism::Bloom
            && with_dueller == crate::config::TriangelFeatures::all()
        {
            "Triangel-Bloom".to_string()
        } else if !f.metadata_reuse_buffer && with_mrb == crate::config::TriangelFeatures::all() {
            "Triangel-NoMRB".to_string()
        } else {
            "Triangel-partial".to_string()
        };
        if f.train_on_eviction {
            name.push_str("+EvictTrain");
        }
        Triangel {
            training: TrainingTable::new(cfg.training_entries),
            sampler: HistorySampler::new(cfg.sampler_entries, cfg.seed),
            scs: SecondChanceSampler::new(cfg.scs_entries, cfg.scs_window),
            mrb: MetadataReuseBuffer::new(cfg.mrb_entries),
            dueller: SetDueller::new(
                table_cfg.sets,
                table_cfg.max_ways,
                table_cfg.format.entries_per_line() as u32,
                cfg.dueller_bias,
                cfg.sizing_window,
                cfg.seed ^ 0xD137,
            ),
            bloom: BloomFilter::new(cfg.bloom_bits, 4),
            markov: MarkovTableImpl::new(table_cfg),
            max_size,
            bloom_window_left: cfg.sizing_window,
            desired_ways: 0,
            issued: 0,
            suppressed: 0,
            cfg,
            name,
            debug: [0; 6],
            evict_seen: (0, 0),
            issue_table: IssueTable::paper_l2(),
            evict_train: [0; 3],
        }
    }

    /// Diagnostic counters for tests and tuning: `[reuse_inc,
    /// reuse_dec, stale_victims, fresh_unused_victims, sampler_hits,
    /// mismatches]`.
    pub fn debug_counters(&self) -> [u64; 6] {
        self.debug
    }

    /// Eviction-training counters for tests and tuning: `[markov_entry
    /// updates, pattern deltas, premature skips]`. All zero unless
    /// `features.train_on_eviction` is set.
    pub fn evict_train_counters(&self) -> [u64; 3] {
        self.evict_train
    }

    /// Read access to the Markov table (for experiments and tests).
    pub fn markov(&self) -> &MarkovTableImpl {
        &self.markov
    }

    /// Read access to the training table.
    pub fn training(&self) -> &TrainingTable {
        &self.training
    }

    /// The Set Dueller's per-partitioning sample counters (index =
    /// candidate way count; see [`SetDueller::counters`]).
    pub fn dueller_counters(&self) -> &[u64; 9] {
        self.dueller.counters()
    }

    /// The `MaxSize` threshold used by ReuseConf and the samplers.
    pub fn max_size(&self) -> u64 {
        self.max_size
    }

    fn apply_pattern_delta(&mut self, train_idx: u16, up: bool) {
        if let Some(e) = self.training.entry_at_mut(train_idx as usize) {
            if up {
                // Both counters count up by one (Section 4.4.2).
                e.base_pattern_conf.add(1);
                e.high_pattern_conf.add(1);
            } else {
                // Asymmetric decrements: -2 (>2/3 bias) and -5 (>5/6).
                e.base_pattern_conf.sub(2);
                e.high_pattern_conf.sub(5);
            }
        }
    }

    /// Runs the History/Second-Chance sampling machinery (Section 4.4).
    fn run_samplers<V: CacheView + ?Sized>(
        &mut self,
        ev: &TrainEvent,
        caches: &V,
        idx: u16,
        prev0: Option<LineAddr>,
        ts: u32,
    ) {
        let f = self.cfg.features;

        // Second-Chance resolution: a parked target accessed within the
        // proximity window means the imperfect sequence still yields
        // accurate prefetches; a late access means the hypothetical
        // prefetch would have been evicted unused.
        if f.second_chance {
            match self.scs.check(ev.line, idx, ev.l2_fills) {
                Some(crate::second_chance::ScsOutcome::WithinWindow) => {
                    self.apply_pattern_delta(idx, true);
                }
                Some(crate::second_chance::ScsOutcome::OutsideWindow) => {
                    self.debug[5] += 1;
                    self.apply_pattern_delta(idx, false);
                }
                None => {}
            }
        }

        let Some(prev) = prev0 else { return };

        // History Sampler lookup: has `prev` been seen long ago, and did
        // the same successor follow it?
        if let Some(verdict) = self.sampler.lookup(prev, idx, ts, ev.line) {
            self.debug[4] += 1;
            let distance = ts.wrapping_sub(verdict.timestamp) as u64;
            if f.reuse_conf || f.base_pattern_conf {
                if let Some(e) = self.training.entry_at_mut(idx as usize) {
                    if distance <= self.max_size {
                        e.reuse_conf.inc();
                        self.debug[0] += 1;
                    } else {
                        e.reuse_conf.dec();
                        self.debug[1] += 1;
                    }
                }
            }
            if f.base_pattern_conf {
                if verdict.target == ev.line {
                    self.apply_pattern_delta(idx, true);
                } else if caches.in_l2(verdict.target) || caches.in_l3(verdict.target) {
                    // Already cached: a hypothetical prefetch would not
                    // have issued, so leave the counters alone.
                } else if f.second_chance {
                    if let Some(evicted) = self.scs.insert(verdict.target, idx, ev.l2_fills) {
                        self.apply_pattern_delta(evicted, false);
                    }
                } else {
                    self.apply_pattern_delta(idx, false);
                }
            }
        }

        // Probabilistic insertion of the freshly trained pair.
        let sample_rate = self
            .training
            .entry_at(idx as usize)
            .map(|e| e.sample_rate.get())
            .unwrap_or(CONF_INIT);
        if self.sampler.should_sample(sample_rate, self.max_size) {
            if let Some(victim) = self.sampler.insert(prev, idx, ev.line, ts) {
                // Victim handling per Section 4.4.3: replacing stale
                // entries is free (and earns a faster sample rate);
                // replacing potentially-useful ones slows us down.
                let victim_age = self
                    .training
                    .entry_at(victim.train_idx as usize)
                    .map(|e| e.timestamp.wrapping_sub(victim.timestamp) as u64);
                let stale = victim_age.map(|a| a > self.max_size).unwrap_or(true);
                if stale {
                    self.debug[2] += 1;
                    if !victim.used {
                        if let Some(v) = self.training.entry_at_mut(victim.train_idx as usize) {
                            v.reuse_conf.dec();
                            self.debug[1] += 1;
                        }
                    }
                    if let Some(e) = self.training.entry_at_mut(idx as usize) {
                        e.sample_rate.inc();
                    }
                } else if !victim.used {
                    self.debug[3] += 1;
                    if let Some(e) = self.training.entry_at_mut(idx as usize) {
                        e.sample_rate.dec();
                    }
                }
            }
        }
    }

    /// Applies the partition-sizing mechanism (Section 4.7 / 3.5).
    fn run_sizing(&mut self, line: LineAddr, markov_engaged: bool) {
        match self.cfg.sizing() {
            SizingMechanism::SetDueller => {
                self.dueller.on_access(line, markov_engaged);
                let want = self.dueller.desired_ways();
                if want != self.markov.ways() {
                    self.markov.set_ways(want);
                }
                self.desired_ways = self.markov.ways();
            }
            SizingMechanism::Bloom => {
                if markov_engaged {
                    let seen = self.bloom.insert(line.index());
                    if !seen {
                        let per_way =
                            self.cfg.table.sets * self.cfg.effective_format().entries_per_line();
                        let biased =
                            (self.bloom.unique_inserts() as f64 * self.cfg.bloom_bias) as usize;
                        let needed = biased.div_ceil(per_way).min(self.cfg.table.max_ways);
                        if needed > self.desired_ways {
                            self.desired_ways = needed;
                            self.markov.set_ways(needed);
                        }
                    }
                }
                self.bloom_window_left -= 1;
                if self.bloom_window_left == 0 {
                    self.bloom_window_left = self.cfg.sizing_window;
                    self.bloom.reset();
                }
            }
        }
    }

    /// Processes one training event with a statically-known cache view.
    ///
    /// The monomorphized form of [`Prefetcher::on_event`]: the
    /// simulator's enum-dispatched pipeline calls it directly, so the
    /// sampler verdicts, aggression gates, Markov training and the
    /// MRB-short-circuited prefetch walk all specialize against the
    /// concrete cache view (residency checks become direct set scans).
    /// The trait method forwards here with the dynamic view.
    pub fn handle<V: CacheView + ?Sized>(
        &mut self,
        ev: &TrainEvent,
        caches: &V,
        out: &mut Vec<PrefetchRequest>,
    ) {
        if !matches!(ev.kind, TrainKind::L2Miss | TrainKind::L2PrefetchHit) {
            return;
        }
        let f = self.cfg.features;
        let idx = self.training.index_of(ev.pc) as u16;

        // Refresh the training entry and snapshot the history register.
        let (prev0, prev1, ts) = {
            let (e, _) = self.training.entry_mut(ev.pc);
            e.timestamp = e.timestamp.wrapping_add(1);
            (e.last[0], e.last[1], e.timestamp)
        };

        let samplers_on = f.base_pattern_conf || f.second_chance || f.reuse_conf;
        if samplers_on {
            self.run_samplers(ev, caches, idx, prev0, ts);
        }

        // Aggression decisions (Section 4.5), re-reading counters after
        // the samplers' updates.
        let (base, high, reuse) = self
            .training
            .entry_at(idx as usize)
            .map(|e| {
                (
                    e.base_pattern_conf.get(),
                    e.high_pattern_conf.get(),
                    e.reuse_conf.get(),
                )
            })
            .unwrap_or((CONF_INIT, CONF_INIT, CONF_INIT));

        let lookahead2 = if !f.lookahead2 {
            false
        } else if f.high_pattern_conf {
            // Hysteresis: engage at HighPatternConf max (15), disengage
            // only when BasePatternConf falls below its initial value.
            if let Some(e) = self.training.entry_at_mut(idx as usize) {
                if e.high_pattern_conf.is_saturated() {
                    e.lookahead2 = true;
                } else if e.base_pattern_conf.get() < CONF_INIT {
                    e.lookahead2 = false;
                }
                e.lookahead2
            } else {
                false
            }
        } else {
            true
        };

        let degree = if f.high_pattern_conf {
            if high > CONF_INIT {
                self.cfg.max_degree
            } else {
                1
            }
        } else {
            self.cfg.max_degree
        };

        let mut allowed = true;
        if f.base_pattern_conf && base <= CONF_INIT {
            allowed = false;
        }
        if f.reuse_conf && reuse <= CONF_INIT {
            allowed = false;
        }

        // Train the Markov table (lookahead decides the index;
        // Section 4.5's shift-register walkthrough).
        if allowed {
            let train_index = if lookahead2 { prev1 } else { prev0 };
            if let Some(pi) = train_index {
                let unchanged =
                    f.metadata_reuse_buffer && self.mrb.peek(pi) == Some((ev.line, true));
                if unchanged {
                    // The L3 copy already says exactly this: skip the
                    // update entirely (Section 4.6).
                    self.suppressed += 1;
                } else {
                    self.markov.train(pi, ev.line, ev.pc);
                    if f.metadata_reuse_buffer {
                        if let Some((t, c)) = self.markov.peek(pi) {
                            self.mrb.insert(pi, t, c);
                        }
                    }
                }
            }
        }

        // Shift the history register.
        if let Some(e) = self.training.entry_at_mut(idx as usize) {
            e.last[1] = e.last[0];
            e.last[0] = Some(ev.line);
        }

        // Chained prefetch generation through the MRB.
        if allowed {
            let mut cursor = ev.line;
            let mut delay: Cycle = 0;
            for _ in 0..degree {
                let cached = if f.metadata_reuse_buffer {
                    self.mrb.lookup(cursor)
                } else {
                    None
                };
                let (target, confidence) = match cached {
                    Some(hit) => {
                        delay += 1; // near-side buffer: negligible latency
                        hit
                    }
                    None => match self.markov.lookup(cursor) {
                        Some(h) => {
                            delay += self.cfg.markov_latency;
                            if f.metadata_reuse_buffer {
                                self.mrb.insert(cursor, h.target, h.confidence);
                            }
                            (h.target, h.confidence)
                        }
                        None => break,
                    },
                };
                let _ = confidence;
                if !caches.in_l2(target) {
                    out.push(PrefetchRequest {
                        line: target,
                        pc: ev.pc,
                        issue_delay: delay,
                    });
                    self.issued += 1;
                    if f.train_on_eviction {
                        // Remember which entry predicted this line so
                        // its eventual death can settle the entry.
                        self.issue_table.record(target, cursor);
                    }
                }
                cursor = target;
            }
        }

        self.run_sizing(ev.line, allowed);
    }
}

impl Prefetcher for Triangel {
    fn on_event(
        &mut self,
        ev: &TrainEvent,
        caches: &dyn CacheView,
        out: &mut Vec<PrefetchRequest>,
    ) {
        self.handle(ev, caches, out);
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn desired_markov_ways(&self) -> usize {
        self.markov.ways()
    }

    fn stats(&self) -> PrefetcherStats {
        let m = self.markov.stats();
        PrefetcherStats {
            prefetches_issued: self.issued,
            markov_reads: m.reads,
            markov_writes: m.writes,
            mrb_hits: self.mrb.hits(),
            updates_suppressed: self.suppressed,
        }
    }

    /// Eviction feedback. Death diagnostics are always counted; behind
    /// `features.train_on_eviction` the dying line's metadata word
    /// (fill source, demand-used bit, fill cycle) additionally settles
    /// training at the moment the line leaves the L2:
    ///
    /// * the Markov entry that predicted the line is reinforced (used
    ///   death) or weakened/dropped (wasted death) via
    ///   [`MarkovTableImpl::train_on_evict`], with the Metadata Reuse
    ///   Buffer's cached copy refreshed to match;
    /// * the filling PC's pattern classifiers receive eviction ground
    ///   truth — +1 for a used death, the asymmetric −2/−5 for a
    ///   wasted one — alongside the History Sampler's hypothetical
    ///   verdicts;
    /// * *premature* deaths (evicted before the fill's data arrived,
    ///   judged from the metadata word's fill cycle) are excluded from
    ///   the negative paths: they indict cache pressure, not the
    ///   prediction.
    fn on_l2_evict(&mut self, notice: &EvictNotice) {
        match notice.temporal_death() {
            Some(true) => self.evict_seen.1 += 1,
            Some(false) => self.evict_seen.0 += 1,
            None => {}
        }
        let f = self.cfg.features;
        if !f.train_on_eviction {
            return;
        }
        let Some(wasted) = notice.temporal_death() else {
            return;
        };
        if wasted && notice.premature() {
            self.evict_train[2] += 1;
            return;
        }
        let used = !wasted;
        if let Some(pred) = self.issue_table.take(notice.line) {
            if self.markov.train_on_evict(pred, notice.line, used) {
                self.evict_train[0] += 1;
                if f.metadata_reuse_buffer {
                    // Keep the near-side copy coherent with the entry
                    // the update just changed (or dropped).
                    match self.markov.peek(pred) {
                        Some((t, c)) => self.mrb.insert(pred, t, c),
                        None => self.mrb.invalidate(pred),
                    }
                }
            }
        }
        if f.base_pattern_conf {
            if let Some(pc) = notice.fill_pc {
                let idx = self.training.index_of(pc) as u16;
                self.apply_pattern_delta(idx, used);
                self.evict_train[1] += 1;
            }
        }
    }

    fn probe(&self, out: &mut triangel_obs::ProbeSet) {
        let (valid, base_open, high_open, lookahead2) = self.training.gate_summary();
        out.scoped("gates", |out| {
            out.record("valid", valid as u64);
            out.record("base_open", base_open as u64);
            out.record("high_open", high_open as u64);
            out.record("lookahead2", lookahead2 as u64);
        });
        out.record("desired_ways", self.desired_ways as u64);
        out.record("issued", self.issued);
        out.record("suppressed", self.suppressed);
        out.record("reuse_inc", self.debug[0]);
        out.record("reuse_dec", self.debug[1]);
        out.record("stale_victims", self.debug[2]);
        out.record("fresh_unused_victims", self.debug[3]);
        out.record("sampler_hits", self.debug[4]);
        out.record("mismatches", self.debug[5]);
        out.record("evict_deaths_used", self.evict_seen.0);
        out.record("evict_deaths_wasted", self.evict_seen.1);
        out.scoped("etrain", |out| {
            out.record("markov_updates", self.evict_train[0]);
            out.record("pattern_deltas", self.evict_train[1]);
            out.record("premature_skips", self.evict_train[2]);
        });
        out.scoped("duel", |out| {
            for (ways, &count) in self.dueller.counters().iter().enumerate() {
                out.record(&format!("ways{ways}"), count);
            }
        });
        out.scoped("markov", |out| {
            triangel_obs::Probe::probe(&self.markov, out);
        });
    }
}

use triangel_types::snap::{SnapError, SnapReader, SnapWriter, Snapshot};

impl Snapshot for Triangel {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        self.training.save(w)?;
        self.sampler.save(w)?;
        self.scs.save(w)?;
        self.mrb.save(w)?;
        self.dueller.save(w)?;
        self.bloom.save(w)?;
        self.markov.save(w)?;
        w.u64(self.bloom_window_left);
        w.usize(self.desired_ways);
        w.u64(self.issued);
        w.u64(self.suppressed);
        for d in &self.debug {
            w.u64(*d);
        }
        w.u64(self.evict_seen.0);
        w.u64(self.evict_seen.1);
        self.issue_table.save(w)?;
        for d in &self.evict_train {
            w.u64(*d);
        }
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.training.restore(r)?;
        self.sampler.restore(r)?;
        self.scs.restore(r)?;
        self.mrb.restore(r)?;
        self.dueller.restore(r)?;
        self.bloom.restore(r)?;
        self.markov.restore(r)?;
        self.bloom_window_left = r.u64()?;
        self.desired_ways = r.usize()?;
        self.issued = r.u64()?;
        self.suppressed = r.u64()?;
        for d in &mut self.debug {
            *d = r.u64()?;
        }
        self.evict_seen.0 = r.u64()?;
        self.evict_seen.1 = r.u64()?;
        self.issue_table.restore(r)?;
        for d in &mut self.evict_train {
            *d = r.u64()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triangel_prefetch::NullCacheView;
    use triangel_types::Pc;

    fn ev(pc: u64, line: u64, n: u64) -> TrainEvent {
        TrainEvent {
            pc: Pc::new(pc),
            line: LineAddr::new(line),
            kind: TrainKind::L2Miss,
            cycle: n,
            l2_fills: n,
        }
    }

    /// Drives a strict repeating sequence from one PC through the
    /// prefetcher `passes` times; returns all requests from the last
    /// pass.
    fn drive_pattern(
        pf: &mut Triangel,
        pc: u64,
        seq: &[u64],
        passes: usize,
    ) -> Vec<PrefetchRequest> {
        let mut out = Vec::new();
        let mut last = Vec::new();
        let mut n = 0;
        for p in 0..passes {
            if p + 1 == passes {
                last.clear();
            }
            for l in seq {
                out.clear();
                pf.on_event(&ev(pc, *l, n), &NullCacheView, &mut out);
                n += 1;
                if p + 1 == passes {
                    last.extend(out.iter().copied());
                }
            }
        }
        last
    }

    fn small_config() -> TriangelConfig {
        let mut cfg = TriangelConfig::paper_default();
        // A small table and window so unit tests converge quickly.
        cfg.table.sets = 64;
        cfg.table.max_ways = 4;
        cfg.sizing_window = 500;
        cfg
    }

    #[test]
    fn confident_pattern_eventually_prefetches() {
        let mut pf = Triangel::new(small_config());
        // Wide enough that the Set Dueller's 1-in-12 sampled address
        // subset is well populated.
        let seq: Vec<u64> = (0..600).map(|i| 10 + i * 3).collect();
        let reqs = drive_pattern(&mut pf, 0x40, &seq, 20);
        assert!(!reqs.is_empty(), "a strict repeating pattern must prefetch");
        assert!(pf.stats().prefetches_issued > 0);
    }

    #[test]
    fn random_stream_is_filtered() {
        let mut cfg = small_config();
        cfg.seed = 3;
        let mut pf = Triangel::new(cfg);
        // Unlearnable stream: every address unique.
        let mut out = Vec::new();
        for n in 0..20_000u64 {
            out.clear();
            pf.on_event(&ev(0x40, 1_000_000 + n * 17, n), &NullCacheView, &mut out);
        }
        let issued = pf.stats().prefetches_issued;
        // BasePatternConf never rises above 8 for a random stream, so
        // essentially nothing is prefetched.
        assert!(
            issued < 100,
            "random stream should be filtered, issued {issued}"
        );
    }

    #[test]
    fn triage_mode_prefetches_unconditionally() {
        // All features off = Triage-Deg4 behaviour: no filtering.
        let mut cfg = small_config();
        cfg.features = crate::config::TriangelFeatures::none();
        let mut pf = Triangel::new(cfg);
        let seq: Vec<u64> = (0..50).map(|i| 10 + i * 3).collect();
        let reqs = drive_pattern(&mut pf, 0x40, &seq, 3);
        assert!(!reqs.is_empty());
    }

    #[test]
    fn mrb_eliminates_repeat_markov_reads() {
        let mut pf = Triangel::new(small_config());
        let seq: Vec<u64> = (0..600).map(|i| 100 + i * 5).collect();
        let _ = drive_pattern(&mut pf, 0x40, &seq, 20);
        let s = pf.stats();
        assert!(
            s.mrb_hits > 0,
            "overlapping degree-4 walks must hit the MRB"
        );
    }

    #[test]
    fn no_mrb_variant_reads_l3_more() {
        let seq: Vec<u64> = (0..600).map(|i| 100 + i * 5).collect();
        let mut with = Triangel::new(small_config());
        let _ = drive_pattern(&mut with, 0x40, &seq, 20);
        let mut without = Triangel::new(TriangelConfig {
            features: crate::config::TriangelFeatures {
                metadata_reuse_buffer: false,
                ..crate::config::TriangelFeatures::all()
            },
            ..small_config()
        });
        let _ = drive_pattern(&mut without, 0x40, &seq, 20);
        assert!(
            without.stats().markov_reads > with.stats().markov_reads,
            "MRB must reduce partition reads ({} vs {})",
            without.stats().markov_reads,
            with.stats().markov_reads
        );
    }

    #[test]
    fn names_match_figures() {
        assert_eq!(
            Triangel::new(TriangelConfig::paper_default()).name(),
            "Triangel"
        );
        assert_eq!(
            Triangel::new(TriangelConfig::bloom_variant()).name(),
            "Triangel-Bloom"
        );
        assert_eq!(
            Triangel::new(TriangelConfig::no_mrb()).name(),
            "Triangel-NoMRB"
        );
    }

    #[test]
    fn lookahead_engages_for_confident_patterns() {
        let mut pf = Triangel::new(small_config());
        let seq: Vec<u64> = (0..600).map(|i| 10 + i * 3).collect();
        let _ = drive_pattern(&mut pf, 0x40, &seq, 25);
        let e = pf.training().entry(Pc::new(0x40)).expect("trained");
        assert!(
            e.lookahead2,
            "HighPatternConf should saturate and engage lookahead 2 (high={})",
            e.high_pattern_conf.get()
        );
    }

    #[test]
    fn stats_wiring() {
        let mut pf = Triangel::new(small_config());
        let seq: Vec<u64> = (0..600).map(|i| 10 + i * 3).collect();
        let _ = drive_pattern(&mut pf, 0x40, &seq, 15);
        let s = pf.stats();
        assert!(s.markov_writes > 0);
        assert!(s.markov_reads > 0);
    }

    fn notice(line: u64, used: bool, ready_at: u64, evict_cycle: u64) -> EvictNotice {
        EvictNotice {
            line: LineAddr::new(line),
            meta: triangel_types::LineMeta {
                source: triangel_types::FillSource::Temporal,
                ready_at,
                used,
                fill_seq: 1,
            },
            was_unused_prefetch: !used,
            evict_cycle,
            evict_seq: 2,
            fill_pc: Some(Pc::new(0x40)),
        }
    }

    /// Builds a gate-on Triangel that has issued prefetches for a
    /// strict pattern, returning it plus the last pass's target lines.
    fn trained_gated() -> (Triangel, Vec<u64>) {
        let mut cfg = small_config();
        cfg.features.train_on_eviction = true;
        let mut pf = Triangel::new(cfg);
        let seq: Vec<u64> = (0..600).map(|i| 10 + i * 3).collect();
        let reqs = drive_pattern(&mut pf, 0x40, &seq, 20);
        assert!(!reqs.is_empty());
        (pf, reqs.iter().map(|r| r.line.index()).collect())
    }

    #[test]
    fn eviction_training_settles_issued_prefetches() {
        let (mut pf, targets) = trained_gated();
        // A used death reinforces the entry that predicted the target.
        // Issue-table collisions may have displaced individual
        // associations; at least one recent target must still settle.
        let mut settled = None;
        for t in &targets {
            pf.on_l2_evict(&notice(*t, true, 100, 500));
            if pf.evict_train_counters()[0] == 1 {
                settled = Some(*t);
                break;
            }
        }
        let target = settled.expect("a recent prefetch settles its entry");
        assert!(pf.evict_train_counters()[1] >= 1, "pattern deltas applied");
        // The association is consumed: a second notice for the same
        // line no longer finds an entry to update.
        pf.on_l2_evict(&notice(target, true, 100, 500));
        assert_eq!(pf.evict_train_counters()[0], 1);
    }

    #[test]
    fn premature_deaths_are_not_pattern_failures() {
        let (mut pf, targets) = trained_gated();
        // Evicted at cycle 50, data due at 100: in-flight kill.
        pf.on_l2_evict(&notice(targets[0], false, 100, 50));
        assert_eq!(
            pf.evict_train_counters(),
            [0, 0, 1],
            "only the premature skip counts; no negative training"
        );
    }

    #[test]
    fn eviction_training_is_inert_when_gated_off() {
        let mut pf = Triangel::new(small_config());
        let seq: Vec<u64> = (0..600).map(|i| 10 + i * 3).collect();
        let reqs = drive_pattern(&mut pf, 0x40, &seq, 20);
        assert!(!reqs.is_empty());
        let before = format!("{:?}", pf.markov().stats());
        pf.on_l2_evict(&notice(reqs[0].line.index(), false, 100, 500));
        pf.on_l2_evict(&notice(reqs[0].line.index(), true, 100, 500));
        assert_eq!(pf.evict_train_counters(), [0, 0, 0]);
        assert_eq!(
            format!("{:?}", pf.markov().stats()),
            before,
            "gated-off notices must not touch the Markov table"
        );
        assert_eq!(pf.evict_seen, (1, 1), "diagnostics still count");
    }
}
