//! Reproduces Fig. 10 of the paper (speedup). See DESIGN.md's experiment index.
//!
//! Declarative definition: `triangel_bench::figures` registry entry
//! `"fig10"`, executed by the `triangel-harness` scheduler
//! (`--jobs N` controls worker threads; results are identical for any
//! value).

fn main() {
    triangel_bench::figures::run_main("fig10");
}
