//! The paper's dynamic-energy unit model.

/// Energy cost model from Section 6.2 of the paper: "we assign DRAM
/// accesses an energy cost of 25 units, and L3 accesses (including data
/// accesses and Markov-table accesses) a cost of one unit."
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Units per DRAM line transfer.
    pub dram_unit: f64,
    /// Units per L3 access (data or Markov metadata).
    pub l3_unit: f64,
}

impl EnergyModel {
    /// The paper's 25:1 model.
    pub const fn paper() -> Self {
        EnergyModel {
            dram_unit: 25.0,
            l3_unit: 1.0,
        }
    }

    /// Computes the energy breakdown for the given event counts.
    pub fn evaluate(&self, dram_accesses: u64, l3_accesses: u64) -> EnergyBreakdown {
        EnergyBreakdown {
            dram: dram_accesses as f64 * self.dram_unit,
            l3: l3_accesses as f64 * self.l3_unit,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::paper()
    }
}

/// DRAM and L3 dynamic energy, in the paper's abstract units.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// DRAM portion (the hashed bars in Fig. 15).
    pub dram: f64,
    /// L3 portion (data + Markov accesses).
    pub l3: f64,
}

impl EnergyBreakdown {
    /// Total units.
    pub fn total(&self) -> f64 {
        self.dram + self.l3
    }

    /// DRAM share of the total, in `[0, 1]`; 0 when total is 0.
    pub fn dram_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            self.dram / t
        }
    }

    /// This breakdown's total normalized to a baseline's total
    /// (Fig. 15 plots energy relative to the no-temporal-prefetcher
    /// baseline).
    ///
    /// # Panics
    ///
    /// Panics if the baseline total is zero.
    pub fn normalized_to(&self, baseline: &EnergyBreakdown) -> f64 {
        let b = baseline.total();
        assert!(b > 0.0, "baseline energy must be positive");
        self.total() / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ratio_is_25_to_1() {
        let m = EnergyModel::paper();
        let e = m.evaluate(1, 25);
        assert_eq!(e.dram, e.l3);
        assert_eq!(e.total(), 50.0);
    }

    #[test]
    fn normalization() {
        let m = EnergyModel::paper();
        let base = m.evaluate(100, 1000);
        let with_pf = m.evaluate(110, 2000);
        let norm = with_pf.normalized_to(&base);
        assert!(norm > 1.0);
        assert!((norm - (110.0 * 25.0 + 2000.0) / (100.0 * 25.0 + 1000.0)).abs() < 1e-12);
    }

    #[test]
    fn dram_fraction_bounds() {
        let m = EnergyModel::paper();
        assert_eq!(m.evaluate(0, 0).dram_fraction(), 0.0);
        assert_eq!(m.evaluate(1, 0).dram_fraction(), 1.0);
        let mixed = m.evaluate(1, 25).dram_fraction();
        assert!((mixed - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "baseline energy")]
    fn zero_baseline_panics() {
        let z = EnergyBreakdown::default();
        let _ = z.normalized_to(&z);
    }
}
