//! Reproduces Fig. 18: Triage speedup under different Markov-table
//! entry formats and lookup-table configurations (Section 6.5).
//!
//! The five variants: the default 32-bit entry with a 16-way-associative
//! 1024-entry lookup table; a hypothetical *ideal* (never-wrong) lookup
//! table; a fully-associative lookup table; Triangel's 42-bit direct
//! format; and the 10-bit-offset variant that models halved physical
//! frame locality.
//!
//! Declarative definition: `triangel_bench::figures` registry entry
//! `"fig18"`, executed by the `triangel-harness` scheduler
//! (`--jobs N` controls worker threads; results are identical for any
//! value).

fn main() {
    triangel_bench::figures::run_main("fig18");
}
