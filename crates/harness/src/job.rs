//! Experiments as data: [`JobSpec`] and its parts.

use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

use triangel_sim::{
    PrefetcherChoice, RunReport, SimError, SimSession, SimSessionBuilder, TriangelFeatures,
};
use triangel_workloads::graph500::BfsTrace;
use triangel_workloads::graph500::Csr;
use triangel_workloads::irregular::IrregularWorkload;
use triangel_workloads::paging::PageMapper;
use triangel_workloads::spec::SpecWorkload;
use triangel_workloads::trace_file::{read_trace_header, EndPolicy, FileTrace};
use triangel_workloads::TraceSource;

/// Scale and seeding parameters shared by the jobs of one sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunParams {
    /// Warm-up accesses per core (not measured).
    pub warmup: u64,
    /// Measured accesses per core.
    pub accesses: u64,
    /// Set Dueller / Bloom sizing window.
    pub sizing_window: u64,
    /// Workload RNG seed.
    pub seed: u64,
}

/// Which virtual-to-physical mapping a job simulates under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MapperSpec {
    /// The experiment runner's default mapping.
    #[default]
    Default,
    /// `PageMapper::realistic(seed)` — the fragmented mapping of the
    /// Fig. 18/19 studies.
    Realistic(u64),
}

/// The workload half of a job: what generates the access trace.
#[derive(Clone)]
pub enum WorkloadSpec {
    /// One of the seven SPEC-like generators.
    Spec(SpecWorkload),
    /// A multiprogrammed pair sharing L3 and DRAM (Fig. 16). The
    /// second core's generator is seeded with `seed ^ 0x9999`.
    Pair(SpecWorkload, SpecWorkload),
    /// BFS over a pre-built Graph500 graph (Fig. 17). The graph is
    /// built once and shared by every configuration's job; `label`
    /// must uniquely identify it (it is the cache-key component).
    Graph500 {
        /// Cache-key label, e.g. `"s16 e10"`.
        label: String,
        /// The shared CSR graph.
        graph: Arc<Csr>,
    },
    /// One of the four irregular-workload generators (zipfian KV
    /// store, GC churn, hash join, web serving).
    Irregular(IrregularWorkload),
    /// Replay of a recorded binary trace file
    /// ([`triangel_workloads::trace_file`]) under the looping
    /// end-of-trace policy. The key carries the path *and* the header
    /// digest fields, so editing a trace in place changes every
    /// dependent job's key instead of silently serving stale cached
    /// results. Build with [`WorkloadSpec::trace_file`], which reads
    /// the header once and fails loudly on malformed files.
    TraceFile {
        /// Path of the `.trc` file.
        path: PathBuf,
        /// Record count from the trace header.
        records: u64,
        /// Payload checksum from the trace header.
        checksum: u64,
    },
    /// Any other trace source. `name` must uniquely identify the
    /// generator's content — it is the only part of the builder that
    /// enters the job key.
    Custom {
        /// Cache-key name for the generator.
        name: String,
        /// Builds a fresh generator from a seed.
        build: Arc<dyn Fn(u64) -> Box<dyn TraceSource + Send> + Send + Sync>,
    },
    /// Heterogeneous multiprogrammed run: one workload per core, each a
    /// *single-core* spec (`Spec`, `Graph500`, `Irregular`, `TraceFile`
    /// or `Custom` — nesting `Pair`/`Multi` is a session-time error).
    /// Core `i`'s generator is seeded with `seed ^ (0x9999 * i)`, the
    /// same ladder [`WorkloadSpec::Pair`] established for core 1.
    Multi(Vec<WorkloadSpec>),
}

impl WorkloadSpec {
    /// A trace-file workload over the file at `path`.
    ///
    /// Reads and validates the trace header immediately, so a missing
    /// or malformed file fails at spec-construction time — before any
    /// sweep is planned around it — and the header's record count and
    /// checksum are pinned into the job key.
    ///
    /// # Errors
    ///
    /// Any error from
    /// [`read_trace_header`](triangel_workloads::trace_file::read_trace_header).
    pub fn trace_file(path: impl Into<PathBuf>) -> std::io::Result<Self> {
        let path = path.into();
        let header = read_trace_header(&path)?;
        Ok(WorkloadSpec::TraceFile {
            path,
            records: header.records,
            checksum: header.checksum,
        })
    }

    /// Human-readable label (row name in figure tables).
    pub fn label(&self) -> String {
        match self {
            WorkloadSpec::Spec(wl) => wl.label().to_string(),
            WorkloadSpec::Pair(a, b) => format!("{} & {}", a.label(), b.label()),
            WorkloadSpec::Graph500 { label, .. } => label.clone(),
            WorkloadSpec::Irregular(wl) => wl.label().to_string(),
            WorkloadSpec::TraceFile { path, .. } => path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| path.display().to_string()),
            WorkloadSpec::Custom { name, .. } => name.clone(),
            WorkloadSpec::Multi(list) => list
                .iter()
                .map(WorkloadSpec::label)
                .collect::<Vec<_>>()
                .join(" & "),
        }
    }

    /// The cache-key component for this workload.
    fn key(&self) -> String {
        match self {
            WorkloadSpec::Spec(wl) => format!("spec:{}", wl.label()),
            WorkloadSpec::Pair(a, b) => format!("pair:{}+{}", a.label(), b.label()),
            WorkloadSpec::Graph500 { label, .. } => format!("g500:{label}"),
            WorkloadSpec::Irregular(wl) => format!("irr:{}", wl.label()),
            WorkloadSpec::TraceFile {
                path,
                records,
                checksum,
            } => format!("trace:{}#{records:x}:{checksum:016x}", path.display()),
            WorkloadSpec::Custom { name, .. } => format!("custom:{name}"),
            WorkloadSpec::Multi(list) => format!(
                "multi:[{}]",
                list.iter()
                    .map(WorkloadSpec::key)
                    .collect::<Vec<_>>()
                    .join(";")
            ),
        }
    }

    /// Builds one core's trace source from this (single-core) spec.
    ///
    /// # Errors
    ///
    /// [`SimError::Workload`] for multi-core specs (`Pair`, `Multi`),
    /// which cannot describe a single core, and for trace files that
    /// are missing or changed on disk since the spec was keyed.
    fn core_source(&self, seed: u64) -> Result<Box<dyn TraceSource + Send>, SimError> {
        match self {
            WorkloadSpec::Spec(wl) => Ok(Box::new(wl.generator(seed))),
            WorkloadSpec::Graph500 { label, graph } => Ok(Box::new(BfsTrace::new(
                label.clone(),
                Arc::clone(graph),
                seed,
            ))),
            WorkloadSpec::Irregular(wl) => Ok(Box::new(wl.generator(seed))),
            WorkloadSpec::TraceFile {
                path,
                records,
                checksum,
            } => {
                // Re-verify the header at session time: the file may
                // have changed on disk since the spec was keyed, and a
                // replay under a stale key would poison every cache
                // layer downstream.
                let header = read_trace_header(path).map_err(|e| SimError::Workload {
                    message: format!("trace `{}`: {e}", path.display()),
                })?;
                if header.records != *records || header.checksum != *checksum {
                    return Err(SimError::Workload {
                        message: format!(
                            "trace `{}` changed on disk: spec keyed {} record(s) \
                             (checksum {:016x}) but the file now has {} (checksum {:016x})",
                            path.display(),
                            records,
                            checksum,
                            header.records,
                            header.checksum
                        ),
                    });
                }
                let trace =
                    FileTrace::open(path, EndPolicy::Loop).map_err(|e| SimError::Workload {
                        message: format!("trace `{}`: {e}", path.display()),
                    })?;
                Ok(Box::new(trace))
            }
            WorkloadSpec::Custom { build, .. } => Ok(build(seed)),
            WorkloadSpec::Pair(_, _) | WorkloadSpec::Multi(_) => Err(SimError::Workload {
                message: format!(
                    "workload `{}` is itself multi-core and cannot describe a single core",
                    self.key()
                ),
            }),
        }
    }
}

impl fmt::Debug for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WorkloadSpec({})", self.key())
    }
}

/// One simulation, fully described as data.
///
/// Two jobs with equal [`keys`](JobSpec::key) describe byte-identical
/// simulations; the scheduler runs only one of them.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// What generates the accesses.
    pub workload: WorkloadSpec,
    /// Which temporal prefetcher is attached.
    pub prefetcher: PrefetcherChoice,
    /// Scale and seed.
    pub params: RunParams,
    /// Virtual-to-physical mapping.
    pub mapper: MapperSpec,
    /// Optional Triangel feature override (the session-level gate for
    /// experimental mechanisms such as
    /// [`TriangelFeatures::train_on_eviction`]). `None` — the default —
    /// keeps each configuration's own paper features and leaves the
    /// job key unchanged.
    pub features: Option<TriangelFeatures>,
    /// Interval time-series sampling period in measured accesses
    /// (0 = off; see [`SimSessionBuilder::sample_every`]).
    ///
    /// Deliberately **excluded from the content key**: sampling is
    /// observational — the simulation it describes is byte-identical
    /// with or without it — so a sampled job may legitimately resolve
    /// from an unsampled twin's cached report. Sweeps that *need* the
    /// series (the `timeline` figure) use a private cache instead of
    /// the shared one.
    pub sample_every: u64,
    /// Core count for the simulated system. `None` — the default —
    /// derives the count from the workload itself (1 for single
    /// workloads, 2 for [`WorkloadSpec::Pair`], the list length for
    /// [`WorkloadSpec::Multi`]), keeping every historical job key
    /// unchanged. `Some(n)` replicates a single workload across `n`
    /// cores (core `i` seeded `seed ^ (0x9999 * i)`) and enters the key
    /// as `|nc=n`; for the inherently multi-core specs it must agree
    /// with the workload's own count.
    pub n_cores: Option<usize>,
    /// Worker threads for intra-simulation trace generation
    /// (see [`SimSessionBuilder::exec_threads`]; `1` = serial).
    ///
    /// Like [`JobSpec::sample_every`], **excluded from the content
    /// key**: the thread count is observational — the engine refills
    /// each core's ring from a source that worker alone owns, so the
    /// simulation is byte-identical at any width — and CI diffs the
    /// 1-thread and N-thread artefacts to keep that claim honest.
    pub exec_threads: usize,
}

impl JobSpec {
    /// A job over `workload` × `prefetcher` at `params` scale with the
    /// default page mapping.
    pub fn new(workload: WorkloadSpec, prefetcher: PrefetcherChoice, params: RunParams) -> Self {
        JobSpec {
            workload,
            prefetcher,
            params,
            mapper: MapperSpec::Default,
            features: None,
            sample_every: 0,
            n_cores: None,
            exec_threads: 1,
        }
    }

    /// Sets an explicit core count (see [`JobSpec::n_cores`]).
    #[must_use]
    pub fn with_cores(mut self, n: usize) -> Self {
        self.n_cores = Some(n);
        self
    }

    /// Replaces the page-mapper choice.
    #[must_use]
    pub fn mapper(mut self, mapper: MapperSpec) -> Self {
        self.mapper = mapper;
        self
    }

    /// Overrides the Triangel feature toggles (see
    /// [`SimSessionBuilder::triangel_features`]).
    #[must_use]
    pub fn features(mut self, features: TriangelFeatures) -> Self {
        self.features = Some(features);
        self
    }

    /// Enables interval time-series sampling every `every` measured
    /// accesses (see [`JobSpec::sample_every`] for why this never
    /// enters the content key).
    #[must_use]
    pub fn sample_every(mut self, every: u64) -> Self {
        self.sample_every = every;
        self
    }

    /// Sets the intra-simulation trace-generation thread count (see
    /// [`JobSpec::exec_threads`] for why this never enters the content
    /// key).
    #[must_use]
    pub fn exec_threads(mut self, threads: usize) -> Self {
        self.exec_threads = threads.max(1);
        self
    }

    /// The content key: equal keys ⇔ identical simulations.
    ///
    /// The prefetcher configuration enters through its `Debug`
    /// rendering, which spells out every field of custom configs, so
    /// two `TriangelCustom` jobs differing in any knob get distinct
    /// keys. The sizing window enters only for configurations that
    /// actually read it ([`PrefetcherChoice::uses_sizing_window`]):
    /// the stride-only baseline has no temporal prefetcher, Triage
    /// ignores the window, and the custom configs carry their own —
    /// so sweeps with different windows share those runs through the
    /// [`crate::ResultCache`] instead of re-simulating them.
    pub fn key(&self) -> String {
        let sizing = if self.prefetcher.uses_sizing_window() {
            self.params.sizing_window.to_string()
        } else {
            "-".to_string()
        };
        // The feature override enters only when set *and* the
        // configuration actually reads it (the Triangel family), so
        // ungated jobs keep their historical keys — including every
        // golden-pinned sweep — and a gated Triage/baseline column
        // still cache-shares with its ungated twin (the same honesty
        // rule as the sizing window above).
        let features = match &self.features {
            Some(f) if self.prefetcher.accepts_feature_override() => format!("|f={f:?}"),
            _ => String::new(),
        };
        // Like the feature override, the core count enters only when
        // explicitly set, so every historical key — including the
        // golden-pinned sweeps — is unchanged.
        let cores = match self.n_cores {
            Some(n) => format!("|nc={n}"),
            None => String::new(),
        };
        format!(
            "{}|pf={:?}|w={}|a={}|sw={}|s={}|m={:?}{}{}",
            self.workload.key(),
            self.prefetcher,
            self.params.warmup,
            self.params.accesses,
            sizing,
            self.params.seed,
            self.mapper,
            features,
            cores,
        )
    }

    /// Runs the simulation this job describes through
    /// [`SimSession::builder`] (the monomorphized pipeline).
    ///
    /// Deterministic: the generator is built from the job's own seed in
    /// the calling thread, so the result does not depend on what other
    /// jobs run concurrently.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the session builder.
    pub fn run(&self) -> Result<RunReport, SimError> {
        self.session()?.run()
    }

    /// Assembles — without running — the session this job describes.
    ///
    /// This is the campaign runner's entry point: holding the session
    /// lets it drive the run in resumable segments
    /// ([`SimSession::run_segment`]) and snapshot/restore state between
    /// invocations. Construction is deterministic, so a session built
    /// from the same spec in a later process restores an earlier
    /// process's snapshot exactly.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the session builder.
    pub fn session(&self) -> Result<SimSession, SimError> {
        let p = self.params;
        // Expand the workload into one single-core spec per core. The
        // inherently multi-core specs fix their own count (and must
        // agree with an explicit `n_cores`); everything else replicates
        // across `n_cores` cores (default 1).
        let per_core: Vec<WorkloadSpec> = match &self.workload {
            WorkloadSpec::Pair(a, b) => {
                if let Some(n) = self.n_cores {
                    if n != 2 {
                        return Err(SimError::Workload {
                            message: format!("a Pair workload runs on 2 cores, not {n}"),
                        });
                    }
                }
                vec![WorkloadSpec::Spec(*a), WorkloadSpec::Spec(*b)]
            }
            WorkloadSpec::Multi(list) => {
                if list.is_empty() {
                    return Err(SimError::NoSources);
                }
                if let Some(n) = self.n_cores {
                    if n != list.len() {
                        return Err(SimError::Workload {
                            message: format!(
                                "a Multi workload of {} core(s) conflicts with n_cores = {n}",
                                list.len()
                            ),
                        });
                    }
                }
                list.clone()
            }
            single => vec![single.clone(); self.n_cores.unwrap_or(1)],
        };
        let mut b: SimSessionBuilder = SimSession::builder();
        for (i, w) in per_core.iter().enumerate() {
            // The seed ladder Pair established: core 0 runs the job's
            // own seed, core i runs `seed ^ (0x9999 * i)`.
            let seed = p.seed ^ 0x9999u64.wrapping_mul(i as u64);
            b = b.boxed_workload(w.core_source(seed)?);
        }
        // An explicit `n_cores` opts into the contended N-core timing
        // model at *every* count (including 1 and 2, so a core-count
        // scaling sweep is apples-to-apples). `None` keeps the
        // historical defaults: paper_single_core / paper_dual_core on
        // the legacy uncontended model.
        if let Some(n) = self.n_cores {
            b = b.system(triangel_sim::SystemConfig::paper_n_core(n));
        }
        b = b
            .label(self.workload.label())
            .warmup(p.warmup)
            .accesses(p.accesses)
            .sizing_window(p.sizing_window)
            .sample_every(self.sample_every)
            .exec_threads(self.exec_threads)
            .prefetcher(self.prefetcher);
        if let MapperSpec::Realistic(seed) = self.mapper {
            b = b.page_mapper(PageMapper::realistic(seed));
        }
        if let Some(features) = self.features {
            b = b.triangel_features(features);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> RunParams {
        RunParams {
            warmup: 10,
            accesses: 10,
            sizing_window: 5,
            seed: 1,
        }
    }

    #[test]
    fn keys_distinguish_configurations() {
        let a = JobSpec::new(
            WorkloadSpec::Spec(SpecWorkload::Xalan),
            PrefetcherChoice::Triangel,
            params(),
        );
        let b = JobSpec::new(
            WorkloadSpec::Spec(SpecWorkload::Xalan),
            PrefetcherChoice::TriangelBloom,
            params(),
        );
        let c = JobSpec::new(
            WorkloadSpec::Spec(SpecWorkload::Mcf),
            PrefetcherChoice::Triangel,
            params(),
        );
        assert_ne!(a.key(), b.key());
        assert_ne!(a.key(), c.key());
        assert_eq!(a.key(), a.clone().key());
    }

    #[test]
    fn sizing_window_enters_key_only_where_it_matters() {
        let mut p1 = params();
        let mut p2 = params();
        p1.sizing_window = 100;
        p2.sizing_window = 999;
        let key = |pf: PrefetcherChoice, p: RunParams| {
            JobSpec::new(WorkloadSpec::Spec(SpecWorkload::Mcf), pf, p).key()
        };
        // Configurations that never read the window — the baseline and
        // the whole Triage family — share one run across sweeps that
        // differ only in it (the fig18/fig19 cache-hit case).
        for pf in [
            PrefetcherChoice::Baseline,
            PrefetcherChoice::Triage,
            PrefetcherChoice::TriageDeg4,
            PrefetcherChoice::TriageDeg4Look2,
        ] {
            assert_eq!(key(pf, p1), key(pf, p2), "{pf:?} must ignore the window");
        }
        // Triangel's Set Dueller genuinely depends on it.
        assert_ne!(
            key(PrefetcherChoice::Triangel, p1),
            key(PrefetcherChoice::Triangel, p2)
        );
    }

    #[test]
    fn features_enter_the_key_only_when_set() {
        let job = JobSpec::new(
            WorkloadSpec::Spec(SpecWorkload::Xalan),
            PrefetcherChoice::Triangel,
            params(),
        );
        let base_key = job.key();
        assert!(
            !base_key.contains("|f="),
            "default jobs must keep their historical keys: {base_key}"
        );
        let gate = TriangelFeatures {
            train_on_eviction: true,
            ..TriangelFeatures::all()
        };
        let gated = job.clone().features(gate);
        assert_ne!(base_key, gated.key());
        assert!(gated.key().contains("train_on_eviction: true"));
        // A configuration that ignores the override must keep its key:
        // a gated Triage column cache-shares with the ungated one.
        let triage = JobSpec::new(
            WorkloadSpec::Spec(SpecWorkload::Xalan),
            PrefetcherChoice::Triage,
            params(),
        );
        assert_eq!(triage.key(), triage.clone().features(gate).key());
    }

    #[test]
    fn sample_every_never_enters_the_key() {
        let job = JobSpec::new(
            WorkloadSpec::Spec(SpecWorkload::Mcf),
            PrefetcherChoice::Triangel,
            params(),
        );
        let sampled = job.clone().sample_every(1_000);
        assert_eq!(
            job.key(),
            sampled.key(),
            "sampling is observational; it must not fragment the cache key space"
        );
        let threaded = job.clone().exec_threads(8);
        assert_eq!(
            job.key(),
            threaded.key(),
            "intra-sim threading is observational; it must not fragment the cache key space"
        );
    }

    #[test]
    fn irregular_workloads_get_distinct_keys() {
        let keys: Vec<String> = IrregularWorkload::ALL
            .into_iter()
            .map(|wl| {
                JobSpec::new(
                    WorkloadSpec::Irregular(wl),
                    PrefetcherChoice::Triangel,
                    params(),
                )
                .key()
            })
            .collect();
        for (i, a) in keys.iter().enumerate() {
            assert!(a.starts_with("irr:"), "{a}");
            for b in &keys[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn trace_file_spec_pins_the_header() {
        let dir = std::env::temp_dir().join(format!("triangel-job-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pin.trc");
        let mut src = IrregularWorkload::ZipfKv.generator(3);
        triangel_workloads::trace_file::record_trace(&mut src, 64, &path).unwrap();

        let spec = WorkloadSpec::trace_file(&path).unwrap();
        let WorkloadSpec::TraceFile { records, .. } = &spec else {
            panic!("wrong variant");
        };
        assert_eq!(*records, 64);
        let job = JobSpec::new(spec.clone(), PrefetcherChoice::Triangel, params());
        assert!(job.key().starts_with("trace:"), "{}", job.key());
        assert_eq!(job.workload.label(), "pin.trc");
        job.run().unwrap();

        // Re-record different content at the same path: the stale spec
        // must be refused at session time, not replayed under its old
        // key.
        let mut src2 = IrregularWorkload::ZipfKv.generator(4);
        triangel_workloads::trace_file::record_trace(&mut src2, 64, &path).unwrap();
        match job.session() {
            Err(SimError::Workload { message }) => {
                assert!(message.contains("changed on disk"), "{message}");
            }
            Err(e) => panic!("wrong error for stale trace: {e}"),
            Ok(_) => panic!("stale trace spec accepted"),
        }
        // A fresh spec over the new content gets a different key.
        let fresh = WorkloadSpec::trace_file(&path).unwrap();
        assert_ne!(
            JobSpec::new(fresh, PrefetcherChoice::Triangel, params()).key(),
            job.key()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn n_cores_enters_the_key_only_when_set() {
        let job = JobSpec::new(
            WorkloadSpec::Spec(SpecWorkload::Mcf),
            PrefetcherChoice::Triangel,
            params(),
        );
        assert!(
            !job.key().contains("|nc="),
            "default jobs must keep their historical keys: {}",
            job.key()
        );
        let quad = job.clone().with_cores(4);
        assert_ne!(job.key(), quad.key());
        assert!(quad.key().ends_with("|nc=4"), "{}", quad.key());
        assert_ne!(quad.key(), job.clone().with_cores(8).key());
    }

    #[test]
    fn with_cores_replicates_a_single_workload() {
        let job = JobSpec::new(
            WorkloadSpec::Spec(SpecWorkload::Mcf),
            PrefetcherChoice::Baseline,
            params(),
        )
        .with_cores(4);
        let session = job.session().unwrap();
        assert_eq!(session.engine().system().core_count(), 4);
        // Beyond two cores the builder defaults to the contended
        // N-core configuration.
        assert!(session.engine().system().config().contention.cycle_ordered);
    }

    #[test]
    fn multi_workload_builds_heterogeneous_cores() {
        let job = JobSpec::new(
            WorkloadSpec::Multi(vec![
                WorkloadSpec::Spec(SpecWorkload::Mcf),
                WorkloadSpec::Irregular(IrregularWorkload::ZipfKv),
            ]),
            PrefetcherChoice::Triangel,
            params(),
        );
        assert!(job.key().starts_with("multi:[spec:"), "{}", job.key());
        let report = job.run().unwrap();
        assert_eq!(report.cores.len(), 2);
        assert_ne!(report.cores[0].workload, report.cores[1].workload);
    }

    #[test]
    fn conflicting_core_counts_are_typed_errors() {
        let pair = JobSpec::new(
            WorkloadSpec::Pair(SpecWorkload::Mcf, SpecWorkload::Xalan),
            PrefetcherChoice::Baseline,
            params(),
        )
        .with_cores(4);
        assert!(matches!(pair.session(), Err(SimError::Workload { .. })));
        let nested = JobSpec::new(
            WorkloadSpec::Multi(vec![WorkloadSpec::Pair(
                SpecWorkload::Mcf,
                SpecWorkload::Xalan,
            )]),
            PrefetcherChoice::Baseline,
            params(),
        );
        assert!(matches!(nested.session(), Err(SimError::Workload { .. })));
    }

    #[test]
    fn pair_matches_the_equivalent_multi_session() {
        // Pair(a, b) and Multi([a, b]) build identical simulations (the
        // seed ladder is shared), though their keys differ.
        let p = params();
        let pair = JobSpec::new(
            WorkloadSpec::Pair(SpecWorkload::Mcf, SpecWorkload::Xalan),
            PrefetcherChoice::Triangel,
            p,
        );
        let multi = JobSpec::new(
            WorkloadSpec::Multi(vec![
                WorkloadSpec::Spec(SpecWorkload::Mcf),
                WorkloadSpec::Spec(SpecWorkload::Xalan),
            ]),
            PrefetcherChoice::Triangel,
            p,
        );
        let a = pair.run().unwrap();
        let b = multi.run().unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn mapper_enters_the_key() {
        let spec = WorkloadSpec::Spec(SpecWorkload::Gcc166);
        let a = JobSpec::new(spec.clone(), PrefetcherChoice::Triage, params());
        let b =
            JobSpec::new(spec, PrefetcherChoice::Triage, params()).mapper(MapperSpec::Realistic(3));
        assert_ne!(a.key(), b.key());
    }
}
