//! The content-addressed on-disk result store.

use std::fs::{File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use triangel_obs::{Probe, ProbeSet};
use triangel_sim::{RunReport, SNAPSHOT_VERSION};
use triangel_types::snap::{snap_check, SnapError, SnapReader, SnapWriter};

use crate::flock;
use crate::framing::{report_from_bytes, report_to_bytes};

/// Magic opening every store entry file.
pub const ENTRY_MAGIC: [u8; 8] = *b"TRGLSTO\0";

/// Version of the store entry envelope itself (the framing around the
/// persisted report). Bumped when the envelope layout changes.
pub const STORE_FORMAT_VERSION: u32 = 1;

/// FNV-1a over the job key: the stable file stem for a job's
/// artifacts. Shared with the campaign runner so a campaign directory
/// and a store directory name the same job the same way.
pub fn key_stem(key: &str) -> String {
    format!("{:016x}", fnv1a(key.as_bytes()))
}

/// FNV-1a 64-bit hash (also the entry payload checksum).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Atomically replaces `path` with `bytes` (write to a sibling temp
/// file, then rename), so a kill mid-write never corrupts an artifact.
///
/// # Errors
///
/// The underlying filesystem error.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Store traffic counters. All monotonic; shared across every thread
/// using one [`ResultStore`] handle.
#[derive(Debug, Default)]
pub struct StoreStats {
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    discards: AtomicU64,
}

impl StoreStats {
    /// Lookups satisfied from a persisted entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found no usable entry.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries published (one per job executed against this handle).
    pub fn inserts(&self) -> u64 {
        self.inserts.load(Ordering::Relaxed)
    }

    /// Corrupt or stale entries discarded (each one was re-executed).
    pub fn discards(&self) -> u64 {
        self.discards.load(Ordering::Relaxed)
    }

    /// The standard one-line rendering, e.g. for stderr summaries:
    /// `hits=3 misses=14 inserts=14 discards=0`.
    pub fn render(&self) -> String {
        format!(
            "hits={} misses={} inserts={} discards={}",
            self.hits(),
            self.misses(),
            self.inserts(),
            self.discards()
        )
    }
}

impl Probe for StoreStats {
    fn probe(&self, out: &mut ProbeSet) {
        out.record("hits", self.hits());
        out.record("misses", self.misses());
        out.record("inserts", self.inserts());
        out.record("discards", self.discards());
    }
}

/// The outcome of [`ResultStore::claim_blocking`].
pub enum Claim<'a> {
    /// Another writer published the job while we waited; here is its
    /// report.
    Hit(Arc<RunReport>),
    /// We hold the job: execute it and [`JobLease::publish`] the
    /// report. Dropping the lease unpublished releases the job for the
    /// next claimant.
    Lease(JobLease<'a>),
}

/// Exclusive right to execute one job, backed by an `flock` on the
/// job's lock file. Held for the duration of the simulation; the lock
/// releases when the lease drops (including on panic or process
/// death), so a crashed writer never wedges the store.
pub struct JobLease<'a> {
    store: &'a ResultStore,
    key: String,
    // Held only for its flock; dropping it releases the lock.
    _lock: File,
}

impl JobLease<'_> {
    /// The claimed job's content key.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// Publishes the finished report under the leased key, then
    /// releases the lock. Publish-before-unlock is the exactly-once
    /// guarantee: a writer blocked on our lock re-checks the store the
    /// moment it acquires it, and finds this entry.
    pub fn publish(self, report: &RunReport) {
        self.store.put(&self.key, report);
    }
}

/// An on-disk, content-addressed result store shared across processes.
///
/// Maps a [`JobSpec` content key](crate) (the same string the
/// in-process `ResultCache` uses) to a framed [`RunReport`], interval
/// series included. Layout under the store directory:
///
/// * `entries/<stem>.rpt` — one entry per job, `<stem>` the FNV-1a of
///   the key ([`key_stem`]). Written atomically (temp + rename) and
///   self-checking: envelope magic + versions, the full key (collision
///   guard), and a payload checksum.
/// * `locks/<stem>.lock` — empty `flock(2)` rendezvous files for
///   cross-process claim coordination.
/// * `store.meta` — human-readable version banner.
///
/// Entries record both [`STORE_FORMAT_VERSION`] and the simulator's
/// [`SNAPSHOT_VERSION`]: an entry written by a build whose simulation
/// semantics differ is *stale*, discarded loudly, and re-executed —
/// the same resume semantics the campaign runner pins.
///
/// Distinct keys can hash to the same stem. Colliding keys probe
/// suffixed slots (`entries/<stem>-1.rpt`, `-2`, … up to
/// [`MAX_STEM_PROBES`]): a read walks the slots until it finds its own
/// key or an absent file, and a publish lands in the first slot that
/// is free or already holds its key. Both colliding keys therefore
/// stay cached instead of overwriting each other on every publish.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    stats: StoreStats,
    stem_mask: u64,
}

/// Slots probed per stem before a publish falls back to overwriting
/// the last slot. Real fnv64 collisions are vanishingly rare; the
/// bound only caps pathological stores.
pub const MAX_STEM_PROBES: usize = 8;

impl ResultStore {
    /// Opens (creating if needed) the store under `dir`.
    ///
    /// # Errors
    ///
    /// Filesystem errors creating the layout.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<ResultStore> {
        ResultStore::open_with_stem_bits(dir, 64)
    }

    /// Like [`ResultStore::open`], but truncates stem hashes to the low
    /// `bits` bits. This is a fault-injection knob: with a tiny width
    /// (even 0), arbitrary keys collide on the same stem, making the
    /// suffix-probing collision path testable without hunting for real
    /// 64-bit fnv collisions. Production callers use [`ResultStore::open`]
    /// (full width). Stores opened at different widths must not share a
    /// directory.
    ///
    /// # Errors
    ///
    /// Filesystem errors creating the layout.
    pub fn open_with_stem_bits(dir: impl Into<PathBuf>, bits: u32) -> io::Result<ResultStore> {
        let stem_mask = if bits >= 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        let dir = dir.into();
        std::fs::create_dir_all(dir.join("entries"))?;
        std::fs::create_dir_all(dir.join("locks"))?;
        let meta_path = dir.join("store.meta");
        let banner =
            format!("triangel-store v{STORE_FORMAT_VERSION} snapshot={SNAPSHOT_VERSION}\n");
        match std::fs::read_to_string(&meta_path) {
            Ok(existing) if existing == banner => {}
            Ok(existing) => {
                eprintln!(
                    "[store] version banner changed ({} -> {}); stale entries will be \
                     discarded as they are touched",
                    existing.trim(),
                    banner.trim()
                );
                write_atomic(&meta_path, banner.as_bytes())?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                write_atomic(&meta_path, banner.as_bytes())?;
            }
            Err(e) => return Err(e),
        }
        Ok(ResultStore {
            dir,
            stats: StoreStats::default(),
            stem_mask,
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// This handle's traffic counters.
    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    fn stem(&self, key: &str) -> String {
        format!("{:016x}", fnv1a(key.as_bytes()) & self.stem_mask)
    }

    /// The entry file for `key`'s first probe slot (colliding keys may
    /// live in suffixed siblings; see the type docs).
    pub fn entry_path(&self, key: &str) -> PathBuf {
        self.slot_path(&self.stem(key), 0)
    }

    fn slot_path(&self, stem: &str, slot: usize) -> PathBuf {
        let name = if slot == 0 {
            format!("{stem}.rpt")
        } else {
            format!("{stem}-{slot}.rpt")
        };
        self.dir.join("entries").join(name)
    }

    fn lock_path(&self, key: &str) -> PathBuf {
        self.dir
            .join("locks")
            .join(format!("{}.lock", self.stem(key)))
    }

    /// Looks up `key`, counting a hit or a miss. Corrupt or stale
    /// entries are discarded loudly and read as a miss — the caller
    /// re-executes the job, and the fresh publish replaces the entry.
    pub fn get(&self, key: &str) -> Option<Arc<RunReport>> {
        let found = self.read_entry(key);
        if found.is_some() {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Publishes a finished report under `key` (atomic replace), into
    /// the first probe slot that is absent, corrupt, or already ours —
    /// never over another key's valid entry (unless every slot is
    /// taken by colliding keys, where the last slot is sacrificed).
    pub fn put(&self, key: &str, report: &RunReport) {
        let stem = self.stem(key);
        let mut slot = MAX_STEM_PROBES - 1;
        for probe in 0..MAX_STEM_PROBES {
            match std::fs::read(self.slot_path(&stem, probe)) {
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    slot = probe;
                    break;
                }
                Ok(bytes) => match entry_from_bytes(key, &bytes) {
                    Ok(None) => continue, // another key's valid entry
                    Ok(Some(_)) | Err(_) => {
                        slot = probe;
                        break;
                    }
                },
                Err(_) => {
                    slot = probe;
                    break;
                }
            }
        }
        let path = self.slot_path(&stem, slot);
        match write_atomic(&path, &entry_to_bytes(key, report)) {
            Ok(()) => {
                self.stats.inserts.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => eprintln!("[store] publish failed for {key}: {e}"),
        }
    }

    /// Claims the right to execute `key`, blocking on the job's lock
    /// until it is free. Call this after a missed [`ResultStore::get`]:
    /// if another writer (thread or process) published the entry while
    /// we waited for the lock, the claim resolves to [`Claim::Hit`]
    /// without executing anything; otherwise the returned lease holds
    /// the lock until the report is published (or the lease dropped).
    ///
    /// Exactly-once follows from the publish-before-unlock ordering in
    /// [`JobLease::publish`] plus this re-check under the lock.
    ///
    /// # Errors
    ///
    /// Filesystem or `flock` errors; callers may fall back to plain
    /// (uncoordinated) execution.
    pub fn claim_blocking(&self, key: &str) -> io::Result<Claim<'_>> {
        let lock = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(self.lock_path(key))?;
        flock::lock_exclusive(&lock)?;
        // Under the lock: did whoever held it before us publish?
        if let Some(report) = self.read_entry(key) {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Claim::Hit(report));
        }
        Ok(Claim::Lease(JobLease {
            store: self,
            key: key.to_string(),
            _lock: lock,
        }))
    }

    /// Reads and validates the entry for `key`, without counting.
    /// Probes the stem's suffixed slots past colliding keys' entries
    /// (which stay untouched) until it finds its own key or an absent
    /// slot.
    fn read_entry(&self, key: &str) -> Option<Arc<RunReport>> {
        let stem = self.stem(key);
        for probe in 0..MAX_STEM_PROBES {
            let path = self.slot_path(&stem, probe);
            let bytes = match std::fs::read(&path) {
                Ok(b) => b,
                // A publish always lands in the first non-foreign slot,
                // so an absent slot proves the key is not stored.
                Err(e) if e.kind() == io::ErrorKind::NotFound => return None,
                Err(e) => {
                    eprintln!("[store] unreadable entry for {key}: {e}");
                    return None;
                }
            };
            match entry_from_bytes(key, &bytes) {
                Ok(Some(report)) => return Some(Arc::new(report)),
                Ok(None) => {
                    // A different key hashed to this stem: someone
                    // else's valid entry. Leave it alone and probe the
                    // next suffixed slot; both keys stay cached.
                    eprintln!(
                        "[store] key-stem collision on {stem} (slot {probe}): probing next slot"
                    );
                }
                Err(e) => {
                    self.stats.discards.fetch_add(1, Ordering::Relaxed);
                    eprintln!("[store] discarding entry for {key}: {e} (will re-execute)");
                    let _ = std::fs::remove_file(&path);
                    return None;
                }
            }
        }
        None
    }
}

impl Probe for ResultStore {
    fn probe(&self, out: &mut ProbeSet) {
        self.stats.probe(out);
    }
}

/// Frames one store entry: envelope (magic, versions, key) around the
/// report payload, closed by a payload checksum.
fn entry_to_bytes(key: &str, report: &RunReport) -> Vec<u8> {
    let payload = report_to_bytes(report);
    let mut w = SnapWriter::new();
    w.bytes(&ENTRY_MAGIC);
    w.u32(STORE_FORMAT_VERSION);
    w.u32(SNAPSHOT_VERSION);
    w.str(key);
    w.bytes(&payload);
    w.u64(fnv1a(&payload));
    w.into_bytes()
}

/// Parses a store entry. `Ok(None)` means the entry is valid but
/// stores a *different* key (a stem collision); errors mean the entry
/// is corrupt or stale and must be discarded.
fn entry_from_bytes(key: &str, bytes: &[u8]) -> Result<Option<RunReport>, SnapError> {
    let mut r = SnapReader::new(bytes);
    snap_check(r.bytes()? == ENTRY_MAGIC, "bad entry magic")?;
    let fmt = r.u32()?;
    if fmt != STORE_FORMAT_VERSION {
        return Err(SnapError::Version {
            found: fmt,
            expected: STORE_FORMAT_VERSION,
        });
    }
    let snap = r.u32()?;
    if snap != SNAPSHOT_VERSION {
        return Err(SnapError::Version {
            found: snap,
            expected: SNAPSHOT_VERSION,
        });
    }
    let stored_key = r.str()?;
    let payload = r.bytes()?;
    let checksum = r.u64()?;
    r.finish()?;
    snap_check(checksum == fnv1a(payload), "entry checksum mismatch")?;
    if stored_key != key {
        return Ok(None);
    }
    report_from_bytes(payload).map(Some)
}
