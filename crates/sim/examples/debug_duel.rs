//! Diagnostic trace of the Set Dueller: runs one workload under full
//! Triangel and prints the Markov-partition allocation, confidence-gate
//! summary and internal counters at fixed intervals.
//!
//! Usage: `cargo run --release -p triangel-sim --example debug_duel [workload-index]`
use triangel_core::{Triangel, TriangelConfig};
use triangel_sim::{Engine, MemorySystem, PrefetcherImpl, SystemConfig};
use triangel_workloads::paging::PageMapper;
use triangel_workloads::spec::SpecWorkload;

fn main() {
    let wl: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().unwrap())
        .unwrap_or(0);
    let wl = SpecWorkload::ALL[wl];
    let mut cfg = TriangelConfig::paper_default();
    cfg.sizing_window = 150_000;
    let pf = PrefetcherImpl::Triangel(Box::new(Triangel::new(cfg)));
    let system = MemorySystem::with_prefetchers(SystemConfig::paper_single_core(), vec![pf]);
    let mut engine = Engine::try_new(
        system,
        vec![Box::new(wl.generator(42))],
        PageMapper::realistic(0xA11C),
    )
    .unwrap();
    println!("{}:", wl.label());
    for i in 0..24 {
        engine.run_accesses(150_000);
        println!(
            "  w{i}: ways={} {}",
            engine.system().markov_ways(),
            engine.system().prefetcher_probe(0).render()
        );
    }
}
