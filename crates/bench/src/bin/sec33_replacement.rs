//! Reproduces the Section 3.3 observation: HawkEye versus simpler
//! policies for Markov-entry replacement barely matters at the full
//! 1 MiB table, and matters more when the table is artificially
//! capacity-limited.
//!
//! We sweep Triage with {LRU, SRRIP, HawkEye} entry replacement at the
//! full partition and at a quarter-size partition (2 max ways =
//! 256 KiB-class), reporting geomean speedup over the stride baseline.
//! The per-workload stride baselines are shared between the two
//! capacity points through the harness result cache.
//!
//! Declarative definition: `triangel_bench::figures` registry entry
//! `"sec33_replacement"`, executed by the `triangel-harness` scheduler
//! (`--jobs N` controls worker threads; results are identical for any
//! value).

fn main() {
    triangel_bench::figures::run_main("sec33_replacement");
}
