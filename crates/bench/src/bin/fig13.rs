//! Reproduces Fig. 13 of the paper. See DESIGN.md's experiment index.

use triangel_bench::{SpecSweep, SweepParams};

fn main() {
    let params = SweepParams::from_env();
    let sweep = SpecSweep::run(SpecSweep::paper_configs(), &params);
    sweep.fig13_coverage().print();
}
