//! The History Sampler (Section 4.4, Fig. 7 of the paper).

use triangel_types::rng::Lcg;
use triangel_types::{xor_fold, LineAddr};

/// A sampled `(address, target)` pair with its bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Sample {
    addr_tag: u32,
    train_idx: u16,
    target: LineAddr,
    timestamp: u32,
    used: bool,
    fifo: u64,
}

/// A hit in the sampler: the previously recorded target and timestamp
/// for a repeating address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleVerdict {
    /// The successor recorded when the pair was sampled.
    pub target: LineAddr,
    /// The per-PC timestamp at sampling time; the difference to the
    /// current timestamp is the local reuse distance (Section 4.4.1).
    pub timestamp: u32,
    /// Whether this sample had already been hit before.
    pub previously_used: bool,
}

/// An evicted sample, reported so the prefetcher can adjust sample rates
/// and reuse confidence (Section 4.4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedSample {
    /// Training-table slot the sample belonged to.
    pub train_idx: u16,
    /// Its sampling-time timestamp.
    pub timestamp: u32,
    /// Whether it was ever hit.
    pub used: bool,
}

/// The 512-entry, 2-way-associative History Sampler.
///
/// It records randomly chosen `(LastAddr[0], CurrentAddress)` training
/// pairs so that, when an address repeats much later (far beyond what
/// any cache retains), Triangel can measure the PC's local reuse
/// distance and whether the successor repeated too.
#[derive(Debug)]
pub struct HistorySampler {
    sets: usize,
    ways: usize,
    slots: Vec<Option<Sample>>,
    fifo_clock: u64,
    rng: Lcg,
}

impl HistorySampler {
    /// Creates a sampler with `entries` slots, 2-way associative.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive multiple of 2.
    pub fn new(entries: usize, seed: u64) -> Self {
        assert!(
            entries >= 2 && entries.is_multiple_of(2),
            "sampler is 2-way associative"
        );
        let sets = (entries / 2).next_power_of_two();
        HistorySampler {
            sets,
            ways: 2,
            slots: vec![None; sets * 2],
            fifo_clock: 0,
            rng: Lcg::new(seed),
        }
    }

    /// Number of slots (the `SamplerSize` in the insertion probability).
    pub fn capacity(&self) -> usize {
        self.sets * self.ways
    }

    fn set_of(&self, addr: LineAddr) -> usize {
        (xor_fold(addr.index(), 20) as usize) & (self.sets - 1)
    }

    fn tag_of(&self, addr: LineAddr) -> u32 {
        xor_fold(addr.index().rotate_left(17), 16) as u32
    }

    /// Decides whether to sample this training event, using the paper's
    /// probability `SamplerSize / MaxSize * 2^(SampleRate - 8)`.
    pub fn should_sample(&mut self, sample_rate: u32, max_size: u64) -> bool {
        let base = self.capacity() as f64 / max_size as f64;
        let p = base * 2f64.powi(sample_rate as i32 - 8);
        self.rng.chance(p)
    }

    /// Looks up `addr` for the given training slot. On a hit the sample
    /// is marked used and *refreshed*: its timestamp becomes `now_ts`
    /// and its target the newly observed successor, so that the next
    /// repetition measures the inter-occurrence reuse distance (the
    /// quantity ReuseConf compares against `MaxSize`) rather than the
    /// ever-growing age since first sampling.
    pub fn lookup(
        &mut self,
        addr: LineAddr,
        train_idx: u16,
        now_ts: u32,
        observed_target: LineAddr,
    ) -> Option<SampleVerdict> {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        for way in 0..self.ways {
            let slot = &mut self.slots[set * self.ways + way];
            if let Some(s) = slot {
                if s.addr_tag == tag && s.train_idx == train_idx {
                    let verdict = SampleVerdict {
                        target: s.target,
                        timestamp: s.timestamp,
                        previously_used: s.used,
                    };
                    s.used = true;
                    s.timestamp = now_ts;
                    s.target = observed_target;
                    return Some(verdict);
                }
            }
        }
        None
    }

    /// Replaces the current target recorded for `addr` (used after a
    /// Second-Chance resolution keeps a sample alive for a new target).
    pub fn update_target(&mut self, addr: LineAddr, train_idx: u16, target: LineAddr) {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        for way in 0..self.ways {
            if let Some(s) = &mut self.slots[set * self.ways + way] {
                if s.addr_tag == tag && s.train_idx == train_idx {
                    s.target = target;
                    return;
                }
            }
        }
    }

    /// Inserts a sample, returning whatever older sample it displaced.
    pub fn insert(
        &mut self,
        addr: LineAddr,
        train_idx: u16,
        target: LineAddr,
        timestamp: u32,
    ) -> Option<EvictedSample> {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        self.fifo_clock += 1;
        let sample = Sample {
            addr_tag: tag,
            train_idx,
            target,
            timestamp,
            used: false,
            fifo: self.fifo_clock,
        };

        // Same-key overwrite first.
        for way in 0..self.ways {
            let idx = set * self.ways + way;
            if let Some(s) = self.slots[idx] {
                if s.addr_tag == tag && s.train_idx == train_idx {
                    self.slots[idx] = Some(sample);
                    return Some(EvictedSample {
                        train_idx: s.train_idx,
                        timestamp: s.timestamp,
                        used: s.used,
                    });
                }
            }
        }
        // Empty way next.
        for way in 0..self.ways {
            let idx = set * self.ways + way;
            if self.slots[idx].is_none() {
                self.slots[idx] = Some(sample);
                return None;
            }
        }
        // Evict the older way (FIFO).
        let idx = (0..self.ways)
            .map(|w| set * self.ways + w)
            .min_by_key(|i| self.slots[*i].map(|s| s.fifo).unwrap_or(0))
            .expect("two ways");
        let old = self.slots[idx].expect("occupied");
        self.slots[idx] = Some(sample);
        Some(EvictedSample {
            train_idx: old.train_idx,
            timestamp: old.timestamp,
            used: old.used,
        })
    }

    /// Number of occupied slots.
    pub fn occupancy(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

use triangel_types::snap::{SnapError, SnapReader, SnapWriter, Snapshot};

impl Snapshot for HistorySampler {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.usize(self.slots.len());
        for slot in &self.slots {
            match slot {
                Some(s) => {
                    w.bool(true);
                    w.u32(s.addr_tag);
                    w.u16(s.train_idx);
                    w.u64(s.target.index());
                    w.u32(s.timestamp);
                    w.bool(s.used);
                    w.u64(s.fifo);
                }
                None => w.bool(false),
            }
        }
        w.u64(self.fifo_clock);
        self.rng.save(w)
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        r.expect_len(self.slots.len(), "sampler slots")?;
        for slot in &mut self.slots {
            *slot = if r.bool()? {
                Some(Sample {
                    addr_tag: r.u32()?,
                    train_idx: r.u16()?,
                    target: LineAddr::new(r.u64()?),
                    timestamp: r.u32()?,
                    used: r.bool()?,
                    fifo: r.u64()?,
                })
            } else {
                None
            };
        }
        self.fifo_clock = r.u64()?;
        self.rng.restore(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_roundtrip_and_used_bit() {
        let mut s = HistorySampler::new(64, 1);
        s.insert(LineAddr::new(100), 3, LineAddr::new(200), 42);
        let v = s
            .lookup(LineAddr::new(100), 3, 50, LineAddr::new(201))
            .unwrap();
        assert_eq!(v.target, LineAddr::new(200));
        assert_eq!(v.timestamp, 42);
        assert!(!v.previously_used);
        // Refreshed on hit: new timestamp and target, used bit set.
        let v2 = s
            .lookup(LineAddr::new(100), 3, 60, LineAddr::new(202))
            .unwrap();
        assert!(v2.previously_used);
        assert_eq!(v2.timestamp, 50);
        assert_eq!(v2.target, LineAddr::new(201));
    }

    #[test]
    fn train_idx_must_match() {
        let mut s = HistorySampler::new(64, 1);
        s.insert(LineAddr::new(100), 3, LineAddr::new(200), 42);
        assert!(
            s.lookup(LineAddr::new(100), 4, 43, LineAddr::new(0))
                .is_none(),
            "different PC slot"
        );
    }

    #[test]
    fn eviction_reports_victim() {
        let mut s = HistorySampler::new(2, 1); // 1 set x 2 ways
        assert!(s
            .insert(LineAddr::new(1), 1, LineAddr::new(10), 1)
            .is_none());
        assert!(s
            .insert(LineAddr::new(2), 2, LineAddr::new(20), 2)
            .is_none());
        let v = s.insert(LineAddr::new(3), 3, LineAddr::new(30), 3).unwrap();
        assert_eq!(v.train_idx, 1, "FIFO evicts the oldest");
        assert!(!v.used);
    }

    #[test]
    fn same_key_overwrite_reports_old() {
        let mut s = HistorySampler::new(64, 1);
        s.insert(LineAddr::new(5), 7, LineAddr::new(50), 1);
        let old = s.insert(LineAddr::new(5), 7, LineAddr::new(51), 9).unwrap();
        assert_eq!(old.timestamp, 1);
        assert_eq!(
            s.lookup(LineAddr::new(5), 7, 10, LineAddr::new(0))
                .unwrap()
                .target,
            LineAddr::new(51)
        );
    }

    #[test]
    fn sampling_probability_scales_with_rate() {
        let mut s = HistorySampler::new(512, 2);
        let max_size = 196_608u64;
        let trials = 200_000;
        let low = (0..trials).filter(|_| s.should_sample(0, max_size)).count();
        let mid = (0..trials).filter(|_| s.should_sample(8, max_size)).count();
        let high = (0..trials)
            .filter(|_| s.should_sample(15, max_size))
            .count();
        assert!(low < mid && mid < high, "low={low} mid={mid} high={high}");
        // Rate 8 is the base probability 512/196608 ~ 0.26%.
        let expect = trials as f64 * 512.0 / 196_608.0;
        assert!(
            (mid as f64) > expect * 0.6 && (mid as f64) < expect * 1.4,
            "mid={mid}"
        );
    }

    #[test]
    fn update_target_in_place() {
        let mut s = HistorySampler::new(64, 3);
        s.insert(LineAddr::new(9), 2, LineAddr::new(90), 5);
        s.update_target(LineAddr::new(9), 2, LineAddr::new(91));
        assert_eq!(
            s.lookup(LineAddr::new(9), 2, 6, LineAddr::new(0))
                .unwrap()
                .target,
            LineAddr::new(91)
        );
    }

    #[test]
    #[should_panic(expected = "2-way")]
    fn odd_capacity_rejected() {
        let _ = HistorySampler::new(63, 0);
    }
}
