//! Reproduces Table 1: sizing of Triangel's dedicated structures.

use triangel_core::{structure_sizes, TriangelConfig};

fn main() {
    let sizes = structure_sizes(&TriangelConfig::paper_default());
    println!("## Table 1: Sizing of Triangel's structures\n");
    println!("{:24} {:>10} {:>8}", "Table", "Entries", "Size");
    println!("{}", "-".repeat(46));
    let mut total = 0usize;
    for s in &sizes {
        let entries = if s.name == "Set Dueller" {
            "64x(8+16)".to_string()
        } else {
            s.entries.to_string()
        };
        println!("{:24} {:>10} {:>7}B", s.name, entries, s.bytes);
        total += s.bytes;
    }
    println!("{}", "-".repeat(46));
    println!("{:24} {:>10} {:>6.1}KiB", "Total", "", total as f64 / 1024.0);
    println!("\n(paper: 17.6 KiB total, versus 219.5 KiB for Triage once its");
    println!(" lookup table, HawkEye dueller and Bloom filter are counted)");
}
