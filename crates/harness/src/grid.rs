//! Declarative rows × columns sweeps folded into figure tables.

use std::sync::Arc;

use triangel_sim::report::FigureTable;
use triangel_sim::{Comparison, PrefetcherChoice, RunReport, TriangelFeatures};

use crate::job::{JobSpec, MapperSpec, RunParams, WorkloadSpec};
use crate::sweep::{JobError, Sweep, SweepOptions, SweepStats};

/// One column of a grid: a labeled prefetcher configuration, with an
/// optional Triangel feature override (the session-level gate for
/// experimental mechanisms such as `train_on_eviction`).
#[derive(Debug, Clone)]
struct Column {
    label: String,
    choice: PrefetcherChoice,
    features: Option<TriangelFeatures>,
}

/// The shape shared by every figure of the paper: a set of workloads
/// (rows), a set of prefetcher configurations (columns), and a
/// stride-only baseline per row that every cell is normalized against.
#[derive(Debug, Clone)]
pub struct GridSpec {
    rows: Vec<(String, WorkloadSpec)>,
    columns: Vec<Column>,
    baseline: PrefetcherChoice,
    params: RunParams,
    mapper: MapperSpec,
}

impl GridSpec {
    /// An empty grid at `params` scale with a stride-only baseline.
    pub fn new(params: RunParams) -> Self {
        GridSpec {
            rows: Vec::new(),
            columns: Vec::new(),
            baseline: PrefetcherChoice::Baseline,
            params,
            mapper: MapperSpec::Default,
        }
    }

    /// Adds a row, labeled with the workload's own label.
    #[must_use]
    pub fn row(self, workload: WorkloadSpec) -> Self {
        let label = workload.label();
        self.labeled_row(label, workload)
    }

    /// Adds a row with an explicit label.
    #[must_use]
    pub fn labeled_row(mut self, label: impl Into<String>, workload: WorkloadSpec) -> Self {
        self.rows.push((label.into(), workload));
        self
    }

    /// Adds all seven SPEC-like workloads as rows.
    #[must_use]
    pub fn spec_rows(mut self) -> Self {
        for wl in triangel_workloads::spec::SpecWorkload::ALL {
            self = self.row(WorkloadSpec::Spec(wl));
        }
        self
    }

    /// Adds a column, labeled with the configuration's paper label.
    #[must_use]
    pub fn column(self, choice: PrefetcherChoice) -> Self {
        let label = choice.label();
        self.labeled_column(label, choice)
    }

    /// Adds a column with an explicit label.
    #[must_use]
    pub fn labeled_column(mut self, label: impl Into<String>, choice: PrefetcherChoice) -> Self {
        self.columns.push(Column {
            label: label.into(),
            choice,
            features: None,
        });
        self
    }

    /// Adds a column whose jobs carry a [`TriangelFeatures`] override
    /// (ignored, like [`JobSpec::features`], by configurations without
    /// Triangel features). This is how the `features` ablation figure
    /// builds its `±EvictTrain` column pairs.
    #[must_use]
    pub fn labeled_column_with_features(
        mut self,
        label: impl Into<String>,
        choice: PrefetcherChoice,
        features: TriangelFeatures,
    ) -> Self {
        self.columns.push(Column {
            label: label.into(),
            choice,
            features: Some(features),
        });
        self
    }

    /// Adds several columns at once, using paper labels.
    #[must_use]
    pub fn columns(mut self, choices: impl IntoIterator<Item = PrefetcherChoice>) -> Self {
        for c in choices {
            self = self.column(c);
        }
        self
    }

    /// Runs every row under `mapper` instead of the default mapping.
    #[must_use]
    pub fn mapper(mut self, mapper: MapperSpec) -> Self {
        self.mapper = mapper;
        self
    }

    /// The declarative job list: per row, one baseline job followed by
    /// one job per column.
    pub fn jobs(&self) -> Vec<JobSpec> {
        let mut jobs = Vec::with_capacity(self.rows.len() * (1 + self.columns.len()));
        for (_, workload) in &self.rows {
            jobs.push(
                JobSpec::new(workload.clone(), self.baseline, self.params).mapper(self.mapper),
            );
            for col in &self.columns {
                let mut job =
                    JobSpec::new(workload.clone(), col.choice, self.params).mapper(self.mapper);
                if let Some(f) = col.features {
                    job = job.features(f);
                }
                jobs.push(job);
            }
        }
        jobs
    }

    /// Runs the grid.
    ///
    /// # Errors
    ///
    /// The first failing job's [`JobError`], if any job failed.
    pub fn run(&self, opts: &SweepOptions) -> Result<GridResult, JobError> {
        let mut sweep = Sweep::new();
        for job in self.jobs() {
            sweep.push(job);
        }
        let report = sweep.run(opts);
        let stats = report.stats;
        let width = 1 + self.columns.len();
        let mut baselines = Vec::with_capacity(self.rows.len());
        let mut cells = Vec::with_capacity(self.rows.len());
        let mut results = report.results.into_iter();
        let mut take = || results.next().expect("job list length");
        for _ in 0..self.rows.len() {
            baselines.push(take()?);
            cells.push((1..width).map(|_| take()).collect::<Result<Vec<_>, _>>()?);
        }
        Ok(GridResult {
            row_labels: self.rows.iter().map(|(l, _)| l.clone()).collect(),
            col_labels: self.columns.iter().map(|c| c.label.clone()).collect(),
            baselines,
            cells,
            stats,
        })
    }
}

/// A completed grid: per-row baseline plus per-cell reports, and the
/// folding helpers every figure uses.
#[derive(Debug)]
pub struct GridResult {
    row_labels: Vec<String>,
    col_labels: Vec<String>,
    baselines: Vec<Arc<RunReport>>,
    cells: Vec<Vec<Arc<RunReport>>>,
    /// Scheduler counters (executed jobs, cache hits, ...).
    pub stats: SweepStats,
}

impl GridResult {
    /// Row labels, in declaration order.
    pub fn row_labels(&self) -> &[String] {
        &self.row_labels
    }

    /// Column labels, in declaration order.
    pub fn col_labels(&self) -> &[String] {
        &self.col_labels
    }

    /// The baseline report of row `row`.
    pub fn baseline(&self, row: usize) -> &RunReport {
        &self.baselines[row]
    }

    /// The report of cell (`row`, `col`).
    pub fn report(&self, row: usize, col: usize) -> &RunReport {
        &self.cells[row][col]
    }

    /// Cell (`row`, `col`) compared against its row baseline.
    pub fn comparison(&self, row: usize, col: usize) -> Comparison {
        Comparison::new(&self.baselines[row], &self.cells[row][col])
    }

    /// Folds one metric over every cell into a figure table.
    pub fn table(
        &self,
        title: impl Into<String>,
        metric: impl Into<String>,
        f: impl Fn(Comparison) -> f64,
    ) -> FigureTable {
        let mut t = FigureTable::new(title, metric, self.col_labels.clone());
        for (r, label) in self.row_labels.iter().enumerate() {
            let vals = (0..self.col_labels.len())
                .map(|c| f(self.comparison(r, c)))
                .collect();
            t.push_row(label.clone(), vals);
        }
        t
    }

    /// Like [`GridResult::table`], but restricted to the named columns
    /// (so one wide grid can serve figures with different column sets).
    ///
    /// # Panics
    ///
    /// Panics if a requested column label does not exist.
    pub fn table_for(
        &self,
        title: impl Into<String>,
        metric: impl Into<String>,
        columns: &[&str],
        f: impl Fn(Comparison) -> f64,
    ) -> FigureTable {
        let idx: Vec<usize> = columns
            .iter()
            .map(|want| {
                self.col_labels
                    .iter()
                    .position(|l| l == want)
                    .unwrap_or_else(|| panic!("no column labeled `{want}`"))
            })
            .collect();
        let mut t = FigureTable::new(
            title,
            metric,
            columns.iter().map(|c| c.to_string()).collect(),
        );
        for (r, label) in self.row_labels.iter().enumerate() {
            let vals = idx.iter().map(|&c| f(self.comparison(r, c))).collect();
            t.push_row(label.clone(), vals);
        }
        t
    }
}
