//! End-to-end effects of Triage's metadata format choices: the
//! lookup-table corruption mechanism (Sections 3.1, 6.5) observed
//! through the prefetcher's own output, and Bloom-filter sizing
//! behaviour (Section 3.5).

use triangel_markov::TargetFormat;
use triangel_prefetch::{NullCacheView, PrefetchRequest, Prefetcher, TrainEvent, TrainKind};
use triangel_triage::{Triage, TriageConfig};
use triangel_types::{LineAddr, Pc};

fn ev(pc: u64, line: u64, n: u64) -> TrainEvent {
    TrainEvent {
        pc: Pc::new(pc),
        line: LineAddr::new(line),
        kind: TrainKind::L2Miss,
        cycle: n,
        l2_fills: n,
    }
}

fn drive(pf: &mut Triage, pc: u64, lines: &[u64], n0: &mut u64) -> Vec<PrefetchRequest> {
    let mut all = Vec::new();
    let mut out = Vec::new();
    for l in lines {
        out.clear();
        pf.on_event(&ev(pc, *l, *n0), &NullCacheView, &mut out);
        *n0 += 1;
        all.extend(out.iter().copied());
    }
    all
}

/// Two passes over a sequence spread across more upper-bit regions than
/// the 1024-entry LUT can hold: under the LUT format a large fraction of
/// second-pass prefetches reconstruct the wrong address, while the
/// 42-bit direct format is immune (the paper's Fig. 19 mechanism).
#[test]
fn lut_exhaustion_corrupts_targets_direct_format_does_not() {
    // 3000 lines spaced one per upper-bit region (2^11 lines apart under
    // offset_bits = 11): ~3000 distinct uppers against 1024 LUT slots.
    let seq: Vec<u64> = (0..3000u64).map(|k| k * 2048 + (k % 1000)).collect();
    let wrong_fraction = |format: TargetFormat| {
        let mut pf = Triage::new(TriageConfig::paper_default().with_format(format));
        let mut n = 0u64;
        drive(&mut pf, 0x40, &seq, &mut n); // training pass
        let reqs = drive(&mut pf, 0x40, &seq, &mut n); // replay pass
        assert!(
            !reqs.is_empty(),
            "replay pass must prefetch under {format:?}"
        );
        // A correct prefetch targets the trained successor of the
        // triggering line; count how many requests point anywhere else.
        let successors: std::collections::HashSet<u64> = seq.iter().copied().collect();
        let wrong = reqs
            .iter()
            .filter(|r| !successors.contains(&r.line.index()))
            .count();
        wrong as f64 / reqs.len() as f64
    };

    let lut_wrong = wrong_fraction(TargetFormat::triage_default());
    let direct_wrong = wrong_fraction(TargetFormat::Direct42);
    assert!(
        lut_wrong > 0.3,
        "exhausted LUT should fabricate many targets, got {lut_wrong:.3}"
    );
    assert!(
        direct_wrong < 0.01,
        "direct format must not fabricate targets, got {direct_wrong:.3}"
    );
}

/// Within LUT reach, the two formats replay the same predictions.
#[test]
fn formats_agree_when_lut_is_unstressed() {
    let seq: Vec<u64> = (0..500u64).map(|k| 100 + k * 3).collect();
    let replay = |format: TargetFormat| {
        let mut pf = Triage::new(TriageConfig::paper_default().with_format(format));
        let mut n = 0;
        drive(&mut pf, 0x40, &seq, &mut n);
        drive(&mut pf, 0x40, &seq, &mut n)
            .iter()
            .map(|r| r.line.index())
            .collect::<Vec<_>>()
    };
    assert_eq!(
        replay(TargetFormat::triage_default()),
        replay(TargetFormat::Direct42)
    );
}

/// Bloom sizing is monotone within a window: more unique indices never
/// shrink the partition mid-window, and the partition never exceeds the
/// maximum (Section 3.5's "persistent bias" in miniature).
#[test]
fn bloom_sizing_grows_monotonically_and_saturates() {
    let mut pf = Triage::new(TriageConfig::paper_default());
    let mut last_ways = 0;
    for k in 0..240_000u64 {
        let mut out = Vec::new();
        pf.on_event(&ev(0x40, k * 11, k), &NullCacheView, &mut out);
        let ways = pf.desired_markov_ways();
        assert!(
            ways >= last_ways,
            "partition shrank mid-window at access {k}"
        );
        assert!(ways <= 8);
        last_ways = ways;
    }
    assert_eq!(
        last_ways, 8,
        "240k unique indices must saturate the partition"
    );
}

/// Degree-4 walks stop at the first missing link rather than fabricating
/// requests.
#[test]
fn chained_walk_stops_at_chain_end() {
    let mut pf = Triage::new(TriageConfig::degree4());
    let mut n = 0u64;
    // Train only a 3-link chain: a -> b -> c -> d.
    drive(&mut pf, 0x40, &[10, 20, 30, 40], &mut n);
    // Restart the PC's history, then trigger on `a`.
    let reqs = drive(&mut pf, 0x40, &[10], &mut n);
    // Walk retrieves 20, 30, 40 and then misses (no successor of 40
    // except via the wrap pair trained when the trigger ran).
    assert!(reqs.len() <= 4);
    assert_eq!(reqs[0].line, LineAddr::new(20));
    assert!(reqs
        .iter()
        .all(|r| [20, 30, 40, 10].contains(&r.line.index())));
}
