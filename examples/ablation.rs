//! The Fig. 20 ablation ladder on a single workload.
//!
//! Starting from Triage-Degree-4 behaviour (all Triangel features off)
//! and enabling one mechanism at a time, this prints how speedup and
//! DRAM traffic evolve — a one-workload slice of `fig20`.
//!
//! ```sh
//! cargo run --release --example ablation [workload-index]
//! ```

use triangel::core::TriangelFeatures;
use triangel::sim::{Comparison, PrefetcherChoice, SimSession};
use triangel::workloads::spec::SpecWorkload;

fn main() {
    let idx: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let workload = SpecWorkload::ALL[idx.min(6)];
    println!(
        "Ablation ladder on {} (Fig. 20, one workload)\n",
        workload.label()
    );

    println!("Running baseline...");
    let base = SimSession::builder()
        .workload(workload.generator(42))
        .warmup(1_200_000)
        .accesses(600_000)
        .sizing_window(150_000)
        .run()
        .unwrap();

    println!("{:28} {:>8} {:>9}", "Configuration", "Speedup", "Traffic");
    println!("{}", "-".repeat(47));
    for step in 0..=8 {
        let run = SimSession::builder()
            .workload(workload.generator(42))
            .warmup(1_200_000)
            .accesses(600_000)
            .sizing_window(150_000)
            .prefetcher(PrefetcherChoice::TriangelLadder(step))
            .run()
            .unwrap();
        let c = Comparison::new(&base, &run);
        println!(
            "{:28} {:>7.3}x {:>8.3}x",
            TriangelFeatures::ladder_label(step),
            c.speedup,
            c.dram_traffic
        );
    }
}
