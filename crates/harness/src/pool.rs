//! A work-stealing thread pool over `std::thread`.
//!
//! Jobs are indices `0..n`; each worker owns a deque preloaded with a
//! round-robin share and steals from the tail of other workers' deques
//! when its own runs dry. Results are written into per-index slots, so
//! the returned vector's order — and anything derived from it — is
//! independent of scheduling.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Number of workers to use when the caller asks for "all cores".
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f(0..n_jobs)` across `workers` threads, returning results in
/// job order.
///
/// `f` must be pure with respect to scheduling: it may be called from
/// any worker thread, exactly once per index.
///
/// # Panics
///
/// Propagates a panic from any job after all workers finish.
pub fn run_indexed<T, F>(n_jobs: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.clamp(1, n_jobs.max(1));
    if n_jobs == 0 {
        return Vec::new();
    }
    if workers == 1 {
        // Serial fast path: no threads, same results by construction.
        return (0..n_jobs).map(f).collect();
    }

    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for job in 0..n_jobs {
        queues[job % workers].lock().unwrap().push_back(job);
    }
    let slots: Vec<Mutex<Option<T>>> = (0..n_jobs).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for me in 0..workers {
            let queues = &queues;
            let slots = &slots;
            let f = &f;
            scope.spawn(move || loop {
                // Own queue first (front: cache-friendly order)...
                let mut job = queues[me].lock().unwrap().pop_front();
                // ...then steal from the back of the others.
                if job.is_none() {
                    for other in (0..queues.len()).filter(|o| *o != me) {
                        job = queues[other].lock().unwrap().pop_back();
                        if job.is_some() {
                            break;
                        }
                    }
                }
                // All queues empty: no new work is ever injected, done.
                let Some(job) = job else { break };
                let result = f(job);
                *slots[job].lock().unwrap() = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .unwrap()
                .unwrap_or_else(|| panic!("job {i} produced no result"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_in_job_order_regardless_of_workers() {
        for workers in [1, 2, 8, 32] {
            let out = run_indexed(100, workers, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        run_indexed(64, 8, |i| {
            counters[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn stealing_drains_imbalanced_queues() {
        // One slow job on worker 0's queue; the rest are quick. With
        // stealing, total wall time is bounded by the slow job, but the
        // functional claim we assert is just completeness.
        let out = run_indexed(33, 4, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            i
        });
        assert_eq!(out.len(), 33);
        assert_eq!(out[32], 32);
    }

    #[test]
    fn zero_jobs_is_fine() {
        let out: Vec<u32> = run_indexed(0, 8, |_| unreachable!());
        assert!(out.is_empty());
    }
}
