//! Parallel, deterministic experiment orchestration.
//!
//! Every figure and table of the paper is a sweep of independent
//! `(workload, prefetcher-configuration)` simulations. This crate turns
//! such an experiment into *data* and runs it on all available cores:
//!
//! * [`JobSpec`] — one simulation as a value: a [`WorkloadSpec`], a
//!   [`PrefetcherChoice`](triangel_sim::PrefetcherChoice), warm-up and
//!   measurement lengths, a seed and a page-mapper choice. Every job
//!   has a content [`key`](JobSpec::key) that uniquely identifies the
//!   simulation it describes.
//! * [`pool`] — a work-stealing scheduler over `std::thread`. Results
//!   land in per-job slots, so output order (and therefore every
//!   emitted byte) is independent of how work was interleaved:
//!   `--jobs 8` produces exactly the bytes `--jobs 1` does.
//! * [`ResultCache`] — a content-keyed cache of finished runs. Shared
//!   baselines (e.g. the stride-only normalization run every figure
//!   needs) execute once per sweep — or once per *process* when the
//!   cache is shared across sweeps — and the hit counter is reported.
//! * [`Sweep`] / [`GridSpec`] — the aggregation layer: a flat job list
//!   with fold-it-yourself results, or a declarative rows × columns
//!   grid that folds [`RunReport`](triangel_sim::RunReport)s into
//!   labeled [`FigureTable`](triangel_sim::report::FigureTable)s.
//! * [`emit`] — JSON and CSV emitters for tables and sweep reports.
//! * [`goldens`] — the pinned fixture sweeps, shared by the golden
//!   tests and the `bless` re-bless devtool so they cannot drift.
//! * [`filter::Pattern`] — a small regex engine (no dependencies) used
//!   by `all_figures --filter` to select a subset of experiments.
//!
//! # Determinism
//!
//! Jobs share no mutable state: each builds its trace generator from
//! its own seed inside the worker that runs it, and the simulator
//! itself is seed-deterministic. The scheduler only decides *when* a
//! job runs, never *what* it computes, so a sweep's report is a pure
//! function of its job list.
//!
//! # Example
//!
//! ```
//! use triangel_harness::{GridSpec, RunParams, SweepOptions, WorkloadSpec};
//! use triangel_sim::PrefetcherChoice;
//! use triangel_workloads::spec::SpecWorkload;
//!
//! let grid = GridSpec::new(RunParams { warmup: 2_000, accesses: 2_000, sizing_window: 1_000, seed: 7 })
//!     .row(WorkloadSpec::Spec(SpecWorkload::Xalan))
//!     .column(PrefetcherChoice::Triangel);
//! let result = grid.run(&SweepOptions::serial()).unwrap();
//! assert!(result.comparison(0, 0).speedup > 0.0);
//! // The stride-only baseline ran exactly once.
//! assert_eq!(result.stats.executed, 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod campaign;
pub mod emit;
pub mod filter;
pub mod goldens;
mod grid;
mod job;
pub mod pool;
pub mod service;
mod sweep;

pub use campaign::{Campaign, CampaignOptions, CampaignReport, CampaignStats, JobOutcome};
pub use grid::{GridResult, GridSpec};
pub use job::{JobSpec, MapperSpec, RunParams, WorkloadSpec};
pub use service::{Client, Server, ServerOptions};
pub use sweep::{JobError, Progress, ResultCache, Sweep, SweepOptions, SweepReport, SweepStats};
// Re-exported so fixture tests and batch drivers can build
// `JobSpec::features` overrides without a direct `triangel-sim` import.
pub use triangel_sim::TriangelFeatures;
// The on-disk result store the sweep, campaign, and daemon layers all
// coordinate through (see `SweepOptions::with_store`).
pub use triangel_store::ResultStore;
