//! The Metadata Reuse Buffer (Section 4.6 of the paper).

use triangel_types::{xor_fold, LineAddr};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MrbEntry {
    lookup: LineAddr,
    target: LineAddr,
    confidence: bool,
    fifo: u64,
}

/// The 256-entry, 2-way-associative, FIFO-replaced Metadata Reuse
/// Buffer.
///
/// High-degree walks re-read the same Markov entries from one trigger to
/// the next (degree-4 walks from consecutive misses overlap in 3 of 4
/// hops). Caching the most recently used entries beside the prefetcher
/// removes those repeat L3 accesses and their 25-cycle latency. FIFO is
/// deliberate: "elements will be accessed four times then should leave"
/// (fn. 9).
#[derive(Debug)]
pub struct MetadataReuseBuffer {
    sets: usize,
    ways: usize,
    slots: Vec<Option<MrbEntry>>,
    fifo_clock: u64,
    hits: u64,
    misses: u64,
}

impl MetadataReuseBuffer {
    /// Creates a buffer with `entries` slots, 2-way associative.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive multiple of 2.
    pub fn new(entries: usize) -> Self {
        assert!(
            entries >= 2 && entries.is_multiple_of(2),
            "MRB is 2-way associative"
        );
        let sets = (entries / 2).next_power_of_two();
        MetadataReuseBuffer {
            sets,
            ways: 2,
            slots: vec![None; sets * 2],
            fifo_clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn set_of(&self, lookup: LineAddr) -> usize {
        (xor_fold(lookup.index(), 20) as usize) & (self.sets - 1)
    }

    fn find(&self, lookup: LineAddr) -> Option<usize> {
        let set = self.set_of(lookup);
        (0..self.ways)
            .map(|w| set * self.ways + w)
            .find(|i| self.slots[*i].map(|e| e.lookup) == Some(lookup))
    }

    /// Looks up a Markov entry, avoiding an L3 access on a hit. FIFO:
    /// hits do not refresh replacement priority.
    pub fn lookup(&mut self, lookup: LineAddr) -> Option<(LineAddr, bool)> {
        match self.find(lookup) {
            Some(i) => {
                self.hits += 1;
                let e = self.slots[i].expect("found slot is occupied");
                Some((e.target, e.confidence))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Peeks without touching statistics (used by the update-suppression
    /// check on the training path).
    pub fn peek(&self, lookup: LineAddr) -> Option<(LineAddr, bool)> {
        self.find(lookup).map(|i| {
            let e = self.slots[i].expect("found slot is occupied");
            (e.target, e.confidence)
        })
    }

    /// Inserts or refreshes the cached copy of a Markov entry.
    pub fn insert(&mut self, lookup: LineAddr, target: LineAddr, confidence: bool) {
        self.fifo_clock += 1;
        let entry = MrbEntry {
            lookup,
            target,
            confidence,
            fifo: self.fifo_clock,
        };
        if let Some(i) = self.find(lookup) {
            // Refresh contents but keep FIFO position: updates are not
            // re-arrivals.
            let old = self.slots[i].expect("found slot is occupied");
            self.slots[i] = Some(MrbEntry {
                fifo: old.fifo,
                ..entry
            });
            return;
        }
        let set = self.set_of(lookup);
        let idx = (0..self.ways)
            .map(|w| set * self.ways + w)
            .find(|i| self.slots[*i].is_none())
            .unwrap_or_else(|| {
                (0..self.ways)
                    .map(|w| set * self.ways + w)
                    .min_by_key(|i| self.slots[*i].map(|e| e.fifo).unwrap_or(0))
                    .expect("two ways")
            });
        self.slots[idx] = Some(entry);
    }

    /// Drops the cached copy (after a Markov update changes the entry).
    pub fn invalidate(&mut self, lookup: LineAddr) {
        if let Some(i) = self.find(lookup) {
            self.slots[i] = None;
        }
    }

    /// Buffer hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Buffer misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

use triangel_types::snap::{SnapError, SnapReader, SnapWriter, Snapshot};

impl Snapshot for MetadataReuseBuffer {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.usize(self.slots.len());
        for slot in &self.slots {
            match slot {
                Some(e) => {
                    w.bool(true);
                    w.u64(e.lookup.index());
                    w.u64(e.target.index());
                    w.bool(e.confidence);
                    w.u64(e.fifo);
                }
                None => w.bool(false),
            }
        }
        w.u64(self.fifo_clock);
        w.u64(self.hits);
        w.u64(self.misses);
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        r.expect_len(self.slots.len(), "MRB slots")?;
        for slot in &mut self.slots {
            *slot = if r.bool()? {
                Some(MrbEntry {
                    lookup: LineAddr::new(r.u64()?),
                    target: LineAddr::new(r.u64()?),
                    confidence: r.bool()?,
                    fifo: r.u64()?,
                })
            } else {
                None
            };
        }
        self.fifo_clock = r.u64()?;
        self.hits = r.u64()?;
        self.misses = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let mut m = MetadataReuseBuffer::new(8);
        m.insert(LineAddr::new(1), LineAddr::new(2), true);
        assert_eq!(m.lookup(LineAddr::new(1)), Some((LineAddr::new(2), true)));
        assert_eq!(m.hits(), 1);
    }

    #[test]
    fn miss_counts() {
        let mut m = MetadataReuseBuffer::new(8);
        assert_eq!(m.lookup(LineAddr::new(9)), None);
        assert_eq!(m.misses(), 1);
    }

    #[test]
    fn peek_is_silent() {
        let mut m = MetadataReuseBuffer::new(8);
        m.insert(LineAddr::new(1), LineAddr::new(2), false);
        assert_eq!(m.peek(LineAddr::new(1)), Some((LineAddr::new(2), false)));
        assert_eq!(m.hits(), 0);
        assert_eq!(m.misses(), 0);
    }

    #[test]
    fn refresh_updates_contents() {
        let mut m = MetadataReuseBuffer::new(8);
        m.insert(LineAddr::new(1), LineAddr::new(2), false);
        m.insert(LineAddr::new(1), LineAddr::new(3), true);
        assert_eq!(m.peek(LineAddr::new(1)), Some((LineAddr::new(3), true)));
    }

    #[test]
    fn invalidate_removes() {
        let mut m = MetadataReuseBuffer::new(8);
        m.insert(LineAddr::new(1), LineAddr::new(2), false);
        m.invalidate(LineAddr::new(1));
        assert_eq!(m.peek(LineAddr::new(1)), None);
    }

    #[test]
    fn fifo_within_set() {
        // One set (2 entries): third insert with colliding keys evicts
        // the oldest even if it was recently hit.
        let mut m = MetadataReuseBuffer::new(2);
        m.insert(LineAddr::new(1), LineAddr::new(10), false);
        m.insert(LineAddr::new(2), LineAddr::new(20), false);
        let _ = m.lookup(LineAddr::new(1)); // FIFO ignores this hit
        m.insert(LineAddr::new(3), LineAddr::new(30), false);
        assert_eq!(m.peek(LineAddr::new(1)), None, "oldest evicted despite hit");
        assert!(m.peek(LineAddr::new(2)).is_some());
    }
}
