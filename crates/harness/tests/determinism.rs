//! The harness's core guarantees, exercised end-to-end on real
//! simulations: same-seed determinism, parallel/serial equivalence, and
//! exactly-once execution of shared baselines.

use std::sync::Arc;

use triangel_harness::{
    emit, GridSpec, JobSpec, ResultCache, RunParams, Sweep, SweepOptions, WorkloadSpec,
};
use triangel_sim::PrefetcherChoice;
use triangel_workloads::spec::SpecWorkload;

fn params() -> RunParams {
    RunParams {
        warmup: 3_000,
        accesses: 3_000,
        sizing_window: 1_500,
        seed: 11,
    }
}

fn small_sweep() -> Sweep {
    let mut sweep = Sweep::new();
    for wl in [
        SpecWorkload::Xalan,
        SpecWorkload::Mcf,
        SpecWorkload::Omnetpp,
    ] {
        for pf in [
            PrefetcherChoice::Baseline,
            PrefetcherChoice::Triage,
            PrefetcherChoice::Triangel,
            // A duplicate baseline, as every figure submits one.
            PrefetcherChoice::Baseline,
        ] {
            sweep.push(JobSpec::new(WorkloadSpec::Spec(wl), pf, params()));
        }
    }
    sweep
}

#[test]
fn same_seed_sweeps_emit_identical_json() {
    let a = small_sweep().run(&SweepOptions::serial());
    let b = small_sweep().run(&SweepOptions::serial());
    assert_eq!(emit::sweep_to_json(&a), emit::sweep_to_json(&b));
}

#[test]
fn parallel_equals_serial_byte_for_byte() {
    let serial = small_sweep().run(&SweepOptions::serial());
    let serial_json = emit::sweep_to_json(&serial);
    for workers in [2, 8] {
        let parallel = small_sweep().run(&SweepOptions::parallel(workers));
        assert_eq!(
            serial_json,
            emit::sweep_to_json(&parallel),
            "report changed under {workers} workers"
        );
        assert_eq!(serial.stats, parallel.stats);
    }
}

#[test]
fn shared_baseline_executes_exactly_once_per_sweep() {
    let report = small_sweep().run(&SweepOptions::parallel(8));
    // 3 workloads x 4 submissions, one of which is a duplicate
    // baseline per workload.
    assert_eq!(report.stats.jobs, 12);
    assert_eq!(report.stats.executed, 9);
    assert_eq!(report.stats.cache_hits, 3);
    assert_eq!(report.stats.errors, 0);
}

#[test]
fn grids_share_baselines_through_a_common_cache() {
    let cache = Arc::new(ResultCache::new());
    let opts = SweepOptions::parallel(4).with_cache(Arc::clone(&cache));
    let grid = |choice: PrefetcherChoice| {
        GridSpec::new(params())
            .row(WorkloadSpec::Spec(SpecWorkload::Xalan))
            .row(WorkloadSpec::Spec(SpecWorkload::Mcf))
            .column(choice)
    };
    let first = grid(PrefetcherChoice::Triage).run(&opts).unwrap();
    assert_eq!(first.stats.executed, 4);
    assert_eq!(first.stats.cache_hits, 0);
    // Different column, same baselines: only the new cells execute.
    let second = grid(PrefetcherChoice::Triangel).run(&opts).unwrap();
    assert_eq!(second.stats.executed, 2);
    assert_eq!(second.stats.cache_hits, 2);
    assert_eq!(cache.hits(), 2);
}

#[test]
fn grid_tables_are_deterministic_across_schedules() {
    let run = |workers: usize| {
        GridSpec::new(params())
            .spec_rows()
            .columns([PrefetcherChoice::Triage, PrefetcherChoice::Triangel])
            .run(&SweepOptions::parallel(workers))
            .unwrap()
            .table("t", "m", |c| c.speedup)
    };
    let serial = run(1);
    let parallel = run(8);
    assert_eq!(emit::table_to_json(&serial), emit::table_to_json(&parallel));
    assert_eq!(emit::table_to_csv(&serial), emit::table_to_csv(&parallel));
    assert_eq!(serial.render(), parallel.render());
}
