//! Bloom filter (Bloom, CACM 1970).

use triangel_types::xor_fold;

/// A Bloom filter over 64-bit keys.
///
/// Triage-ISR sizes its Markov partition with one of these: every
/// prefetcher access inserts its index, and each *filter miss* means a
/// never-seen address, growing the target partition (Section 3.5). The
/// paper criticizes the approach for its size (~200 KiB for 5% error at
/// full reach) and for its persistent pro-metadata bias — both visible in
/// our Triangel-Bloom experiments.
///
/// # Examples
///
/// ```
/// use triangel_prefetch::BloomFilter;
///
/// let mut f = BloomFilter::new(1 << 12, 4);
/// assert!(!f.insert(42)); // not seen before
/// assert!(f.insert(42));  // now a (true) positive
/// assert!(f.contains(42));
/// ```
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    n_bits: usize,
    hashes: u32,
    unique_inserts: u64,
}

impl BloomFilter {
    /// Creates a filter with `n_bits` bits (rounded up to a multiple of
    /// 64) and `hashes` hash functions.
    ///
    /// # Panics
    ///
    /// Panics if `n_bits` or `hashes` is zero.
    pub fn new(n_bits: usize, hashes: u32) -> Self {
        assert!(n_bits > 0 && hashes > 0);
        let words = n_bits.div_ceil(64);
        BloomFilter {
            bits: vec![0; words],
            n_bits: words * 64,
            hashes,
            unique_inserts: 0,
        }
    }

    fn bit_positions(&self, key: u64) -> impl Iterator<Item = usize> + '_ {
        // Double hashing: h1 + i*h2, the standard Kirsch–Mitzenmacher
        // construction.
        let h1 = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let h2 = xor_fold(key, 31) | 1;
        let n = self.n_bits as u64;
        (0..self.hashes as u64).map(move |i| (h1.wrapping_add(i.wrapping_mul(h2)) % n) as usize)
    }

    /// Tests membership without inserting.
    pub fn contains(&self, key: u64) -> bool {
        self.bit_positions(key)
            .all(|p| self.bits[p / 64] >> (p % 64) & 1 == 1)
    }

    /// Inserts `key`, returning whether it was (apparently) already
    /// present. A `false` return is a *filter miss*: a never-before-seen
    /// key (modulo false positives), which is what grows Triage's
    /// partition target.
    pub fn insert(&mut self, key: u64) -> bool {
        let was_present = self.contains(key);
        for p in self.bit_positions(key).collect::<Vec<_>>() {
            self.bits[p / 64] |= 1 << (p % 64);
        }
        if !was_present {
            self.unique_inserts += 1;
        }
        was_present
    }

    /// Number of inserts that were filter misses since the last reset —
    /// the partition-sizing signal.
    pub fn unique_inserts(&self) -> u64 {
        self.unique_inserts
    }

    /// Clears all bits and the unique counter (Triage resets per
    /// 30M-instruction window).
    pub fn reset(&mut self) {
        self.bits.iter_mut().for_each(|w| *w = 0);
        self.unique_inserts = 0;
    }

    /// Fraction of bits set, a saturation indicator.
    pub fn fill_ratio(&self) -> f64 {
        let set: u32 = self.bits.iter().map(|w| w.count_ones()).sum();
        set as f64 / self.n_bits as f64
    }

    /// Size of the filter's bit array in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

use triangel_types::snap::{SnapError, SnapReader, SnapWriter, Snapshot};

impl Snapshot for BloomFilter {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.usize(self.bits.len());
        for word in &self.bits {
            w.u64(*word);
        }
        w.u64(self.unique_inserts);
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        r.expect_len(self.bits.len(), "bloom words")?;
        for word in &mut self.bits {
            *word = r.u64()?;
        }
        self.unique_inserts = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::new(1 << 14, 4);
        for k in 0..1000u64 {
            f.insert(k * 977);
        }
        for k in 0..1000u64 {
            assert!(f.contains(k * 977));
        }
    }

    #[test]
    fn false_positive_rate_is_low_when_undersubscribed() {
        let mut f = BloomFilter::new(1 << 15, 4);
        for k in 0..1000u64 {
            f.insert(k);
        }
        let fp = (1_000_000..1_010_000u64).filter(|k| f.contains(*k)).count();
        assert!(fp < 200, "false positives {fp}/10000");
    }

    #[test]
    fn unique_counting() {
        let mut f = BloomFilter::new(1 << 12, 4);
        f.insert(1);
        f.insert(2);
        f.insert(1);
        assert_eq!(f.unique_inserts(), 2);
        f.reset();
        assert_eq!(f.unique_inserts(), 0);
        assert!(!f.contains(1));
    }

    #[test]
    fn saturated_filter_reports_everything() {
        let mut f = BloomFilter::new(64, 2);
        for k in 0..500u64 {
            f.insert(k);
        }
        assert!(f.fill_ratio() > 0.95);
        // Saturation = everything looks present (the s16 Graph500
        // failure mode for Triangel-Bloom, Section 6.4).
        let fp = (10_000..10_100u64).filter(|k| f.contains(*k)).count();
        assert!(fp > 90);
    }

    #[test]
    fn size_accounting() {
        let f = BloomFilter::new(1 << 12, 4);
        assert_eq!(f.size_bytes(), 512);
    }
}
