//! Differential property tests: the arena-backed `MarkovTable` against
//! a retained naive reference.
//!
//! The refactor that moved the Markov table onto the packed
//! set-associative arena (`triangel_types::arena::SetArena`) is only a
//! storage change — lookup, training, the confidence protocol,
//! eviction-time feedback, and resize re-indexing must behave exactly
//! as the original `Vec<Option<Entry>>` implementation did. This test
//! keeps that original implementation alive (trimmed to behaviour; no
//! snapshots) and drives both through identical randomized operation
//! sequences across every `TargetFormat` and a spread of replacement
//! policies, asserting equal observable results after every step.

use proptest::prelude::*;
use triangel_cache::replacement::{
    all_ways, AccessMeta, PolicyKind, ReplacementImpl, ReplacementPolicy,
};
use triangel_markov::{LookupTable, MarkovHit, MarkovTableConfig, MarkovTableImpl, TargetFormat};
use triangel_types::{xor_fold, LineAddr, Pc};

// ---------------------------------------------------------------------
// The naive reference: the pre-arena implementation, verbatim in
// behaviour (entry scan order, replacement notifications, stats).
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StoredTarget {
    Direct(u64),
    Lut { idx: u16, offset: u32 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    tag: u16,
    conf: bool,
    target: StoredTarget,
}

struct NaiveMarkov {
    cfg: MarkovTableConfig,
    set_bits: u32,
    ways: usize,
    entries: Vec<Option<Entry>>,
    repl: ReplacementImpl,
    lut: Option<LookupTable>,
    reads: u64,
    writes: u64,
    entry_evictions: u64,
    resizes: u64,
    reindex_drops: u64,
}

impl NaiveMarkov {
    fn new(cfg: MarkovTableConfig) -> Self {
        let epl = cfg.format.entries_per_line();
        let lines = cfg.sets * cfg.max_ways;
        let lut = match cfg.format {
            TargetFormat::Lut { assoc, .. } => Some(LookupTable::new(assoc)),
            _ => None,
        };
        NaiveMarkov {
            cfg,
            set_bits: cfg.sets.trailing_zeros(),
            ways: 0,
            entries: vec![None; lines * epl],
            repl: cfg.replacement.build_impl(lines, epl),
            lut,
            reads: 0,
            writes: 0,
            entry_evictions: 0,
            resizes: 0,
            reindex_drops: 0,
        }
    }

    fn tag_of(&self, line: LineAddr) -> u16 {
        xor_fold(line.index() >> self.set_bits, self.cfg.tag_bits) as u16
    }

    fn set_of(&self, line: LineAddr) -> usize {
        (line.index() as usize) & (self.cfg.sets - 1)
    }

    fn line_index(&self, line: LineAddr) -> Option<usize> {
        if self.ways == 0 {
            return None;
        }
        let tag = self.tag_of(line) as usize;
        let way = tag % self.ways;
        Some(self.set_of(line) * self.cfg.max_ways + way)
    }

    fn slot_range(&self, line_idx: usize) -> std::ops::Range<usize> {
        let epl = self.cfg.format.entries_per_line();
        line_idx * epl..(line_idx + 1) * epl
    }

    fn encode_target(&mut self, target: LineAddr) -> StoredTarget {
        match self.cfg.format {
            TargetFormat::Direct42 => StoredTarget::Direct(target.index() & ((1 << 31) - 1)),
            TargetFormat::Ideal32 => StoredTarget::Direct(target.index()),
            TargetFormat::Lut { offset_bits, .. } => {
                let offset = (target.index() & ((1 << offset_bits) - 1)) as u32;
                let upper = target.index() >> offset_bits;
                let idx = self
                    .lut
                    .as_mut()
                    .expect("LUT format has a LUT")
                    .index_for(upper);
                StoredTarget::Lut { idx, offset }
            }
        }
    }

    fn peek_target(&self, stored: StoredTarget) -> Option<LineAddr> {
        match (stored, self.cfg.format) {
            (StoredTarget::Direct(t), _) => Some(LineAddr::new(t)),
            (StoredTarget::Lut { idx, offset }, TargetFormat::Lut { offset_bits, .. }) => self
                .lut
                .as_ref()
                .and_then(|l| l.upper_at(idx))
                .map(|u| LineAddr::new((u << offset_bits) | offset as u64)),
            (StoredTarget::Lut { .. }, _) => unreachable!("LUT target under non-LUT format"),
        }
    }

    fn decode_target(&mut self, stored: StoredTarget) -> Option<LineAddr> {
        match (stored, self.cfg.format) {
            (StoredTarget::Direct(t), _) => Some(LineAddr::new(t)),
            (StoredTarget::Lut { idx, offset }, TargetFormat::Lut { offset_bits, .. }) => {
                let lut = self.lut.as_mut().expect("LUT format has a LUT");
                let upper = lut.upper_at(idx)?;
                lut.touch(idx);
                Some(LineAddr::new((upper << offset_bits) | offset as u64))
            }
            (StoredTarget::Lut { .. }, _) => unreachable!("LUT target under non-LUT format"),
        }
    }

    fn lookup(&mut self, line: LineAddr) -> Option<MarkovHit> {
        let line_idx = self.line_index(line)?;
        self.reads += 1;
        let tag = self.tag_of(line);
        let range = self.slot_range(line_idx);
        for (i, slot) in range.enumerate() {
            if let Some(e) = self.entries[slot] {
                if e.tag == tag {
                    let meta = AccessMeta::prefetch(line, None);
                    self.repl.on_hit(line_idx, i, &meta);
                    let target = self.decode_target(e.target)?;
                    return Some(MarkovHit {
                        target,
                        confidence: e.conf,
                    });
                }
            }
        }
        None
    }

    fn peek(&self, line: LineAddr) -> Option<(LineAddr, bool)> {
        let line_idx = self.line_index(line)?;
        let tag = self.tag_of(line);
        for slot in self.slot_range(line_idx) {
            if let Some(e) = self.entries[slot] {
                if e.tag == tag {
                    return Some((self.peek_target(e.target)?, e.conf));
                }
            }
        }
        None
    }

    fn canonical_target(&self, target: LineAddr) -> LineAddr {
        match self.cfg.format {
            TargetFormat::Direct42 => LineAddr::new(target.index() & ((1 << 31) - 1)),
            _ => target,
        }
    }

    fn train(&mut self, prev: LineAddr, next: LineAddr, pc: Pc) {
        let Some(line_idx) = self.line_index(prev) else {
            return;
        };
        self.writes += 1;
        let tag = self.tag_of(prev);
        let range = self.slot_range(line_idx);
        let meta = AccessMeta::demand(prev, Some(pc));
        for (i, slot) in range.clone().enumerate() {
            let Some(mut e) = self.entries[slot] else {
                continue;
            };
            if e.tag != tag {
                continue;
            }
            let current = self.peek_target(e.target);
            let same = current == Some(self.canonical_target(next));
            if same {
                e.conf = true;
            } else if e.conf {
                e.conf = false;
            } else {
                e.target = self.encode_target(next);
            }
            self.entries[slot] = Some(e);
            self.repl.on_hit(line_idx, i, &meta);
            return;
        }
        let epl = range.len();
        let way = range
            .clone()
            .position(|slot| self.entries[slot].is_none())
            .unwrap_or_else(|| {
                let v = self.repl.victim(line_idx, all_ways(epl));
                self.entry_evictions += 1;
                if let Some(old) = self.entries[range.start + v] {
                    self.repl
                        .on_evict(line_idx, v, LineAddr::new(old.tag as u64));
                }
                v
            });
        let target = self.encode_target(next);
        self.entries[range.start + way] = Some(Entry {
            tag,
            conf: false,
            target,
        });
        self.repl.on_fill(line_idx, way, &meta);
    }

    fn train_on_evict(&mut self, prev: LineAddr, target: LineAddr, used: bool) -> bool {
        let Some(line_idx) = self.line_index(prev) else {
            return false;
        };
        let tag = self.tag_of(prev);
        let range = self.slot_range(line_idx);
        let canonical = self.canonical_target(target);
        for (i, slot) in range.enumerate() {
            let Some(mut e) = self.entries[slot] else {
                continue;
            };
            if e.tag != tag {
                continue;
            }
            if self.peek_target(e.target) != Some(canonical) {
                return false;
            }
            self.writes += 1;
            if used {
                e.conf = true;
                self.entries[slot] = Some(e);
            } else if e.conf {
                e.conf = false;
                self.entries[slot] = Some(e);
            } else {
                self.entries[slot] = None;
                self.entry_evictions += 1;
                self.repl.on_invalidate(line_idx, i);
            }
            return true;
        }
        false
    }

    fn set_ways(&mut self, ways: usize) -> bool {
        let ways = ways.min(self.cfg.max_ways);
        if ways == self.ways {
            return false;
        }
        self.resizes += 1;
        let epl = self.cfg.format.entries_per_line();
        let old: Vec<(usize, Entry)> = self
            .entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.map(|e| (i / (self.cfg.max_ways * epl), e)))
            .collect();
        self.entries.iter_mut().for_each(|e| *e = None);
        self.ways = ways;
        if ways == 0 {
            self.reindex_drops += old.len() as u64;
            return true;
        }
        for (set, e) in old {
            let way = (e.tag as usize) % ways;
            let line_idx = set * self.cfg.max_ways + way;
            let range = self.slot_range(line_idx);
            match range.clone().find(|slot| self.entries[*slot].is_none()) {
                Some(slot) => self.entries[slot] = Some(e),
                None => self.reindex_drops += 1,
            }
        }
        true
    }

    fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }
}

// ---------------------------------------------------------------------
// The differential driver.
// ---------------------------------------------------------------------

/// One randomized table operation. Addresses are drawn from a small
/// space (plus a shift for LUT-exercising upper bits) so sequences
/// collide in sets, tags, and LUT frames often enough to reach the
/// eviction, confidence-conflict, and stale-feedback paths.
#[derive(Debug, Clone, Copy)]
enum Op {
    Train { prev: u64, next: u64, pc: u64 },
    Lookup { line: u64 },
    Peek { line: u64 },
    TrainOnEvict { prev: u64, target: u64, used: bool },
    SetWays { ways: usize },
}

/// Raw generated form: an op selector plus three operand draws (the
/// shim's strategies compose over tuples, not mapped enums).
type RawOp = (usize, u64, u64, u64);

fn decode(raw: RawOp) -> Op {
    let (kind, a, b, c) = raw;
    // Most operands are folded into a tiny 32-line hot space so the
    // same pairs recur: retraining (confidence protocol), entry
    // eviction, and matching eviction-time feedback all need repeats,
    // which a uniform 14-bit draw essentially never produces.
    match kind {
        0 | 1 => Op::Train {
            prev: a % 32,
            next: b % 32,
            pc: c,
        },
        2 => Op::Train {
            prev: a,
            next: b,
            pc: c,
        },
        3 => Op::Lookup { line: a % 32 },
        4 => Op::Peek { line: a % 32 },
        5 => Op::Lookup { line: a },
        6 => Op::TrainOnEvict {
            prev: a % 32,
            target: b % 32,
            used: c % 2 == 0,
        },
        _ => Op::SetWays {
            ways: (c % 5) as usize,
        },
    }
}

fn any_policy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::Lru),
        Just(PolicyKind::Fifo),
        Just(PolicyKind::Random),
        Just(PolicyKind::TreePlru),
        Just(PolicyKind::Srrip),
        Just(PolicyKind::Brrip),
        Just(PolicyKind::Hawkeye),
    ]
}

/// Upper-bit multiplier so LUT formats see distinct frames: lines map
/// into frames of 2^10/2^11 lines, so spreading the 14-bit space across
/// more uppers exercises LUT sharing and silent-eviction redirects.
fn widen(line: u64) -> u64 {
    (line << 7) | (line & 0x7F)
}

fn drive(
    format: TargetFormat,
    policy: PolicyKind,
    ops: &[Op],
) -> Result<(), proptest::test_runner::TestCaseError> {
    let cfg = MarkovTableConfig {
        sets: 64,
        max_ways: 4,
        format,
        tag_bits: 10,
        replacement: policy,
    };
    let mut arena = MarkovTableImpl::new(cfg);
    let mut naive = NaiveMarkov::new(cfg);
    arena.set_ways(2);
    naive.set_ways(2);
    for (step, op) in ops.iter().enumerate() {
        match *op {
            Op::Train { prev, next, pc } => {
                let (prev, next) = (LineAddr::new(widen(prev)), LineAddr::new(widen(next)));
                arena.train(prev, next, Pc::new(pc));
                naive.train(prev, next, Pc::new(pc));
            }
            Op::Lookup { line } => {
                let line = LineAddr::new(widen(line));
                let (a, n) = (arena.lookup(line), naive.lookup(line));
                prop_assert_eq!(a, n, "lookup diverged at step {}", step);
            }
            Op::Peek { line } => {
                let line = LineAddr::new(widen(line));
                let (a, n) = (arena.peek(line), naive.peek(line));
                prop_assert_eq!(a, n, "peek diverged at step {}", step);
            }
            Op::TrainOnEvict { prev, target, used } => {
                let (prev, target) = (LineAddr::new(widen(prev)), LineAddr::new(widen(target)));
                let (a, n) = (
                    arena.train_on_evict(prev, target, used),
                    naive.train_on_evict(prev, target, used),
                );
                prop_assert_eq!(a, n, "train_on_evict diverged at step {}", step);
            }
            Op::SetWays { ways } => {
                let (a, n) = (arena.set_ways(ways), naive.set_ways(ways));
                prop_assert_eq!(a, n, "set_ways diverged at step {}", step);
            }
        }
        prop_assert_eq!(
            arena.occupancy(),
            naive.occupancy(),
            "occupancy diverged at step {}",
            step
        );
    }
    let s = arena.stats();
    prop_assert_eq!(s.reads, naive.reads);
    prop_assert_eq!(s.writes, naive.writes);
    prop_assert_eq!(s.entry_evictions, naive.entry_evictions);
    prop_assert_eq!(s.resizes, naive.resizes);
    prop_assert_eq!(s.reindex_drops, naive.reindex_drops);
    Ok(())
}

proptest! {
    /// The arena-backed table and the naive reference agree on every
    /// observable result, for every target format, across randomized
    /// operation sequences and every replacement policy.
    #[test]
    fn arena_matches_naive_reference(
        format_idx in 0usize..4,
        policy in any_policy(),
        raw_ops in prop::collection::vec(
            (0usize..8, 0u64..(1 << 14), 0u64..(1 << 14), 0u64..64),
            1..400,
        ),
    ) {
        let format = [
            TargetFormat::Direct42,
            TargetFormat::Ideal32,
            TargetFormat::triage_default(),
            TargetFormat::triage_10b_offset(),
        ][format_idx];
        let ops: Vec<Op> = raw_ops.into_iter().map(decode).collect();
        drive(format, policy, &ops)?;
    }
}
