//! Tracking which Markov entry produced each outstanding prefetch.
//!
//! Eviction-time training (the `train_on_eviction` gate) needs to walk
//! back from a dying prefetched line to the Markov pair that predicted
//! it: the table is indexed by *predecessor*, but an eviction notice
//! only names the *target*. Hardware keeps this association alongside
//! its prefetch machinery (the request knows which metadata entry spawned
//! it); [`IssueTable`] models that as a small direct-mapped table written
//! when a chained prefetch issues and consumed when the line dies.
//!
//! The table is deliberately lossy: a collision overwrites the older
//! association and merely forfeits one training opportunity, exactly as
//! a bounded hardware structure would. It is fully deterministic.

use triangel_types::arena::SetArena;
use triangel_types::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use triangel_types::{xor_fold, LineAddr};

/// One recorded association: the prefetched target and the predecessor
/// whose Markov entry predicted it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct IssueSlot {
    target: LineAddr,
    predecessor: LineAddr,
}

impl Default for IssueSlot {
    fn default() -> Self {
        IssueSlot {
            target: LineAddr::new(0),
            predecessor: LineAddr::new(0),
        }
    }
}

impl Snapshot for IssueSlot {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.u64(self.target.index());
        w.u64(self.predecessor.index());
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.target = LineAddr::new(r.u64()?);
        self.predecessor = LineAddr::new(r.u64()?);
        Ok(())
    }
}

/// A direct-mapped target → predecessor table for issued temporal
/// prefetches, stored as a one-way [`SetArena`] (one arena set per
/// slot).
#[derive(Debug)]
pub struct IssueTable {
    slots: SetArena<IssueSlot>,
    index_bits: u32,
    mask: usize,
}

impl IssueTable {
    /// Creates a table with `entries` slots (rounded up to a power of
    /// two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "issue table needs entries");
        let n = entries.next_power_of_two();
        IssueTable {
            slots: SetArena::new(n, 1),
            index_bits: n.trailing_zeros(),
            mask: n - 1,
        }
    }

    /// The sizing both temporal prefetchers use: the paper L2's line
    /// count (4096), so a well-behaved resident population of
    /// prefetched lines rarely collides.
    pub fn paper_l2() -> Self {
        IssueTable::new(4096)
    }

    fn slot_of(&self, target: LineAddr) -> usize {
        if self.index_bits == 0 {
            0
        } else {
            (xor_fold(target.index(), self.index_bits) as usize) & self.mask
        }
    }

    /// Records that a prefetch of `target` was produced by the Markov
    /// entry indexed by `predecessor`, overwriting any collision.
    pub fn record(&mut self, target: LineAddr, predecessor: LineAddr) {
        let slot = self.slot_of(target);
        self.slots.insert(
            slot,
            0,
            0,
            IssueSlot {
                target,
                predecessor,
            },
        );
    }

    /// Consumes the association for `target`, if it survived: returns
    /// the predecessor whose entry predicted it and clears the slot.
    pub fn take(&mut self, target: LineAddr) -> Option<LineAddr> {
        let slot = self.slot_of(target);
        match self.slots.get(slot, 0) {
            Some((_, s)) if s.target == target => {
                let (_, s) = self.slots.take(slot, 0).expect("slot just observed valid");
                Some(s.predecessor)
            }
            _ => None,
        }
    }

    /// Number of live associations (diagnostics/tests).
    pub fn occupancy(&self) -> usize {
        self.slots.occupancy()
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.sets()
    }
}

impl Snapshot for IssueTable {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        self.slots.save(w)
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.slots.restore(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_take_roundtrip() {
        let mut t = IssueTable::new(64);
        t.record(LineAddr::new(100), LineAddr::new(7));
        assert_eq!(t.take(LineAddr::new(100)), Some(LineAddr::new(7)));
        assert_eq!(t.take(LineAddr::new(100)), None, "take consumes");
        assert_eq!(t.occupancy(), 0);
    }

    #[test]
    fn collision_overwrites_older_association() {
        // One slot: every target collides.
        let mut t = IssueTable::new(1);
        assert_eq!(t.capacity(), 1);
        t.record(LineAddr::new(1), LineAddr::new(10));
        t.record(LineAddr::new(2), LineAddr::new(20));
        assert_eq!(t.take(LineAddr::new(1)), None, "displaced by collision");
        assert_eq!(t.take(LineAddr::new(2)), Some(LineAddr::new(20)));
    }

    #[test]
    fn rerecord_updates_predecessor() {
        let mut t = IssueTable::new(8);
        t.record(LineAddr::new(5), LineAddr::new(1));
        t.record(LineAddr::new(5), LineAddr::new(2));
        assert_eq!(t.take(LineAddr::new(5)), Some(LineAddr::new(2)));
    }

    #[test]
    #[should_panic(expected = "needs entries")]
    fn zero_entries_rejected() {
        let _ = IssueTable::new(0);
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut t = IssueTable::new(16);
        t.record(LineAddr::new(100), LineAddr::new(7));
        t.record(LineAddr::new(200), LineAddr::new(9));
        let mut w = SnapWriter::new();
        t.save(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut u = IssueTable::new(16);
        let mut r = SnapReader::new(&bytes);
        u.restore(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(u.occupancy(), t.occupancy());
        assert_eq!(u.take(LineAddr::new(100)), Some(LineAddr::new(7)));
        assert_eq!(u.take(LineAddr::new(200)), Some(LineAddr::new(9)));
    }
}
