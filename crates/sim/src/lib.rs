//! The trace-driven timing simulator.
//!
//! This crate assembles the substrates into the paper's evaluation
//! system (Table 2): a 5-wide out-of-order core approximation with a
//! 288-entry ROB, L1D/L2/L3 caches with MSHRs, an LPDDR5-like DRAM
//! channel, the baseline stride prefetcher, and one of the temporal
//! prefetchers (Triage or Triangel) attached to the L2 with its Markov
//! table in an L3 way-partition.
//!
//! The timing model is an interval approximation rather than a
//! cycle-accurate pipeline (see DESIGN.md): out-of-order *issue* limited
//! by ROB occupancy and load dependences, in-order *retire*, and a
//! bandwidth-limited memory system. This reproduces the first-order
//! effects temporal prefetching lives on — memory-level parallelism,
//! prefetch timeliness, and DRAM congestion.
//!
//! # Examples
//!
//! ```
//! use triangel_sim::{Experiment, PrefetcherChoice};
//! use triangel_workloads::spec::SpecWorkload;
//!
//! let report = Experiment::new(SpecWorkload::Xalan.generator(1))
//!     .warmup(5_000)
//!     .accesses(10_000)
//!     .prefetcher(PrefetcherChoice::Triangel)
//!     .run();
//! assert!(report.ipc() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod engine;
mod error;
mod experiment;
mod hierarchy;
mod metrics;
pub mod report;

pub use config::SystemConfig;
pub use engine::Engine;
pub use error::SimError;
pub use experiment::{Experiment, PrefetcherChoice};
pub use hierarchy::{CoreStats, MemorySystem};
pub use metrics::{Comparison, RunReport};
