//! Deterministic observability for the Triangel reproduction.
//!
//! Three concerns, strictly separated by where time comes from:
//!
//! * [`interval`] — a **simulation-time** series recorder:
//!   [`IntervalSeries`] samples cumulative counters every N measured
//!   accesses. Pure function of the job spec; snapshot-aware, so
//!   interrupt→resume reproduces the series byte for byte.
//! * [`probe`] — a **timeless** registry: components implement
//!   [`Probe`] to export named counters into a [`ProbeSet`], which
//!   replaced the (since-removed) ad-hoc `debug_string`. Emitted as
//!   hand-rolled JSONL.
//! * [`trace`] — **wall-clock**, host-side only: the harness records
//!   spans/counters into a [`TraceBuffer`] emitted as Chrome
//!   `trace_event` JSON for Perfetto. Never touches sim state.
//!
//! The invariant the whole crate is built around: enabling any of this
//! must leave simulation output byte-identical to disabled.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod interval;
pub mod json;
pub mod probe;
pub mod trace;

pub use interval::{IntervalSample, IntervalSeries, IntervalWindow, DUELLER_COUNTERS};
pub use probe::{Probe, ProbeSet};
pub use trace::{TraceArg, TraceBuffer};
