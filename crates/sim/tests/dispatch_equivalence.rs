//! Golden equivalence of the enum-dispatched pipeline and the
//! `Box<dyn>` compatibility path.
//!
//! `SimSession` builds its per-core prefetchers through
//! `PrefetcherChoice::build_impl` (enum dispatch, monomorphized cache
//! views); the old path boxes them behind the `Prefetcher` trait and
//! goes through `MemorySystem::new`. Both must produce byte-identical
//! `RunReport`s on the smoke sweep — the enum is a dispatch mechanism,
//! never a behaviour change.

use triangel_prefetch::Prefetcher;
use triangel_sim::{
    Engine, MemorySystem, PrefetcherChoice, PrefetcherImpl, RunReport, SimSession, SystemConfig,
};
use triangel_workloads::paging::PageMapper;
use triangel_workloads::spec::SpecWorkload;
use triangel_workloads::TraceSource;

const WARMUP: u64 = 3_000;
const ACCESSES: u64 = 3_000;
const SIZING: u64 = 1_500;
const SEED: u64 = 11;

/// The smoke sweep: every prefetcher family over three workloads, a
/// multiprogrammed pair, and a fragmented-mapping job (the golden
/// sweep's shape at the same scale).
fn sweep() -> Vec<(Vec<SpecWorkload>, PrefetcherChoice, Option<u64>)> {
    let mut jobs = Vec::new();
    for wl in [SpecWorkload::Xalan, SpecWorkload::Mcf, SpecWorkload::Sphinx] {
        for pf in [
            PrefetcherChoice::Baseline,
            PrefetcherChoice::Triage,
            PrefetcherChoice::TriageDeg4Look2,
            PrefetcherChoice::Triangel,
            PrefetcherChoice::TriangelBloom,
        ] {
            jobs.push((vec![wl], pf, None));
        }
    }
    jobs.push((
        vec![SpecWorkload::Xalan, SpecWorkload::Omnetpp],
        PrefetcherChoice::Triangel,
        None,
    ));
    jobs.push((
        vec![SpecWorkload::Gcc166],
        PrefetcherChoice::Triage,
        Some(7),
    ));
    jobs
}

fn label(workloads: &[SpecWorkload]) -> String {
    workloads
        .iter()
        .map(|w| w.label().to_string())
        .collect::<Vec<_>>()
        .join(" & ")
}

/// Runs one job through `SimSession` (enum dispatch).
fn run_enum(
    workloads: &[SpecWorkload],
    choice: PrefetcherChoice,
    mapper_seed: Option<u64>,
) -> RunReport {
    let mut b = SimSession::builder()
        .prefetcher(choice)
        .warmup(WARMUP)
        .accesses(ACCESSES)
        .sizing_window(SIZING)
        .label(label(workloads));
    for (i, wl) in workloads.iter().enumerate() {
        let seed = if i == 0 { SEED } else { SEED ^ 0x9999 };
        b = b.workload(wl.generator(seed));
    }
    if let Some(s) = mapper_seed {
        b = b.page_mapper(PageMapper::realistic(s));
    }
    b.run().unwrap()
}

/// Boxes the enum-built prefetcher behind the `Prefetcher` trait — the
/// reference the equivalence check runs against. The production
/// `build_boxed` shim was removed; unwrapping `build_impl` here keeps
/// the two dispatch paths built from the very same constructors.
fn build_boxed(choice: PrefetcherChoice, sizing_window: u64) -> Box<dyn Prefetcher> {
    match choice.build_impl(sizing_window) {
        PrefetcherImpl::Null(p) => Box::new(p),
        PrefetcherImpl::Triage(p) => p,
        PrefetcherImpl::Triangel(p) => p,
        PrefetcherImpl::Dyn(p) => p,
    }
}

/// Runs the same job through the `Box<dyn Prefetcher>` compatibility
/// constructors, replicating the session's defaults by hand.
fn run_dyn(
    workloads: &[SpecWorkload],
    choice: PrefetcherChoice,
    mapper_seed: Option<u64>,
) -> RunReport {
    let cfg = if workloads.len() == 1 {
        SystemConfig::paper_single_core()
    } else {
        SystemConfig::paper_dual_core()
    };
    let temporal = workloads
        .iter()
        .map(|_| build_boxed(choice, SIZING))
        .collect();
    let system = MemorySystem::new(cfg, temporal);
    let sources: Vec<Box<dyn TraceSource + Send>> = workloads
        .iter()
        .enumerate()
        .map(|(i, wl)| {
            let seed = if i == 0 { SEED } else { SEED ^ 0x9999 };
            Box::new(wl.generator(seed)) as Box<dyn TraceSource + Send>
        })
        .collect();
    let mapper = PageMapper::realistic(mapper_seed.unwrap_or(0xA11C));
    let mut engine = Engine::try_new(system, sources, mapper).unwrap();
    engine.run_accesses(WARMUP);
    engine.start_measurement();
    engine.run_accesses(ACCESSES);
    engine.report(label(workloads))
}

#[test]
fn enum_dispatch_is_byte_identical_to_boxed_dispatch_on_the_smoke_sweep() {
    for (workloads, choice, mapper_seed) in sweep() {
        let via_enum = run_enum(&workloads, choice, mapper_seed);
        let via_dyn = run_dyn(&workloads, choice, mapper_seed);
        // Byte-for-byte: the full Debug rendering covers every counter
        // in the report (per-core stats, cache stats, DRAM, Markov).
        assert_eq!(
            format!("{via_enum:?}"),
            format!("{via_dyn:?}"),
            "dispatch paths diverged on {} / {}",
            label(&workloads),
            choice.label()
        );
    }
}
