//! Hand-rolled binary snapshots of simulation state.
//!
//! Paper-scale runs (millions of accesses per job) need to be
//! interruptible: the campaign runner executes simulations in segments
//! and persists the full dynamic state between them, with the invariant
//! that *interrupt → snapshot → restore → continue* is byte-identical
//! to an uninterrupted run.
//!
//! The format is deliberately minimal: little-endian fixed-width
//! integers written by [`SnapWriter`] and read back by [`SnapReader`],
//! with no self-description. Instead of serializing configuration, a
//! snapshot holds only *dynamic* state — the consumer reconstructs the
//! object tree from its spec (which is data and deterministic) and then
//! [`Snapshot::restore`]s the mutable fields into it. Structural
//! sanity (vector lengths, enum discriminants) is checked on restore
//! and reported as [`SnapError::Corrupt`] rather than trusted.
//!
//! Versioning lives at the envelope level: the simulation-session
//! snapshot (in `triangel-sim`) prefixes a magic and a format version,
//! so stale snapshot files fail loudly with [`SnapError::Version`].

use std::fmt;

/// Why a snapshot could not be written or restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The snapshot ended before the expected data.
    Eof,
    /// The data contradicts the restoring object's structure.
    Corrupt(String),
    /// The object (e.g. a boxed trait object) does not support
    /// snapshotting.
    Unsupported(String),
    /// The snapshot was written by an incompatible format version.
    Version {
        /// Version found in the snapshot envelope.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
}

impl SnapError {
    /// Convenience constructor for [`SnapError::Corrupt`].
    pub fn corrupt(msg: impl Into<String>) -> Self {
        SnapError::Corrupt(msg.into())
    }

    /// Convenience constructor for [`SnapError::Unsupported`].
    pub fn unsupported(msg: impl Into<String>) -> Self {
        SnapError::Unsupported(msg.into())
    }
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Eof => write!(f, "snapshot truncated"),
            SnapError::Corrupt(m) => write!(f, "snapshot corrupt: {m}"),
            SnapError::Unsupported(m) => write!(f, "snapshot unsupported: {m}"),
            SnapError::Version { found, expected } => {
                write!(f, "snapshot version {found} (this build reads {expected})")
            }
        }
    }
}

impl std::error::Error for SnapError {}

/// Returns [`SnapError::Corrupt`] unless `cond` holds.
pub fn snap_check(cond: bool, msg: &str) -> Result<(), SnapError> {
    if cond {
        Ok(())
    } else {
        Err(SnapError::corrupt(msg))
    }
}

/// Append-only binary writer for snapshot data (little-endian).
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> Self {
        SnapWriter::default()
    }

    /// Consumes the writer, returning the bytes written.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` by bit pattern (exact round-trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Writes a `usize` widened to `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes `Some(v)`/`None` as a presence byte plus the value.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.u64(x);
            }
            None => self.bool(false),
        }
    }

    /// Writes raw bytes (length-prefixed).
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a UTF-8 string (length-prefixed).
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Sequential reader over snapshot bytes.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Returns [`SnapError::Corrupt`] unless every byte was consumed.
    pub fn finish(&self) -> Result<(), SnapError> {
        snap_check(self.remaining() == 0, "trailing bytes after snapshot")
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Eof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `i64`.
    pub fn i64(&mut self) -> Result<i64, SnapError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` by bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool`, rejecting bytes other than 0/1.
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapError::corrupt(format!("bool byte {b}"))),
        }
    }

    /// Reads a `usize` (written as `u64`), rejecting values beyond the
    /// platform's range.
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        usize::try_from(self.u64()?).map_err(|_| SnapError::corrupt("usize overflow"))
    }

    /// Reads an `Option<u64>`.
    pub fn opt_u64(&mut self) -> Result<Option<u64>, SnapError> {
        Ok(if self.bool()? {
            Some(self.u64()?)
        } else {
            None
        })
    }

    /// Reads length-prefixed raw bytes.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let n = self.usize()?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| SnapError::corrupt("invalid UTF-8"))
    }

    /// Reads a length written by [`SnapWriter::usize`] and checks it
    /// matches the restoring structure's `expected` length.
    pub fn expect_len(&mut self, expected: usize, what: &str) -> Result<(), SnapError> {
        let found = self.usize()?;
        snap_check(
            found == expected,
            &format!("{what}: snapshot has {found} elements, structure has {expected}"),
        )
    }
}

/// Save/restore of a structure's *dynamic* state.
///
/// `restore` is called on a freshly constructed object with identical
/// configuration (same spec, same seeds); only fields that mutate
/// during simulation are serialized. Implementations must be exact:
/// after `restore`, the object's observable behaviour must be
/// indistinguishable from the object `save` was called on.
pub trait Snapshot {
    /// Serializes the dynamic state into `w`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Unsupported`] when the object (or a component
    /// behind a trait object) cannot be snapshotted.
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError>;

    /// Restores the dynamic state from `r`.
    ///
    /// # Errors
    ///
    /// [`SnapError`] when the data is truncated, corrupt, or does not
    /// match this object's structure.
    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut w = SnapWriter::new();
        w.u8(7);
        w.u16(300);
        w.u32(70_000);
        w.u64(1 << 40);
        w.i64(-5);
        w.f64(0.25);
        w.bool(true);
        w.usize(42);
        w.opt_u64(Some(9));
        w.opt_u64(None);
        w.str("hello");
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.i64().unwrap(), -5);
        assert_eq!(r.f64().unwrap(), 0.25);
        assert!(r.bool().unwrap());
        assert_eq!(r.usize().unwrap(), 42);
        assert_eq!(r.opt_u64().unwrap(), Some(9));
        assert_eq!(r.opt_u64().unwrap(), None);
        assert_eq!(r.str().unwrap(), "hello");
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_eof() {
        let mut w = SnapWriter::new();
        w.u64(1);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes[..4]);
        assert_eq!(r.u64(), Err(SnapError::Eof));
    }

    #[test]
    fn trailing_bytes_are_corrupt() {
        let mut w = SnapWriter::new();
        w.u64(1);
        w.u64(2);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let _ = r.u64().unwrap();
        assert!(matches!(r.finish(), Err(SnapError::Corrupt(_))));
    }

    #[test]
    fn bad_bool_is_corrupt() {
        let mut r = SnapReader::new(&[3]);
        assert!(matches!(r.bool(), Err(SnapError::Corrupt(_))));
    }

    #[test]
    fn length_mismatch_is_corrupt() {
        let mut w = SnapWriter::new();
        w.usize(4);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(r.expect_len(4, "v").is_ok());
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(r.expect_len(5, "v"), Err(SnapError::Corrupt(_))));
    }
}
