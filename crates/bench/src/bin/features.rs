//! The `features` ablation: the Fig. 20 feature ladder, each step run
//! with and without the experimental `train_on_eviction` gate, at a
//! fixed smoke scale. Emits `BENCH_features.json`.

fn main() {
    triangel_bench::figures::run_main("features");
}
