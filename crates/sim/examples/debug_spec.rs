//! Diagnostic sweep: every SPEC-like workload under the four headline
//! configurations, printing speedup/traffic/accuracy/coverage per run.
//! Useful when tuning workload parameters or prefetcher heuristics.
//!
//! Usage: `cargo run --release -p triangel-sim --example debug_spec [accesses] [warmup]`
use std::time::Instant;
use triangel_sim::{Comparison, PrefetcherChoice, SimSession};
use triangel_workloads::spec::SpecWorkload;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: u64 = args.get(1).map(|s| s.parse().unwrap()).unwrap_or(1_000_000);
    let w: u64 = args.get(2).map(|s| s.parse().unwrap()).unwrap_or(800_000);
    for wl in SpecWorkload::ALL {
        let t0 = Instant::now();
        let base = SimSession::builder()
            .workload(wl.generator(42))
            .warmup(w)
            .accesses(n)
            .sizing_window(150_000)
            .run()
            .unwrap();
        let mut line = format!("{:12} base_ipc={:.3}", wl.label(), base.ipc());
        for choice in [
            PrefetcherChoice::Triage,
            PrefetcherChoice::TriageDeg4,
            PrefetcherChoice::Triangel,
            PrefetcherChoice::TriangelBloom,
        ] {
            let r = SimSession::builder()
                .workload(wl.generator(42))
                .warmup(w)
                .accesses(n)
                .sizing_window(150_000)
                .prefetcher(choice)
                .run()
                .unwrap();
            let c = Comparison::new(&base, &r);
            line += &format!(
                "  {}[sp={:.2} tr={:.2} ac={:.2} cv={:.2}]",
                match choice {
                    PrefetcherChoice::Triage => "T1",
                    PrefetcherChoice::TriageDeg4 => "T4",
                    PrefetcherChoice::Triangel => "TG",
                    _ => "TB",
                },
                c.speedup,
                c.dram_traffic,
                c.accuracy,
                c.coverage
            );
        }
        println!("{line}  ({:.1}s)", t0.elapsed().as_secs_f64());
    }
}
