//! Reproduces Fig. 19: accuracy of Triage's lookup-table format with 11
//! and 10 offset bits (Section 6.5).
//!
//! The 10-bit variant gives the lookup table twice as many distinct
//! upper-bit regions to track ("roughly equivalent to halving
//! physical-page locality or doubling page fragmentation"); when its
//! 1024 entries are exhausted, stale indices silently reconstruct wrong
//! addresses and accuracy collapses.
//!
//! Declarative definition: `triangel_bench::figures` registry entry
//! `"fig19"`, executed by the `triangel-harness` scheduler
//! (`--jobs N` controls worker threads; results are identical for any
//! value).

fn main() {
    triangel_bench::figures::run_main("fig19");
}
