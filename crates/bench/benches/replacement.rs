//! Criterion micro-benchmarks for the replacement policies, HawkEye's
//! OPTgen in particular (Triage's Markov-entry policy, Section 3.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use triangel_cache::replacement::{all_ways, AccessMeta, PolicyKind, ReplacementPolicy};
use triangel_types::{LineAddr, Pc};

fn bench_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("replacement_fill_victim");
    for kind in [
        PolicyKind::Lru,
        PolicyKind::TreePlru,
        PolicyKind::Srrip,
        PolicyKind::Hawkeye,
    ] {
        g.bench_function(BenchmarkId::from_parameter(format!("{kind:?}")), |b| {
            let mut p = kind.build_impl(2048, 16);
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(1);
                let set = (i % 2048) as usize;
                let meta =
                    AccessMeta::demand(LineAddr::new(black_box(i % 65_536)), Some(Pc::new(i % 64)));
                let way = p.victim(set, all_ways(16));
                p.on_fill(set, way, &meta);
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
