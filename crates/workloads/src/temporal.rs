//! Composable access-pattern building blocks.
//!
//! Temporal prefetchers exploit *repeated miss sequences*; the knobs that
//! decide whether Triage/Triangel succeed are (a) the sequence length
//! (reuse distance vs. Markov capacity — drives `ReuseConf`), (b) how
//! exactly the sequence repeats (strict order vs. local reordering —
//! drives `PatternConf` and the Second-Chance Sampler), (c) how fast the
//! pattern drifts (temporal stability), and (d) whether accesses form
//! dependent chains (drives the lookahead-2 advantage). [`TemporalStream`]
//! exposes all four; [`StridedStream`] and [`RandomStream`] provide the
//! stride-prefetchable and untrainable extremes.

use crate::trace::{MemoryAccess, TraceSource};
use triangel_types::rng::SplitMix64;
use triangel_types::{Addr, Pc, CACHE_LINE_BYTES};

/// Configuration for a [`TemporalStream`].
#[derive(Debug, Clone)]
pub struct TemporalStreamConfig {
    /// Display name.
    pub name: String,
    /// The PC all of this stream's accesses appear to come from
    /// (temporal prefetchers are PC-localized, Section 2 of the paper).
    pub pc: Pc,
    /// First byte of the stream's virtual region.
    pub region_base: Addr,
    /// Number of distinct cache lines in the repeating sequence; this is
    /// the stream's reuse distance.
    pub seq_len: usize,
    /// Size of the region the lines are scattered over, in lines
    /// (>= `seq_len`; larger values spread the footprint over more pages).
    pub region_lines: usize,
    /// Probability that a step follows the recorded order exactly. The
    /// remainder are emitted out of order within `shuffle_window`.
    pub exactness: f64,
    /// Reorder window for inexact steps, in accesses. Every element is
    /// still emitted exactly once per pass, within this distance of its
    /// nominal position — the "accessed in close proximity" case the
    /// Second-Chance Sampler recovers (Section 4.4.2).
    pub shuffle_window: usize,
    /// Probability of an access being uniform random inside the region
    /// (unlearnable; corrupts this PC's training).
    pub noise: f64,
    /// Per-element probability, applied each pass, of replacing the
    /// element with a fresh random line: pattern drift.
    pub drift: f64,
    /// Whether each access's address depends on the previous access
    /// (pointer chasing).
    pub dependent: bool,
    /// Non-memory instructions per access.
    pub work: u8,
}

impl TemporalStreamConfig {
    /// A strict, stable, dependent pointer chase over `seq_len` lines —
    /// the friendliest possible temporal pattern.
    pub fn pointer_chase(
        name: impl Into<String>,
        pc: Pc,
        region_base: Addr,
        seq_len: usize,
    ) -> Self {
        TemporalStreamConfig {
            name: name.into(),
            pc,
            region_base,
            seq_len,
            region_lines: seq_len * 2,
            exactness: 1.0,
            shuffle_window: 1,
            noise: 0.0,
            drift: 0.0,
            dependent: true,
            work: 4,
        }
    }
}

/// A repeating temporal sequence with controllable looseness, noise,
/// drift, and dependence.
///
/// # Examples
///
/// ```
/// use triangel_workloads::temporal::{TemporalStream, TemporalStreamConfig};
/// use triangel_workloads::trace::TraceSource;
/// use triangel_types::{Addr, Pc};
///
/// let cfg = TemporalStreamConfig::pointer_chase("chase", Pc::new(0x10), Addr::new(1 << 30), 64);
/// let mut s = TemporalStream::new(cfg, 1);
/// let first_pass: Vec<_> = (0..64).map(|_| s.next_access().vaddr).collect();
/// let second_pass: Vec<_> = (0..64).map(|_| s.next_access().vaddr).collect();
/// assert_eq!(first_pass, second_pass); // exact repetition
/// ```
#[derive(Debug)]
pub struct TemporalStream {
    cfg: TemporalStreamConfig,
    /// The sequence, as line offsets within the region.
    seq: Vec<u64>,
    /// Items from the current pass awaiting emission (reorder buffer).
    pending: Vec<u64>,
    /// Emissions since the current front of `pending` arrived there;
    /// bounds how far any element can be displaced.
    front_age: usize,
    pos: usize,
    rng: SplitMix64,
}

impl TemporalStream {
    /// Builds the stream, generating its sequence deterministically from
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `seq_len` is zero, `region_lines < seq_len`, or the
    /// probabilities are outside `[0, 1]`.
    pub fn new(cfg: TemporalStreamConfig, seed: u64) -> Self {
        assert!(cfg.seq_len > 0, "sequence must be non-empty");
        assert!(
            cfg.region_lines >= cfg.seq_len,
            "region must fit the sequence"
        );
        for p in [cfg.exactness, cfg.noise, cfg.drift] {
            assert!((0.0..=1.0).contains(&p), "probabilities must be in [0, 1]");
        }
        let mut rng = SplitMix64::new(seed ^ cfg.pc.get());
        let mut seq = Vec::with_capacity(cfg.seq_len);
        let mut used = std::collections::HashSet::with_capacity(cfg.seq_len);
        while seq.len() < cfg.seq_len {
            let line = rng.next_below(cfg.region_lines as u64);
            if used.insert(line) {
                seq.push(line);
            }
        }
        TemporalStream {
            cfg,
            seq,
            pending: Vec::new(),
            front_age: 0,
            pos: 0,
            rng,
        }
    }

    fn line_to_addr(&self, line_offset: u64) -> Addr {
        Addr::new(self.cfg.region_base.get() + line_offset * CACHE_LINE_BYTES)
    }

    fn start_new_pass_if_needed(&mut self) {
        if self.pos >= self.seq.len() && self.pending.is_empty() {
            self.pos = 0;
            // Apply drift at pass boundaries.
            if self.cfg.drift > 0.0 {
                for i in 0..self.seq.len() {
                    if self.rng.chance(self.cfg.drift) {
                        self.seq[i] = self.rng.next_below(self.cfg.region_lines as u64);
                    }
                }
            }
        }
    }

    fn next_seq_item(&mut self) -> u64 {
        self.start_new_pass_if_needed();
        // Keep the reorder buffer topped up to the shuffle window.
        let window = self.cfg.shuffle_window.max(1);
        while self.pending.len() < window && self.pos < self.seq.len() {
            self.pending.push(self.seq[self.pos]);
            self.pos += 1;
        }
        let exact = self.cfg.exactness >= 1.0 || self.rng.chance(self.cfg.exactness);
        // Hard displacement bound: once the front has waited a full
        // window, emit it regardless, so reordering stays local (the
        // Second-Chance Sampler's 512-fill proximity check relies on
        // bounded displacement).
        let idx = if exact || self.pending.len() == 1 || self.front_age >= window {
            0
        } else {
            self.rng.next_below(self.pending.len() as u64) as usize
        };
        if idx == 0 {
            self.front_age = 0;
        } else {
            self.front_age += 1;
        }
        self.pending.remove(idx)
    }
}

impl TraceSource for TemporalStream {
    fn next_access(&mut self) -> MemoryAccess {
        let line = if self.cfg.noise > 0.0 && self.rng.chance(self.cfg.noise) {
            self.rng.next_below(self.cfg.region_lines as u64)
        } else {
            self.next_seq_item()
        };
        let mut a =
            MemoryAccess::new(self.cfg.pc, self.line_to_addr(line)).with_work(self.cfg.work);
        if self.cfg.dependent {
            a = a.dependent();
        }
        a
    }

    fn name(&self) -> &str {
        &self.cfg.name
    }

    fn save_state(
        &self,
        w: &mut triangel_types::snap::SnapWriter,
    ) -> Result<(), triangel_types::snap::SnapError> {
        self.save_snap(w)
    }

    fn restore_state(
        &mut self,
        r: &mut triangel_types::snap::SnapReader,
    ) -> Result<(), triangel_types::snap::SnapError> {
        self.restore_snap(r)
    }
}

/// A sequential scan: `base + i*stride` lines over an array, repeated.
/// Fully covered by the baseline stride prefetcher, so it contributes
/// compute and bandwidth but few temporal-prefetch opportunities.
#[derive(Debug)]
pub struct StridedStream {
    name: String,
    pc: Pc,
    base: Addr,
    stride_lines: u64,
    array_lines: u64,
    pos: u64,
    work: u8,
}

impl StridedStream {
    /// Creates a strided scan over `array_lines` lines.
    ///
    /// # Panics
    ///
    /// Panics if `stride_lines` or `array_lines` is zero.
    pub fn new(
        name: impl Into<String>,
        pc: Pc,
        base: Addr,
        stride_lines: u64,
        array_lines: u64,
    ) -> Self {
        assert!(stride_lines > 0 && array_lines > 0);
        StridedStream {
            name: name.into(),
            pc,
            base,
            stride_lines,
            array_lines,
            pos: 0,
            work: 4,
        }
    }
}

impl TraceSource for StridedStream {
    fn next_access(&mut self) -> MemoryAccess {
        // `pos` is kept reduced below `array_lines`, so the wrap costs a
        // division only when it actually happens instead of every access.
        let line = self.pos;
        self.pos += self.stride_lines;
        if self.pos >= self.array_lines {
            self.pos %= self.array_lines;
        }
        MemoryAccess::new(
            self.pc,
            Addr::new(self.base.get() + line * CACHE_LINE_BYTES),
        )
        .with_work(self.work)
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn save_state(
        &self,
        w: &mut triangel_types::snap::SnapWriter,
    ) -> Result<(), triangel_types::snap::SnapError> {
        self.save_snap(w);
        Ok(())
    }

    fn restore_state(
        &mut self,
        r: &mut triangel_types::snap::SnapReader,
    ) -> Result<(), triangel_types::snap::SnapError> {
        self.restore_snap(r)
    }
}

/// Uniform random accesses over a region: unlearnable by any prefetcher.
#[derive(Debug)]
pub struct RandomStream {
    name: String,
    pc: Pc,
    base: Addr,
    region_lines: u64,
    dependent: bool,
    rng: SplitMix64,
    work: u8,
}

impl RandomStream {
    /// Creates a random stream over `region_lines` lines.
    ///
    /// # Panics
    ///
    /// Panics if `region_lines` is zero.
    pub fn new(
        name: impl Into<String>,
        pc: Pc,
        base: Addr,
        region_lines: u64,
        dependent: bool,
        seed: u64,
    ) -> Self {
        assert!(region_lines > 0);
        RandomStream {
            name: name.into(),
            pc,
            base,
            region_lines,
            dependent,
            rng: SplitMix64::new(seed),
            work: 4,
        }
    }
}

impl TraceSource for RandomStream {
    fn next_access(&mut self) -> MemoryAccess {
        let line = self.rng.next_below(self.region_lines);
        let mut a = MemoryAccess::new(
            self.pc,
            Addr::new(self.base.get() + line * CACHE_LINE_BYTES),
        )
        .with_work(self.work);
        if self.dependent {
            a = a.dependent();
        }
        a
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn save_state(
        &self,
        w: &mut triangel_types::snap::SnapWriter,
    ) -> Result<(), triangel_types::snap::SnapError> {
        self.save_snap(w)
    }

    fn restore_state(
        &mut self,
        r: &mut triangel_types::snap::SnapReader,
    ) -> Result<(), triangel_types::snap::SnapError> {
        self.restore_snap(r)
    }
}

use triangel_types::snap::{snap_check, SnapError, SnapReader, SnapWriter, Snapshot};

impl TemporalStream {
    pub(crate) fn save_snap(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        // `seq` mutates under drift, so it is state, not configuration.
        w.usize(self.seq.len());
        for l in &self.seq {
            w.u64(*l);
        }
        w.usize(self.pending.len());
        for l in &self.pending {
            w.u64(*l);
        }
        w.usize(self.front_age);
        w.usize(self.pos);
        self.rng.save(w)
    }

    pub(crate) fn restore_snap(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        r.expect_len(self.seq.len(), "temporal sequence")?;
        for l in &mut self.seq {
            *l = r.u64()?;
        }
        let n = r.usize()?;
        snap_check(
            n <= self.cfg.shuffle_window.max(1),
            "reorder buffer above window",
        )?;
        self.pending.clear();
        for _ in 0..n {
            self.pending.push(r.u64()?);
        }
        self.front_age = r.usize()?;
        let pos = r.usize()?;
        snap_check(pos <= self.seq.len(), "pass cursor out of range")?;
        self.pos = pos;
        self.rng.restore(r)
    }
}

impl StridedStream {
    pub(crate) fn save_snap(&self, w: &mut SnapWriter) {
        w.u64(self.pos);
    }

    pub(crate) fn restore_snap(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        let pos = r.u64()?;
        snap_check(pos < self.array_lines, "stride cursor out of range")?;
        self.pos = pos;
        Ok(())
    }
}

impl RandomStream {
    pub(crate) fn save_snap(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        self.rng.save(w)
    }

    pub(crate) fn restore_snap(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.rng.restore(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(s: &mut dyn TraceSource, n: usize) -> Vec<u64> {
        (0..n).map(|_| s.next_access().vaddr.get()).collect()
    }

    #[test]
    fn exact_stream_repeats_exactly() {
        let cfg = TemporalStreamConfig::pointer_chase("t", Pc::new(1), Addr::new(0), 100);
        let mut s = TemporalStream::new(cfg, 3);
        let a = collect(&mut s, 100);
        let b = collect(&mut s, 100);
        assert_eq!(a, b);
        // All distinct within a pass.
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 100);
    }

    #[test]
    fn loose_stream_same_set_different_order() {
        let cfg = TemporalStreamConfig {
            exactness: 0.5,
            shuffle_window: 8,
            ..TemporalStreamConfig::pointer_chase("t", Pc::new(2), Addr::new(0), 200)
        };
        let mut s = TemporalStream::new(cfg, 4);
        let a = collect(&mut s, 200);
        let b = collect(&mut s, 200);
        let mut sa = a.clone();
        let mut sb = b.clone();
        sa.sort_unstable();
        sb.sort_unstable();
        assert_eq!(sa, sb, "every pass emits the same element set");
        assert_ne!(a, b, "order must be jittered");
        // Reordering is bounded: each element appears within the window
        // of its position in the other pass.
        let pos_b: std::collections::HashMap<u64, usize> =
            b.iter().enumerate().map(|(i, v)| (*v, i)).collect();
        // Displacement is hard-bounded: an element waits at most one
        // window at the front plus one window to reach it, per pass.
        for (i, v) in a.iter().enumerate() {
            let j = pos_b[v];
            assert!(i.abs_diff(j) <= 4 * 8, "element moved {} -> {}", i, j);
        }
    }

    #[test]
    fn drift_changes_sequence_between_passes() {
        let cfg = TemporalStreamConfig {
            drift: 0.5,
            ..TemporalStreamConfig::pointer_chase("t", Pc::new(3), Addr::new(0), 100)
        };
        let mut s = TemporalStream::new(cfg, 5);
        let a = collect(&mut s, 100);
        let b = collect(&mut s, 100);
        let changed = a.iter().zip(&b).filter(|(x, y)| x != y).count();
        assert!(changed > 20, "drift=0.5 changed only {changed}/100");
    }

    #[test]
    fn noise_injects_outside_sequence() {
        let cfg = TemporalStreamConfig {
            noise: 0.3,
            region_lines: 10_000,
            ..TemporalStreamConfig::pointer_chase("t", Pc::new(4), Addr::new(0), 50)
        };
        let mut s = TemporalStream::new(cfg, 6);
        let a = collect(&mut s, 1000);
        let distinct: std::collections::HashSet<_> = a.iter().collect();
        assert!(distinct.len() > 60, "noise should widen the footprint");
    }

    #[test]
    fn dependent_flag_propagates() {
        let cfg = TemporalStreamConfig::pointer_chase("t", Pc::new(5), Addr::new(0), 10);
        let mut s = TemporalStream::new(cfg, 7);
        assert!(s.next_access().dependent);
    }

    #[test]
    fn strided_stream_walks_and_wraps() {
        let mut s = StridedStream::new("a", Pc::new(6), Addr::new(0), 1, 4);
        let a = collect(&mut s, 8);
        assert_eq!(a, vec![0, 64, 128, 192, 0, 64, 128, 192]);
    }

    #[test]
    fn random_stream_stays_in_region() {
        let mut s = RandomStream::new("r", Pc::new(7), Addr::new(4096), 16, false, 8);
        for _ in 0..100 {
            let v = s.next_access().vaddr.get();
            assert!((4096..4096 + 16 * 64).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "region must fit")]
    fn region_must_fit_sequence() {
        let cfg = TemporalStreamConfig {
            region_lines: 10,
            ..TemporalStreamConfig::pointer_chase("t", Pc::new(8), Addr::new(0), 20)
        };
        let _ = TemporalStream::new(cfg, 0);
    }
}
