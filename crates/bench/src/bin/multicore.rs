//! The `multicore` scaling figure: MCF replicated across the
//! core-count ladder on the contended N-core timing model (banked
//! shared LLC, per-channel DRAM bandwidth, MSHR back-pressure,
//! cycle-ordered stepping), under the stride-only baseline and full
//! Triangel. Emits `BENCH_multicore.json`
//! (`BENCH_multicore_smoke.json` when `TRIANGEL_MULTICORE_SMOKE=1`).
//! `TRIANGEL_EXEC_THREADS=N` parallelizes intra-sim trace generation;
//! the artefact is byte-identical at any width.

fn main() {
    triangel_bench::figures::run_main("multicore");
}
