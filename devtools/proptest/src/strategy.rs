//! The [`Strategy`] trait and the built-in strategy combinators the
//! workspace's tests use.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A source of generated values (no shrinking in this shim).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erases the strategy for use in [`Union`] / `prop_oneof!`.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniformly picks one of several strategies per case (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over non-empty `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} options)", self.options.len())
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),+) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as u64) - (self.start as u64);
                    self.start + rng.below(width) as $ty
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let width = (hi as u64) - (lo as u64);
                    if width == u64::MAX {
                        return rng.next_u64() as $ty;
                    }
                    lo + rng.below(width + 1) as $ty
                }
            }
        )+
    };
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Occasionally emit the exact endpoints; they are the
        // interesting values for inclusive float ranges.
        match rng.below(64) {
            0 => *self.start(),
            1 => *self.end(),
            _ => *self.start() + rng.unit_f64() * (*self.end() - *self.start()),
        }
    }
}

macro_rules! tuple_strategy {
    ($($name:ident: $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
