//! Reproduces Fig. 18: Triage speedup under different Markov-table
//! entry formats and lookup-table configurations (Section 6.5).
//!
//! The five variants: the default 32-bit entry with a 16-way-associative
//! 1024-entry lookup table; a hypothetical *ideal* (never-wrong) lookup
//! table; a fully-associative lookup table; Triangel's 42-bit direct
//! format; and the 10-bit-offset variant that models halved physical
//! frame locality.

use triangel_bench::SweepParams;
use triangel_markov::TargetFormat;
use triangel_sim::report::FigureTable;
use triangel_sim::{Comparison, Experiment, PrefetcherChoice};
use triangel_workloads::spec::SpecWorkload;

fn main() {
    let p = SweepParams::from_env();
    let formats = [
        TargetFormat::triage_default(),
        TargetFormat::Ideal32,
        TargetFormat::triage_full_lut(),
        TargetFormat::Direct42,
        TargetFormat::triage_10b_offset(),
    ];
    let mut table = FigureTable::new(
        "Fig. 18: Triage speedup by Markov-table format",
        "IPC relative to stride-only baseline (first column is Triage's default)",
        formats.iter().map(|f| f.label().to_string()).collect(),
    );
    for wl in SpecWorkload::ALL {
        eprintln!("[fig18] {} / Baseline", wl.label());
        let base = Experiment::new(wl.generator(p.seed))
            .warmup(p.warmup)
            .accesses(p.accesses)
            .run();
        let mut row = Vec::new();
        for f in formats {
            eprintln!("[fig18] {} / {}", wl.label(), f.label());
            let run = Experiment::new(wl.generator(p.seed))
                .warmup(p.warmup)
                .accesses(p.accesses)
                .prefetcher(PrefetcherChoice::TriageFormat(f))
                .run();
            row.push(Comparison::new(&base, &run).speedup);
        }
        table.push_row(wl.label(), row);
    }
    table.print();
}
