//! Sphinx3-like workload: speech recognition.
//!
//! Acoustic-model scoring loops over Gaussian mixture data with strong
//! reuse but a search-dependent evaluation order: like Omnet, the same
//! set repeats in a jittered order, which the paper says makes
//! BasePatternConf alone too conservative and the Second-Chance Sampler
//! valuable (Section 6.6).

use super::Builder;
use crate::mix::WorkloadMix;

pub(crate) fn build(mut b: Builder) -> WorkloadMix {
    // Gaussian tables: medium set, loose order, stable across passes.
    b.temporal("sphinx.gauss", 34_000, 0.60, 16, 0.006, 0.001, false, 4);
    // HMM/lexicon structures: smaller, loose, dependent.
    b.temporal("sphinx.hmm", 14_000, 0.75, 10, 0.004, 0.001, true, 2);
    // Feature vectors: strided streaming.
    b.strided("sphinx.feat", 1, 26_000, 2);
    b.finish()
}
