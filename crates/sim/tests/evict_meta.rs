//! Property test for L2 eviction notices: every [`EvictNotice`] a
//! prefetcher receives must correspond to a previously observed fill,
//! with internally consistent metadata, across all shipped generators.
//!
//! A recording prefetcher wraps a gate-on Triangel (so temporal
//! prefetches actually happen) and logs, in delivery order, every
//! training event, every prefetch request it emitted, and every
//! eviction notice. The invariants checked over the merged log:
//!
//! 1. **Fill before eviction**: `meta.fill_seq < evict_seq` strictly —
//!    the L2 fill clock orders the victim's install before the fill
//!    that kills it. (Cycles are deliberately *not* compared:
//!    `ready_at` is not monotonic across fills — that is exactly why
//!    the fill clock exists.)
//! 2. **Tag-bit consistency**: `was_unused_prefetch` holds exactly for
//!    temporal fills that died without a demand touch; stride fills
//!    enter the L2 untagged (demand-like) and so are born `used`.
//! 3. **FillSource matches the fill that installed the line**: a
//!    `Temporal` victim was requested by this prefetcher earlier in
//!    the log (with a matching fill PC, and `ready_at` no earlier than
//!    the request could issue); a `Demand` victim missed in the L2
//!    earlier in the log (its fill and its `L2Miss` training event are
//!    the same access).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use triangel_core::{Triangel, TriangelConfig, TriangelFeatures};
use triangel_prefetch::{
    CacheView, EvictNotice, PrefetchRequest, Prefetcher, TrainEvent, TrainKind,
};
use triangel_sim::{Engine, MemorySystem, PrefetcherImpl, SystemConfig};
use triangel_types::{Cycle, FillSource, LineAddr, Pc};
use triangel_workloads::graph500::Graph500Config;
use triangel_workloads::paging::PageMapper;
use triangel_workloads::spec::SpecWorkload;
use triangel_workloads::TraceSource;

/// One entry of the merged observation log, in delivery order.
#[derive(Debug, Clone)]
enum Obs {
    /// A training event (kind, line).
    Event(TrainKind, LineAddr),
    /// A prefetch request this prefetcher emitted (line, pc, earliest
    /// cycle it can issue).
    Issued(LineAddr, Pc, Cycle),
    /// An eviction notice.
    Evict(EvictNotice),
}

/// Wraps a real Triangel and logs everything it sees and emits.
#[derive(Debug)]
struct Recorder {
    inner: Triangel,
    log: Arc<Mutex<Vec<Obs>>>,
}

impl Prefetcher for Recorder {
    fn on_event(
        &mut self,
        ev: &TrainEvent,
        caches: &dyn CacheView,
        out: &mut Vec<PrefetchRequest>,
    ) {
        self.inner.on_event(ev, caches, out);
        let mut log = self.log.lock().unwrap();
        log.push(Obs::Event(ev.kind, ev.line));
        for r in out.iter() {
            log.push(Obs::Issued(r.line, r.pc, ev.cycle + r.issue_delay));
        }
    }

    fn on_l2_evict(&mut self, notice: &EvictNotice) {
        self.inner.on_l2_evict(notice);
        self.log.lock().unwrap().push(Obs::Evict(*notice));
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn desired_markov_ways(&self) -> usize {
        self.inner.desired_markov_ways()
    }

    fn stats(&self) -> triangel_prefetch::PrefetcherStats {
        self.inner.stats()
    }
}

/// Runs one generator through a gate-on Triangel system, returning the
/// observation log.
fn observe(source: Box<dyn TraceSource + Send>, accesses: u64) -> Vec<Obs> {
    let log = Arc::new(Mutex::new(Vec::new()));
    let mut cfg = TriangelConfig::paper_default();
    // Ladder step 0 (Triage-Deg4 behaviour) with the eviction gate on:
    // prefetching is ungated, so temporal fills — and their deaths —
    // appear within a short run; full Triangel's classifiers would
    // stay closed at this scale.
    cfg.features = TriangelFeatures {
        train_on_eviction: true,
        ..TriangelFeatures::none()
    };
    cfg.sizing_window = 2_000;
    let recorder = Recorder {
        inner: Triangel::new(cfg),
        log: Arc::clone(&log),
    };
    let system = MemorySystem::with_prefetchers(
        SystemConfig::paper_single_core(),
        vec![PrefetcherImpl::Dyn(Box::new(recorder))],
    );
    let mut engine =
        Engine::try_new(system, vec![source], PageMapper::realistic(0xA11C)).expect("one core");
    engine.run_accesses(accesses);
    drop(engine);
    Arc::try_unwrap(log)
        .expect("engine dropped its log handle")
        .into_inner()
        .unwrap()
}

/// Checks the eviction-notice invariants over one log; returns the
/// number of notices checked per source kind.
fn check(log: &[Obs], label: &str) -> HashMap<&'static str, usize> {
    // Running views of what has been observed so far.
    let mut issued: HashMap<LineAddr, Vec<(Pc, Cycle)>> = HashMap::new();
    let mut missed: HashMap<LineAddr, usize> = HashMap::new();
    let mut counts: HashMap<&'static str, usize> = HashMap::new();
    for (i, obs) in log.iter().enumerate() {
        match obs {
            Obs::Event(kind, line) => {
                if *kind == TrainKind::L2Miss {
                    missed.insert(*line, i);
                }
            }
            Obs::Issued(line, pc, at) => issued.entry(*line).or_default().push((*pc, *at)),
            Obs::Evict(n) => {
                // 1. The fill clock orders install before eviction.
                assert!(
                    n.meta.fill_seq < n.evict_seq,
                    "{label}: notice #{i} fill_seq {} !< evict_seq {}",
                    n.meta.fill_seq,
                    n.evict_seq,
                );
                assert!(n.meta.fill_seq > 0, "{label}: victim was never stamped");
                // 2. Tag-bit consistency per source.
                match n.meta.source {
                    FillSource::Temporal => assert_eq!(
                        n.was_unused_prefetch, !n.meta.used,
                        "{label}: temporal tag bit disagrees with used bit"
                    ),
                    FillSource::Stride => {
                        assert!(!n.was_unused_prefetch, "{label}: stride fills are untagged");
                        assert!(n.meta.used, "{label}: untagged fills are born used");
                    }
                    FillSource::Demand => {
                        assert!(!n.was_unused_prefetch);
                        assert!(n.meta.used, "{label}: demand fills are born used");
                    }
                }
                // 3. The source matches a fill we can account for.
                match n.meta.source {
                    FillSource::Temporal => {
                        counts
                            .entry("temporal")
                            .and_modify(|c| *c += 1)
                            .or_insert(1);
                        let reqs = issued.get(&n.line).unwrap_or_else(|| {
                            panic!(
                                "{label}: temporal victim {:?} was never requested \
                                 by this prefetcher",
                                n.line
                            )
                        });
                        assert!(
                            reqs.iter().any(|(pc, _)| Some(*pc) == n.fill_pc),
                            "{label}: fill_pc {:?} matches no issued request",
                            n.fill_pc
                        );
                        assert!(
                            reqs.iter().any(|(_, at)| *at <= n.meta.ready_at),
                            "{label}: fill completed before any request could issue"
                        );
                    }
                    FillSource::Demand => {
                        counts.entry("demand").and_modify(|c| *c += 1).or_insert(1);
                        assert!(
                            missed.contains_key(&n.line),
                            "{label}: demand victim {:?} never missed in the L2",
                            n.line
                        );
                    }
                    FillSource::Stride => {
                        // Stride requests are invisible to the temporal
                        // prefetcher; consistency was checked above.
                        counts.entry("stride").and_modify(|c| *c += 1).or_insert(1);
                    }
                }
            }
        }
    }
    counts
}

#[test]
fn evict_notices_correspond_to_fills_across_all_shipped_generators() {
    let mut sources: Vec<(String, Box<dyn TraceSource + Send>)> = SpecWorkload::ALL
        .iter()
        .map(|wl| {
            (
                wl.label().to_string(),
                Box::new(wl.generator(11)) as Box<dyn TraceSource + Send>,
            )
        })
        .collect();
    let g500 = Graph500Config::tiny().build_trace();
    sources.push(("g500-tiny".into(), Box::new(g500)));

    let mut total_temporal = 0;
    let mut total_notices = 0;
    for (label, source) in sources {
        let log = observe(source, 30_000);
        // Small working sets (the tiny Graph500 input) may fit in the
        // L2 and legitimately never evict; the invariants are checked
        // on whatever notices each run produces.
        total_notices += log.iter().filter(|o| matches!(o, Obs::Evict(_))).count();
        let counts = check(&log, &label);
        total_temporal += counts.get("temporal").copied().unwrap_or(0);
    }
    assert!(total_notices > 0, "the sweep must evict L2 lines somewhere");
    // The sweep as a whole must exercise the temporal path (individual
    // generators may legitimately prefetch too accurately to waste).
    assert!(
        total_temporal > 0,
        "no temporal-filled line ever died across the whole sweep"
    );
}
