//! A small, dependency-free regular-expression engine.
//!
//! Supports the subset useful for selecting experiments on a command
//! line: literals, `.`, the postfix quantifiers `*` `+` `?`, anchors
//! `^` `$`, alternation `|`, grouping `(...)`, character classes
//! `[abc]`, `[a-z]`, `[^...]`, the shorthands `\d` `\w` `\s` (and the
//! negated `\D` `\W` `\S`), and `\`-escaped punctuation. Unknown
//! alphanumeric escapes are parse errors rather than silent literals.
//! Matching is backtracking over the parsed AST; patterns are tiny
//! (figure names), so worst-case behaviour is irrelevant here.

use std::fmt;

/// A parse error, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternError {
    /// Byte offset into the pattern.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad pattern at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for PatternError {}

#[derive(Debug, Clone)]
enum Node {
    /// A literal character.
    Char(char),
    /// `.`
    Any,
    /// `[...]` / `[^...]`
    Class {
        negated: bool,
        ranges: Vec<(char, char)>,
    },
    /// `^`
    Start,
    /// `$`
    End,
    /// A parenthesised group.
    Group(Box<Node>),
    /// Concatenation.
    Seq(Vec<Node>),
    /// `a|b`
    Alt(Vec<Node>),
    /// `x*` / `x+` / `x?`
    Repeat {
        node: Box<Node>,
        min: u32,
        many: bool,
    },
}

/// A compiled pattern.
#[derive(Debug, Clone)]
pub struct Pattern {
    ast: Node,
}

impl Pattern {
    /// Compiles `pattern`.
    ///
    /// # Errors
    ///
    /// [`PatternError`] on malformed syntax (unbalanced parens,
    /// dangling quantifier, unterminated class).
    pub fn new(pattern: &str) -> Result<Self, PatternError> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut p = Parser {
            chars: &chars,
            pos: 0,
        };
        let ast = p.parse_alt()?;
        if p.pos != p.chars.len() {
            return Err(p.error("unexpected `)`"));
        }
        Ok(Pattern { ast })
    }

    /// Whether the pattern matches anywhere in `text` (like
    /// `Regex::is_match`).
    pub fn is_match(&self, text: &str) -> bool {
        let chars: Vec<char> = text.chars().collect();
        // `^`-anchored patterns only need the attempt at offset 0, but
        // detecting that is an optimisation only; try every offset.
        (0..=chars.len()).any(|start| matches_at(&self.ast, &chars, start, &mut |_| true))
    }
}

struct Parser<'a> {
    chars: &'a [char],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> PatternError {
        PatternError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn parse_alt(&mut self) -> Result<Node, PatternError> {
        let mut options = vec![self.parse_seq()?];
        while self.peek() == Some('|') {
            self.pos += 1;
            options.push(self.parse_seq()?);
        }
        Ok(if options.len() == 1 {
            options.pop().unwrap()
        } else {
            Node::Alt(options)
        })
    }

    fn parse_seq(&mut self) -> Result<Node, PatternError> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            items.push(self.parse_repeat()?);
        }
        Ok(if items.len() == 1 {
            items.pop().unwrap()
        } else {
            Node::Seq(items)
        })
    }

    fn parse_repeat(&mut self) -> Result<Node, PatternError> {
        let atom = self.parse_atom()?;
        match self.peek() {
            Some('*') => {
                self.pos += 1;
                Ok(Node::Repeat {
                    node: Box::new(atom),
                    min: 0,
                    many: true,
                })
            }
            Some('+') => {
                self.pos += 1;
                Ok(Node::Repeat {
                    node: Box::new(atom),
                    min: 1,
                    many: true,
                })
            }
            Some('?') => {
                self.pos += 1;
                Ok(Node::Repeat {
                    node: Box::new(atom),
                    min: 0,
                    many: false,
                })
            }
            _ => Ok(atom),
        }
    }

    fn parse_atom(&mut self) -> Result<Node, PatternError> {
        let c = self
            .peek()
            .ok_or_else(|| self.error("pattern ended unexpectedly"))?;
        self.pos += 1;
        match c {
            '(' => {
                let inner = self.parse_alt()?;
                if self.peek() != Some(')') {
                    return Err(self.error("unbalanced `(`"));
                }
                self.pos += 1;
                Ok(Node::Group(Box::new(inner)))
            }
            '[' => self.parse_class(),
            '.' => Ok(Node::Any),
            '^' => Ok(Node::Start),
            '$' => Ok(Node::End),
            '\\' => {
                let escaped = self.peek().ok_or_else(|| self.error("dangling `\\`"))?;
                self.pos += 1;
                match shorthand_ranges(escaped) {
                    Some(ranges) => Ok(Node::Class {
                        negated: escaped.is_ascii_uppercase(),
                        ranges,
                    }),
                    None if escaped.is_ascii_alphanumeric() => {
                        Err(self.error("unsupported escape (only \\d \\w \\s, \\D \\W \\S and escaped punctuation)"))
                    }
                    None => Ok(Node::Char(escaped)),
                }
            }
            '*' | '+' | '?' => Err(self.error("quantifier with nothing to repeat")),
            c => Ok(Node::Char(c)),
        }
    }

    fn parse_class(&mut self) -> Result<Node, PatternError> {
        let negated = self.peek() == Some('^');
        if negated {
            self.pos += 1;
        }
        let mut ranges = Vec::new();
        loop {
            let c = self.peek().ok_or_else(|| self.error("unterminated `[`"))?;
            self.pos += 1;
            if c == ']' && !ranges.is_empty() {
                return Ok(Node::Class { negated, ranges });
            }
            let lo = if c == '\\' {
                let e = self.peek().ok_or_else(|| self.error("dangling `\\`"))?;
                self.pos += 1;
                match shorthand_ranges(e) {
                    // `[\d-]`-style shorthands contribute their ranges
                    // directly and cannot anchor an `a-z` range.
                    Some(mut r) if e.is_ascii_lowercase() => {
                        ranges.append(&mut r);
                        continue;
                    }
                    Some(_) => return Err(self.error("negated shorthand not supported in class")),
                    None if e.is_ascii_alphanumeric() => {
                        return Err(self.error("unsupported escape in class"))
                    }
                    None => e,
                }
            } else {
                c
            };
            // `a-z` range (a trailing `-` is a literal).
            if self.peek() == Some('-') && self.chars.get(self.pos + 1).copied() != Some(']') {
                self.pos += 1;
                let hi = self
                    .peek()
                    .ok_or_else(|| self.error("unterminated range"))?;
                self.pos += 1;
                if hi < lo {
                    return Err(self.error("inverted range"));
                }
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
    }
}

/// The character ranges of `\d` / `\w` / `\s` (uppercase forms reuse
/// the same ranges under negation); `None` for ordinary escapes.
fn shorthand_ranges(c: char) -> Option<Vec<(char, char)>> {
    match c.to_ascii_lowercase() {
        'd' => Some(vec![('0', '9')]),
        'w' => Some(vec![('0', '9'), ('A', 'Z'), ('a', 'z'), ('_', '_')]),
        's' => Some(vec![(' ', ' '), ('\t', '\t'), ('\n', '\n'), ('\r', '\r')]),
        _ => None,
    }
}

/// Backtracking matcher: does `node` match starting at `pos`, and if
/// so, does `rest(end_pos)` accept?
fn matches_at(node: &Node, text: &[char], pos: usize, rest: &mut dyn FnMut(usize) -> bool) -> bool {
    match node {
        Node::Char(c) => text.get(pos) == Some(c) && rest(pos + 1),
        Node::Any => pos < text.len() && rest(pos + 1),
        Node::Class { negated, ranges } => match text.get(pos) {
            None => false,
            Some(&c) => {
                let inside = ranges.iter().any(|(lo, hi)| *lo <= c && c <= *hi);
                inside != *negated && rest(pos + 1)
            }
        },
        Node::Start => pos == 0 && rest(pos),
        Node::End => pos == text.len() && rest(pos),
        Node::Group(inner) => matches_at(inner, text, pos, rest),
        Node::Seq(items) => seq_matches(items, text, pos, rest),
        Node::Alt(options) => options.iter().any(|o| matches_at(o, text, pos, rest)),
        Node::Repeat { node, min, many } => repeat_matches(node, text, pos, *min, *many, rest),
    }
}

fn seq_matches(
    items: &[Node],
    text: &[char],
    pos: usize,
    rest: &mut dyn FnMut(usize) -> bool,
) -> bool {
    match items.split_first() {
        None => rest(pos),
        Some((head, tail)) => matches_at(head, text, pos, &mut |next| {
            seq_matches(tail, text, next, rest)
        }),
    }
}

fn repeat_matches(
    node: &Node,
    text: &[char],
    pos: usize,
    min: u32,
    many: bool,
    rest: &mut dyn FnMut(usize) -> bool,
) -> bool {
    if min > 0 {
        return matches_at(node, text, pos, &mut |next| {
            // Zero-width inner match: stop recursing.
            if next == pos {
                rest(next)
            } else {
                repeat_matches(node, text, next, min - 1, many, rest)
            }
        });
    }
    if many {
        // Greedy: try one more repetition first, then none.
        let more = matches_at(node, text, pos, &mut |next| {
            next != pos && repeat_matches(node, text, next, 0, true, rest)
        });
        more || rest(pos)
    } else {
        // `?`: one or zero.
        matches_at(node, text, pos, &mut |next| next != pos && rest(next)) || rest(pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, text: &str) -> bool {
        Pattern::new(pat).unwrap().is_match(text)
    }

    #[test]
    fn literals_are_substring_matches() {
        assert!(m("fig1", "fig10"));
        assert!(m("g1", "fig10"));
        assert!(!m("fig2", "fig10"));
    }

    #[test]
    fn anchors() {
        assert!(m("^fig10$", "fig10"));
        assert!(!m("^ig10$", "fig10"));
        assert!(!m("^fig1$", "fig10"));
        assert!(m("^fig1", "fig10"));
    }

    #[test]
    fn classes_and_quantifiers() {
        assert!(m("fig1[0-5]$", "fig13"));
        assert!(!m("fig1[0-5]$", "fig17"));
        assert!(m("fig[0-9]+", "fig20"));
        assert!(m("ta?ble", "table"));
        assert!(m("t.ble", "table"));
        assert!(m("se.*33", "sec33_replacement"));
        assert!(m("[^x]ig", "fig10"));
        assert!(!m("[^f]ig", "fig10"));
    }

    #[test]
    fn alternation_and_groups() {
        let p = Pattern::new("^(fig1[45]|table[12])$").unwrap();
        assert!(p.is_match("fig14"));
        assert!(p.is_match("table2"));
        assert!(!p.is_match("fig16"));
        assert!(!p.is_match("table3"));
    }

    #[test]
    fn star_backtracks() {
        assert!(m("a.*b.*c", "xxaXbXcXX"));
        assert!(m("a*a", "aaa"));
        assert!(!m("a+b", "ccc"));
    }

    #[test]
    fn escape_shorthands() {
        assert!(m(r"fig\d+", "fig10"));
        assert!(!m(r"fig\d", "figx"));
        assert!(m(r"^\w+$", "sec33_replacement"));
        assert!(!m(r"^\w+$", "a b"));
        assert!(m(r"a\sb", "a b"));
        assert!(m(r"\D+", "abc"));
        assert!(!m(r"^\D+$", "a1b"));
        assert!(m(r"[\d_]+", "33_"));
        assert!(m(r"fig\.10", "fig.10"));
        assert!(!m(r"fig\.10", "figx10"));
    }

    #[test]
    fn errors_are_reported() {
        assert!(Pattern::new("(open").is_err());
        assert!(Pattern::new("*x").is_err());
        assert!(Pattern::new("[a-").is_err());
        assert!(Pattern::new("a)").is_err());
        // Unknown alphanumeric escapes fail loudly instead of silently
        // matching a literal.
        assert!(Pattern::new(r"\b x").is_err());
        assert!(Pattern::new(r"[\b]").is_err());
        assert!(Pattern::new(r"[\D]").is_err());
    }
}
