//! The 1024-entry prefetch-target lookup table (Section 3.1).

use crate::format::LutAssociativity;

const LUT_ENTRIES: usize = 1024;

/// The shared upper-bits table Triage's 32-bit format indirects through.
///
/// Each slot holds the upper bits (`target_line >> offset_bits`) of some
/// physical region. Markov entries store a 10-bit slot index; when the
/// slot is re-used for a different region, those Markov entries silently
/// start reconstructing *wrong addresses* — the paper's Fig. 19 accuracy
/// collapse. "Unlike the Markov table, which stops generating prefetches
/// if its capacity is exhausted, the lookup table (accessed only via
/// index) returns addresses the program may never have accessed."
#[derive(Debug, Clone)]
pub struct LookupTable {
    assoc: LutAssociativity,
    slots: Vec<Option<u64>>,
    stamps: Vec<u64>,
    clock: u64,
    evictions: u64,
}

impl LookupTable {
    /// Creates an empty table.
    pub fn new(assoc: LutAssociativity) -> Self {
        LookupTable {
            assoc,
            slots: vec![None; LUT_ENTRIES],
            stamps: vec![0; LUT_ENTRIES],
            clock: 0,
            evictions: 0,
        }
    }

    fn set_range(&self, upper: u64) -> (usize, usize) {
        match self.assoc {
            LutAssociativity::Way16 => {
                // 64 sets x 16 ways, indexed by the upper value.
                let set = (upper as usize) % 64;
                (set * 16, 16)
            }
            LutAssociativity::Full => (0, LUT_ENTRIES),
        }
    }

    /// Finds the slot holding `upper`, if any (the reverse lookup the
    /// paper notes the structure must support).
    pub fn find(&self, upper: u64) -> Option<u16> {
        let (base, len) = self.set_range(upper);
        (base..base + len)
            .find(|i| self.slots[*i] == Some(upper))
            .map(|i| i as u16)
    }

    /// Returns the slot index for `upper`, allocating (and possibly
    /// evicting an unrelated region) if absent. The eviction is the
    /// silent-corruption event: any Markov entry still holding the old
    /// index now reconstructs a different region's address.
    pub fn index_for(&mut self, upper: u64) -> u16 {
        self.clock += 1;
        if let Some(i) = self.find(upper) {
            self.stamps[i as usize] = self.clock;
            return i;
        }
        let (base, len) = self.set_range(upper);
        // Empty slot first, else LRU victim.
        let victim = (base..base + len)
            .find(|i| self.slots[*i].is_none())
            .unwrap_or_else(|| {
                (base..base + len)
                    .min_by_key(|i| self.stamps[*i])
                    .expect("non-empty set")
            });
        if self.slots[victim].is_some() {
            self.evictions += 1;
        }
        self.slots[victim] = Some(upper);
        self.stamps[victim] = self.clock;
        victim as u16
    }

    /// Reads the upper bits currently stored at `idx` (whatever region
    /// now owns the slot).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 1024`.
    pub fn upper_at(&self, idx: u16) -> Option<u64> {
        self.slots[idx as usize]
    }

    /// Refreshes recency of `idx` on a prefetch-generation read.
    pub fn touch(&mut self, idx: u16) {
        self.clock += 1;
        self.stamps[idx as usize] = self.clock;
    }

    /// Slots reused for a new region so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Number of occupied slots.
    pub fn occupancy(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Dedicated-storage size in bytes (4-byte tags, per Section 3.1's
    /// "4KiB structure").
    pub fn size_bytes(&self) -> usize {
        LUT_ENTRIES * 4
    }
}

use triangel_types::snap::{SnapError, SnapReader, SnapWriter, Snapshot};

impl Snapshot for LookupTable {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.usize(self.slots.len());
        for s in &self.slots {
            match s {
                Some(upper) => {
                    w.bool(true);
                    w.u64(*upper);
                }
                None => w.bool(false),
            }
        }
        for s in &self.stamps {
            w.u64(*s);
        }
        w.u64(self.clock);
        w.u64(self.evictions);
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        r.expect_len(self.slots.len(), "LUT slots")?;
        for s in &mut self.slots {
            *s = if r.bool()? { Some(r.u64()?) } else { None };
        }
        for s in &mut self.stamps {
            *s = r.u64()?;
        }
        self.clock = r.u64()?;
        self.evictions = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut lut = LookupTable::new(LutAssociativity::Way16);
        let i = lut.index_for(0xABC);
        assert_eq!(lut.upper_at(i), Some(0xABC));
        assert_eq!(lut.find(0xABC), Some(i));
        assert_eq!(lut.index_for(0xABC), i, "stable index for same region");
    }

    #[test]
    fn eviction_corrupts_stale_indices() {
        let mut lut = LookupTable::new(LutAssociativity::Way16);
        // Fill one set (uppers congruent mod 64) past its 16 ways.
        let first = lut.index_for(64);
        for k in 1..=16u64 {
            let _ = lut.index_for(64 + k * 64);
        }
        // Slot `first` now belongs to someone else: a stale Markov entry
        // holding `first` reconstructs the wrong region.
        assert_ne!(lut.upper_at(first), Some(64));
        assert!(lut.evictions() > 0);
    }

    #[test]
    fn full_assoc_uses_whole_table() {
        let mut lut = LookupTable::new(LutAssociativity::Full);
        for k in 0..LUT_ENTRIES as u64 {
            let _ = lut.index_for(k * 64); // same set under Way16
        }
        assert_eq!(lut.occupancy(), LUT_ENTRIES);
        assert_eq!(lut.evictions(), 0);
    }

    #[test]
    fn way16_capacity_is_per_set() {
        let mut lut = LookupTable::new(LutAssociativity::Way16);
        for k in 0..32u64 {
            let _ = lut.index_for(k * 64); // all map to set 0
        }
        // Only 16 can coexist.
        assert_eq!(lut.occupancy(), 16);
        assert_eq!(lut.evictions(), 16);
    }

    #[test]
    fn lru_keeps_hot_regions() {
        let mut lut = LookupTable::new(LutAssociativity::Way16);
        let hot = lut.index_for(0);
        for k in 1..16u64 {
            let _ = lut.index_for(k * 64);
        }
        lut.touch(hot);
        let _ = lut.index_for(16 * 64); // evicts someone, not `hot`
        assert_eq!(lut.upper_at(hot), Some(0));
    }

    #[test]
    fn size_matches_paper() {
        assert_eq!(LookupTable::new(LutAssociativity::Way16).size_bytes(), 4096);
    }
}
