//! Reproduces Table 2: the core and memory experimental setup.

use triangel_sim::SystemConfig;

fn main() {
    let cfg = SystemConfig::paper_single_core();
    println!("## Table 2: Core and memory experimental setup\n");
    println!("Core       5-wide out-of-order approximation, 2 GHz");
    println!("Pipeline   {}-entry ROB (issue window), width {}", cfg.rob_entries, cfg.width);
    for (name, c) in [("L1 DCache", &cfg.l1), ("L2 Cache", &cfg.l2), ("L3 Cache", &cfg.l3)] {
        println!(
            "{:10} {} KiB, {}-way, {}-cycle hit latency, {} sets",
            name,
            c.size_bytes() / 1024,
            c.ways(),
            c.hit_latency(),
            c.sets()
        );
    }
    println!("L2 MSHRs   {}", cfg.l2_mshrs);
    println!(
        "Memory     LPDDR5-like: {} cycles access latency, {} cycles/line channel occupancy",
        cfg.dram.access_latency, cfg.dram.service_interval
    );
    println!("Stride pf  degree-{} at the L1D (baseline includes it)", cfg.stride_degree);
    println!("Markov     up to {} of {} L3 ways (half the cache)", cfg.max_markov_ways, cfg.l3.ways());
}
