//! Harness-as-a-service: the simulation daemon and its client.
//!
//! The [`Server`] is a long-lived daemon on a Unix-domain socket; any
//! number of clients connect, submit sweep batches, and stream back
//! per-segment progress plus per-job reports. Jobs schedule on the
//! same work-stealing [`pool`](crate::pool) as in-process sweeps, and
//! resolve against a shared [`triangel_store::ResultStore`] first —
//! many clients sweeping overlapping grids each pay only for the jobs
//! nobody has run yet.
//!
//! The determinism bar is unchanged: a report served by the daemon
//! (fresh execution or store hit) is byte-identical to running the
//! same job in-process, so a sweep with [`crate::SweepOptions::remote`]
//! attached folds remote results through grid aggregation without any
//! observable difference in output. The handshake enforces this —
//! client and daemon must agree on both the wire protocol and the
//! simulator's snapshot version.
//!
//! See [`wire`] for the protocol itself and for which jobs it can
//! express ([`remotable`]); sweeps run inexpressible jobs locally.

pub mod wire;

mod client;
mod server;

pub use client::{Client, ClientStats, RemoteOutcome};
pub use server::{Server, ServerOptions};
pub use wire::{remotable, PROTO_VERSION};
