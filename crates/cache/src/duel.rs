//! Set-duelling support (Qureshi et al., IEEE Micro 2008).
//!
//! Two consumers in this workspace sample a subset of cache sets:
//! HawkEye's OPTgen and Triangel's Set Dueller (Section 4.7), which "samples
//! 64 random sets". [`SampledSets`] provides the deterministic
//! pseudo-random selection; [`DuelSelector`] is the classic two-policy
//! PSEL monitor, usable for DRRIP-style experiments.

use std::collections::HashMap;

use triangel_types::rng::SplitMix64;
use triangel_types::SaturatingCounter;

/// A deterministic pseudo-random sample of cache sets.
///
/// # Examples
///
/// ```
/// use triangel_cache::duel::SampledSets;
///
/// let s = SampledSets::new(2048, 64, 42);
/// assert_eq!(s.len(), 64);
/// let hits = (0..2048).filter(|set| s.index_of(*set).is_some()).count();
/// assert_eq!(hits, 64);
/// ```
#[derive(Debug, Clone)]
pub struct SampledSets {
    index: HashMap<usize, usize>,
    members: Vec<usize>,
}

impl SampledSets {
    /// Samples `count` distinct sets out of `total` using `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or exceeds `total`.
    pub fn new(total: usize, count: usize, seed: u64) -> Self {
        assert!(count > 0 && count <= total, "invalid sample size");
        let mut rng = SplitMix64::new(seed);
        let mut members = Vec::with_capacity(count);
        let mut index = HashMap::with_capacity(count);
        while members.len() < count {
            let set = rng.next_below(total as u64) as usize;
            if let std::collections::hash_map::Entry::Vacant(e) = index.entry(set) {
                e.insert(members.len());
                members.push(set);
            }
        }
        SampledSets { index, members }
    }

    /// Returns this set's position in the sample, if it is sampled.
    pub fn index_of(&self, set: usize) -> Option<usize> {
        self.index.get(&set).copied()
    }

    /// Number of sampled sets.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the sample is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The sampled set indices, in selection order.
    pub fn members(&self) -> &[usize] {
        &self.members
    }
}

/// Which of the two duelling policies a follower set should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DuelChoice {
    /// The first policy is winning.
    PolicyA,
    /// The second policy is winning.
    PolicyB,
}

/// Classic set-duelling monitor: two groups of leader sets and a PSEL
/// counter that tracks which group misses less.
///
/// # Examples
///
/// ```
/// use triangel_cache::duel::{DuelSelector, DuelChoice};
///
/// let mut d = DuelSelector::new(1024, 32, 10, 7);
/// // Misses in A-leader sets push the choice toward B.
/// for _ in 0..600 {
///     if let Some(leader) = d.leader_of(0) {
///         d.record_miss(leader);
///     }
/// }
/// # let _ = d.choice();
/// ```
#[derive(Debug, Clone)]
pub struct DuelSelector {
    a: SampledSets,
    b: SampledSets,
    psel: SaturatingCounter,
}

/// Identifies the leader group a set belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaderGroup {
    /// Leader for policy A.
    A,
    /// Leader for policy B.
    B,
}

impl DuelSelector {
    /// Creates a selector over `total` sets with `leaders` sets per
    /// policy and a `psel_bits`-bit selector counter.
    pub fn new(total: usize, leaders: usize, psel_bits: u32, seed: u64) -> Self {
        let a = SampledSets::new(total, leaders, seed);
        // Re-sample B until disjoint from A (try successive seeds).
        let mut salt = seed.wrapping_add(1);
        let b = loop {
            let cand = SampledSets::new(total, leaders, salt);
            if cand.members().iter().all(|s| a.index_of(*s).is_none()) {
                break cand;
            }
            salt = salt.wrapping_add(1);
        };
        let mut psel = SaturatingCounter::with_bits(psel_bits);
        psel.set(1 << (psel_bits - 1)); // start neutral
        DuelSelector { a, b, psel }
    }

    /// Returns the leader group of `set`, if it is a leader.
    pub fn leader_of(&self, set: usize) -> Option<LeaderGroup> {
        if self.a.index_of(set).is_some() {
            Some(LeaderGroup::A)
        } else if self.b.index_of(set).is_some() {
            Some(LeaderGroup::B)
        } else {
            None
        }
    }

    /// Records a miss in a leader set: misses in A's leaders are evidence
    /// for B and vice versa.
    pub fn record_miss(&mut self, group: LeaderGroup) {
        match group {
            LeaderGroup::A => self.psel.inc(),
            LeaderGroup::B => self.psel.dec(),
        }
    }

    /// The policy follower sets should currently use.
    pub fn choice(&self) -> DuelChoice {
        if self.psel.get() > self.psel.max_value() / 2 {
            DuelChoice::PolicyB
        } else {
            DuelChoice::PolicyA
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_sets_are_distinct() {
        let s = SampledSets::new(256, 64, 7);
        let mut seen = std::collections::HashSet::new();
        for m in s.members() {
            assert!(seen.insert(*m));
            assert!(*m < 256);
        }
    }

    #[test]
    fn sample_is_deterministic() {
        let a = SampledSets::new(512, 16, 3);
        let b = SampledSets::new(512, 16, 3);
        assert_eq!(a.members(), b.members());
    }

    #[test]
    #[should_panic(expected = "invalid sample size")]
    fn oversample_rejected() {
        let _ = SampledSets::new(4, 8, 0);
    }

    #[test]
    fn leaders_are_disjoint() {
        let d = DuelSelector::new(1024, 32, 10, 99);
        for s in d.a.members() {
            assert!(d.b.index_of(*s).is_none());
        }
    }

    #[test]
    fn psel_steers_choice() {
        let mut d = DuelSelector::new(64, 8, 6, 1);
        for _ in 0..64 {
            d.record_miss(LeaderGroup::A); // A missing a lot
        }
        assert_eq!(d.choice(), DuelChoice::PolicyB);
        for _ in 0..128 {
            d.record_miss(LeaderGroup::B);
        }
        assert_eq!(d.choice(), DuelChoice::PolicyA);
    }
}
