//! Replacement policies.
//!
//! Every policy implements [`ReplacementPolicy`], a per-(set, way) protocol
//! driven by the owning [`Cache`](crate::Cache):
//!
//! * [`Lru`] / [`Fifo`] / [`Random`] — classic baselines.
//! * [`TreePlru`] — tree pseudo-LRU, as shipped in Arm L1 caches
//!   (the paper cites PLRU bits stored in spare tag bits, Section 3.2).
//! * [`Rrip`] — SRRIP and BRRIP re-reference interval prediction
//!   (Jaleel et al., ISCA 2010); Triangel uses SRRIP for its Markov
//!   partition (Section 5).
//! * [`HawkEye`] — Belady-mimicking replacement (Jain & Lin, ISCA 2016)
//!   with OPTgen sampled sets and a PC-based predictor; Triage uses it for
//!   Markov metadata (Section 3.3).

mod fifo;
mod hawkeye;
mod lru;
mod plru;
mod random;
mod rrip;

pub use fifo::Fifo;
pub use hawkeye::{HawkEye, HawkEyeConfig};
pub use lru::Lru;
pub use plru::TreePlru;
pub use random::Random;
pub use rrip::{Rrip, RripMode};

use triangel_types::{LineAddr, Pc};

/// Metadata describing the access being recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessMeta {
    /// The line being accessed or filled.
    pub line: LineAddr,
    /// The program counter of the triggering instruction, when known.
    /// Prefetch fills inherit the PC of the training access.
    pub pc: Option<Pc>,
    /// Whether the access is a prefetch (fill or lookup) rather than a
    /// demand access.
    pub is_prefetch: bool,
}

impl AccessMeta {
    /// Convenience constructor for a demand access.
    pub fn demand(line: LineAddr, pc: Option<Pc>) -> Self {
        AccessMeta {
            line,
            pc,
            is_prefetch: false,
        }
    }

    /// Convenience constructor for a prefetch access.
    pub fn prefetch(line: LineAddr, pc: Option<Pc>) -> Self {
        AccessMeta {
            line,
            pc,
            is_prefetch: true,
        }
    }
}

/// A bitmask of ways eligible for victim selection.
///
/// Way `w` is eligible if bit `w` is set. Way-partitioned caches restrict
/// the mask to the ways owned by the requester.
pub type WayMask = u64;

/// Returns a mask with the `ways` low bits set (all ways eligible).
pub const fn all_ways(ways: usize) -> WayMask {
    if ways >= 64 {
        u64::MAX
    } else {
        (1u64 << ways) - 1
    }
}

/// The per-set replacement protocol.
///
/// The cache guarantees that `victim` is called only when every eligible
/// way holds a valid line; invalid ways are filled first without consulting
/// the policy.
pub trait ReplacementPolicy: std::fmt::Debug {
    /// Records a hit at `(set, way)`.
    fn on_hit(&mut self, set: usize, way: usize, meta: &AccessMeta);

    /// Records a new line being installed at `(set, way)`.
    fn on_fill(&mut self, set: usize, way: usize, meta: &AccessMeta);

    /// Chooses a victim way within `set` among the ways allowed by `mask`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `mask` is empty.
    fn victim(&mut self, set: usize, mask: WayMask) -> usize;

    /// Records that `(set, way)` was invalidated (e.g. by a partition
    /// resize). Default: no bookkeeping.
    fn on_invalidate(&mut self, _set: usize, _way: usize) {}

    /// Notifies the policy that the line chosen by [`victim`] was indeed
    /// evicted, passing the line that lived there. HawkEye uses this to
    /// detrain the PC that loaded an over-optimistically-kept line.
    /// Default: no bookkeeping.
    ///
    /// [`victim`]: ReplacementPolicy::victim
    fn on_evict(&mut self, _set: usize, _way: usize, _line: LineAddr) {}
}

/// Selects which replacement policy a cache is built with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PolicyKind {
    /// Least recently used.
    #[default]
    Lru,
    /// First in, first out.
    Fifo,
    /// Uniform random.
    Random,
    /// Tree pseudo-LRU.
    TreePlru,
    /// Static RRIP (insert at distant, promote to near on hit).
    Srrip,
    /// Bimodal RRIP (insert at max, occasionally distant).
    Brrip,
    /// HawkEye (Belady-mimicking, PC-classified).
    Hawkeye,
}

impl PolicyKind {
    /// Instantiates the policy as a [`ReplacementImpl`] (enum dispatch,
    /// no vtable on the hot path). This is the only builder: the old
    /// `build` shim that returned `Box<dyn ReplacementPolicy>` is gone,
    /// and callers that genuinely need a trait object can box the
    /// concrete types themselves.
    pub fn build_impl(self, sets: usize, ways: usize) -> ReplacementImpl {
        match self {
            PolicyKind::Lru => ReplacementImpl::Lru(Lru::new(sets, ways)),
            PolicyKind::Fifo => ReplacementImpl::Fifo(Fifo::new(sets, ways)),
            PolicyKind::Random => ReplacementImpl::Random(Random::new(sets, ways, 0xC0FFEE)),
            PolicyKind::TreePlru => ReplacementImpl::TreePlru(TreePlru::new(sets, ways)),
            PolicyKind::Srrip => ReplacementImpl::Rrip(Rrip::new(sets, ways, RripMode::Static)),
            PolicyKind::Brrip => ReplacementImpl::Rrip(Rrip::new(sets, ways, RripMode::Bimodal)),
            PolicyKind::Hawkeye => {
                ReplacementImpl::Hawkeye(HawkEye::new(sets, ways, HawkEyeConfig::default()))
            }
        }
    }
}

/// Every shipped replacement policy as one concrete value.
///
/// The caches and the Markov table are generic consumers of
/// [`ReplacementPolicy`]; storing the policy as this enum instead of a
/// `Box<dyn ReplacementPolicy>` replaces per-access virtual calls with
/// a branch-predictable match, so the policy's `on_hit`/`victim` logic
/// (HawkEye's OPTgen sampling, SRRIP's interval scan) inlines into the
/// set-scan loop. Behaviour is identical to the boxed form by
/// construction: both wrap the very same concrete types.
#[derive(Debug)]
pub enum ReplacementImpl {
    /// Least recently used.
    Lru(Lru),
    /// First in, first out.
    Fifo(Fifo),
    /// Uniform random.
    Random(Random),
    /// Tree pseudo-LRU.
    TreePlru(TreePlru),
    /// RRIP, static or bimodal (see [`RripMode`]).
    Rrip(Rrip),
    /// HawkEye (Belady-mimicking, PC-classified).
    Hawkeye(HawkEye),
}

impl ReplacementPolicy for ReplacementImpl {
    fn on_hit(&mut self, set: usize, way: usize, meta: &AccessMeta) {
        match self {
            ReplacementImpl::Lru(p) => p.on_hit(set, way, meta),
            ReplacementImpl::Fifo(p) => p.on_hit(set, way, meta),
            ReplacementImpl::Random(p) => p.on_hit(set, way, meta),
            ReplacementImpl::TreePlru(p) => p.on_hit(set, way, meta),
            ReplacementImpl::Rrip(p) => p.on_hit(set, way, meta),
            ReplacementImpl::Hawkeye(p) => p.on_hit(set, way, meta),
        }
    }

    fn on_fill(&mut self, set: usize, way: usize, meta: &AccessMeta) {
        match self {
            ReplacementImpl::Lru(p) => p.on_fill(set, way, meta),
            ReplacementImpl::Fifo(p) => p.on_fill(set, way, meta),
            ReplacementImpl::Random(p) => p.on_fill(set, way, meta),
            ReplacementImpl::TreePlru(p) => p.on_fill(set, way, meta),
            ReplacementImpl::Rrip(p) => p.on_fill(set, way, meta),
            ReplacementImpl::Hawkeye(p) => p.on_fill(set, way, meta),
        }
    }

    fn victim(&mut self, set: usize, mask: WayMask) -> usize {
        match self {
            ReplacementImpl::Lru(p) => p.victim(set, mask),
            ReplacementImpl::Fifo(p) => p.victim(set, mask),
            ReplacementImpl::Random(p) => p.victim(set, mask),
            ReplacementImpl::TreePlru(p) => p.victim(set, mask),
            ReplacementImpl::Rrip(p) => p.victim(set, mask),
            ReplacementImpl::Hawkeye(p) => p.victim(set, mask),
        }
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        match self {
            ReplacementImpl::Lru(p) => p.on_invalidate(set, way),
            ReplacementImpl::Fifo(p) => p.on_invalidate(set, way),
            ReplacementImpl::Random(p) => p.on_invalidate(set, way),
            ReplacementImpl::TreePlru(p) => p.on_invalidate(set, way),
            ReplacementImpl::Rrip(p) => p.on_invalidate(set, way),
            ReplacementImpl::Hawkeye(p) => p.on_invalidate(set, way),
        }
    }

    fn on_evict(&mut self, set: usize, way: usize, line: LineAddr) {
        match self {
            ReplacementImpl::Lru(p) => p.on_evict(set, way, line),
            ReplacementImpl::Fifo(p) => p.on_evict(set, way, line),
            ReplacementImpl::Random(p) => p.on_evict(set, way, line),
            ReplacementImpl::TreePlru(p) => p.on_evict(set, way, line),
            ReplacementImpl::Rrip(p) => p.on_evict(set, way, line),
            ReplacementImpl::Hawkeye(p) => p.on_evict(set, way, line),
        }
    }
}

impl ReplacementImpl {
    /// The snapshot discriminant for this policy variant.
    fn snap_tag(&self) -> u8 {
        match self {
            ReplacementImpl::Lru(_) => 0,
            ReplacementImpl::Fifo(_) => 1,
            ReplacementImpl::Random(_) => 2,
            ReplacementImpl::TreePlru(_) => 3,
            ReplacementImpl::Rrip(_) => 4,
            ReplacementImpl::Hawkeye(_) => 5,
        }
    }
}

impl triangel_types::snap::Snapshot for ReplacementImpl {
    fn save(
        &self,
        w: &mut triangel_types::snap::SnapWriter,
    ) -> Result<(), triangel_types::snap::SnapError> {
        w.u8(self.snap_tag());
        match self {
            ReplacementImpl::Lru(p) => p.save(w),
            ReplacementImpl::Fifo(p) => p.save(w),
            ReplacementImpl::Random(p) => p.save(w),
            ReplacementImpl::TreePlru(p) => p.save(w),
            ReplacementImpl::Rrip(p) => p.save(w),
            ReplacementImpl::Hawkeye(p) => p.save(w),
        }
    }

    fn restore(
        &mut self,
        r: &mut triangel_types::snap::SnapReader,
    ) -> Result<(), triangel_types::snap::SnapError> {
        let tag = r.u8()?;
        triangel_types::snap::snap_check(
            tag == self.snap_tag(),
            "replacement-policy variant mismatch",
        )?;
        match self {
            ReplacementImpl::Lru(p) => p.restore(r),
            ReplacementImpl::Fifo(p) => p.restore(r),
            ReplacementImpl::Random(p) => p.restore(r),
            ReplacementImpl::TreePlru(p) => p.restore(r),
            ReplacementImpl::Rrip(p) => p.restore(r),
            ReplacementImpl::Hawkeye(p) => p.restore(r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A boxed reference build, local to the tests: the production
    /// `PolicyKind::build` shim was removed, but the dyn-vs-enum
    /// equivalence check below still wants an independently-dispatched
    /// twin of `build_impl` (same concrete types, same constants).
    fn build_boxed(kind: PolicyKind, sets: usize, ways: usize) -> Box<dyn ReplacementPolicy> {
        match kind {
            PolicyKind::Lru => Box::new(Lru::new(sets, ways)),
            PolicyKind::Fifo => Box::new(Fifo::new(sets, ways)),
            PolicyKind::Random => Box::new(Random::new(sets, ways, 0xC0FFEE)),
            PolicyKind::TreePlru => Box::new(TreePlru::new(sets, ways)),
            PolicyKind::Srrip => Box::new(Rrip::new(sets, ways, RripMode::Static)),
            PolicyKind::Brrip => Box::new(Rrip::new(sets, ways, RripMode::Bimodal)),
            PolicyKind::Hawkeye => Box::new(HawkEye::new(sets, ways, HawkEyeConfig::default())),
        }
    }

    #[test]
    fn all_ways_mask() {
        assert_eq!(all_ways(1), 0b1);
        assert_eq!(all_ways(16), 0xFFFF);
        assert_eq!(all_ways(64), u64::MAX);
    }

    #[test]
    fn build_all_kinds() {
        for kind in [
            PolicyKind::Lru,
            PolicyKind::Fifo,
            PolicyKind::Random,
            PolicyKind::TreePlru,
            PolicyKind::Srrip,
            PolicyKind::Brrip,
            PolicyKind::Hawkeye,
        ] {
            let mut p = kind.build_impl(4, 4);
            let meta = AccessMeta::demand(LineAddr::new(1), Some(Pc::new(2)));
            for way in 0..4 {
                p.on_fill(0, way, &meta);
            }
            let v = p.victim(0, all_ways(4));
            assert!(v < 4, "{kind:?} returned out-of-range victim");
        }
    }

    #[test]
    fn enum_dispatch_matches_boxed_dispatch() {
        // Same policy behind the dyn shim and the enum must make the
        // same decisions on the same history: both wrap identical
        // concrete state (including the Random policy's fixed seed).
        for kind in [
            PolicyKind::Lru,
            PolicyKind::Fifo,
            PolicyKind::Random,
            PolicyKind::TreePlru,
            PolicyKind::Srrip,
            PolicyKind::Brrip,
            PolicyKind::Hawkeye,
        ] {
            let mut boxed = build_boxed(kind, 4, 8);
            let mut inline = kind.build_impl(4, 8);
            for i in 0..256u64 {
                let set = (i % 4) as usize;
                let way = (i % 8) as usize;
                let meta = AccessMeta::demand(LineAddr::new(i * 3), Some(Pc::new(i % 5)));
                match i % 3 {
                    0 => {
                        boxed.on_fill(set, way, &meta);
                        inline.on_fill(set, way, &meta);
                    }
                    1 => {
                        boxed.on_hit(set, way, &meta);
                        inline.on_hit(set, way, &meta);
                    }
                    _ => {
                        let mask = all_ways(8);
                        let (a, b) = (boxed.victim(set, mask), inline.victim(set, mask));
                        assert_eq!(a, b, "{kind:?} diverged at step {i}");
                        boxed.on_evict(set, a, meta.line);
                        inline.on_evict(set, b, meta.line);
                    }
                }
            }
        }
    }

    #[test]
    fn victim_respects_mask() {
        for kind in [
            PolicyKind::Lru,
            PolicyKind::Fifo,
            PolicyKind::Random,
            PolicyKind::TreePlru,
            PolicyKind::Srrip,
            PolicyKind::Brrip,
            PolicyKind::Hawkeye,
        ] {
            let mut p = kind.build_impl(2, 8);
            let meta = AccessMeta::demand(LineAddr::new(9), None);
            for way in 0..8 {
                p.on_fill(1, way, &meta);
            }
            // Only ways 4..8 eligible.
            let mask: WayMask = 0b1111_0000;
            for _ in 0..32 {
                let v = p.victim(1, mask);
                assert!((4..8).contains(&v), "{kind:?} ignored the way mask");
            }
        }
    }
}
