//! The `timeline` figure: per-interval time-series of
//! {Baseline, Triangel, Triangel+EvictTrain} over MCF/Astar/Omnetpp,
//! recorded through the deterministic interval sampler. Emits
//! `BENCH_timeline.json` (`BENCH_timeline_smoke.json` when
//! `TRIANGEL_TIMELINE_SMOKE=1`) and, with `--trace PATH`, a Chrome
//! `trace_event` file of the harness's wall-time spans for Perfetto.

fn main() {
    triangel_bench::figures::run_main("timeline");
}
