//! Cache geometry configuration.

use crate::replacement::PolicyKind;
use triangel_types::CACHE_LINE_BYTES;

/// Geometry and policy configuration for one cache level.
///
/// # Examples
///
/// ```
/// use triangel_cache::CacheConfig;
/// use triangel_cache::replacement::PolicyKind;
///
/// // The paper's L2: 512 KiB, 8-way (Table 2).
/// let cfg = CacheConfig::new("L2", 512 * 1024, 8, PolicyKind::Lru);
/// assert_eq!(cfg.sets(), 1024);
/// assert_eq!(cfg.lines(), 8192);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    name: String,
    size_bytes: u64,
    ways: usize,
    policy: PolicyKind,
    hit_latency: u64,
}

impl CacheConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate: zero ways, size not a
    /// multiple of `ways * 64`, or a non-power-of-two set count.
    pub fn new(name: impl Into<String>, size_bytes: u64, ways: usize, policy: PolicyKind) -> Self {
        assert!(ways > 0, "cache must have at least one way");
        let way_bytes = ways as u64 * CACHE_LINE_BYTES;
        assert!(
            size_bytes > 0 && size_bytes.is_multiple_of(way_bytes),
            "cache size must be a positive multiple of ways * line size"
        );
        let sets = size_bytes / way_bytes;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        CacheConfig {
            name: name.into(),
            size_bytes,
            ways,
            policy,
            hit_latency: 1,
        }
    }

    /// Sets the hit latency in cycles (builder style).
    #[must_use]
    pub fn with_hit_latency(mut self, cycles: u64) -> Self {
        self.hit_latency = cycles;
        self
    }

    /// Returns the cache's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the capacity in bytes.
    pub const fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Returns the associativity.
    pub const fn ways(&self) -> usize {
        self.ways
    }

    /// Returns the number of sets.
    pub const fn sets(&self) -> usize {
        (self.size_bytes / (self.ways as u64 * CACHE_LINE_BYTES)) as usize
    }

    /// Returns the total number of cache lines.
    pub const fn lines(&self) -> usize {
        self.sets() * self.ways
    }

    /// Returns the replacement policy kind.
    pub const fn policy(&self) -> PolicyKind {
        self.policy
    }

    /// Returns the hit latency in cycles.
    pub const fn hit_latency(&self) -> u64 {
        self.hit_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_l3_geometry() {
        // 2 MiB, 16-way (Table 2): 2048 sets.
        let cfg = CacheConfig::new("L3", 2 * 1024 * 1024, 16, PolicyKind::Lru);
        assert_eq!(cfg.sets(), 2048);
        assert_eq!(cfg.lines(), 32768);
    }

    #[test]
    fn hit_latency_builder() {
        let cfg = CacheConfig::new("L2", 512 * 1024, 8, PolicyKind::Lru).with_hit_latency(9);
        assert_eq!(cfg.hit_latency(), 9);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_sets() {
        let _ = CacheConfig::new("bad", 3 * 64 * 4, 4, PolicyKind::Lru);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn rejects_zero_ways() {
        let _ = CacheConfig::new("bad", 64, 0, PolicyKind::Lru);
    }
}
