//! Uniform-random replacement.

use super::{AccessMeta, ReplacementPolicy, WayMask};
use triangel_types::rng::Lcg;

/// Random replacement: a uniformly chosen eligible way.
///
/// Useful both as a baseline and for modelling caches whose true policy is
/// unknown (the paper notes commercial L3 policies are undocumented,
/// Section 4.7 footnote 10).
#[derive(Debug, Clone)]
pub struct Random {
    ways: usize,
    rng: Lcg,
}

impl Random {
    /// Creates random-replacement state for `sets x ways` with a seed.
    pub fn new(_sets: usize, ways: usize, seed: u64) -> Self {
        assert!(ways > 0);
        Random {
            ways,
            rng: Lcg::new(seed),
        }
    }
}

impl ReplacementPolicy for Random {
    fn on_hit(&mut self, _set: usize, _way: usize, _meta: &AccessMeta) {}

    fn on_fill(&mut self, _set: usize, _way: usize, _meta: &AccessMeta) {}

    fn victim(&mut self, _set: usize, mask: WayMask) -> usize {
        assert!(mask != 0, "victim called with empty way mask");
        let eligible: Vec<usize> = (0..self.ways).filter(|w| mask & (1 << w) != 0).collect();
        eligible[self.rng.next_below(eligible.len() as u64) as usize]
    }
}

impl triangel_types::snap::Snapshot for Random {
    fn save(
        &self,
        w: &mut triangel_types::snap::SnapWriter,
    ) -> Result<(), triangel_types::snap::SnapError> {
        triangel_types::snap::Snapshot::save(&self.rng, w)
    }

    fn restore(
        &mut self,
        r: &mut triangel_types::snap::SnapReader,
    ) -> Result<(), triangel_types::snap::SnapError> {
        triangel_types::snap::Snapshot::restore(&mut self.rng, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_in_mask() {
        let mut r = Random::new(1, 8, 1);
        for _ in 0..100 {
            let v = r.victim(0, 0b0011_0000);
            assert!(v == 4 || v == 5);
        }
    }

    #[test]
    fn covers_all_ways_eventually() {
        let mut r = Random::new(1, 4, 2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.victim(0, 0b1111)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }
}
