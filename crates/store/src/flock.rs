//! Advisory whole-file locks via `flock(2)`.
//!
//! The store coordinates concurrent writers across *processes*, so an
//! in-process mutex is not enough. `flock` gives exactly the semantics
//! needed — advisory, whole-file, exclusive, released automatically
//! when the descriptor closes (including on process death, which is
//! what makes the store crash-safe without lock-file cleanup) — and it
//! is per open-file-description, so two handles within one process
//! contend exactly like two processes do.
//!
//! Bound directly against libc (always linked by `std` on unix) so the
//! crate stays dependency-free.

use std::fs::File;
use std::io;

#[cfg(unix)]
mod sys {
    use super::*;
    use std::os::unix::io::AsRawFd;

    const LOCK_EX: i32 = 2;

    extern "C" {
        fn flock(fd: i32, operation: i32) -> i32;
    }

    pub fn lock_exclusive(file: &File) -> io::Result<()> {
        let fd = file.as_raw_fd();
        loop {
            if unsafe { flock(fd, LOCK_EX) } == 0 {
                return Ok(());
            }
            let err = io::Error::last_os_error();
            // A signal can interrupt the blocking wait; retry.
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

#[cfg(not(unix))]
mod sys {
    use super::*;

    // Non-unix builds fall back to no cross-process coordination: the
    // store still works, but two *processes* racing one directory may
    // duplicate work (never corrupt it — publishes stay atomic).
    pub fn lock_exclusive(_file: &File) -> io::Result<()> {
        Ok(())
    }
}

/// Takes an exclusive advisory lock on `file`, blocking until it is
/// available. The lock is released when `file` is dropped.
///
/// # Errors
///
/// The underlying `flock(2)` error, `EINTR` excepted (retried).
pub fn lock_exclusive(file: &File) -> io::Result<()> {
    sys::lock_exclusive(file)
}
