//! Reproduces Fig. 15 of the paper (DRAM+L3 energy, including Triangel-NoMRB).
//!
//! Declarative definition: `triangel_bench::figures` registry entry
//! `"fig15"`, executed by the `triangel-harness` scheduler
//! (`--jobs N` controls worker threads; results are identical for any
//! value).

fn main() {
    triangel_bench::figures::run_main("fig15");
}
