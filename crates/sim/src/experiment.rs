//! High-level experiment runner (thin wrapper over
//! [`SimSession`](crate::SimSession)).

use crate::config::SystemConfig;
use crate::dispatch::PrefetcherImpl;
use crate::error::SimError;
use crate::metrics::RunReport;
use crate::session::SimSession;
use triangel_core::{Triangel, TriangelConfig, TriangelFeatures};
use triangel_markov::TargetFormat;
use triangel_prefetch::NullPrefetcher;
use triangel_triage::{Triage, TriageConfig};
use triangel_workloads::paging::PageMapper;
use triangel_workloads::TraceSource;

/// Which temporal prefetcher to attach (the paper's evaluated
/// configurations; the baseline stride prefetcher is always present).
#[derive(Debug, Clone, Copy)]
pub enum PrefetcherChoice {
    /// Stride only (the normalization baseline).
    Baseline,
    /// Triage at degree 1.
    Triage,
    /// Triage at unconditional degree 4.
    TriageDeg4,
    /// Triage degree 4 with Triangel's lookahead-2.
    TriageDeg4Look2,
    /// Triage with an explicit Markov metadata format (Fig. 18).
    TriageFormat(TargetFormat),
    /// Full Triangel.
    Triangel,
    /// Triangel with Bloom-filter sizing.
    TriangelBloom,
    /// Triangel without the Metadata Reuse Buffer.
    TriangelNoMrb,
    /// Triangel at an ablation-ladder step (0..=8, Fig. 20).
    TriangelLadder(usize),
    /// Triage with a fully custom configuration (e.g. the Section 3.3
    /// replacement-policy study).
    TriageCustom(TriageConfig),
    /// Triangel with a fully custom configuration.
    TriangelCustom(TriangelConfig),
}

impl PrefetcherChoice {
    /// Display label as used in the paper's figures.
    pub fn label(&self) -> String {
        match self {
            PrefetcherChoice::Baseline => "Baseline".into(),
            PrefetcherChoice::Triage => "Triage".into(),
            PrefetcherChoice::TriageDeg4 => "Triage-Deg4".into(),
            PrefetcherChoice::TriageDeg4Look2 => "Triage-Deg4-Look2".into(),
            PrefetcherChoice::TriageFormat(f) => f.label().into(),
            PrefetcherChoice::Triangel => "Triangel".into(),
            PrefetcherChoice::TriangelBloom => "Triangel-Bloom".into(),
            PrefetcherChoice::TriangelNoMrb => "Triangel-NoMRB".into(),
            PrefetcherChoice::TriangelLadder(s) => {
                triangel_core::TriangelFeatures::ladder_label(*s).into()
            }
            PrefetcherChoice::TriageCustom(_) => "Triage-custom".into(),
            PrefetcherChoice::TriangelCustom(_) => "Triangel-custom".into(),
        }
    }

    /// Whether [`Experiment::sizing_window`] affects this configuration
    /// at all. Only the non-custom Triangel variants read the window
    /// (their Set Dueller / Bloom reset period); Triage ignores it, the
    /// stride-only baseline has no temporal prefetcher, and the custom
    /// configurations carry their own window. Batch drivers use this to
    /// keep job content keys honest: two Triage jobs that differ only in
    /// the sweep's window describe the same simulation.
    pub fn uses_sizing_window(&self) -> bool {
        matches!(
            self,
            PrefetcherChoice::Triangel
                | PrefetcherChoice::TriangelBloom
                | PrefetcherChoice::TriangelNoMrb
                | PrefetcherChoice::TriangelLadder(_)
        )
    }

    /// The Triangel configuration this choice describes, with the
    /// sweep's sizing window applied, or `None` for non-Triangel
    /// choices. Custom configurations carry their own window.
    fn triangel_config(&self, sizing_window: u64) -> Option<TriangelConfig> {
        let mut c = match self {
            PrefetcherChoice::Triangel => TriangelConfig::paper_default(),
            PrefetcherChoice::TriangelBloom => TriangelConfig::bloom_variant(),
            PrefetcherChoice::TriangelNoMrb => TriangelConfig::no_mrb(),
            PrefetcherChoice::TriangelLadder(s) => TriangelConfig::ladder(*s),
            PrefetcherChoice::TriangelCustom(c) => return Some(*c),
            _ => return None,
        };
        c.sizing_window = sizing_window;
        Some(c)
    }

    /// Builds the enum-dispatched prefetcher this choice describes —
    /// the form the default [`SimSession`] pipeline uses, with no
    /// virtual call on the training path.
    pub fn build_impl(&self, sizing_window: u64) -> PrefetcherImpl {
        self.build_impl_with(sizing_window, None)
    }

    /// [`PrefetcherChoice::build_impl`] with an optional
    /// [`TriangelFeatures`] override (applied to Triangel-family
    /// choices only; see
    /// [`SimSessionBuilder::triangel_features`](crate::SimSessionBuilder::triangel_features)).
    pub(crate) fn build_impl_with(
        &self,
        sizing_window: u64,
        features: Option<TriangelFeatures>,
    ) -> PrefetcherImpl {
        match self {
            PrefetcherChoice::Baseline => PrefetcherImpl::Null(NullPrefetcher),
            PrefetcherChoice::Triage => {
                PrefetcherImpl::Triage(Box::new(Triage::new(TriageConfig::paper_default())))
            }
            PrefetcherChoice::TriageDeg4 => {
                PrefetcherImpl::Triage(Box::new(Triage::new(TriageConfig::degree4())))
            }
            PrefetcherChoice::TriageDeg4Look2 => {
                PrefetcherImpl::Triage(Box::new(Triage::new(TriageConfig::degree4_lookahead2())))
            }
            PrefetcherChoice::TriageFormat(f) => PrefetcherImpl::Triage(Box::new(Triage::new(
                TriageConfig::paper_default().with_format(*f),
            ))),
            PrefetcherChoice::TriageCustom(c) => PrefetcherImpl::Triage(Box::new(Triage::new(*c))),
            _ => {
                let mut c = self
                    .triangel_config(sizing_window)
                    .expect("non-Triage choices are Triangel-family");
                if let Some(f) = features {
                    c.features = f;
                }
                PrefetcherImpl::Triangel(Box::new(Triangel::new(c)))
            }
        }
    }

    /// Whether a [`TriangelFeatures`] override (e.g. via
    /// [`crate::SimSessionBuilder::triangel_features`]) affects this
    /// configuration at all — only the Triangel family carries feature
    /// toggles; the baseline and Triage ignore an override entirely.
    /// Batch drivers use this to keep job content keys honest: a gated
    /// and an ungated Triage job describe the same simulation.
    pub fn accepts_feature_override(&self) -> bool {
        matches!(
            self,
            PrefetcherChoice::Triangel
                | PrefetcherChoice::TriangelBloom
                | PrefetcherChoice::TriangelNoMrb
                | PrefetcherChoice::TriangelLadder(_)
                | PrefetcherChoice::TriangelCustom(_)
        )
    }
}

/// Builder for one simulation run.
///
/// Defaults follow the paper's methodology scaled to trace length:
/// warm-up then measurement (Section 5 uses 50M instructions warm-up,
/// 5M sampled, over 20 checkpoints; we use one long deterministic
/// window per workload).
#[derive(Debug)]
pub struct Experiment {
    sources: Vec<Box<dyn TraceSource + Send>>,
    system: SystemConfig,
    choice: PrefetcherChoice,
    warmup: u64,
    accesses: u64,
    fragmentation: Option<PageMapper>,
    sizing_window: u64,
    label: Option<String>,
}

impl Experiment {
    /// Single-core experiment over one trace source.
    pub fn new(source: impl TraceSource + Send + 'static) -> Self {
        Experiment {
            sources: vec![Box::new(source)],
            system: SystemConfig::paper_single_core(),
            choice: PrefetcherChoice::Baseline,
            warmup: 1_000_000,
            accesses: 2_000_000,
            fragmentation: None,
            sizing_window: 250_000,
            label: None,
        }
    }

    /// Single-core experiment over an already-boxed trace source (the
    /// form batch drivers that store sources as data need).
    pub fn new_boxed(source: Box<dyn TraceSource + Send>) -> Self {
        Experiment {
            sources: vec![source],
            system: SystemConfig::paper_single_core(),
            choice: PrefetcherChoice::Baseline,
            warmup: 1_000_000,
            accesses: 2_000_000,
            fragmentation: None,
            sizing_window: 250_000,
            label: None,
        }
    }

    /// Multiprogrammed experiment: one source per core, shared L3/DRAM
    /// (Section 6.3).
    pub fn multiprogrammed(sources: Vec<Box<dyn TraceSource + Send>>) -> Self {
        assert!(!sources.is_empty());
        Experiment {
            system: SystemConfig::paper_dual_core(),
            sources,
            choice: PrefetcherChoice::Baseline,
            warmup: 1_000_000,
            accesses: 2_000_000,
            fragmentation: None,
            sizing_window: 250_000,
            label: None,
        }
    }

    /// Sets the temporal prefetcher.
    #[must_use]
    pub fn prefetcher(mut self, choice: PrefetcherChoice) -> Self {
        self.choice = choice;
        self
    }

    /// Sets warm-up length in accesses per core.
    #[must_use]
    pub fn warmup(mut self, accesses: u64) -> Self {
        self.warmup = accesses;
        self
    }

    /// Sets measured length in accesses per core.
    #[must_use]
    pub fn accesses(mut self, accesses: u64) -> Self {
        self.accesses = accesses;
        self
    }

    /// Overrides the system configuration.
    #[must_use]
    pub fn system(mut self, cfg: SystemConfig) -> Self {
        self.system = cfg;
        self
    }

    /// Overrides the virtual-to-physical mapper (Fig. 18/19 study).
    #[must_use]
    pub fn page_mapper(mut self, mapper: PageMapper) -> Self {
        self.fragmentation = Some(mapper);
        self
    }

    /// Overrides the sizing window (Set Dueller / Bloom reset period).
    #[must_use]
    pub fn sizing_window(mut self, window: u64) -> Self {
        self.sizing_window = window;
        self
    }

    /// Overrides the report's workload label.
    #[must_use]
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Runs the experiment, reporting a malformed specification (e.g. a
    /// core-count/source mismatch from [`Experiment::system`]) as a
    /// typed error instead of panicking.
    ///
    /// Delegates to [`SimSession`], so it runs the same monomorphized
    /// pipeline as [`SimSession::builder`].
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from [`crate::SimSessionBuilder::build`].
    pub fn try_run(self) -> Result<RunReport, SimError> {
        let mut b = SimSession::builder()
            .system(self.system)
            .prefetcher(self.choice)
            .warmup(self.warmup)
            .accesses(self.accesses)
            .sizing_window(self.sizing_window);
        for source in self.sources {
            b = b.boxed_workload(source);
        }
        if let Some(mapper) = self.fragmentation {
            b = b.page_mapper(mapper);
        }
        if let Some(label) = self.label {
            b = b.label(label);
        }
        b.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::hierarchy::MemorySystem;
    use crate::metrics::Comparison;
    use triangel_types::{Addr, Pc};
    use triangel_workloads::temporal::{TemporalStream, TemporalStreamConfig};

    fn chase(len: usize) -> TemporalStream {
        TemporalStream::new(
            TemporalStreamConfig::pointer_chase("chase", Pc::new(0x40), Addr::new(1 << 30), len),
            7,
        )
    }

    #[test]
    fn baseline_runs_and_reports() {
        let r = Experiment::new(chase(50_000))
            .warmup(20_000)
            .accesses(50_000)
            .try_run()
            .unwrap();
        assert!(r.ipc() > 0.0);
        assert!(r.dram_reads() > 0);
        assert_eq!(r.cores.len(), 1);
    }

    #[test]
    fn triangel_speeds_up_pointer_chase() {
        // A strict pointer chase over 50k lines: far beyond L2/L3, well
        // within Markov capacity, fully dependent. This is the
        // textbook case where a temporal prefetcher must win.
        let base = Experiment::new(chase(50_000))
            .warmup(300_000)
            .accesses(200_000)
            .sizing_window(60_000)
            .try_run()
            .unwrap();
        let tri = Experiment::new(chase(50_000))
            .warmup(300_000)
            .accesses(200_000)
            .sizing_window(60_000)
            .prefetcher(PrefetcherChoice::Triangel)
            .try_run()
            .unwrap();
        let c = Comparison::new(&base, &tri);
        assert!(
            c.speedup > 1.05,
            "Triangel should accelerate a strict chase, got {:.3}",
            c.speedup
        );
        assert!(c.accuracy > 0.5, "accuracy {:.3}", c.accuracy);
    }

    #[test]
    fn core_count_mismatch_is_a_typed_error() {
        use triangel_prefetch::NullPrefetcher;
        // Two cores' worth of prefetchers, one trace source.
        let system = MemorySystem::new(
            SystemConfig::paper_dual_core(),
            vec![Box::new(NullPrefetcher), Box::new(NullPrefetcher)],
        );
        let err = Engine::try_new(
            system,
            vec![Box::new(chase(1_000))],
            PageMapper::realistic(1),
        )
        .map(|_| ())
        .unwrap_err();
        assert_eq!(
            err,
            crate::SimError::CoreCountMismatch {
                cores: 2,
                sources: 1
            }
        );

        let system = MemorySystem::new(
            SystemConfig::paper_single_core(),
            vec![Box::new(NullPrefetcher)],
        );
        let err = Engine::try_new(system, vec![], PageMapper::realistic(1))
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err, crate::SimError::NoSources);
    }

    #[test]
    fn labels() {
        assert_eq!(PrefetcherChoice::TriageDeg4.label(), "Triage-Deg4");
        assert_eq!(PrefetcherChoice::TriangelLadder(0).label(), "Triage-Deg-4");
    }
}
