//! [`SimSession`]: the single entry point for constructing and running
//! simulations.
//!
//! A session is built in four steps — configuration, workloads,
//! prefetcher, run — and the pipeline it assembles is the monomorphized
//! one end to end: trace sources are pulled in batches through
//! [`AccessRing`](triangel_workloads::AccessRing), the temporal
//! prefetcher is enum-dispatched
//! ([`PrefetcherImpl`](crate::PrefetcherImpl)), and cache replacement is
//! enum-dispatched inside the caches themselves, so no `dyn` call
//! remains on the per-access hot path.
//!
//! The older [`Experiment`](crate::Experiment) builder is now a thin
//! wrapper over this type; its panicking `run()` is deprecated.

use crate::config::SystemConfig;
use crate::dispatch::PrefetcherImpl;
use crate::engine::Engine;
use crate::error::SimError;
use crate::experiment::PrefetcherChoice;
use crate::hierarchy::MemorySystem;
use crate::metrics::RunReport;
use triangel_core::TriangelFeatures;
use triangel_types::snap::{snap_check, SnapError, SnapReader, SnapWriter, Snapshot};
use triangel_workloads::paging::PageMapper;
use triangel_workloads::TraceSource;

/// Magic bytes opening every session snapshot.
const SNAP_MAGIC: [u8; 8] = *b"TRGLSNP\0";
/// Snapshot format version this build writes and reads.
///
/// Version history: 1 = initial envelope; 2 = adds the interval
/// time-series recorder (sampling period + recorded samples), so
/// interrupt→resume reproduces a sampled series byte for byte; 3 =
/// metadata tables (Markov, training, issue) move onto packed
/// set-associative arenas, which serialize per-set valid masks plus
/// live slots only (plus a policy tag byte ahead of the Markov table);
/// 4 = finite replay sources (`RecordedTrace`, file traces) carry
/// their wrap counters, so a resumed run keeps reporting how often a
/// looped trace repeated; 5 = the N-core timing model: interval samples
/// carry per-core cycle/instruction columns, the DRAM serializes one
/// busy-until clock per channel, and the memory system serializes the
/// L3 bank-arbiter clocks.
pub const SNAPSHOT_VERSION: u32 = 5;

/// A fully-assembled simulation, ready to run.
///
/// Construct with [`SimSession::builder`]; see
/// [`SimSessionBuilder::run`] for the one-shot form that most callers
/// use. Holding the session (rather than running the builder directly)
/// lets tests drive warm-up and measurement separately.
#[derive(Debug)]
pub struct SimSession {
    engine: Engine,
    warmup: u64,
    accesses: u64,
    workload: String,
    /// Accesses per core executed so far (warm-up + measured).
    executed: u64,
    /// Whether the warm-up→measurement transition has been applied.
    measuring: bool,
    /// Interval-sampling period in measured accesses (0 = off).
    sample_every: u64,
    /// Samples recorded so far (empty when sampling is off).
    samples: Vec<triangel_obs::IntervalSample>,
}

impl SimSession {
    /// Starts building a session: configuration → workloads →
    /// prefetcher → run.
    ///
    /// # Examples
    ///
    /// ```
    /// use triangel_sim::{PrefetcherChoice, SimSession};
    /// use triangel_workloads::spec::SpecWorkload;
    ///
    /// let report = SimSession::builder()
    ///     .workload(SpecWorkload::Xalan.generator(1))
    ///     .prefetcher(PrefetcherChoice::Triangel)
    ///     .warmup(5_000)
    ///     .accesses(10_000)
    ///     .run()
    ///     .unwrap();
    /// assert!(report.ipc() > 0.0);
    /// ```
    pub fn builder() -> SimSessionBuilder {
        SimSessionBuilder::default()
    }

    /// Runs warm-up, measurement, and reporting to completion.
    ///
    /// Equivalent — access for access — to driving the session through
    /// [`SimSession::run_segment`] until [`SimSession::is_complete`];
    /// the segmented form exists so long runs can be interrupted,
    /// snapshotted and resumed.
    ///
    /// # Errors
    ///
    /// Infallible today (construction already validated the spec);
    /// typed for forward compatibility with runtime limits.
    pub fn run(mut self) -> Result<RunReport, SimError> {
        self.run_segment(u64::MAX);
        Ok(self.report())
    }

    /// Advances the run by up to `max_accesses` accesses per core,
    /// preserving all state across calls, and returns how many were
    /// executed. The warm-up→measurement transition happens at exactly
    /// the same access boundary as in an uninterrupted run, whatever
    /// the segmentation.
    pub fn run_segment(&mut self, max_accesses: u64) -> u64 {
        let mut budget = max_accesses.min(self.remaining_accesses());
        let ran = budget;
        if self.executed < self.warmup {
            let n = budget.min(self.warmup - self.executed);
            self.engine.run_accesses(n);
            self.executed += n;
            budget -= n;
        }
        if self.executed >= self.warmup && !self.measuring {
            self.engine.start_measurement();
            self.measuring = true;
        }
        // Measured phase, chunked to interval boundaries when sampling.
        // Chunking `run_accesses` is behaviour-invisible: the engine's
        // loop carries no per-call state, and the cycle-ordered round
        // order is a pure function of persisted timeline state at round
        // boundaries. So with sampling off this degenerates to the
        // original single call — the determinism bar golden tests pin.
        while budget > 0 {
            let n = if self.sample_every == 0 {
                budget
            } else {
                let into_interval = (self.executed - self.warmup) % self.sample_every;
                budget.min(self.sample_every - into_interval)
            };
            self.engine.run_accesses(n);
            self.executed += n;
            budget -= n;
            let measured = self.executed - self.warmup;
            if self.sample_every != 0 && measured.is_multiple_of(self.sample_every) {
                self.samples.push(self.engine.interval_sample(measured));
            }
        }
        ran
    }

    /// Accesses per core executed so far (warm-up + measured).
    pub fn executed_accesses(&self) -> u64 {
        self.executed
    }

    /// Total accesses per core the session will run.
    pub fn total_accesses(&self) -> u64 {
        self.warmup + self.accesses
    }

    /// Accesses per core still to run.
    pub fn remaining_accesses(&self) -> u64 {
        self.total_accesses() - self.executed
    }

    /// Whether every warm-up and measured access has run.
    pub fn is_complete(&self) -> bool {
        self.executed >= self.total_accesses()
    }

    /// The measurement report as of the accesses executed so far,
    /// carrying the interval series when sampling was enabled.
    pub fn report(&self) -> RunReport {
        let mut report = self.engine.report(self.workload.clone());
        if self.sample_every != 0 {
            report.intervals = Some(triangel_obs::IntervalSeries {
                every: self.sample_every,
                samples: self.samples.clone(),
            });
        }
        report
    }

    /// The interval series recorded so far, when sampling is enabled.
    pub fn interval_series(&self) -> Option<triangel_obs::IntervalSeries> {
        (self.sample_every != 0).then(|| triangel_obs::IntervalSeries {
            every: self.sample_every,
            samples: self.samples.clone(),
        })
    }

    /// The memory hierarchy's named counters (see
    /// [`triangel_obs::Probe`]): the structured replacement for the
    /// removed `prefetcher_debug` string.
    pub fn probes(&self) -> triangel_obs::ProbeSet {
        let mut out = triangel_obs::ProbeSet::new();
        self.engine.system().probe(&mut out);
        // Finite looped recordings surface their wrap counts, so a
        // short trace replayed many times can't masquerade as a
        // full-length measurement.
        for (core, stats) in self.engine.replay_stats().into_iter().enumerate() {
            if let Some(s) = stats {
                out.scoped(&format!("core{core}.trace"), |o| {
                    o.record("records", s.records);
                    o.record("wraps", s.wraps);
                });
            }
        }
        out
    }

    /// Serializes the complete dynamic simulation state — engine rings
    /// and timelines, caches including line metadata and fill clocks,
    /// Markov table, prefetcher and issue-table state, generator RNGs —
    /// into a versioned binary snapshot.
    ///
    /// The invariant the format is built around: interrupting a run,
    /// snapshotting, restoring into a freshly built session of the same
    /// spec and continuing is byte-identical to never interrupting
    /// (pinned by `crates/sim/tests/snapshot_equivalence.rs`).
    ///
    /// # Errors
    ///
    /// [`SnapError::Unsupported`] when a component sits behind a
    /// non-snapshottable trait object (custom boxed sources or the
    /// `Dyn` prefetcher shim).
    pub fn snapshot(&self) -> Result<Vec<u8>, SnapError> {
        let mut w = SnapWriter::new();
        w.bytes(&SNAP_MAGIC);
        w.u32(SNAPSHOT_VERSION);
        w.u64(self.warmup);
        w.u64(self.accesses);
        w.u64(self.executed);
        w.bool(self.measuring);
        w.u64(self.sample_every);
        w.usize(self.samples.len());
        for s in &self.samples {
            s.save(&mut w)?;
        }
        self.engine.save(&mut w)?;
        Ok(w.into_bytes())
    }

    /// Restores a snapshot written by [`SimSession::snapshot`] into
    /// this session, which must have been built from the same spec
    /// (same workloads, seeds, configuration and scale).
    ///
    /// # Errors
    ///
    /// [`SnapError::Version`] for snapshots from another format
    /// version, [`SnapError::Corrupt`] when the snapshot does not match
    /// this session's structure, [`SnapError::Eof`] on truncation.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let mut r = SnapReader::new(bytes);
        snap_check(r.bytes()? == SNAP_MAGIC, "bad snapshot magic")?;
        let version = r.u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapError::Version {
                found: version,
                expected: SNAPSHOT_VERSION,
            });
        }
        snap_check(r.u64()? == self.warmup, "warm-up length mismatch")?;
        snap_check(r.u64()? == self.accesses, "measured length mismatch")?;
        let executed = r.u64()?;
        snap_check(executed <= self.total_accesses(), "progress out of range")?;
        let measuring = r.bool()?;
        snap_check(
            r.u64()? == self.sample_every,
            "interval-sampling period mismatch",
        )?;
        let n_samples = r.usize()?;
        let mut samples = Vec::with_capacity(n_samples);
        for _ in 0..n_samples {
            let mut s = triangel_obs::IntervalSample::default();
            s.restore(&mut r)?;
            samples.push(s);
        }
        self.engine.restore(&mut r)?;
        r.finish()?;
        self.executed = executed;
        self.measuring = measuring;
        self.samples = samples;
        Ok(())
    }

    /// The assembled engine (diagnostics in tests).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }
}

/// Builder for a [`SimSession`].
///
/// Defaults follow the paper's methodology scaled to trace length
/// (Section 5): 1M warm-up + 2M measured accesses per core, the
/// realistic fragmented page mapping, and the stride-only baseline
/// prefetcher. The system configuration defaults to the paper's
/// single-core setup for one workload and the dual-core multiprogrammed
/// setup (Section 6.3) otherwise.
#[derive(Debug)]
pub struct SimSessionBuilder {
    sources: Vec<Box<dyn TraceSource + Send>>,
    system: Option<SystemConfig>,
    choice: PrefetcherChoice,
    warmup: u64,
    accesses: u64,
    mapper: Option<PageMapper>,
    sizing_window: u64,
    label: Option<String>,
    features: Option<TriangelFeatures>,
    sample_every: u64,
    exec_threads: usize,
}

impl Default for SimSessionBuilder {
    fn default() -> Self {
        SimSessionBuilder {
            sources: Vec::new(),
            system: None,
            choice: PrefetcherChoice::Baseline,
            warmup: 1_000_000,
            accesses: 2_000_000,
            mapper: None,
            sizing_window: 250_000,
            label: None,
            features: None,
            sample_every: 0,
            exec_threads: 1,
        }
    }
}

impl SimSessionBuilder {
    /// Adds one core's trace source (call once per core).
    #[must_use]
    pub fn workload(mut self, source: impl TraceSource + Send + 'static) -> Self {
        self.sources.push(Box::new(source));
        self
    }

    /// Adds one core's trace source, already boxed (the form batch
    /// drivers that store sources as data need).
    #[must_use]
    pub fn boxed_workload(mut self, source: Box<dyn TraceSource + Send>) -> Self {
        self.sources.push(source);
        self
    }

    /// Sets the worker-thread count for intra-simulation trace
    /// generation (default 1 = fully serial). Execution through the
    /// shared memory system always stays serial; only the per-core
    /// generators run concurrently, so any thread count is byte-
    /// identical to serial (pinned by the multi-core determinism
    /// suite). Observational: never snapshotted, never part of a
    /// content key.
    #[must_use]
    pub fn exec_threads(mut self, threads: usize) -> Self {
        self.exec_threads = threads.max(1);
        self
    }

    /// Overrides the system configuration (otherwise derived from the
    /// workload count).
    #[must_use]
    pub fn system(mut self, cfg: SystemConfig) -> Self {
        self.system = Some(cfg);
        self
    }

    /// Sets the temporal prefetcher (default: stride-only baseline).
    #[must_use]
    pub fn prefetcher(mut self, choice: PrefetcherChoice) -> Self {
        self.choice = choice;
        self
    }

    /// Sets warm-up length in accesses per core.
    #[must_use]
    pub fn warmup(mut self, accesses: u64) -> Self {
        self.warmup = accesses;
        self
    }

    /// Sets measured length in accesses per core.
    #[must_use]
    pub fn accesses(mut self, accesses: u64) -> Self {
        self.accesses = accesses;
        self
    }

    /// Overrides the virtual-to-physical mapper (Fig. 18/19 study).
    #[must_use]
    pub fn page_mapper(mut self, mapper: PageMapper) -> Self {
        self.mapper = Some(mapper);
        self
    }

    /// Overrides the sizing window (Set Dueller / Bloom reset period).
    #[must_use]
    pub fn sizing_window(mut self, window: u64) -> Self {
        self.sizing_window = window;
        self
    }

    /// Overrides the report's workload label.
    #[must_use]
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Overrides the Triangel feature toggles for whichever
    /// Triangel-family configuration the prefetcher choice builds.
    ///
    /// This is the session-level gate for experimental mechanisms —
    /// above all [`TriangelFeatures::train_on_eviction`], which is off
    /// in every shipped configuration. Ignored (with no effect) for
    /// the baseline and the Triage family, which carry no Triangel
    /// features. Unset by default: each choice keeps its own paper
    /// configuration.
    ///
    /// # Examples
    ///
    /// ```
    /// use triangel_core::TriangelFeatures;
    /// use triangel_sim::{PrefetcherChoice, SimSession};
    /// use triangel_workloads::spec::SpecWorkload;
    ///
    /// // Opt a Triangel run into the experimental eviction-training
    /// // gate (a behaviour change: dying L2 lines feed the training
    /// // and Markov paths — golden fixtures pin both gate states).
    /// let report = SimSession::builder()
    ///     .workload(SpecWorkload::Mcf.generator(3))
    ///     .prefetcher(PrefetcherChoice::Triangel)
    ///     .triangel_features(TriangelFeatures {
    ///         train_on_eviction: true,
    ///         ..TriangelFeatures::all()
    ///     })
    ///     .warmup(2_000)
    ///     .accesses(2_000)
    ///     .run()
    ///     .unwrap();
    /// assert_eq!(report.cores[0].pf_name, "Triangel+EvictTrain");
    /// ```
    #[must_use]
    pub fn triangel_features(mut self, features: TriangelFeatures) -> Self {
        self.features = Some(features);
        self
    }

    /// Enables interval time-series sampling: one
    /// [`IntervalSample`](triangel_obs::IntervalSample) every `every`
    /// *measured* accesses, carried on
    /// [`RunReport::intervals`](crate::RunReport::intervals) (0, the
    /// default, disables sampling).
    ///
    /// Sampling is purely observational — the interval clock is
    /// simulation time, sampling reads but never writes engine state —
    /// so every other reported number is byte-identical with sampling
    /// on or off, and the series itself is deterministic across
    /// parallelism and snapshot interrupt→resume.
    #[must_use]
    pub fn sample_every(mut self, every: u64) -> Self {
        self.sample_every = every;
        self
    }

    /// Assembles the session, validating the specification.
    ///
    /// The core count always equals the workload count (one prefetcher
    /// and one timeline per source); an explicit
    /// [`system`](SimSessionBuilder::system) configuration sets the
    /// geometry, never the core count.
    ///
    /// # Errors
    ///
    /// [`SimError::NoSources`] without any workload; other
    /// [`SimError`]s as [`Engine::try_new`] reports them.
    pub fn build(self) -> Result<SimSession, SimError> {
        let n_cores = self.sources.len();
        if n_cores == 0 {
            return Err(SimError::NoSources);
        }
        let system_cfg = self.system.unwrap_or_else(|| {
            // One and two cores keep the legacy paper configurations
            // (their goldens pin the uncontended timing model); beyond
            // two cores the contended N-core model is the default.
            match n_cores {
                1 => SystemConfig::paper_single_core(),
                2 => SystemConfig::paper_dual_core(),
                n => SystemConfig::paper_n_core(n),
            }
        });
        let temporal: Vec<PrefetcherImpl> = (0..n_cores)
            .map(|_| {
                self.choice
                    .build_impl_with(self.sizing_window, self.features)
            })
            .collect();
        let system = MemorySystem::with_prefetchers(system_cfg, temporal);
        let mapper = self.mapper.unwrap_or_else(|| PageMapper::realistic(0xA11C));
        let workload = self.label.unwrap_or_else(|| {
            self.sources
                .iter()
                .map(|s| s.name().to_string())
                .collect::<Vec<_>>()
                .join(" & ")
        });
        let mut engine = Engine::try_new(system, self.sources, mapper)?;
        engine.set_exec_threads(self.exec_threads);
        Ok(SimSession {
            engine,
            warmup: self.warmup,
            accesses: self.accesses,
            workload,
            executed: 0,
            measuring: false,
            sample_every: self.sample_every,
            samples: Vec::new(),
        })
    }

    /// Builds and runs the session to completion.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from [`SimSessionBuilder::build`].
    pub fn run(self) -> Result<RunReport, SimError> {
        self.build()?.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triangel_types::{Addr, Pc};
    use triangel_workloads::temporal::{TemporalStream, TemporalStreamConfig};

    fn chase(len: usize) -> TemporalStream {
        TemporalStream::new(
            TemporalStreamConfig::pointer_chase("chase", Pc::new(0x40), Addr::new(1 << 30), len),
            7,
        )
    }

    #[test]
    fn builder_runs_and_reports() {
        // 50k lines: beyond L2/L3 capacity, so measurement still sees
        // DRAM traffic after warm-up.
        let r = SimSession::builder()
            .workload(chase(50_000))
            .warmup(20_000)
            .accesses(50_000)
            .run()
            .unwrap();
        assert!(r.ipc() > 0.0);
        assert!(r.dram_reads() > 0);
        assert_eq!(r.cores.len(), 1);
    }

    #[test]
    fn no_workloads_is_a_typed_error() {
        assert_eq!(
            SimSession::builder().run().unwrap_err(),
            SimError::NoSources
        );
    }

    #[test]
    fn explicit_system_is_honoured() {
        // The core count always follows the workload list (one
        // prefetcher per source), so an explicit configuration changes
        // geometry, never the core count.
        let session = SimSession::builder()
            .workload(chase(100))
            .system(SystemConfig::tiny())
            .build()
            .unwrap();
        assert_eq!(session.engine().system().core_count(), 1);
        assert_eq!(
            session.engine().system().config().l2.size_bytes(),
            16 * 1024
        );
    }

    #[test]
    fn two_workloads_default_to_the_dual_core_setup() {
        let r = SimSession::builder()
            .workload(chase(100))
            .workload(chase(100))
            .warmup(500)
            .accesses(500)
            .run()
            .unwrap();
        assert_eq!(r.cores.len(), 2);
    }

    #[test]
    fn features_override_reaches_triangel() {
        let session = SimSession::builder()
            .workload(chase(100))
            .prefetcher(PrefetcherChoice::Triangel)
            .triangel_features(TriangelFeatures {
                train_on_eviction: true,
                ..TriangelFeatures::all()
            })
            .build()
            .unwrap();
        assert_eq!(
            session.engine().system().prefetcher_name(0),
            "Triangel+EvictTrain"
        );
        // ...and is ignored for choices without Triangel features.
        let session = SimSession::builder()
            .workload(chase(100))
            .prefetcher(PrefetcherChoice::Triage)
            .triangel_features(TriangelFeatures::none())
            .build()
            .unwrap();
        assert_eq!(session.engine().system().prefetcher_name(0), "Triage");
    }
}
