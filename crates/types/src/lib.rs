//! Shared primitive types for the Triangel simulator workspace.
//!
//! This crate holds the vocabulary types used by every other crate in the
//! reproduction of *"Triangel: A High-Performance, Accurate, Timely On-Chip
//! Temporal Prefetcher"* (ISCA 2024):
//!
//! * [`Addr`], [`LineAddr`] and [`Pc`] — newtypes over `u64` that keep byte
//!   addresses, cache-line addresses and program counters statically
//!   distinct (mixing them up is the classic simulator bug).
//! * [`rng`] — small deterministic generators (linear congruential and
//!   SplitMix64). The paper (Section 4.4.3, footnote 6) notes that simple
//!   linear-congruential randomness suffices for the samplers.
//! * [`stats`] — counters, ratios, histograms and the geometric mean used
//!   throughout the evaluation.
//! * [`LineMeta`] / [`FillSource`] — the per-cache-line metadata word
//!   (who filled the line, when the fill completes, demand-used bit)
//!   shared by the cache model, the prefetcher interfaces and the
//!   memory system.
//! * [`hash`] — a deterministic fast hasher ([`hash::FxHashMap`]) for
//!   hot-path lookup tables keyed by simulator-generated values.
//!
//! # Examples
//!
//! ```
//! use triangel_types::{Addr, LineAddr, CACHE_LINE_BYTES};
//!
//! let a = Addr::new(0xDEAD_BEEF);
//! let line: LineAddr = a.line();
//! assert_eq!(line.byte_addr().get() % CACHE_LINE_BYTES, 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod addr;
pub mod arena;
mod counter;
pub mod hash;
mod meta;
pub mod rng;
pub mod snap;
pub mod stats;

pub use addr::{
    Addr, LineAddr, Pc, CACHE_LINE_BYTES, LINE_OFFSET_BITS, PAGE_BYTES, PAGE_OFFSET_BITS,
};
pub use counter::SaturatingCounter;
pub use meta::{FillSource, LineMeta};

/// A simulated clock value, measured in core cycles.
pub type Cycle = u64;

/// Hashes a 64-bit value down to `bits` bits by XOR-folding.
///
/// This is the tag-compression hash used for Markov-table tag-#s and
/// PC-tag-#s in both Triage-ISR and Triangel (Sections 3.1 and 4.2 of the
/// paper): the full value is folded onto itself until only `bits` bits
/// remain, so every input bit influences the result.
///
/// # Panics
///
/// Panics if `bits` is zero or greater than 63.
///
/// # Examples
///
/// ```
/// use triangel_types::xor_fold;
///
/// let h = xor_fold(0xDEAD_BEEF_F00D, 10);
/// assert!(h < (1 << 10));
/// // Deterministic:
/// assert_eq!(h, xor_fold(0xDEAD_BEEF_F00D, 10));
/// ```
pub fn xor_fold(value: u64, bits: u32) -> u64 {
    assert!(bits > 0 && bits < 64, "xor_fold requires 0 < bits < 64");
    let mask = (1u64 << bits) - 1;
    let mut v = value;
    let mut acc = 0u64;
    while v != 0 {
        acc ^= v & mask;
        v >>= bits;
    }
    acc & mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_fold_stays_in_range() {
        for bits in 1..16 {
            for v in [0u64, 1, 0xFFFF_FFFF_FFFF_FFFF, 0x1234_5678_9ABC_DEF0] {
                assert!(xor_fold(v, bits) < (1 << bits));
            }
        }
    }

    #[test]
    fn xor_fold_uses_high_bits() {
        // Two values differing only in high bits must (usually) hash apart.
        let a = xor_fold(0x0000_0000_0000_1234, 10);
        let b = xor_fold(0xFFFF_0000_0000_1234, 10);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "xor_fold requires")]
    fn xor_fold_rejects_zero_bits() {
        let _ = xor_fold(1, 0);
    }
}
