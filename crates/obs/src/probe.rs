//! The structured probe registry.
//!
//! The old `Prefetcher::debug_string` (removed) was an unparseable grab-bag: each
//! prefetcher formatted its own counters into one line, and consumers
//! string-matched against it. A [`Probe`] instead *names* each counter
//! and records it into a [`ProbeSet`] — an ordered, scoped registry
//! that renders to JSONL for machines and to a stable `k=v` line for
//! fingerprints. Probing is read-only and deterministic: the same
//! simulation state always yields the same set, so probe output can be
//! compared across `--jobs` counts and interrupt→resume boundaries.

use crate::json;

/// A component that exports named counters.
///
/// Implementations must be read-only (probing never mutates simulation
/// state) and deterministic (counter names and order depend only on
/// the component's configuration, values only on its state).
pub trait Probe {
    /// Records this component's counters into `out`.
    ///
    /// Use [`ProbeSet::scoped`] to namespace sub-components.
    fn probe(&self, out: &mut ProbeSet);
}

/// An ordered registry of named `u64` counters.
///
/// Names are dot-scoped (`core0.pf.issued`); recording order is
/// preserved, so two sets from identical state compare equal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProbeSet {
    prefix: String,
    entries: Vec<(String, u64)>,
}

impl ProbeSet {
    /// An empty set.
    pub fn new() -> Self {
        ProbeSet::default()
    }

    /// Records one counter under the current scope.
    pub fn record(&mut self, name: &str, value: u64) {
        let full = if self.prefix.is_empty() {
            name.to_string()
        } else {
            format!("{}.{}", self.prefix, name)
        };
        self.entries.push((full, value));
    }

    /// Runs `f` with `scope` appended to the name prefix.
    pub fn scoped(&mut self, scope: &str, f: impl FnOnce(&mut ProbeSet)) {
        let saved = self.prefix.len();
        if !self.prefix.is_empty() {
            self.prefix.push('.');
        }
        self.prefix.push_str(scope);
        f(self);
        self.prefix.truncate(saved);
    }

    /// The recorded `(name, value)` pairs, in recording order.
    pub fn entries(&self) -> &[(String, u64)] {
        &self.entries
    }

    /// Looks up a counter by its full dotted name (first match).
    pub fn get(&self, name: &str) -> Option<u64> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Number of recorded counters.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Emits one JSONL line per counter:
    /// `{"name":"core0.pf.issued","value":42}`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.entries {
            out.push_str(&format!(
                "{{\"name\":{},\"value\":{}}}\n",
                json::escape(name),
                value
            ));
        }
        out
    }

    /// Parses a document produced by [`ProbeSet::to_jsonl`].
    ///
    /// # Errors
    ///
    /// A description of the first malformed line.
    pub fn from_jsonl(src: &str) -> Result<Self, String> {
        let mut set = ProbeSet::new();
        for (i, line) in src.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v = json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            let name = v
                .get("name")
                .and_then(|n| n.as_str())
                .ok_or_else(|| format!("line {}: missing \"name\"", i + 1))?;
            let value = v
                .get("value")
                .and_then(|n| n.as_u64())
                .ok_or_else(|| format!("line {}: missing u64 \"value\"", i + 1))?;
            set.record(name, value);
        }
        Ok(set)
    }

    /// Renders `name=value` pairs on one space-separated line — the
    /// human/fingerprint form (stable across runs, unlike JSON float
    /// formatting debates: everything here is `u64`).
    pub fn render(&self) -> String {
        self.entries
            .iter()
            .map(|(n, v)| format!("{n}={v}"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoping_nests_and_restores() {
        let mut set = ProbeSet::new();
        set.record("top", 1);
        set.scoped("core0", |s| {
            s.record("hits", 2);
            s.scoped("pf", |s| s.record("issued", 3));
            s.record("misses", 4);
        });
        set.record("tail", 5);
        let names: Vec<&str> = set.entries().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            [
                "top",
                "core0.hits",
                "core0.pf.issued",
                "core0.misses",
                "tail"
            ]
        );
        assert_eq!(set.get("core0.pf.issued"), Some(3));
        assert_eq!(set.get("absent"), None);
    }

    #[test]
    fn jsonl_round_trips() {
        let mut set = ProbeSet::new();
        set.record("plain", 0);
        set.record("max", u64::MAX);
        set.scoped("odd \"scope\"", |s| s.record("tab\tname", 7));
        let text = set.to_jsonl();
        for line in text.lines() {
            crate::json::validate(line).unwrap();
        }
        let back = ProbeSet::from_jsonl(&text).unwrap();
        assert_eq!(back, set);
    }

    #[test]
    fn from_jsonl_rejects_malformed() {
        assert!(ProbeSet::from_jsonl("{\"name\":\"x\"}\n").is_err());
        assert!(ProbeSet::from_jsonl("{\"name\":\"x\",\"value\":-1}\n").is_err());
        assert!(ProbeSet::from_jsonl("not json\n").is_err());
    }

    #[test]
    fn render_is_stable() {
        let mut set = ProbeSet::new();
        set.record("a", 1);
        set.record("b", 2);
        assert_eq!(set.render(), "a=1 b=2");
    }
}
