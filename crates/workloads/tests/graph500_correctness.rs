//! Correctness of the Graph500 substrate: the traced BFS must be a real
//! breadth-first search, not just an address generator.

use std::collections::VecDeque;
use std::sync::Arc;

use triangel_workloads::graph500::{generate_edges, BfsTrace, Csr, KroneckerConfig};
use triangel_workloads::TraceSource;

fn reference_component_size(csr: &Csr, root: u32) -> usize {
    let mut visited = vec![false; csr.n_vertices()];
    let mut q = VecDeque::new();
    visited[root as usize] = true;
    q.push_back(root);
    let mut count = 1;
    while let Some(v) = q.pop_front() {
        for &u in csr.neighbors(v) {
            if !visited[u as usize] {
                visited[u as usize] = true;
                count += 1;
                q.push_back(u);
            }
        }
    }
    count
}

#[test]
fn csr_preserves_edge_multiset() {
    let edges = generate_edges(KroneckerConfig {
        scale: 10,
        edge_factor: 8,
        seed: 3,
    });
    let csr = Csr::from_edges(1 << 10, &edges);
    assert_eq!(csr.n_entries(), edges.len() * 2, "symmetrized entry count");
    // Every directed edge appears in the right adjacency list.
    for (u, v) in edges.iter().take(500) {
        assert!(csr.neighbors(*u).contains(v), "missing edge {u}->{v}");
        assert!(csr.neighbors(*v).contains(u), "missing edge {v}->{u}");
    }
}

#[test]
fn traced_bfs_visits_exactly_one_component() {
    let edges = generate_edges(KroneckerConfig {
        scale: 9,
        edge_factor: 6,
        seed: 5,
    });
    let csr = Arc::new(Csr::from_edges(1 << 9, &edges));
    let mut trace = BfsTrace::new("bfs", Arc::clone(&csr), 7);

    // Drive until the first restart (queue-region addresses reset),
    // tracking which vertices' offset entries were loaded.
    let offsets_base = 0x61_0000_0000u64;
    let mut visited_vertices = std::collections::HashSet::new();
    let mut first_root = None;
    let mut pop_zero_seen = 0;
    for _ in 0..4_000_000 {
        let a = trace.next_access();
        let addr = a.vaddr.get();
        if (0x60_0000_0000..0x61_0000_0000).contains(&addr) && addr == 0x60_0000_0000 {
            pop_zero_seen += 1;
            if pop_zero_seen > 1 {
                break; // second BFS began
            }
        }
        if (offsets_base..offsets_base + (1 << 32)).contains(&addr) {
            let v = ((addr - offsets_base) / 8) as u32;
            visited_vertices.insert(v);
            if first_root.is_none() {
                first_root = Some(v);
            }
        }
    }
    let root = first_root.expect("BFS touched the offsets array");
    let expected = reference_component_size(&csr, root);
    assert_eq!(
        visited_vertices.len(),
        expected,
        "traced BFS must expand exactly the root's connected component"
    );
}

#[test]
fn kronecker_graph_has_giant_component() {
    // A structural property the adversarial experiment relies on: most
    // BFS work happens in one giant component.
    let edges = generate_edges(KroneckerConfig {
        scale: 12,
        edge_factor: 10,
        seed: 1,
    });
    let csr = Csr::from_edges(1 << 12, &edges);
    let best = (0..64u32)
        .map(|v| reference_component_size(&csr, v * 64 % (1 << 12)))
        .max()
        .unwrap();
    assert!(
        best > (1 << 12) / 2,
        "giant component should span most vertices, got {best}"
    );
}

#[test]
fn edge_accesses_cover_each_adjacency_line_once_per_expansion() {
    let edges = generate_edges(KroneckerConfig {
        scale: 8,
        edge_factor: 6,
        seed: 9,
    });
    let csr = Arc::new(Csr::from_edges(1 << 8, &edges));
    let mut trace = BfsTrace::new("bfs", Arc::clone(&csr), 3);
    let edges_base = 0x62_0000_0000u64;
    let visited_base = 0x68_0000_0000u64;
    let mut edge_lines = 0u64;
    let mut visited_probes = 0u64;
    for _ in 0..300_000 {
        let a = trace.next_access().vaddr.get();
        if (edges_base..edges_base + (1 << 32)).contains(&a) {
            edge_lines += 1;
        }
        if a >= visited_base {
            visited_probes += 1;
        }
    }
    // Each adjacency entry costs one visited probe; lines hold up to 16
    // entries, so probes must dominate edge-line reads.
    assert!(
        visited_probes > edge_lines,
        "probes {visited_probes} vs lines {edge_lines}"
    );
}
