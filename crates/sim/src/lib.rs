//! The trace-driven timing simulator.
//!
//! This crate assembles the substrates into the paper's evaluation
//! system (Table 2): a 5-wide out-of-order core approximation with a
//! 288-entry ROB, L1D/L2/L3 caches with MSHRs, an LPDDR5-like DRAM
//! channel, the baseline stride prefetcher, and one of the temporal
//! prefetchers (Triage or Triangel) attached to the L2 with its Markov
//! table in an L3 way-partition.
//!
//! The timing model is an interval approximation rather than a
//! cycle-accurate pipeline (see DESIGN.md): out-of-order *issue* limited
//! by ROB occupancy and load dependences, in-order *retire*, and a
//! bandwidth-limited memory system. This reproduces the first-order
//! effects temporal prefetching lives on — memory-level parallelism,
//! prefetch timeliness, and DRAM congestion.
//!
//! The pipeline is monomorphized end to end: trace sources are pulled
//! in batches ([`triangel_workloads::AccessRing`]), the temporal
//! prefetcher and cache replacement are enum-dispatched
//! ([`PrefetcherImpl`],
//! [`triangel_cache::replacement::ReplacementImpl`]), and the engine's
//! in-flight timeline is a fixed power-of-two ring — no `dyn` call
//! remains on the per-access hot path of the default pipeline. The
//! one remaining trait-object constructor, [`MemorySystem::new`], is
//! kept deliberately as the entry point for user-supplied
//! [`triangel_prefetch::Prefetcher`] implementations.
//!
//! # Examples
//!
//! [`SimSession::builder`] is the single entry point: configuration →
//! workloads → prefetcher → run.
//!
//! ```
//! use triangel_sim::{PrefetcherChoice, SimSession};
//! use triangel_workloads::spec::SpecWorkload;
//!
//! let report = SimSession::builder()
//!     .workload(SpecWorkload::Xalan.generator(1))
//!     .prefetcher(PrefetcherChoice::Triangel)
//!     .warmup(5_000)
//!     .accesses(10_000)
//!     .run()
//!     .unwrap();
//! assert!(report.ipc() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod dispatch;
mod engine;
mod error;
mod experiment;
mod hierarchy;
mod metrics;
pub mod report;
mod session;

pub use config::{ContentionConfig, SystemConfig};
pub use dispatch::PrefetcherImpl;
pub use engine::Engine;
pub use error::SimError;
pub use experiment::{Experiment, PrefetcherChoice};
pub use hierarchy::{CoreStats, MemorySystem};
pub use metrics::{Comparison, CoreReport, RunReport};
pub use session::{SimSession, SimSessionBuilder, SNAPSHOT_VERSION};
// Re-exported so batch drivers can set session-level feature gates
// without depending on `triangel-core` directly.
pub use triangel_core::TriangelFeatures;
