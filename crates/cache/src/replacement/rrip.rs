//! Re-reference interval prediction (SRRIP / BRRIP).

use super::{AccessMeta, ReplacementPolicy, WayMask};
use triangel_types::rng::Lcg;

const RRPV_BITS: u32 = 2;
const RRPV_MAX: u8 = (1 << RRPV_BITS) - 1; // 3: "distant future"
const RRPV_LONG: u8 = RRPV_MAX - 1; // 2: "long re-reference interval"

/// Insertion behaviour for [`Rrip`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RripMode {
    /// SRRIP: always insert at the long interval (RRPV = max-1).
    Static,
    /// BRRIP: insert at the distant interval (RRPV = max), with a 1/32
    /// chance of the long interval — protects against thrashing.
    Bimodal,
}

/// SRRIP/BRRIP replacement (Jaleel et al., ISCA 2010), 2-bit RRPVs.
///
/// Triangel replaces HawkEye with "the simpler SRRIP" for its Markov
/// partition (Section 5), saving the 13 KiB HawkEye dueller.
#[derive(Debug, Clone)]
pub struct Rrip {
    ways: usize,
    mode: RripMode,
    rrpv: Vec<u8>,
    rng: Lcg,
}

impl Rrip {
    /// Creates RRIP state for `sets x ways`.
    pub fn new(sets: usize, ways: usize, mode: RripMode) -> Self {
        assert!(sets > 0 && ways > 0);
        Rrip {
            ways,
            mode,
            rrpv: vec![RRPV_MAX; sets * ways],
            rng: Lcg::new(0x5EED),
        }
    }

    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }
}

impl ReplacementPolicy for Rrip {
    fn on_hit(&mut self, set: usize, way: usize, _meta: &AccessMeta) {
        // Hit promotion: near-immediate re-reference.
        let i = self.idx(set, way);
        self.rrpv[i] = 0;
    }

    fn on_fill(&mut self, set: usize, way: usize, _meta: &AccessMeta) {
        let insert = match self.mode {
            RripMode::Static => RRPV_LONG,
            RripMode::Bimodal => {
                if self.rng.next_below(32) == 0 {
                    RRPV_LONG
                } else {
                    RRPV_MAX
                }
            }
        };
        let i = self.idx(set, way);
        self.rrpv[i] = insert;
    }

    fn victim(&mut self, set: usize, mask: WayMask) -> usize {
        assert!(mask != 0, "victim called with empty way mask");
        loop {
            // Find an eligible way at the distant interval.
            if let Some(w) = (0..self.ways)
                .filter(|w| mask & (1 << w) != 0)
                .find(|w| self.rrpv[set * self.ways + w] == RRPV_MAX)
            {
                return w;
            }
            // Age every eligible way and retry; terminates because RRPVs
            // strictly increase toward the max.
            for w in 0..self.ways {
                if mask & (1 << w) != 0 {
                    let i = set * self.ways + w;
                    self.rrpv[i] = (self.rrpv[i] + 1).min(RRPV_MAX);
                }
            }
        }
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        let i = self.idx(set, way);
        self.rrpv[i] = RRPV_MAX;
    }
}

impl triangel_types::snap::Snapshot for Rrip {
    fn save(
        &self,
        w: &mut triangel_types::snap::SnapWriter,
    ) -> Result<(), triangel_types::snap::SnapError> {
        w.usize(self.rrpv.len());
        for v in &self.rrpv {
            w.u8(*v);
        }
        triangel_types::snap::Snapshot::save(&self.rng, w)
    }

    fn restore(
        &mut self,
        r: &mut triangel_types::snap::SnapReader,
    ) -> Result<(), triangel_types::snap::SnapError> {
        r.expect_len(self.rrpv.len(), "RRIP RRPVs")?;
        for v in &mut self.rrpv {
            *v = r.u8()?;
        }
        triangel_types::snap::Snapshot::restore(&mut self.rng, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triangel_types::LineAddr;

    fn meta() -> AccessMeta {
        AccessMeta::demand(LineAddr::new(0), None)
    }

    #[test]
    fn hit_promotes_to_near() {
        let mut r = Rrip::new(1, 2, RripMode::Static);
        r.on_fill(0, 0, &meta());
        r.on_fill(0, 1, &meta());
        r.on_hit(0, 0, &meta());
        // Way 1 ages to distant first.
        assert_eq!(r.victim(0, 0b11), 1);
    }

    #[test]
    fn srrip_inserts_at_long() {
        let mut r = Rrip::new(1, 1, RripMode::Static);
        r.on_fill(0, 0, &meta());
        assert_eq!(r.rrpv[0], RRPV_LONG);
    }

    #[test]
    fn brrip_mostly_inserts_distant() {
        let mut r = Rrip::new(1, 1, RripMode::Bimodal);
        let mut distant = 0;
        for _ in 0..320 {
            r.on_fill(0, 0, &meta());
            if r.rrpv[0] == RRPV_MAX {
                distant += 1;
            }
        }
        assert!(distant > 280, "BRRIP inserted distant only {distant}/320");
    }

    #[test]
    fn aging_terminates_and_finds_victim() {
        let mut r = Rrip::new(1, 4, RripMode::Static);
        for w in 0..4 {
            r.on_fill(0, w, &meta());
            r.on_hit(0, w, &meta()); // all at RRPV 0
        }
        let v = r.victim(0, 0b1111);
        assert!(v < 4);
    }

    #[test]
    fn scan_resistance_vs_lru() {
        // A reuse line hit repeatedly survives a scan under SRRIP.
        let mut r = Rrip::new(1, 4, RripMode::Static);
        r.on_fill(0, 0, &meta());
        r.on_hit(0, 0, &meta());
        for w in 1..4 {
            r.on_fill(0, w, &meta());
        }
        // Scan: 8 fills into victims; way 0 must never be chosen first.
        let first_victim = r.victim(0, 0b1111);
        assert_ne!(first_victim, 0);
    }
}
