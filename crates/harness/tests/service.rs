//! End-to-end daemon coverage: an in-process [`Server`] on a temp
//! socket, driven through [`Client`]-attached sweeps.
//!
//! The bar is the project-wide one: results served by the daemon —
//! cold (fresh execution), warm (store hits), at any worker count —
//! are byte-identical to a plain in-process serial run.

use std::sync::Arc;

use triangel_harness::{JobSpec, RunParams, ServerOptions, Sweep, SweepOptions, WorkloadSpec};
use triangel_sim::PrefetcherChoice;
use triangel_store::{report_to_bytes, ResultStore};
use triangel_workloads::spec::SpecWorkload;

fn tiny_params() -> RunParams {
    RunParams {
        warmup: 400,
        accesses: 400,
        sizing_window: 200,
        seed: 29,
    }
}

/// Four remotable jobs plus one the wire protocol cannot express
/// (a custom Triage geometry), which must fall back to local
/// execution transparently.
fn sweep() -> Sweep {
    let mut sweep = Sweep::new();
    for workload in [SpecWorkload::Xalan, SpecWorkload::Mcf] {
        for choice in [PrefetcherChoice::Baseline, PrefetcherChoice::Triangel] {
            sweep.push(JobSpec::new(
                WorkloadSpec::Spec(workload),
                choice,
                tiny_params(),
            ));
        }
    }
    sweep.push(JobSpec::new(
        WorkloadSpec::Spec(SpecWorkload::Omnetpp),
        PrefetcherChoice::TriageFormat(triangel_markov::TargetFormat::Ideal32),
        tiny_params(),
    ));
    sweep
}

fn assert_bytes_match(
    got: &triangel_harness::SweepReport,
    want: &triangel_harness::SweepReport,
    label: &str,
) {
    assert_eq!(got.results.len(), want.results.len());
    for i in 0..want.results.len() {
        assert_eq!(
            report_to_bytes(got.report(i)),
            report_to_bytes(want.report(i)),
            "{label}: job {i} differs from the in-process serial run"
        );
    }
}

#[test]
fn daemon_round_trip_is_byte_identical_cold_and_warm() {
    let dir = std::env::temp_dir().join(format!("triangel-service-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let socket = dir.join("serve.sock");

    let store = Arc::new(ResultStore::open(dir.join("store")).unwrap());
    let server = Arc::new(
        triangel_harness::Server::bind(
            &socket,
            ServerOptions {
                workers: 2,
                segment_accesses: 150,
                store: Some(Arc::clone(&store)),
                verbose: false,
            },
        )
        .unwrap(),
    );
    let daemon = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.serve())
    };

    let n_jobs = sweep().jobs().len();
    let reference = sweep().run(&SweepOptions::serial());
    assert_eq!(reference.stats.errors, 0);

    // Cold: the daemon's store is empty, so it simulates everything
    // remotable; the TriageFormat job runs locally. Byte-for-byte the
    // same either way.
    let cold_client = Arc::new(triangel_harness::Client::connect(&socket).unwrap());
    let cold = sweep().run(&SweepOptions::parallel(2).with_remote(Arc::clone(&cold_client)));
    assert_bytes_match(&cold, &reference, "cold daemon");
    assert_eq!(cold.stats.executed, n_jobs);
    assert_eq!(cold_client.stats().jobs(), (n_jobs - 1) as u64);
    assert_eq!(cold_client.stats().executed(), (n_jobs - 1) as u64);
    assert_eq!(cold_client.stats().store_hits(), 0);

    // Warm: a second pass over the same daemon is all store hits for
    // the remotable jobs — only the local-fallback job executes.
    let warm_client = Arc::new(triangel_harness::Client::connect(&socket).unwrap());
    let warm = sweep().run(&SweepOptions::parallel(8).with_remote(Arc::clone(&warm_client)));
    assert_bytes_match(&warm, &reference, "warm daemon");
    assert_eq!(
        warm.stats.executed, 1,
        "only the non-remotable job re-executes"
    );
    assert_eq!(warm_client.stats().store_hits(), (n_jobs - 1) as u64);
    assert_eq!(warm_client.stats().executed(), 0);

    // `--store` mode reads the daemon's directory directly: everything
    // the daemon published is a hit here too, byte-identically.
    let direct_store = Arc::new(ResultStore::open(dir.join("store")).unwrap());
    let direct = sweep().run(&SweepOptions::serial().with_store(Arc::clone(&direct_store)));
    assert_bytes_match(&direct, &reference, "--store over the daemon's directory");
    assert_eq!(
        direct.stats.executed, 1,
        "only the non-remotable job misses the store"
    );
    assert_eq!(direct_store.stats().hits(), (n_jobs - 1) as u64);

    // Clean shutdown: the daemon acknowledges, and once every client
    // connection is gone (the serve loop waits for its handlers), the
    // daemon thread exits.
    drop(cold_client);
    drop(warm_client);
    triangel_harness::Client::connect(&socket)
        .unwrap()
        .shutdown()
        .unwrap();
    daemon.join().unwrap().unwrap();

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn version_mismatch_is_refused() {
    // A liar client: speaks the framing but claims a different
    // snapshot version. The daemon must refuse the handshake rather
    // than serve incomparable reports.
    use triangel_harness::service::wire::{read_frame, write_frame, Request, Response};

    let dir = std::env::temp_dir().join(format!("triangel-service-ver-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let socket = dir.join("serve.sock");
    let server =
        Arc::new(triangel_harness::Server::bind(&socket, ServerOptions::default()).unwrap());
    let daemon = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.serve())
    };

    let mut stream = std::os::unix::net::UnixStream::connect(&socket).unwrap();
    write_frame(
        &mut stream,
        &Request::Hello {
            proto: triangel_harness::service::PROTO_VERSION,
            snapshot: u32::MAX,
        }
        .encode(),
    )
    .unwrap();
    let frame = read_frame(&mut stream).unwrap();
    match Response::decode(&frame).unwrap() {
        Response::Error { message } => {
            assert!(message.contains("version mismatch"), "got: {message}")
        }
        other => panic!("expected refusal, got {other:?}"),
    }

    // And the high-level client surfaces a connect error for the same
    // reason only on a true mismatch — a well-versioned connect works.
    let client = triangel_harness::Client::connect(&socket).unwrap();
    client.shutdown().unwrap();
    daemon.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
