//! Triage's PC-indexed training table.

use triangel_types::arena::SetArena;
use triangel_types::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use triangel_types::{xor_fold, LineAddr, Pc};

/// One entry's payload: the per-PC miss history shift register. The PC
/// tag and validity live in the arena's tag/mask storage.
#[derive(Debug, Clone, Copy, Default)]
struct History {
    /// `last[0]` is the most recent miss/prefetch-hit; `last[1]` the one
    /// before (only maintained when lookahead 2 is configured).
    last: [Option<LineAddr>; 2],
}

impl Snapshot for History {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.opt_u64(self.last[0].map(|l| l.index()));
        w.opt_u64(self.last[1].map(|l| l.index()));
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.last[0] = r.opt_u64()?.map(LineAddr::new);
        self.last[1] = r.opt_u64()?.map(LineAddr::new);
        Ok(())
    }
}

/// Result of a training-table update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainingUpdate {
    /// The Markov index to train with the current address as target:
    /// `last[0]` for lookahead 1, `last[1]` for lookahead 2
    /// (Section 4.5: "the latter is used as the Markov-table index...
    /// increasing lookahead").
    pub train_index: Option<LineAddr>,
    /// Whether the PC's entry was newly allocated (history was lost).
    pub allocated: bool,
}

/// The PC-indexed, PC-tag-hashed training table (Fig. 1 / Fig. 5 of the
/// paper, without Triangel's extra fields).
///
/// Direct-mapped on a hash of the PC with a 10-bit tag, like the paper's
/// structures; collisions reset the history, as real hardware would.
/// Stored as a one-way [`SetArena`] (one arena set per slot), which
/// keeps the PC tags packed for the probe and the validity in a
/// bitmask.
#[derive(Debug)]
pub struct TrainingTable {
    slots: SetArena<History>,
    lookahead: usize,
    index_bits: u32,
}

impl TrainingTable {
    /// Creates a table with `entries` slots (rounded up to a power of
    /// two) and the given lookahead (1 or 2).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or `lookahead` is not 1 or 2.
    pub fn new(entries: usize, lookahead: usize) -> Self {
        assert!(entries > 0, "training table needs entries");
        assert!(lookahead == 1 || lookahead == 2, "lookahead must be 1 or 2");
        let n = entries.next_power_of_two();
        TrainingTable {
            slots: SetArena::new(n, 1),
            lookahead,
            index_bits: n.trailing_zeros(),
        }
    }

    fn index_of(&self, pc: Pc) -> (usize, u16) {
        let idx = if self.index_bits == 0 {
            0
        } else {
            (xor_fold(pc.get() >> 2, self.index_bits) as usize) & (self.slots.sets() - 1)
        };
        let tag = xor_fold(pc.get() >> 2, 10) as u16;
        (idx, tag)
    }

    /// Records a miss/prefetch-hit for `pc` and returns which Markov
    /// index (if any) should now be trained with `line` as its target.
    pub fn update(&mut self, pc: Pc, line: LineAddr) -> TrainingUpdate {
        let (idx, tag) = self.index_of(pc);
        let allocated = self.slots.find(idx, tag).is_none();
        if allocated {
            self.slots.insert(idx, 0, tag, History::default());
        }
        let h = self.slots.payload_mut(idx, 0);
        let train_index = if self.lookahead == 2 {
            h.last[1]
        } else {
            h.last[0]
        };
        // Shift the history register.
        h.last[1] = h.last[0];
        h.last[0] = Some(line);
        TrainingUpdate {
            train_index,
            allocated,
        }
    }

    /// Peeks at the most recent address recorded for `pc`.
    pub fn last_addr(&self, pc: Pc) -> Option<LineAddr> {
        let (idx, tag) = self.index_of(pc);
        match self.slots.get(idx, 0) {
            Some((t, h)) if t == tag => h.last[0],
            _ => None,
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.sets()
    }
}

impl Snapshot for TrainingTable {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        self.slots.save(w)
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.slots.restore(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookahead1_trains_previous() {
        let mut t = TrainingTable::new(64, 1);
        let pc = Pc::new(0x40);
        assert_eq!(t.update(pc, LineAddr::new(1)).train_index, None);
        assert_eq!(
            t.update(pc, LineAddr::new(2)).train_index,
            Some(LineAddr::new(1))
        );
        assert_eq!(
            t.update(pc, LineAddr::new(3)).train_index,
            Some(LineAddr::new(2))
        );
    }

    #[test]
    fn lookahead2_trains_two_back() {
        let mut t = TrainingTable::new(64, 2);
        let pc = Pc::new(0x40);
        assert_eq!(t.update(pc, LineAddr::new(1)).train_index, None);
        assert_eq!(t.update(pc, LineAddr::new(2)).train_index, None);
        // Pattern (x, y, z): stores (x, z) as the paper describes.
        assert_eq!(
            t.update(pc, LineAddr::new(3)).train_index,
            Some(LineAddr::new(1))
        );
        assert_eq!(
            t.update(pc, LineAddr::new(4)).train_index,
            Some(LineAddr::new(2))
        );
    }

    #[test]
    fn distinct_pcs_have_distinct_histories() {
        let mut t = TrainingTable::new(64, 1);
        t.update(Pc::new(0x40), LineAddr::new(1));
        t.update(Pc::new(0x44), LineAddr::new(100));
        assert_eq!(
            t.update(Pc::new(0x40), LineAddr::new(2)).train_index,
            Some(LineAddr::new(1))
        );
    }

    #[test]
    fn collision_resets_history() {
        // Force a collision with a 1-entry table.
        let mut t = TrainingTable::new(1, 1);
        t.update(Pc::new(0x40), LineAddr::new(1));
        let u = t.update(Pc::new(0x1234_5678), LineAddr::new(2));
        assert!(u.allocated);
        assert_eq!(u.train_index, None, "stale history must not train");
    }

    #[test]
    fn last_addr_peek() {
        let mut t = TrainingTable::new(64, 1);
        let pc = Pc::new(0x8);
        assert_eq!(t.last_addr(pc), None);
        t.update(pc, LineAddr::new(9));
        assert_eq!(t.last_addr(pc), Some(LineAddr::new(9)));
    }

    #[test]
    #[should_panic(expected = "lookahead must be 1 or 2")]
    fn bad_lookahead_rejected() {
        let _ = TrainingTable::new(8, 3);
    }

    #[test]
    fn snapshot_roundtrip_preserves_histories() {
        let mut t = TrainingTable::new(64, 2);
        let pc = Pc::new(0x40);
        t.update(pc, LineAddr::new(1));
        t.update(pc, LineAddr::new(2));
        let mut w = SnapWriter::new();
        t.save(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut u = TrainingTable::new(64, 2);
        let mut r = SnapReader::new(&bytes);
        u.restore(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(
            u.update(pc, LineAddr::new(3)).train_index,
            Some(LineAddr::new(1)),
            "shift-register state survives the round-trip"
        );
        assert_eq!(u.last_addr(pc), Some(LineAddr::new(3)));
    }
}
