//! Reproduces Fig. 16: multiprogrammed-workload speedup.
//!
//! The paper pairs the seven workloads on two cores ("with Xalan doubled
//! to make an even set"): Xalan & Omnet, MCF & GCC_166, Astar &
//! Soplex_3500, Sphinx & Xalan. Each pair shares the L3 (and thus the
//! Markov partition) and the DRAM channel; the per-pair speedup is the
//! geometric mean of the two cores' IPC ratios against the same pair run
//! with the stride-only baseline.

use triangel_bench::SweepParams;
use triangel_sim::report::FigureTable;
use triangel_sim::{Comparison, Experiment, PrefetcherChoice};
use triangel_workloads::spec::SpecWorkload;
use triangel_workloads::TraceSource;

/// The paper's pairings.
pub const PAIRS: [(SpecWorkload, SpecWorkload); 4] = [
    (SpecWorkload::Xalan, SpecWorkload::Omnetpp),
    (SpecWorkload::Mcf, SpecWorkload::Gcc166),
    (SpecWorkload::Astar, SpecWorkload::Soplex),
    (SpecWorkload::Sphinx, SpecWorkload::Xalan),
];

fn pair_sources(a: SpecWorkload, b: SpecWorkload, seed: u64) -> Vec<Box<dyn TraceSource>> {
    vec![Box::new(a.generator(seed)), Box::new(b.generator(seed ^ 0x9999))]
}

fn main() {
    let p = SweepParams::from_env();
    let configs = [
        PrefetcherChoice::Triage,
        PrefetcherChoice::TriageDeg4,
        PrefetcherChoice::Triangel,
        PrefetcherChoice::TriangelBloom,
    ];
    let mut table = FigureTable::new(
        "Fig. 16: Multiprogrammed-workload speedup",
        "per-pair geomean IPC ratio vs stride-only dual-core baseline",
        configs.iter().map(|c| c.label()).collect(),
    );
    for (a, b) in PAIRS {
        let label = format!("{} & {}", a.label(), b.label());
        eprintln!("[fig16] {label} / Baseline");
        let base = Experiment::multiprogrammed(pair_sources(a, b, p.seed))
            .warmup(p.warmup)
            .accesses(p.accesses)
            .sizing_window(p.sizing_window)
            .label(label.clone())
            .run();
        let mut row = Vec::new();
        for cfg in configs {
            eprintln!("[fig16] {label} / {}", cfg.label());
            let run = Experiment::multiprogrammed(pair_sources(a, b, p.seed))
                .warmup(p.warmup)
                .accesses(p.accesses)
                .sizing_window(p.sizing_window)
                .prefetcher(cfg)
                .label(label.clone())
                .run();
            row.push(Comparison::new(&base, &run).speedup);
        }
        table.push_row(label, row);
    }
    table.print();
}
