//! Triangel configuration and the Fig. 20 feature ladder.

use triangel_markov::{MarkovTableConfig, TargetFormat};
use triangel_types::Cycle;

/// Which Markov-partition sizing mechanism to use (Section 4.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizingMechanism {
    /// Triangel's default Set Dueller.
    SetDueller,
    /// A Bloom filter with the paper's experimentally-determined 1.5x
    /// bias factor (the `Triangel-Bloom` configuration).
    Bloom,
}

/// Individual Triangel mechanisms, in the order the paper's ablation
/// study enables them (Fig. 20, starting from Triage Degree-4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriangelFeatures {
    /// `+Lookahead-2`: train `(x, z)` instead of `(x, y)` so degree can
    /// overlap dependent chains (Section 4.5).
    pub lookahead2: bool,
    /// `+Triangel Metadata`: the 42-bit direct-target Markov format
    /// instead of Triage's 32-bit LUT format (Section 4.3).
    pub triangel_metadata: bool,
    /// `+BasePatternConf`: gate metadata storage and prefetching on the
    /// 2/3-accuracy classifier (Section 4.4.2).
    pub base_pattern_conf: bool,
    /// `+Second-Chance`: recover loosely-ordered patterns (Section 4.4.2).
    pub second_chance: bool,
    /// `+Metadata Reuse Buffer` (Section 4.6).
    pub metadata_reuse_buffer: bool,
    /// `+Set Duel`: replace Bloom sizing with the Set Dueller
    /// (Section 4.7).
    pub set_dueller: bool,
    /// `+ReuseConf`: gate on patterns fitting the Markov table
    /// (Section 4.4.1).
    pub reuse_conf: bool,
    /// `+HighPatternConf`: require the 5/6-accuracy classifier before
    /// degree-4/lookahead-2 aggression (Section 4.5).
    pub high_pattern_conf: bool,
    /// Train on L2 eviction notices (paper-faithful eviction feedback
    /// through [`Prefetcher::on_l2_evict`]). **Experimental gate, off
    /// everywhere by default** — it is not part of the Fig. 20 ladder
    /// and [`TriangelFeatures::all`] leaves it off. When set, the
    /// dying line's metadata word (fill source, demand-used bit, fill
    /// cycle) settles training at eviction time: the Markov entry that
    /// predicted the line is reinforced or weakened, and the filling
    /// PC's pattern classifiers receive eviction ground truth.
    /// Enabling it is a behaviour change; golden fixtures must be
    /// re-blessed deliberately (`cargo run -p triangel-bench --bin
    /// bless`). The `features` ablation figure measures its effect.
    ///
    /// [`Prefetcher::on_l2_evict`]: triangel_prefetch::Prefetcher::on_l2_evict
    pub train_on_eviction: bool,
}

impl TriangelFeatures {
    /// Everything on: full Triangel.
    ///
    /// # Invariant: `all()` excludes `train_on_eviction`
    ///
    /// "All" means *all of the paper's Fig. 20 ladder*, not every field
    /// of the struct. The experimental `train_on_eviction` gate is
    /// deliberately **not** part of `all()`: it is not in the paper's
    /// default configuration, and `all()` is what every shipped
    /// Triangel preset (and therefore every golden fixture) is built
    /// from. Flipping it on here would silently change every golden.
    /// The invariant is pinned by `ladder_is_cumulative` and
    /// `eviction_training_gate_is_off_everywhere` below — an "enable
    /// everything" edit must fail those tests first.
    pub const fn all() -> Self {
        TriangelFeatures {
            lookahead2: true,
            triangel_metadata: true,
            base_pattern_conf: true,
            second_chance: true,
            metadata_reuse_buffer: true,
            set_dueller: true,
            reuse_conf: true,
            high_pattern_conf: true,
            train_on_eviction: false,
        }
    }

    /// Everything off: behaves like Triage Degree-4 (the ablation's
    /// starting point).
    pub const fn none() -> Self {
        TriangelFeatures {
            lookahead2: false,
            triangel_metadata: false,
            base_pattern_conf: false,
            second_chance: false,
            metadata_reuse_buffer: false,
            set_dueller: false,
            reuse_conf: false,
            high_pattern_conf: false,
            train_on_eviction: false,
        }
    }

    /// The Fig. 20 ladder: features enabled cumulatively. `steps = 0` is
    /// the Triage-Deg4 starting point; `steps = 8` is full Triangel.
    ///
    /// # Panics
    ///
    /// Panics if `steps > 8`.
    pub fn ladder(steps: usize) -> Self {
        assert!(steps <= 8, "the ablation ladder has 8 steps");
        let mut f = TriangelFeatures::none();
        let flags: [&mut bool; 8] = [
            &mut f.lookahead2,
            &mut f.triangel_metadata,
            &mut f.base_pattern_conf,
            &mut f.second_chance,
            &mut f.metadata_reuse_buffer,
            &mut f.set_dueller,
            &mut f.reuse_conf,
            &mut f.high_pattern_conf,
        ];
        for (i, flag) in flags.into_iter().enumerate() {
            *flag = i < steps;
        }
        f
    }

    /// The paper's label for ladder step `steps` (Fig. 20 legend).
    pub fn ladder_label(steps: usize) -> &'static str {
        match steps {
            0 => "Triage-Deg-4",
            1 => "+Lookahead-2",
            2 => "+Triangel Metadata",
            3 => "+BasePatternConf",
            4 => "+Second-Chance",
            5 => "+Metadata Reuse Buffer",
            6 => "+Set Duel",
            7 => "+ReuseConf",
            8 => "+HighPatternConf",
            _ => panic!("the ablation ladder has 8 steps"),
        }
    }
}

/// Full Triangel configuration.
#[derive(Debug, Clone, Copy)]
pub struct TriangelConfig {
    /// Feature toggles (all on by default).
    pub features: TriangelFeatures,
    /// Partition sizing when the Set Dueller is disabled.
    pub bloom_bias: f64,
    /// Markov table geometry; the format is overridden to the Triage LUT
    /// format when `features.triangel_metadata` is off.
    pub table: MarkovTableConfig,
    /// Training-table entries (512, Table 1).
    pub training_entries: usize,
    /// History Sampler entries (512, 2-way; Table 1).
    pub sampler_entries: usize,
    /// Second-Chance Sampler entries (64; Table 1).
    pub scs_entries: usize,
    /// Second-Chance proximity window, in L2 fills (512; Section 4.4.2).
    pub scs_window: u64,
    /// Metadata Reuse Buffer entries (256, 2-way; Section 4.6).
    pub mrb_entries: usize,
    /// Maximum prefetch degree when aggressive (4; Section 4.5).
    pub max_degree: usize,
    /// Cycles per Markov-partition access (25; Section 5).
    pub markov_latency: Cycle,
    /// Set Dueller / Bloom sizing window, in prefetcher events
    /// (500 000 in the paper; Section 4.7).
    pub sizing_window: u64,
    /// Set Dueller bias factor B against Markov hits (2; Section 4.7
    /// fn. 11).
    pub dueller_bias: u32,
    /// Bits in the sizing Bloom filter (Triangel-Bloom only).
    pub bloom_bits: usize,
    /// Seed for the sampling randomness.
    pub seed: u64,
}

impl TriangelConfig {
    /// The paper's default Triangel.
    pub fn paper_default() -> Self {
        TriangelConfig {
            features: TriangelFeatures::all(),
            bloom_bias: 1.5,
            table: MarkovTableConfig::triangel(),
            training_entries: 512,
            sampler_entries: 512,
            scs_entries: 64,
            scs_window: 512,
            mrb_entries: 256,
            max_degree: 4,
            markov_latency: 25,
            sizing_window: 500_000,
            dueller_bias: 2,
            bloom_bits: 1 << 17,
            seed: 0x7121,
        }
    }

    /// `Triangel-Bloom`: the Bloom-filter sizing variant shown in every
    /// figure.
    pub fn bloom_variant() -> Self {
        let mut cfg = TriangelConfig::paper_default();
        cfg.features.set_dueller = false;
        cfg
    }

    /// Full Triangel without the Metadata Reuse Buffer
    /// (`Triangel-NoMRB`, Figs. 14–15).
    pub fn no_mrb() -> Self {
        let mut cfg = TriangelConfig::paper_default();
        cfg.features.metadata_reuse_buffer = false;
        cfg
    }

    /// An ablation-ladder configuration (Fig. 20).
    pub fn ladder(steps: usize) -> Self {
        let mut cfg = TriangelConfig::paper_default();
        cfg.features = TriangelFeatures::ladder(steps);
        cfg
    }

    /// The effective Markov format after the `triangel_metadata` toggle.
    pub fn effective_format(&self) -> TargetFormat {
        if self.features.triangel_metadata {
            TargetFormat::Direct42
        } else {
            TargetFormat::triage_default()
        }
    }

    /// The sizing mechanism after the `set_dueller` toggle.
    pub fn sizing(&self) -> SizingMechanism {
        if self.features.set_dueller {
            SizingMechanism::SetDueller
        } else {
            SizingMechanism::Bloom
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_cumulative() {
        assert_eq!(TriangelFeatures::ladder(0), TriangelFeatures::none());
        assert_eq!(TriangelFeatures::ladder(8), TriangelFeatures::all());
        let f3 = TriangelFeatures::ladder(3);
        assert!(f3.lookahead2 && f3.triangel_metadata && f3.base_pattern_conf);
        assert!(!f3.second_chance && !f3.set_dueller);
        // The ladder's top — and `all()` with it — excludes the
        // experimental eviction-training gate by design: "all" is the
        // paper's Fig. 20 feature set, and every golden fixture is
        // built from it. See the invariant note on `all()` itself.
        assert!(!TriangelFeatures::all().train_on_eviction);
    }

    #[test]
    fn ladder_labels_match_fig20() {
        assert_eq!(TriangelFeatures::ladder_label(0), "Triage-Deg-4");
        assert_eq!(TriangelFeatures::ladder_label(8), "+HighPatternConf");
    }

    #[test]
    fn format_follows_metadata_toggle() {
        let full = TriangelConfig::paper_default();
        assert_eq!(full.effective_format(), TargetFormat::Direct42);
        let early = TriangelConfig::ladder(1);
        assert_eq!(early.effective_format(), TargetFormat::triage_default());
    }

    #[test]
    fn variants() {
        assert_eq!(
            TriangelConfig::bloom_variant().sizing(),
            SizingMechanism::Bloom
        );
        assert_eq!(
            TriangelConfig::paper_default().sizing(),
            SizingMechanism::SetDueller
        );
        assert!(!TriangelConfig::no_mrb().features.metadata_reuse_buffer);
    }

    #[test]
    #[should_panic(expected = "8 steps")]
    fn ladder_bounds() {
        let _ = TriangelFeatures::ladder(9);
    }

    #[test]
    fn eviction_training_gate_is_off_everywhere() {
        // The experimental gate must not leak into any shipped
        // configuration: enabling it is always an explicit opt-in.
        assert!(!TriangelFeatures::all().train_on_eviction);
        assert!(!TriangelFeatures::none().train_on_eviction);
        for step in 0..=8 {
            assert!(!TriangelFeatures::ladder(step).train_on_eviction);
        }
        assert!(!TriangelConfig::paper_default().features.train_on_eviction);
    }
}
