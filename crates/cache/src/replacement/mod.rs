//! Replacement policies.
//!
//! Every policy implements [`ReplacementPolicy`], a per-(set, way) protocol
//! driven by the owning [`Cache`](crate::Cache):
//!
//! * [`Lru`] / [`Fifo`] / [`Random`] — classic baselines.
//! * [`TreePlru`] — tree pseudo-LRU, as shipped in Arm L1 caches
//!   (the paper cites PLRU bits stored in spare tag bits, Section 3.2).
//! * [`Rrip`] — SRRIP and BRRIP re-reference interval prediction
//!   (Jaleel et al., ISCA 2010); Triangel uses SRRIP for its Markov
//!   partition (Section 5).
//! * [`HawkEye`] — Belady-mimicking replacement (Jain & Lin, ISCA 2016)
//!   with OPTgen sampled sets and a PC-based predictor; Triage uses it for
//!   Markov metadata (Section 3.3).

mod fifo;
mod hawkeye;
mod lru;
mod plru;
mod random;
mod rrip;

pub use fifo::Fifo;
pub use hawkeye::{HawkEye, HawkEyeConfig};
pub use lru::Lru;
pub use plru::TreePlru;
pub use random::Random;
pub use rrip::{Rrip, RripMode};

use triangel_types::{LineAddr, Pc};

/// Metadata describing the access being recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessMeta {
    /// The line being accessed or filled.
    pub line: LineAddr,
    /// The program counter of the triggering instruction, when known.
    /// Prefetch fills inherit the PC of the training access.
    pub pc: Option<Pc>,
    /// Whether the access is a prefetch (fill or lookup) rather than a
    /// demand access.
    pub is_prefetch: bool,
}

impl AccessMeta {
    /// Convenience constructor for a demand access.
    pub fn demand(line: LineAddr, pc: Option<Pc>) -> Self {
        AccessMeta {
            line,
            pc,
            is_prefetch: false,
        }
    }

    /// Convenience constructor for a prefetch access.
    pub fn prefetch(line: LineAddr, pc: Option<Pc>) -> Self {
        AccessMeta {
            line,
            pc,
            is_prefetch: true,
        }
    }
}

/// A bitmask of ways eligible for victim selection.
///
/// Way `w` is eligible if bit `w` is set. Way-partitioned caches restrict
/// the mask to the ways owned by the requester.
pub type WayMask = u64;

/// Returns a mask with the `ways` low bits set (all ways eligible).
pub const fn all_ways(ways: usize) -> WayMask {
    if ways >= 64 {
        u64::MAX
    } else {
        (1u64 << ways) - 1
    }
}

/// The per-set replacement protocol.
///
/// The cache guarantees that `victim` is called only when every eligible
/// way holds a valid line; invalid ways are filled first without consulting
/// the policy.
pub trait ReplacementPolicy: std::fmt::Debug {
    /// Records a hit at `(set, way)`.
    fn on_hit(&mut self, set: usize, way: usize, meta: &AccessMeta);

    /// Records a new line being installed at `(set, way)`.
    fn on_fill(&mut self, set: usize, way: usize, meta: &AccessMeta);

    /// Chooses a victim way within `set` among the ways allowed by `mask`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `mask` is empty.
    fn victim(&mut self, set: usize, mask: WayMask) -> usize;

    /// Records that `(set, way)` was invalidated (e.g. by a partition
    /// resize). Default: no bookkeeping.
    fn on_invalidate(&mut self, _set: usize, _way: usize) {}

    /// Notifies the policy that the line chosen by [`victim`] was indeed
    /// evicted, passing the line that lived there. HawkEye uses this to
    /// detrain the PC that loaded an over-optimistically-kept line.
    /// Default: no bookkeeping.
    ///
    /// [`victim`]: ReplacementPolicy::victim
    fn on_evict(&mut self, _set: usize, _way: usize, _line: LineAddr) {}
}

/// Selects which replacement policy a cache is built with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PolicyKind {
    /// Least recently used.
    #[default]
    Lru,
    /// First in, first out.
    Fifo,
    /// Uniform random.
    Random,
    /// Tree pseudo-LRU.
    TreePlru,
    /// Static RRIP (insert at distant, promote to near on hit).
    Srrip,
    /// Bimodal RRIP (insert at max, occasionally distant).
    Brrip,
    /// HawkEye (Belady-mimicking, PC-classified).
    Hawkeye,
}

impl PolicyKind {
    /// Instantiates the policy for a cache of `sets x ways`.
    pub fn build(self, sets: usize, ways: usize) -> Box<dyn ReplacementPolicy> {
        match self {
            PolicyKind::Lru => Box::new(Lru::new(sets, ways)),
            PolicyKind::Fifo => Box::new(Fifo::new(sets, ways)),
            PolicyKind::Random => Box::new(Random::new(sets, ways, 0xC0FFEE)),
            PolicyKind::TreePlru => Box::new(TreePlru::new(sets, ways)),
            PolicyKind::Srrip => Box::new(Rrip::new(sets, ways, RripMode::Static)),
            PolicyKind::Brrip => Box::new(Rrip::new(sets, ways, RripMode::Bimodal)),
            PolicyKind::Hawkeye => Box::new(HawkEye::new(sets, ways, HawkEyeConfig::default())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ways_mask() {
        assert_eq!(all_ways(1), 0b1);
        assert_eq!(all_ways(16), 0xFFFF);
        assert_eq!(all_ways(64), u64::MAX);
    }

    #[test]
    fn build_all_kinds() {
        for kind in [
            PolicyKind::Lru,
            PolicyKind::Fifo,
            PolicyKind::Random,
            PolicyKind::TreePlru,
            PolicyKind::Srrip,
            PolicyKind::Brrip,
            PolicyKind::Hawkeye,
        ] {
            let mut p = kind.build(4, 4);
            let meta = AccessMeta::demand(LineAddr::new(1), Some(Pc::new(2)));
            for way in 0..4 {
                p.on_fill(0, way, &meta);
            }
            let v = p.victim(0, all_ways(4));
            assert!(v < 4, "{kind:?} returned out-of-range victim");
        }
    }

    #[test]
    fn victim_respects_mask() {
        for kind in [
            PolicyKind::Lru,
            PolicyKind::Fifo,
            PolicyKind::Random,
            PolicyKind::TreePlru,
            PolicyKind::Srrip,
            PolicyKind::Brrip,
            PolicyKind::Hawkeye,
        ] {
            let mut p = kind.build(2, 8);
            let meta = AccessMeta::demand(LineAddr::new(9), None);
            for way in 0..8 {
                p.on_fill(1, way, &meta);
            }
            // Only ways 4..8 eligible.
            let mask: WayMask = 0b1111_0000;
            for _ in 0..32 {
                let v = p.victim(1, mask);
                assert!((4..8).contains(&v), "{kind:?} ignored the way mask");
            }
        }
    }
}
