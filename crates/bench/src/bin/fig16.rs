//! Reproduces Fig. 16: multiprogrammed-workload speedup.
//!
//! The paper pairs the seven workloads on two cores ("with Xalan doubled
//! to make an even set"): Xalan & Omnet, MCF & GCC_166, Astar &
//! Soplex_3500, Sphinx & Xalan. Each pair shares the L3 (and thus the
//! Markov partition) and the DRAM channel; the per-pair speedup is the
//! geometric mean of the two cores' IPC ratios against the same pair run
//! with the stride-only baseline.
//!
//! Declarative definition: `triangel_bench::figures` registry entry
//! `"fig16"`, executed by the `triangel-harness` scheduler
//! (`--jobs N` controls worker threads; results are identical for any
//! value).

fn main() {
    triangel_bench::figures::run_main("fig16");
}
