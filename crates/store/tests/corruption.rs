//! Corruption and staleness: every way an entry can rot on disk must
//! read as a loud discard — never a wrong report, never a panic — and
//! the job must re-execute and re-publish cleanly.
//!
//! Entry envelope layout exercised below (little-endian):
//!
//! ```text
//! 0..8    u64 length of the magic (8)
//! 8..16   ENTRY_MAGIC
//! 16..20  u32 STORE_FORMAT_VERSION
//! 20..24  u32 SNAPSHOT_VERSION
//! 24..    key (length-prefixed), payload (length-prefixed), checksum
//! ```

use std::sync::Arc;

use triangel_harness::{JobSpec, RunParams, Sweep, SweepOptions, WorkloadSpec};
use triangel_sim::{PrefetcherChoice, SNAPSHOT_VERSION};
use triangel_store::{report_to_bytes, ResultStore, STORE_FORMAT_VERSION};
use triangel_workloads::spec::SpecWorkload;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "triangel-store-corruption-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tiny_job() -> JobSpec {
    JobSpec::new(
        WorkloadSpec::Spec(SpecWorkload::Xalan),
        PrefetcherChoice::Triangel,
        RunParams {
            warmup: 500,
            accesses: 500,
            sizing_window: 250,
            seed: 7,
        },
    )
}

#[test]
fn entry_round_trips_bit_for_bit() {
    let dir = temp_dir("roundtrip");
    let store = ResultStore::open(&dir).unwrap();
    let job = tiny_job();
    let report = job.run().unwrap();

    assert!(store.get(&job.key()).is_none());
    store.put(&job.key(), &report);
    let back = store
        .get(&job.key())
        .expect("published entry must read back");
    assert_eq!(
        report_to_bytes(&back),
        report_to_bytes(&report),
        "store round-trip must preserve the report bit-for-bit"
    );
    assert_eq!(store.stats().misses(), 1);
    assert_eq!(store.stats().inserts(), 1);
    assert_eq!(store.stats().hits(), 1);
    assert_eq!(store.stats().discards(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Publishes the tiny job and returns (store, key, entry path).
fn published(tag: &str) -> (ResultStore, String, std::path::PathBuf) {
    let store = ResultStore::open(temp_dir(tag)).unwrap();
    let job = tiny_job();
    store.put(&job.key(), &job.run().unwrap());
    let path = store.entry_path(&job.key());
    assert!(path.exists());
    (store, job.key(), path)
}

/// The common assertion: a rotten entry reads as a miss, counts a
/// discard, and is unlinked so the next publish starts fresh.
fn assert_discarded(store: &ResultStore, key: &str, path: &std::path::Path, what: &str) {
    assert!(
        store.get(key).is_none(),
        "{what} entry must read as a miss, not a report"
    );
    assert_eq!(
        store.stats().discards(),
        1,
        "{what} entry must count a discard"
    );
    assert!(!path.exists(), "{what} entry must be unlinked on discard");
}

#[test]
fn truncated_entry_is_discarded_and_reexecuted() {
    let (store, key, path) = published("truncated");
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    assert_discarded(&store, &key, &path, "truncated");

    // The discard heals through normal execution: a sweep over the
    // same store misses, re-runs the job, and re-publishes.
    let report = Sweep::new()
        .job(tiny_job())
        .run(&SweepOptions::serial().with_store(Arc::new(ResultStore::open(store.dir()).unwrap())));
    assert_eq!(report.stats.executed, 1, "corrupt entry must re-execute");
    assert!(
        store.get(&key).is_some(),
        "re-execution must re-publish the entry"
    );
    let _ = std::fs::remove_dir_all(store.dir());
}

#[test]
fn bit_flip_in_payload_fails_the_checksum() {
    let (store, key, path) = published("bitflip");
    let mut bytes = std::fs::read(&path).unwrap();
    // The final 8 bytes are the checksum; the payload ends just before
    // them. Flip one payload byte so the checksum catches it.
    let idx = bytes.len() - 9;
    bytes[idx] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();
    assert_discarded(&store, &key, &path, "bit-flipped");
    let _ = std::fs::remove_dir_all(store.dir());
}

#[test]
fn wrong_snapshot_version_is_stale() {
    let (store, key, path) = published("stale-snapshot");
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[20..24].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    assert_discarded(&store, &key, &path, "stale-snapshot");
    let _ = std::fs::remove_dir_all(store.dir());
}

#[test]
fn wrong_store_format_is_stale() {
    let (store, key, path) = published("stale-format");
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[16..20].copy_from_slice(&(STORE_FORMAT_VERSION + 1).to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    assert_discarded(&store, &key, &path, "stale-format");
    let _ = std::fs::remove_dir_all(store.dir());
}

#[test]
fn garbage_magic_is_discarded() {
    let (store, key, path) = published("magic");
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[8..16].copy_from_slice(b"NOTMAGIC");
    std::fs::write(&path, &bytes).unwrap();
    assert_discarded(&store, &key, &path, "bad-magic");
    let _ = std::fs::remove_dir_all(store.dir());
}
