//! The `traces` figure: the four irregular workload families plus a
//! recorded-trace replay row, compared against their stride-only
//! baselines. Emits the machine-readable `BENCH_traces.json`.
//!
//! Declarative definition: `triangel_bench::figures` registry entry
//! `"traces"`, executed by the `triangel-harness` scheduler
//! (`--jobs N` controls worker threads; results are identical for any
//! value). Set `TRIANGEL_TRACE_FILE=<path>` to replay a specific
//! recording (see the `trace_record` devtool) instead of the
//! deterministic smoke trace.

fn main() {
    triangel_bench::figures::run_main("traces");
}
