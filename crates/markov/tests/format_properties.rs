//! Property-based tests on Markov metadata formats and the lookup table.

use proptest::prelude::*;
use triangel_cache::replacement::PolicyKind;
use triangel_markov::{
    LookupTable, LutAssociativity, MarkovTable, MarkovTableConfig, TargetFormat,
};
use triangel_types::{LineAddr, Pc};

fn table(format: TargetFormat) -> MarkovTable {
    let mut t = MarkovTable::new(MarkovTableConfig {
        sets: 128,
        max_ways: 4,
        format,
        tag_bits: 10,
        replacement: PolicyKind::Lru,
    });
    t.set_ways(4);
    t
}

proptest! {
    /// A freshly trained pair is immediately retrievable under every
    /// format, and the reconstructed target round-trips while its LUT
    /// slot is live (addresses bounded to 31 bits for Direct42's range).
    #[test]
    fn fresh_pair_roundtrips(
        prev in 0u64..(1 << 31),
        next in 0u64..(1 << 31),
        format_idx in 0usize..4,
    ) {
        let format = [
            TargetFormat::Direct42,
            TargetFormat::Ideal32,
            TargetFormat::triage_default(),
            TargetFormat::triage_10b_offset(),
        ][format_idx];
        let mut t = table(format);
        t.train(LineAddr::new(prev), LineAddr::new(next), Pc::new(4));
        let hit = t.lookup(LineAddr::new(prev)).expect("fresh entry");
        prop_assert_eq!(hit.target, LineAddr::new(next));
    }

    /// The LUT's index_for is stable (same upper -> same slot) until an
    /// eviction of that slot, and find() agrees with index_for.
    #[test]
    fn lut_index_stability(uppers in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut lut = LookupTable::new(LutAssociativity::Way16);
        for u in &uppers {
            let idx = lut.index_for(*u);
            prop_assert_eq!(lut.upper_at(idx), Some(*u));
            prop_assert_eq!(lut.find(*u), Some(idx));
        }
    }

    /// Occupancy of the LUT never exceeds 1024 and, under Way16, never
    /// exceeds 16 per congruence class.
    #[test]
    fn lut_capacity(uppers in prop::collection::vec(0u64..100_000, 1..500)) {
        let mut lut = LookupTable::new(LutAssociativity::Way16);
        for u in uppers {
            let _ = lut.index_for(u);
        }
        prop_assert!(lut.occupancy() <= 1024);
    }

    /// Training the same pair twice sets the confidence bit; training a
    /// different target first clears confidence, then replaces.
    #[test]
    fn confidence_protocol_invariant(
        x in 0u64..(1 << 31),
        y in 0u64..(1 << 31),
        z in 0u64..(1 << 31),
    ) {
        prop_assume!(y != z);
        let mut t = table(TargetFormat::Direct42);
        let (x, y, z) = (LineAddr::new(x), LineAddr::new(y), LineAddr::new(z));
        t.train(x, y, Pc::new(4));
        t.train(x, y, Pc::new(4));
        prop_assert!(t.lookup(x).unwrap().confidence);
        t.train(x, z, Pc::new(4));
        let h = t.lookup(x).unwrap();
        prop_assert_eq!(h.target, y, "confident target survives one conflict");
        prop_assert!(!h.confidence);
        t.train(x, z, Pc::new(4));
        prop_assert_eq!(t.lookup(x).unwrap().target, z);
    }

    /// Resizes never increase occupancy and never lose the ability to
    /// look up *recently retrained* pairs after re-activation.
    #[test]
    fn resize_roundtrip(
        pairs in prop::collection::vec((0u64..(1 << 20), 0u64..(1 << 20)), 1..100),
        shrink_to in 0usize..4,
    ) {
        let mut t = table(TargetFormat::Direct42);
        for (a, b) in &pairs {
            t.train(LineAddr::new(*a), LineAddr::new(*b), Pc::new(4));
        }
        let occ_before = t.occupancy();
        t.set_ways(shrink_to);
        prop_assert!(t.occupancy() <= occ_before);
        t.set_ways(4);
        // Retrain one pair; it must become visible again.
        let (a, b) = pairs[0];
        t.train(LineAddr::new(a), LineAddr::new(b), Pc::new(4));
        prop_assert!(t.lookup(LineAddr::new(a)).is_some());
    }
}
