//! Quickstart: run Triangel against the stride-only baseline on one
//! workload and print the paper's headline metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use triangel::sim::{Comparison, PrefetcherChoice, SimSession};
use triangel::workloads::spec::SpecWorkload;

fn main() {
    let workload = SpecWorkload::Xalan;
    println!(
        "Workload: {} (synthetic stand-in, see DESIGN.md)",
        workload.label()
    );

    // The baseline system already includes the degree-8 stride
    // prefetcher (Table 2 of the paper); every speedup is relative to it.
    println!("Running baseline (stride prefetcher only)...");
    let baseline = SimSession::builder()
        .workload(workload.generator(42))
        .warmup(800_000)
        .accesses(500_000)
        .sizing_window(150_000)
        .run()
        .unwrap();

    println!("Running Triangel...");
    let triangel = SimSession::builder()
        .workload(workload.generator(42))
        .warmup(800_000)
        .accesses(500_000)
        .sizing_window(150_000)
        .prefetcher(PrefetcherChoice::Triangel)
        .run()
        .unwrap();

    let c = Comparison::new(&baseline, &triangel);
    println!();
    println!("Baseline IPC:       {:.4}", baseline.ipc());
    println!("Triangel IPC:       {:.4}", triangel.ipc());
    println!("Speedup:            {:.3}x          (Fig. 10)", c.speedup);
    println!(
        "DRAM traffic:       {:.3}x baseline (Fig. 11)",
        c.dram_traffic
    );
    println!(
        "Prefetch accuracy:  {:.1}%           (Fig. 12)",
        100.0 * c.accuracy
    );
    println!(
        "Miss coverage:      {:.1}%           (Fig. 13)",
        100.0 * c.coverage
    );
    println!(
        "L3 accesses:        {:.3}x baseline (Fig. 14)",
        c.l3_accesses
    );
    println!("DRAM+L3 energy:     {:.3}x baseline (Fig. 15)", c.energy);
    println!("Markov partition:   {} of 16 L3 ways", triangel.markov_ways);
}
