//! Graph500 BFS: the paper's adversarial workload (Section 6.4).
//!
//! This is a real implementation, not a synthetic model: a Kronecker
//! (R-MAT) edge generator per the Graph500 specification, a CSR builder,
//! and a breadth-first search whose memory accesses are emitted as a
//! [`TraceSource`](crate::trace::TraceSource). Each BFS starts from a new
//! random root, so the edge/visited access order never repeats across
//! searches — there are no temporal correlations to learn, and the
//! working set of the s21 input (hundreds of MiB) dwarfs any Markov
//! table. The paper uses this to show Triage blindly maximizing its
//! partition while Triangel backs off.

mod bfs;
mod csr;
mod kronecker;

pub use bfs::BfsTrace;
pub use csr::Csr;
pub use kronecker::{generate_edges, KroneckerConfig};

use std::sync::Arc;

/// Configuration of a Graph500 problem instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Graph500Config {
    /// log2 of the vertex count.
    pub scale: u32,
    /// Edges per vertex.
    pub edge_factor: u32,
    /// Generator seed.
    pub seed: u64,
}

impl Graph500Config {
    /// The paper's small input: `s16 e10`, a ~7 MiB graph that fits the
    /// Markov table's range but shows too little repetition to be worth
    /// prefetching.
    pub fn s16_e10() -> Self {
        Graph500Config {
            scale: 16,
            edge_factor: 10,
            seed: 0x6_1234,
        }
    }

    /// The paper's large input: `s21 e10`, a ~700 MiB-class graph whose
    /// reuse distances exceed any on-chip Markov capacity.
    pub fn s21_e10() -> Self {
        Graph500Config {
            scale: 21,
            edge_factor: 10,
            seed: 0x6_5678,
        }
    }

    /// A tiny instance for unit tests.
    pub fn tiny() -> Self {
        Graph500Config {
            scale: 8,
            edge_factor: 8,
            seed: 0x6_9999,
        }
    }

    /// The paper's label for this input.
    pub fn label(&self) -> String {
        format!("s{} e{}", self.scale, self.edge_factor)
    }

    /// Generates the graph and wraps it in a traced BFS.
    pub fn build_trace(&self) -> BfsTrace {
        let edges = generate_edges(KroneckerConfig {
            scale: self.scale,
            edge_factor: self.edge_factor,
            seed: self.seed,
        });
        let csr = Arc::new(Csr::from_edges(1 << self.scale, &edges));
        BfsTrace::new(self.label(), csr, self.seed ^ 0xBF5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceSource;

    #[test]
    fn tiny_instance_generates_accesses() {
        let mut t = Graph500Config::tiny().build_trace();
        for _ in 0..10_000 {
            let a = t.next_access();
            assert!(a.vaddr.get() > 0);
        }
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Graph500Config::s16_e10().label(), "s16 e10");
        assert_eq!(Graph500Config::s21_e10().label(), "s21 e10");
    }
}
