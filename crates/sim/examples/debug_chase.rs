//! Diagnostic end-to-end check on the canonical pointer chase: a strict
//! dependent chain beyond cache capacity but within Markov reach, where
//! a temporal prefetcher must win decisively.
use triangel_sim::{Comparison, PrefetcherChoice, SimSession};
use triangel_types::{Addr, Pc};
use triangel_workloads::temporal::{TemporalStream, TemporalStreamConfig};

fn chase(len: usize) -> TemporalStream {
    TemporalStream::new(
        TemporalStreamConfig::pointer_chase("chase", Pc::new(0x40), Addr::new(1 << 30), len),
        7,
    )
}

fn main() {
    let base = SimSession::builder()
        .workload(chase(50_000))
        .warmup(300_000)
        .accesses(200_000)
        .sizing_window(60_000)
        .run()
        .unwrap();
    println!(
        "BASE ipc={:.4} dram={} l2miss={} l3acc={}",
        base.ipc(),
        base.dram_reads(),
        base.l2_demand_misses(),
        base.l3_accesses()
    );
    let tri = SimSession::builder()
        .workload(chase(50_000))
        .warmup(300_000)
        .accesses(200_000)
        .sizing_window(60_000)
        .prefetcher(PrefetcherChoice::Triangel)
        .run()
        .unwrap();
    println!(
        "TRI  ipc={:.4} dram={} l2miss={} l3acc={} ways={} pf={:?} core={:?}",
        tri.ipc(),
        tri.dram_reads(),
        tri.l2_demand_misses(),
        tri.l3_accesses(),
        tri.markov_ways,
        tri.cores[0].pf,
        tri.cores[0].core
    );
    let c = Comparison::new(&base, &tri);
    println!(
        "speedup={:.3} acc={:.3} cov={:.3} traffic={:.3}",
        c.speedup, c.accuracy, c.coverage, c.dram_traffic
    );
}
