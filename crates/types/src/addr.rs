//! Address newtypes.

use std::fmt;

/// Number of bytes in a cache line (64, as in the paper's configuration).
pub const CACHE_LINE_BYTES: u64 = 64;

/// Number of low address bits implied by cache-line alignment (6).
pub const LINE_OFFSET_BITS: u32 = 6;

/// Number of bytes in a (small) page, used by the virtual-to-physical
/// mapper in `triangel-workloads` (4 KiB).
pub const PAGE_BYTES: u64 = 4096;

/// Number of low address bits inside a page (12).
pub const PAGE_OFFSET_BITS: u32 = 12;

/// A byte address (physical unless a component states otherwise).
///
/// The paper treats addresses as physical "typically without loss of
/// generality" (Section 3.1); the simulator keeps the same convention and
/// performs virtual-to-physical translation in the workload layer.
///
/// # Examples
///
/// ```
/// use triangel_types::Addr;
///
/// let a = Addr::new(0x1040);
/// assert_eq!(a.line().index(), 0x41);
/// assert_eq!(a.page_number(), 0x1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates a byte address.
    pub const fn new(addr: u64) -> Self {
        Addr(addr)
    }

    /// Returns the raw byte address.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the cache line containing this address.
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_OFFSET_BITS)
    }

    /// Returns the page number containing this address.
    pub const fn page_number(self) -> u64 {
        self.0 >> PAGE_OFFSET_BITS
    }

    /// Returns the byte offset inside the containing page.
    pub const fn page_offset(self) -> u64 {
        self.0 & (PAGE_BYTES - 1)
    }

    /// Returns this address displaced by `delta` bytes.
    pub const fn offset(self, delta: i64) -> Self {
        Addr(self.0.wrapping_add(delta as u64))
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> u64 {
        a.0
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

/// A cache-line address: a byte address with the 6 line-offset bits removed.
///
/// All cache and prefetcher structures in the simulator operate on line
/// addresses; the Markov table stores pairs of them (Section 2 of the
/// paper).
///
/// # Examples
///
/// ```
/// use triangel_types::{Addr, LineAddr};
///
/// let l = LineAddr::new(0x41);
/// assert_eq!(l.byte_addr(), Addr::new(0x1040));
/// assert_eq!(l.next(), LineAddr::new(0x42));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a line index (byte address >> 6).
    pub const fn new(index: u64) -> Self {
        LineAddr(index)
    }

    /// Returns the line index.
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Returns the first byte address of the line.
    pub const fn byte_addr(self) -> Addr {
        Addr(self.0 << LINE_OFFSET_BITS)
    }

    /// Returns the immediately following line.
    pub const fn next(self) -> Self {
        LineAddr(self.0.wrapping_add(1))
    }

    /// Returns the line displaced by `delta` lines.
    pub const fn offset(self, delta: i64) -> Self {
        LineAddr(self.0.wrapping_add(delta as u64))
    }
}

impl From<u64> for LineAddr {
    fn from(v: u64) -> Self {
        LineAddr(v)
    }
}

impl From<LineAddr> for u64 {
    fn from(l: LineAddr) -> u64 {
        l.0
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0 << LINE_OFFSET_BITS)
    }
}

/// A program counter, used to localize prefetcher training (Section 2).
///
/// # Examples
///
/// ```
/// use triangel_types::Pc;
///
/// let pc = Pc::new(0x42);
/// assert_eq!(pc.get(), 0x42);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pc(u64);

impl Pc {
    /// Creates a program counter.
    pub const fn new(pc: u64) -> Self {
        Pc(pc)
    }

    /// Returns the raw program-counter value.
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl From<u64> for Pc {
    fn from(v: u64) -> Self {
        Pc(v)
    }
}

impl From<Pc> for u64 {
    fn from(p: Pc) -> u64 {
        p.0
    }
}

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pc:{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_roundtrip() {
        let a = Addr::new(0xDEAD_BEEF);
        let l = a.line();
        assert_eq!(l.byte_addr().get(), 0xDEAD_BEEF & !(CACHE_LINE_BYTES - 1));
        assert_eq!(l.byte_addr().line(), l);
    }

    #[test]
    fn page_math() {
        let a = Addr::new(0x1234_5678);
        assert_eq!(a.page_number(), 0x1234_5678 >> 12);
        assert_eq!(a.page_offset(), 0x678);
        assert_eq!(a.page_number() * PAGE_BYTES + a.page_offset(), a.get());
    }

    #[test]
    fn offsets_wrap_safely() {
        let l = LineAddr::new(0);
        assert_eq!(l.offset(-1).offset(1), l);
        let a = Addr::new(10);
        assert_eq!(a.offset(-4).get(), 6);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(Addr::new(0x40).to_string(), "0x40");
        assert_eq!(LineAddr::new(1).to_string(), "0x40");
        assert_eq!(Pc::new(0x10).to_string(), "pc:0x10");
    }

    #[test]
    fn lines_within_one_page() {
        assert_eq!(PAGE_BYTES / CACHE_LINE_BYTES, 64);
    }
}
