//! Irregular workload families from the temporal-prefetching
//! literature: key-value stores, allocator churn, database joins, and
//! web serving.
//!
//! The SPEC-like generators in [`crate::spec`] reproduce the paper's
//! figure rows; these four families cover the server-side irregular
//! access patterns the wider temporal-prefetching literature measures
//! against. Each is a deterministic [`TraceSource`] building block
//! with snapshot support, enum-dispatched through
//! [`StreamImpl`](crate::mix::StreamImpl) like the temporal building
//! blocks, and each family's [`IrregularWorkload::generator`] wraps
//! its streams in a [`WorkloadMix`].
//!
//! Every family keeps the property that makes temporal prefetching
//! interesting: addresses look random to a stride prefetcher, but
//! revisits replay the *same* per-object access sequence (a key's
//! bucket chain, a survivor-graph walk, a session's state walk), so a
//! Markov-style correlator can learn them.
//!
//! Address layout: family `i` owns the `(9 + i) << 40` region —
//! disjoint from the seven SPEC-like workloads (tops 1–7 of the
//! 40-bit space) and far below the engine's per-core tag bit (46).

use triangel_types::rng::SplitMix64;
use triangel_types::snap::{snap_check, SnapError, SnapReader, SnapWriter, Snapshot};
use triangel_types::{Addr, Pc};

use crate::mix::WorkloadMix;
use crate::temporal::RandomStream;
use crate::trace::{MemoryAccess, TraceSource};

const LINE: u64 = 64;

/// Multiplier for cheap bijective scrambles of power-of-two index
/// spaces (odd, so `i * SCRAMBLE & (n - 1)` is a permutation).
const SCRAMBLE: u64 = 0x9e37_79b9_7f4a_7c15;

fn at(base: u64, line: u64) -> Addr {
    Addr::new(base + line * LINE)
}

/// A zipfian key-value store: hash-bucket lookups followed by a
/// dependent walk of the key's entry chain.
///
/// Keys are drawn from an integer zipf (s = 1) distribution over a
/// power-of-two key space, then scrambled so hot keys scatter across
/// the table. Each lookup touches the key's bucket line, then `1 +
/// (key & 3)` dependent entry lines that are the same on every visit
/// — hot keys hand a temporal prefetcher exactly the re-walked chains
/// real caches exhibit.
#[derive(Debug)]
pub struct ZipfKvStream {
    name: String,
    pc_bucket: Pc,
    pc_entry: Pc,
    bucket_base: u64,
    entry_base: u64,
    n_keys: u64,
    cdf: Vec<u64>,
    total: u64,
    rng: SplitMix64,
    cur_key: u64,
    hop: u8,
    hops_left: u8,
}

impl ZipfKvStream {
    /// A store of `n_keys` keys (rounded up to a power of two, min 4)
    /// with buckets at `base` and entries in the next 4 GiB sub-region.
    pub fn new(name: impl Into<String>, pc: Pc, base: Addr, n_keys: u64, seed: u64) -> Self {
        let n_keys = n_keys.max(4).next_power_of_two();
        // Integer zipf (s = 1): weight of rank r is ~1/(r+1), scaled so
        // even the coldest rank keeps weight 1. Pure integer math —
        // byte-determinism must not hang on a libm rounding mode.
        let mut cdf = Vec::with_capacity(n_keys as usize);
        let mut total = 0u64;
        for rank in 0..n_keys {
            total += (1_000_000 / (rank + 1)).max(1);
            cdf.push(total);
        }
        ZipfKvStream {
            name: name.into(),
            pc_bucket: pc,
            pc_entry: Pc::new(pc.get() + 4),
            bucket_base: base.get(),
            entry_base: base.get() + (1 << 32),
            n_keys,
            cdf,
            total,
            rng: SplitMix64::new(seed ^ pc.get()),
            cur_key: 0,
            hop: 0,
            hops_left: 0,
        }
    }
}

impl TraceSource for ZipfKvStream {
    fn next_access(&mut self) -> MemoryAccess {
        if self.hops_left == 0 {
            let z = self.rng.next_below(self.total);
            let rank = self.cdf.partition_point(|&c| c <= z) as u64;
            let key = rank.wrapping_mul(SCRAMBLE) & (self.n_keys - 1);
            self.cur_key = key;
            self.hop = 0;
            self.hops_left = 1 + (key & 3) as u8;
            let bucket = key >> 2; // four keys chain per bucket
            return MemoryAccess::new(self.pc_bucket, at(self.bucket_base, bucket)).with_work(3);
        }
        let line = self.cur_key * 4 + u64::from(self.hop);
        self.hop += 1;
        self.hops_left -= 1;
        MemoryAccess::new(self.pc_entry, at(self.entry_base, line))
            .dependent()
            .with_work(2)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl ZipfKvStream {
    pub(crate) fn save_snap(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        self.rng.save(w)?;
        w.u64(self.cur_key);
        w.u8(self.hop);
        w.u8(self.hops_left);
        Ok(())
    }

    pub(crate) fn restore_snap(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.rng.restore(r)?;
        let key = r.u64()?;
        snap_check(key < self.n_keys, "kv key out of range")?;
        self.cur_key = key;
        self.hop = r.u8()?;
        self.hops_left = r.u8()?;
        snap_check(
            u64::from(self.hop) + u64::from(self.hops_left) <= 4,
            "kv chain cursor out of range",
        )?;
        Ok(())
    }
}

/// GC/allocator churn: bump allocation through a nursery with young-
/// object re-touches, punctuated by collections that re-walk the
/// survivor graph in a fixed order.
///
/// The mutator phase is mostly-sequential (nursery bump pointer) with
/// short-reach temporal reuse; each collection replays the identical
/// scrambled survivor walk, the classic repeating miss-chain that
/// temporal prefetchers memoize and stride prefetchers cannot.
#[derive(Debug)]
pub struct GcChurnStream {
    name: String,
    pc_alloc: Pc,
    pc_young: Pc,
    pc_scan: Pc,
    nursery_base: u64,
    nursery_lines: u64,
    survivor_base: u64,
    survivor_lines: u64,
    recent_window: u64,
    rng: SplitMix64,
    alloc_pos: u64,
    scan_left: u64,
}

impl GcChurnStream {
    /// A nursery of `nursery_lines` and a survivor set of
    /// `survivor_lines` (both rounded up to powers of two).
    pub fn new(
        name: impl Into<String>,
        pc: Pc,
        base: Addr,
        nursery_lines: u64,
        survivor_lines: u64,
        seed: u64,
    ) -> Self {
        GcChurnStream {
            name: name.into(),
            pc_alloc: pc,
            pc_young: Pc::new(pc.get() + 4),
            pc_scan: Pc::new(pc.get() + 8),
            nursery_base: base.get(),
            nursery_lines: nursery_lines.max(4).next_power_of_two(),
            survivor_base: base.get() + (1 << 32),
            survivor_lines: survivor_lines.max(4).next_power_of_two(),
            recent_window: 64,
            rng: SplitMix64::new(seed ^ pc.get()),
            alloc_pos: 0,
            scan_left: 0,
        }
    }
}

impl TraceSource for GcChurnStream {
    fn next_access(&mut self) -> MemoryAccess {
        if self.scan_left > 0 {
            // Collection: walk the survivor graph in a fixed scrambled
            // order, identical every cycle.
            let i = self.survivor_lines - self.scan_left;
            self.scan_left -= 1;
            let line = i.wrapping_mul(SCRAMBLE) & (self.survivor_lines - 1);
            return MemoryAccess::new(self.pc_scan, at(self.survivor_base, line))
                .dependent()
                .with_work(1);
        }
        if self.alloc_pos > 0 && self.rng.next_below(4) == 0 {
            // Re-touch a recently allocated young object.
            let reach = self.recent_window.min(self.alloc_pos);
            let back = 1 + self.rng.next_below(reach);
            let line = self.alloc_pos - back;
            return MemoryAccess::new(self.pc_young, at(self.nursery_base, line)).with_work(2);
        }
        let line = self.alloc_pos;
        self.alloc_pos += 1;
        if self.alloc_pos == self.nursery_lines {
            // Nursery full: reset the bump pointer and collect.
            self.alloc_pos = 0;
            self.scan_left = self.survivor_lines;
        }
        MemoryAccess::new(self.pc_alloc, at(self.nursery_base, line)).with_work(4)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl GcChurnStream {
    pub(crate) fn save_snap(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        self.rng.save(w)?;
        w.u64(self.alloc_pos);
        w.u64(self.scan_left);
        Ok(())
    }

    pub(crate) fn restore_snap(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.rng.restore(r)?;
        let alloc_pos = r.u64()?;
        snap_check(
            alloc_pos < self.nursery_lines,
            "nursery cursor out of range",
        )?;
        self.alloc_pos = alloc_pos;
        let scan_left = r.u64()?;
        snap_check(
            scan_left <= self.survivor_lines,
            "gc scan cursor out of range",
        )?;
        self.scan_left = scan_left;
        Ok(())
    }
}

/// A hash-join / index-probe kernel: a sequential scan of the outer
/// relation, a hash probe into the bucket array per tuple, and a
/// dependent bucket-chain walk on collisions.
///
/// The probe target is a fixed bijective scramble of the outer
/// cursor, so one pass over the outer relation produces a
/// random-looking probe sequence that repeats exactly on the next
/// pass — unlearnable by rank position, fully learnable by
/// correlation. The stream is purely counter-driven (no RNG).
#[derive(Debug)]
pub struct HashJoinStream {
    name: String,
    pc_scan: Pc,
    pc_probe: Pc,
    pc_chain: Pc,
    outer_base: u64,
    outer_lines: u64,
    bucket_base: u64,
    n_buckets: u64,
    chain_base: u64,
    outer_pos: u64,
    phase: u8,
    bucket: u64,
    chain_left: u8,
    chain_hop: u8,
}

impl HashJoinStream {
    /// A join of `outer_lines` outer tuples against `n_buckets` hash
    /// buckets (both rounded up to powers of two).
    pub fn new(
        name: impl Into<String>,
        pc: Pc,
        base: Addr,
        outer_lines: u64,
        n_buckets: u64,
    ) -> Self {
        HashJoinStream {
            name: name.into(),
            pc_scan: pc,
            pc_probe: Pc::new(pc.get() + 4),
            pc_chain: Pc::new(pc.get() + 8),
            outer_base: base.get(),
            outer_lines: outer_lines.max(4).next_power_of_two(),
            bucket_base: base.get() + (1 << 32),
            n_buckets: n_buckets.max(4).next_power_of_two(),
            chain_base: base.get() + (2 << 32),
            outer_pos: 0,
            phase: 0,
            bucket: 0,
            chain_left: 0,
            chain_hop: 0,
        }
    }
}

impl TraceSource for HashJoinStream {
    fn next_access(&mut self) -> MemoryAccess {
        match self.phase {
            0 => {
                // Scan the next outer tuple; its join key decides the
                // probe target.
                let line = self.outer_pos;
                self.bucket = self.outer_pos.wrapping_mul(SCRAMBLE) & (self.n_buckets - 1);
                self.outer_pos = (self.outer_pos + 1) & (self.outer_lines - 1);
                self.phase = 1;
                MemoryAccess::new(self.pc_scan, at(self.outer_base, line)).with_work(3)
            }
            1 => {
                // Probe the bucket header; every third bucket chains.
                self.chain_left = (self.bucket % 3) as u8;
                self.chain_hop = 0;
                self.phase = if self.chain_left > 0 { 2 } else { 0 };
                MemoryAccess::new(self.pc_probe, at(self.bucket_base, self.bucket)).with_work(2)
            }
            _ => {
                let line = self.bucket * 2 + u64::from(self.chain_hop);
                self.chain_hop += 1;
                self.chain_left -= 1;
                if self.chain_left == 0 {
                    self.phase = 0;
                }
                MemoryAccess::new(self.pc_chain, at(self.chain_base, line))
                    .dependent()
                    .with_work(1)
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl HashJoinStream {
    pub(crate) fn save_snap(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.u64(self.outer_pos);
        w.u8(self.phase);
        w.u64(self.bucket);
        w.u8(self.chain_left);
        w.u8(self.chain_hop);
        Ok(())
    }

    pub(crate) fn restore_snap(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        let outer_pos = r.u64()?;
        snap_check(outer_pos < self.outer_lines, "outer cursor out of range")?;
        self.outer_pos = outer_pos;
        let phase = r.u8()?;
        snap_check(phase <= 2, "join phase out of range")?;
        self.phase = phase;
        let bucket = r.u64()?;
        snap_check(bucket < self.n_buckets, "bucket out of range")?;
        self.bucket = bucket;
        self.chain_left = r.u8()?;
        self.chain_hop = r.u8()?;
        snap_check(
            u64::from(self.chain_left) + u64::from(self.chain_hop) <= 2,
            "chain cursor out of range",
        )?;
        Ok(())
    }
}

/// A web-serving session mix: skewed session selection, a dependent
/// per-session state walk, a hot fragment cache, and occasional cold
/// misses.
///
/// Session popularity is skewed (minimum of two uniform draws), and a
/// session's state walk touches the same lines in the same order on
/// every request it serves — re-walked chains again, interleaved with
/// an easily-strided fragment scan and unlearnable cold traffic.
#[derive(Debug)]
pub struct WebSessionStream {
    name: String,
    pc_sess: Pc,
    pc_frag: Pc,
    pc_cold: Pc,
    session_base: u64,
    n_sessions: u64,
    sess_lines: u64,
    frag_base: u64,
    frag_lines: u64,
    cold_base: u64,
    cold_lines: u64,
    rng: SplitMix64,
    cur_session: u64,
    step: u64,
    walk_left: u64,
    frag_pos: u64,
}

impl WebSessionStream {
    /// A pool of `n_sessions` sessions (rounded up to a power of two),
    /// each with a 4-line state object.
    pub fn new(name: impl Into<String>, pc: Pc, base: Addr, n_sessions: u64, seed: u64) -> Self {
        WebSessionStream {
            name: name.into(),
            pc_sess: pc,
            pc_frag: Pc::new(pc.get() + 4),
            pc_cold: Pc::new(pc.get() + 8),
            session_base: base.get(),
            n_sessions: n_sessions.max(4).next_power_of_two(),
            sess_lines: 4,
            frag_base: base.get() + (1 << 32),
            frag_lines: 512,
            cold_base: base.get() + (2 << 32),
            cold_lines: 1 << 20,
            rng: SplitMix64::new(seed ^ pc.get()),
            cur_session: 0,
            step: 0,
            walk_left: 0,
            frag_pos: 0,
        }
    }
}

impl TraceSource for WebSessionStream {
    fn next_access(&mut self) -> MemoryAccess {
        if self.walk_left > 0 {
            // Walk the current session's state object, same order on
            // every request.
            let line = self.cur_session * self.sess_lines + self.step;
            self.step += 1;
            self.walk_left -= 1;
            return MemoryAccess::new(self.pc_sess, at(self.session_base, line))
                .dependent()
                .with_work(2);
        }
        if self.rng.next_below(8) == 0 {
            // Cold miss: logging, a cache fill, an evicted object.
            let line = self.rng.next_below(self.cold_lines);
            return MemoryAccess::new(self.pc_cold, at(self.cold_base, line)).with_work(1);
        }
        // New request: serve a template fragment, then walk the
        // session picked with popularity skew (min of two draws).
        let a = self.rng.next_below(self.n_sessions);
        let b = self.rng.next_below(self.n_sessions);
        self.cur_session = a.min(b);
        self.step = 0;
        self.walk_left = self.sess_lines;
        let line = self.frag_pos;
        self.frag_pos = (self.frag_pos + 1) & (self.frag_lines - 1);
        MemoryAccess::new(self.pc_frag, at(self.frag_base, line)).with_work(3)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl WebSessionStream {
    pub(crate) fn save_snap(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        self.rng.save(w)?;
        w.u64(self.cur_session);
        w.u64(self.step);
        w.u64(self.walk_left);
        w.u64(self.frag_pos);
        Ok(())
    }

    pub(crate) fn restore_snap(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.rng.restore(r)?;
        let cur = r.u64()?;
        snap_check(cur < self.n_sessions, "session out of range")?;
        self.cur_session = cur;
        self.step = r.u64()?;
        self.walk_left = r.u64()?;
        snap_check(
            self.step + self.walk_left <= self.sess_lines,
            "session walk cursor out of range",
        )?;
        let frag = r.u64()?;
        snap_check(frag < self.frag_lines, "fragment cursor out of range")?;
        self.frag_pos = frag;
        Ok(())
    }
}

/// The four irregular workload families, mirroring
/// [`SpecWorkload`](crate::spec::SpecWorkload)'s shape so harness
/// rows, figures, and devtools can enumerate them the same way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IrregularWorkload {
    /// Zipfian key-value store lookups.
    ZipfKv,
    /// GC/allocator churn with survivor-graph re-walks.
    GcChurn,
    /// Hash-join / index-probe database kernel.
    HashJoin,
    /// Web-serving session mix.
    WebServe,
}

impl IrregularWorkload {
    /// Every family, in figure-row order.
    pub const ALL: [IrregularWorkload; 4] = [
        IrregularWorkload::ZipfKv,
        IrregularWorkload::GcChurn,
        IrregularWorkload::HashJoin,
        IrregularWorkload::WebServe,
    ];

    /// The family's display label.
    pub fn label(&self) -> &'static str {
        match self {
            IrregularWorkload::ZipfKv => "ZipfKV",
            IrregularWorkload::GcChurn => "GCChurn",
            IrregularWorkload::HashJoin => "HashJoin",
            IrregularWorkload::WebServe => "WebServe",
        }
    }

    /// Looks a family up by its [`IrregularWorkload::label`].
    pub fn from_label(label: &str) -> Option<Self> {
        IrregularWorkload::ALL
            .into_iter()
            .find(|wl| wl.label() == label)
    }

    fn index(&self) -> u64 {
        IrregularWorkload::ALL
            .iter()
            .position(|w| w == self)
            .expect("listed in ALL") as u64
    }

    /// The family's deterministic generator at `seed`: its main stream
    /// mixed with a sliver of unlearnable background noise.
    pub fn generator(&self, seed: u64) -> WorkloadMix {
        let index = self.index();
        let base = Addr::new((9 + index) << 40);
        let noise_base = Addr::new(base.get() + (3 << 32));
        let pc = Pc::new((9 + index) << 12);
        let pc_noise = Pc::new(pc.get() + 0x100);
        let seed = seed ^ (index << 8);
        let mut mix = WorkloadMix::new(self.label(), seed);
        match self {
            IrregularWorkload::ZipfKv => {
                mix.add_stream(ZipfKvStream::new("kv_lookup", pc, base, 4096, seed), 7);
            }
            IrregularWorkload::GcChurn => {
                mix.add_stream(
                    GcChurnStream::new("gc_mutate", pc, base, 2048, 512, seed),
                    7,
                );
            }
            IrregularWorkload::HashJoin => {
                mix.add_stream(HashJoinStream::new("join_probe", pc, base, 4096, 1024), 7);
            }
            IrregularWorkload::WebServe => {
                mix.add_stream(
                    WebSessionStream::new("web_request", pc, base, 1024, seed),
                    7,
                );
            }
        }
        mix.add_stream(
            RandomStream::new("noise", pc_noise, noise_base, 1 << 18, false, seed ^ 0x5e55),
            1,
        );
        mix
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_families_generate_in_their_regions() {
        for (i, wl) in IrregularWorkload::ALL.iter().enumerate() {
            let mut g = wl.generator(42);
            for _ in 0..2000 {
                let a = g.next_access();
                assert_eq!(
                    a.vaddr.get() >> 40,
                    9 + i as u64,
                    "{} strayed out of its region",
                    wl.label()
                );
            }
        }
    }

    #[test]
    fn generators_are_deterministic() {
        for wl in IrregularWorkload::ALL {
            let mut a = wl.generator(7);
            let mut b = wl.generator(7);
            for _ in 0..500 {
                assert_eq!(a.next_access(), b.next_access());
            }
        }
    }

    #[test]
    fn labels_round_trip() {
        for wl in IrregularWorkload::ALL {
            assert_eq!(IrregularWorkload::from_label(wl.label()), Some(wl));
        }
        assert_eq!(IrregularWorkload::from_label("Mcf"), None);
    }

    #[test]
    fn revisits_replay_identical_chains() {
        // The property temporal prefetchers need: the dependent
        // accesses that follow a given lead access repeat exactly.
        // A chain's first entry line identifies its key (line = key*4),
        // so revisits of the same key must replay the same lines.
        let mut g = ZipfKvStream::new("kv", Pc::new(1 << 12), Addr::new(9 << 40), 256, 3);
        let mut chains: std::collections::HashMap<u64, Vec<u64>> = std::collections::HashMap::new();
        let mut chain = Vec::new();
        for _ in 0..20_000 {
            let a = g.next_access();
            if a.dependent {
                chain.push(a.vaddr.get());
            } else if let Some(&first) = chain.first() {
                match chains.entry(first) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        assert_eq!(e.get(), &chain, "chain diverged for key at {first:#x}");
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(std::mem::take(&mut chain));
                    }
                }
                chain.clear();
            }
        }
        assert!(chains.len() > 16, "too few distinct keys visited");
    }

    #[test]
    fn gc_collections_rewalk_survivors_identically() {
        let mut g = GcChurnStream::new("gc", Pc::new(2 << 12), Addr::new(10 << 40), 256, 64, 5);
        let mut walks: Vec<Vec<u64>> = Vec::new();
        let mut cur: Option<Vec<u64>> = None;
        for _ in 0..10_000 {
            let a = g.next_access();
            let is_scan = a.pc.get() == (2 << 12) + 8;
            match (&mut cur, is_scan) {
                (Some(w), true) => w.push(a.vaddr.get()),
                (Some(_), false) => walks.push(cur.take().unwrap()),
                (None, true) => cur = Some(vec![a.vaddr.get()]),
                (None, false) => {}
            }
        }
        assert!(walks.len() >= 2, "expected at least two collections");
        for w in &walks[1..] {
            assert_eq!(w, &walks[0], "survivor walk order changed between GCs");
        }
        assert_eq!(walks[0].len(), 64);
    }
}
