//! The Triangel temporal prefetcher (Ainsworth & Mukhanov, ISCA 2024).
//!
//! Triangel extends Triage with sampling-based aggression control
//! (Section 4 of the paper):
//!
//! * [`TrainingTable`] — Triage's per-PC table extended with
//!   `LastAddr[1]`, a local timestamp, `ReuseConf`, two `PatternConf`
//!   counters, `SampleRate`, and the lookahead bit (Fig. 5).
//! * [`HistorySampler`] — randomly samples trained pairs to observe
//!   long-term reuse (is the pattern small enough for the Markov table?)
//!   and pattern repetition (will the prefetch be accurate?)
//!   (Section 4.4).
//! * [`SecondChanceSampler`] — catches inexact sequences whose prefetches
//!   would still be used before eviction (Section 4.4.2).
//! * [`MetadataReuseBuffer`] — a 256-entry buffer that removes redundant
//!   L3 Markov lookups from overlapping high-degree walks and suppresses
//!   no-change updates (Section 4.6).
//! * [`SetDueller`] — models a full-size L3 and a full-size Markov table
//!   on 64 sampled sets to pick the partition split that maximizes hits
//!   (Section 4.7).
//! * [`Triangel`] — the prefetcher itself, with per-feature toggles
//!   ([`TriangelFeatures`]) matching the Fig. 20 ablation series.
//!
//! # Examples
//!
//! ```
//! use triangel_core::{Triangel, TriangelConfig};
//! use triangel_prefetch::Prefetcher;
//!
//! let pf = Triangel::new(TriangelConfig::paper_default());
//! assert_eq!(pf.name(), "Triangel");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod history_sampler;
mod prefetcher;
mod reuse_buffer;
mod second_chance;
mod set_dueller;
mod sizing;
mod training;

pub use config::{SizingMechanism, TriangelConfig, TriangelFeatures};
pub use history_sampler::{HistorySampler, SampleVerdict};
pub use prefetcher::Triangel;
pub use reuse_buffer::MetadataReuseBuffer;
pub use second_chance::{ScsOutcome, SecondChanceSampler};
pub use set_dueller::SetDueller;
pub use sizing::{structure_sizes, StructureSize};
pub use training::{TrainingEntry, TrainingTable};
