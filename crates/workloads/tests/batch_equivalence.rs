//! Batched-vs-per-access equivalence for every shipped generator.
//!
//! The `TraceSource::fill` contract is strict: whatever the ring
//! capacity and however fills interleave with partial drains, the
//! concatenated batched stream must equal the stream repeated
//! `next_access` calls produce. These properties pin that for the
//! seven SPEC-like workloads (`WorkloadMix` overrides `fill`), the
//! four irregular families, the temporal/strided/random building
//! blocks and `RecordedTrace` (which override or inherit the
//! default), the file-trace replayer, and the Graph500 BFS trace.

use proptest::prelude::*;
use std::sync::Arc;

use triangel_types::{Addr, Pc};
use triangel_workloads::graph500::{BfsTrace, Graph500Config};
use triangel_workloads::irregular::IrregularWorkload;
use triangel_workloads::spec::SpecWorkload;
use triangel_workloads::temporal::{
    RandomStream, StridedStream, TemporalStream, TemporalStreamConfig,
};
use triangel_workloads::trace::{AccessRing, MemoryAccess, RecordedTrace, TraceSource};
use triangel_workloads::trace_file::EndPolicy;

/// Drains `reference` and `batched` in lockstep for `total` accesses,
/// popping and refilling the ring in a deterministic but irregular
/// pattern derived from `cap`, and asserts exact equality.
fn assert_equivalent(
    reference: &mut dyn TraceSource,
    batched: &mut dyn TraceSource,
    cap: usize,
    total: usize,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let mut ring = AccessRing::with_capacity(cap);
    let mut seen = 0usize;
    // Alternate partial drains with top-ups so fills hit rings in
    // every state (empty, part-full, compacting).
    let mut step = 1usize;
    while seen < total {
        batched.fill(&mut ring);
        let drain = (step % cap).max(1).min(ring.len());
        for _ in 0..drain {
            let got = ring.pop().expect("ring drained past fill");
            let want = reference.next_access();
            prop_assert_eq!(got, want, "diverged at access {} (cap {})", seen, cap);
            seen += 1;
            if seen == total {
                break;
            }
        }
        step += 1;
    }
    Ok(())
}

proptest! {
    #[test]
    fn spec_workloads_fill_equals_next(
        cap in 1usize..130,
        seed in proptest::arbitrary::any::<u64>(),
        wl_idx in 0usize..7,
    ) {
        let wl = SpecWorkload::ALL[wl_idx];
        let mut reference = wl.generator(seed);
        let mut batched = wl.generator(seed);
        assert_equivalent(&mut reference, &mut batched, cap, 800)?;
    }

    #[test]
    fn irregular_workloads_fill_equals_next(
        cap in 1usize..130,
        seed in proptest::arbitrary::any::<u64>(),
        wl_idx in 0usize..4,
    ) {
        let wl = IrregularWorkload::ALL[wl_idx];
        let mut reference = wl.generator(seed);
        let mut batched = wl.generator(seed);
        assert_equivalent(&mut reference, &mut batched, cap, 800)?;
    }

    #[test]
    fn file_trace_fill_equals_next(
        cap in 1usize..130,
        seed in proptest::arbitrary::any::<u64>(),
        records in 1u64..200,
    ) {
        // Record a short trace, then drain two replayers (looping
        // well past the end) through different ring shapes.
        let dir = std::env::temp_dir()
            .join(format!("triangel-batch-eq-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("t{records}-{seed:x}.trc"));
        let mut src = IrregularWorkload::ZipfKv.generator(seed);
        triangel_workloads::trace_file::record_trace(&mut src, records, &path).unwrap();
        let mut reference =
            triangel_workloads::trace_file::FileTrace::open(&path, EndPolicy::Loop).unwrap();
        let mut batched =
            triangel_workloads::trace_file::FileTrace::open(&path, EndPolicy::Loop).unwrap();
        assert_equivalent(&mut reference, &mut batched, cap, 700)?;
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn temporal_building_blocks_fill_equals_next(
        cap in 1usize..130,
        seed in proptest::arbitrary::any::<u64>(),
        kind in 0usize..4,
    ) {
        let build = |seed: u64| -> Box<dyn TraceSource + Send> {
            match kind {
                0 => Box::new(TemporalStream::new(
                    TemporalStreamConfig {
                        exactness: 0.7,
                        shuffle_window: 6,
                        noise: 0.05,
                        drift: 0.01,
                        ..TemporalStreamConfig::pointer_chase(
                            "loose",
                            Pc::new(0x40),
                            Addr::new(1 << 30),
                            256,
                        )
                    },
                    seed,
                )),
                1 => Box::new(StridedStream::new(
                    "scan",
                    Pc::new(0x44),
                    Addr::new(2 << 30),
                    3,
                    10_000,
                )),
                2 => Box::new(RandomStream::new(
                    "noise",
                    Pc::new(0x48),
                    Addr::new(3 << 30),
                    4096,
                    seed.is_multiple_of(2),
                    seed,
                )),
                _ => {
                    let accesses: Vec<MemoryAccess> = (0..37u64)
                        .map(|i| MemoryAccess::new(Pc::new(0x4C), Addr::new((4 << 30) + i * 64)))
                        .collect();
                    Box::new(RecordedTrace::new("replay", accesses))
                }
            }
        };
        let mut reference = build(seed);
        let mut batched = build(seed);
        assert_equivalent(reference.as_mut(), batched.as_mut(), cap, 700)?;
    }
}

#[test]
fn graph500_bfs_fill_equals_next() {
    // One tiny graph shared across ring sizes (graph construction
    // dominates, so this stays a plain test rather than a property).
    let graph = Graph500Config::tiny().build_trace().graph_handle();
    for cap in [1usize, 3, 64, 127] {
        let mut reference = BfsTrace::new("g", Arc::clone(&graph), 5);
        let mut batched = BfsTrace::new("g", Arc::clone(&graph), 5);
        let mut ring = AccessRing::with_capacity(cap);
        for i in 0..2_000 {
            if ring.is_empty() {
                batched.fill(&mut ring);
            }
            assert_eq!(
                ring.pop().unwrap(),
                reference.next_access(),
                "BFS diverged at access {i} (cap {cap})"
            );
        }
    }
}
