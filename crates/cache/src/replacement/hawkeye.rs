//! HawkEye replacement (Jain & Lin, ISCA 2016).
//!
//! HawkEye reconstructs what Belady's optimal policy *would have done* on
//! a sample of sets (OPTgen), classifies the PCs that load lines as
//! cache-friendly or cache-averse, and inserts lines accordingly. Triage
//! uses it to prioritize frequently-reused Markov-table entries
//! (Section 3.3 of the Triangel paper); the paper also measures how little
//! it buys over LRU at full table sizes, which our `sec33_replacement`
//! experiment reproduces.

use std::collections::VecDeque;

use super::{AccessMeta, ReplacementPolicy, WayMask};
use triangel_types::{xor_fold, LineAddr, Pc, SaturatingCounter};

const RRPV_MAX: u8 = 7; // 3-bit RRPVs, as in the HawkEye paper.
const RRPV_AGE_CAP: u8 = 6; // Friendly lines age up to 6, never to 7.

/// Tuning parameters for [`HawkEye`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HawkEyeConfig {
    /// Number of sets sampled for OPTgen (64 in the papers).
    pub sampled_sets: usize,
    /// OPTgen history window, in accesses per sampled set, as a multiple
    /// of associativity (8x in the paper).
    pub history_factor: usize,
    /// log2 of the PC predictor table size (13 -> 8192 entries).
    pub predictor_index_bits: u32,
}

impl Default for HawkEyeConfig {
    fn default() -> Self {
        HawkEyeConfig {
            sampled_sets: 64,
            history_factor: 8,
            predictor_index_bits: 13,
        }
    }
}

/// One OPTgen-sampled set: a sliding access history plus the occupancy
/// vector Belady's policy would have produced.
#[derive(Debug, Clone, Default)]
struct OptGenSet {
    /// (line, pc-hash) per access, oldest first.
    history: VecDeque<(LineAddr, u64)>,
    /// Occupancy per access quantum, aligned with `history`.
    occupancy: VecDeque<u8>,
}

/// HawkEye: OPTgen-sampled, PC-classified, RRIP-backed replacement.
#[derive(Debug)]
pub struct HawkEye {
    ways: usize,
    cfg: HawkEyeConfig,
    sample_stride: usize,
    window: usize,
    rrpv: Vec<u8>,
    loader: Vec<u64>, // pc-hash that loaded each (set, way)
    predictor: Vec<SaturatingCounter>,
    samples: Vec<OptGenSet>,
}

impl HawkEye {
    /// Creates HawkEye state for `sets x ways`.
    pub fn new(sets: usize, ways: usize, cfg: HawkEyeConfig) -> Self {
        assert!(sets > 0 && ways > 0);
        let sample_stride = (sets / cfg.sampled_sets.max(1)).max(1);
        let sampled = sets.div_ceil(sample_stride);
        let predictor_len = 1usize << cfg.predictor_index_bits;
        let _ = sets;
        HawkEye {
            ways,
            cfg,
            sample_stride,
            window: cfg.history_factor * ways,
            rrpv: vec![RRPV_MAX; sets * ways],
            loader: vec![0; sets * ways],
            predictor: vec![SaturatingCounter::with_initial(7, 4); predictor_len],
            samples: vec![OptGenSet::default(); sampled],
        }
    }

    fn pc_hash(&self, meta: &AccessMeta) -> u64 {
        let pc = meta.pc.unwrap_or(Pc::new(0)).get();
        // Separate prefetch-triggered fills from demand fills, as HawkEye
        // does, so a PC can be friendly for demands yet averse when its
        // prefetches pollute.
        let tagged = pc ^ ((meta.is_prefetch as u64) << 62);
        xor_fold(tagged, self.cfg.predictor_index_bits)
    }

    fn is_friendly(&self, pc_hash: u64) -> bool {
        self.predictor[pc_hash as usize].get() >= 4
    }

    fn sample_index(&self, set: usize) -> Option<usize> {
        if set.is_multiple_of(self.sample_stride) {
            Some(set / self.sample_stride)
        } else {
            None
        }
    }

    /// Feeds one access into OPTgen and trains the predictor with the
    /// verdict Belady's policy would give for the *previous* occurrence.
    fn optgen_access(&mut self, set: usize, meta: &AccessMeta) {
        let Some(si) = self.sample_index(set) else {
            return;
        };
        let pc_hash = self.pc_hash(meta);
        let ways = self.ways as u8;
        let window = self.window;
        let sample = &mut self.samples[si];

        // Look back for the previous access to this line.
        let prev = sample
            .history
            .iter()
            .rposition(|(line, _)| *line == meta.line);
        if let Some(pos) = prev {
            let interval = pos..sample.history.len();
            let fits = interval.clone().all(|i| sample.occupancy[i] < ways);
            let loader_hash = sample.history[pos].1;
            if fits {
                for i in interval {
                    sample.occupancy[i] += 1;
                }
                self.predictor[loader_hash as usize].inc();
            } else {
                self.predictor[loader_hash as usize].dec();
            }
        }

        sample.history.push_back((meta.line, pc_hash));
        sample.occupancy.push_back(0);
        while sample.history.len() > window {
            sample.history.pop_front();
            sample.occupancy.pop_front();
        }
    }
}

impl ReplacementPolicy for HawkEye {
    fn on_hit(&mut self, set: usize, way: usize, meta: &AccessMeta) {
        self.optgen_access(set, meta);
        let pc_hash = self.pc_hash(meta);
        let i = set * self.ways + way;
        self.rrpv[i] = if self.is_friendly(pc_hash) {
            0
        } else {
            RRPV_MAX
        };
        self.loader[i] = pc_hash;
    }

    fn on_fill(&mut self, set: usize, way: usize, meta: &AccessMeta) {
        self.optgen_access(set, meta);
        let pc_hash = self.pc_hash(meta);
        let friendly = self.is_friendly(pc_hash);
        if friendly {
            // Age the other friendly lines so older friendlies become
            // evictable before newer ones, without ever reaching
            // cache-averse priority.
            for w in 0..self.ways {
                if w == way {
                    continue;
                }
                let j = set * self.ways + w;
                if self.rrpv[j] < RRPV_AGE_CAP {
                    self.rrpv[j] += 1;
                }
            }
        }
        let i = set * self.ways + way;
        self.rrpv[i] = if friendly { 0 } else { RRPV_MAX };
        self.loader[i] = pc_hash;
    }

    fn victim(&mut self, set: usize, mask: WayMask) -> usize {
        assert!(mask != 0, "victim called with empty way mask");
        // Prefer a cache-averse line.
        if let Some(w) = (0..self.ways)
            .filter(|w| mask & (1 << w) != 0)
            .find(|w| self.rrpv[set * self.ways + w] == RRPV_MAX)
        {
            return w;
        }
        // Otherwise evict the oldest friendly line and detrain its loader:
        // OPT would have kept it, so the prediction was over-optimistic.
        let w = (0..self.ways)
            .filter(|w| mask & (1 << w) != 0)
            .max_by_key(|w| self.rrpv[set * self.ways + w])
            .expect("mask selects at least one way");
        let loader = self.loader[set * self.ways + w];
        self.predictor[loader as usize].dec();
        w
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        let i = set * self.ways + way;
        self.rrpv[i] = RRPV_MAX;
        self.loader[i] = 0;
    }
}

impl triangel_types::snap::Snapshot for HawkEye {
    fn save(
        &self,
        w: &mut triangel_types::snap::SnapWriter,
    ) -> Result<(), triangel_types::snap::SnapError> {
        w.usize(self.rrpv.len());
        for v in &self.rrpv {
            w.u8(*v);
        }
        w.usize(self.loader.len());
        for v in &self.loader {
            w.u64(*v);
        }
        w.usize(self.predictor.len());
        for c in &self.predictor {
            c.save(w)?;
        }
        w.usize(self.samples.len());
        for s in &self.samples {
            w.usize(s.history.len());
            for (line, pc_hash) in &s.history {
                w.u64(line.index());
                w.u64(*pc_hash);
            }
            w.usize(s.occupancy.len());
            for o in &s.occupancy {
                w.u8(*o);
            }
        }
        Ok(())
    }

    fn restore(
        &mut self,
        r: &mut triangel_types::snap::SnapReader,
    ) -> Result<(), triangel_types::snap::SnapError> {
        r.expect_len(self.rrpv.len(), "HawkEye RRPVs")?;
        for v in &mut self.rrpv {
            *v = r.u8()?;
        }
        r.expect_len(self.loader.len(), "HawkEye loaders")?;
        for v in &mut self.loader {
            *v = r.u64()?;
        }
        r.expect_len(self.predictor.len(), "HawkEye predictor")?;
        for c in &mut self.predictor {
            c.restore(r)?;
        }
        r.expect_len(self.samples.len(), "HawkEye samples")?;
        for s in &mut self.samples {
            let n = r.usize()?;
            triangel_types::snap::snap_check(n <= self.window, "OPTgen history above window")?;
            s.history.clear();
            for _ in 0..n {
                let line = LineAddr::new(r.u64()?);
                let pc_hash = r.u64()?;
                s.history.push_back((line, pc_hash));
            }
            let n = r.usize()?;
            triangel_types::snap::snap_check(
                n == s.history.len(),
                "OPTgen occupancy misaligned with history",
            )?;
            s.occupancy.clear();
            for _ in 0..n {
                s.occupancy.push_back(r.u8()?);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(line: u64, pc: u64) -> AccessMeta {
        AccessMeta::demand(LineAddr::new(line), Some(Pc::new(pc)))
    }

    fn small() -> HawkEye {
        HawkEye::new(
            1,
            4,
            HawkEyeConfig {
                sampled_sets: 1,
                history_factor: 8,
                predictor_index_bits: 8,
            },
        )
    }

    #[test]
    fn reused_pc_becomes_friendly() {
        let mut h = small();
        // PC 0x10 loads lines that are promptly reused within capacity.
        for round in 0..20 {
            for line in 0..3u64 {
                h.on_fill(0, (line % 4) as usize, &demand(line, 0x10));
            }
            let _ = round;
        }
        let hash = h.pc_hash(&demand(0, 0x10));
        assert!(h.is_friendly(hash), "reused PC should classify friendly");
    }

    #[test]
    fn streaming_pc_becomes_averse() {
        let mut h = small();
        // PC 0x20 thrashes: 16 lines cycled through 4 ways. The reuse
        // distance (16) is inside the OPTgen window (32) but far beyond
        // what Belady could keep in 4 ways, so most intervals do not fit.
        for line in 0..200u64 {
            h.on_fill(0, (line % 4) as usize, &demand(line % 16, 0x20));
        }
        let hash = h.pc_hash(&demand(0, 0x20));
        assert!(!h.is_friendly(hash), "streaming PC should classify averse");
    }

    #[test]
    fn averse_fills_are_evicted_first() {
        let mut h = small();
        // Manually force predictions: friendly loads in ways 0..3, then an
        // averse fill in way 3 must be the next victim.
        let friendly = h.pc_hash(&demand(0, 0x1)) as usize;
        let averse = h.pc_hash(&demand(0, 0x2)) as usize;
        for _ in 0..10 {
            h.predictor[friendly].inc();
            h.predictor[averse].dec();
        }
        for w in 0..3 {
            h.on_fill(0, w, &demand(w as u64, 0x1));
        }
        h.on_fill(0, 3, &demand(99, 0x2));
        assert_eq!(h.victim(0, 0b1111), 3);
    }

    #[test]
    fn friendly_eviction_detrains_loader() {
        let mut h = small();
        let hash = h.pc_hash(&demand(0, 0x5)) as usize;
        for _ in 0..10 {
            h.predictor[hash].inc();
        }
        let before = h.predictor[hash].get();
        for w in 0..4 {
            h.on_fill(0, w, &demand(w as u64, 0x5));
        }
        let _ = h.victim(0, 0b1111);
        assert!(
            h.predictor[hash].get() < before,
            "evicting a friendly line must detrain"
        );
    }

    #[test]
    fn prefetch_and_demand_pcs_are_distinct() {
        let h = small();
        let d = h.pc_hash(&AccessMeta::demand(LineAddr::new(0), Some(Pc::new(0x30))));
        let p = h.pc_hash(&AccessMeta::prefetch(LineAddr::new(0), Some(Pc::new(0x30))));
        assert_ne!(d, p);
    }

    #[test]
    fn unsampled_sets_do_no_optgen_work() {
        let mut h = HawkEye::new(
            128,
            4,
            HawkEyeConfig {
                sampled_sets: 2,
                history_factor: 8,
                predictor_index_bits: 8,
            },
        );
        // Set 1 is not sampled (stride 64); history must stay empty.
        h.on_fill(1, 0, &demand(7, 0x40));
        assert!(h.samples.iter().map(|s| s.history.len()).sum::<usize>() == 0);
        h.on_fill(64, 0, &demand(7, 0x40));
        assert_eq!(h.samples[1].history.len(), 1);
    }
}
