//! The N-core timing model's determinism bar.
//!
//! The contended configuration ([`SystemConfig::paper_n_core`]: banked
//! shared LLC, per-channel DRAM bandwidth, MSHR back-pressure,
//! cycle-ordered core stepping) must be exactly as deterministic as
//! the legacy model it generalizes:
//!
//! * the {1, 2, 4, 8}-core ladder under Baseline and Triangel is
//!   pinned by fingerprint — any drift means the contention machinery
//!   changed behaviour;
//! * intra-simulation parallel trace generation (`exec_threads`) is
//!   byte-identical to serial, reports and snapshots both;
//! * interrupt → snapshot → restore → continue mid-measurement on a
//!   contended 4-core run reproduces the uninterrupted run exactly
//!   (the bank-arbiter and channel clocks ride in the snapshot);
//! * program counters differing only in bits the per-core tag owns
//!   (≥ 2^40) cannot alias another core's PC space;
//! * the interval sampler's Set Dueller column sums every core's
//!   counters, not just core 0's.

use triangel_sim::{PrefetcherChoice, SimSession, SystemConfig};
use triangel_workloads::spec::SpecWorkload;
use triangel_workloads::{MemoryAccess, TraceSource};

const WARMUP: u64 = 2_000;
const ACCESSES: u64 = 2_000;

/// The seed ladder the harness uses: core `i` runs `seed ^ (0x9999 * i)`.
fn core_seed(seed: u64, core: usize) -> u64 {
    seed ^ 0x9999u64.wrapping_mul(core as u64)
}

/// An `n`-core session on the contended timing model, every core
/// running the MCF generator on the harness seed ladder.
fn build_n_core(n: usize, choice: PrefetcherChoice, exec_threads: usize) -> SimSession {
    let mut b = SimSession::builder()
        .system(SystemConfig::paper_n_core(n))
        .prefetcher(choice)
        .warmup(WARMUP)
        .accesses(ACCESSES)
        .sizing_window(1_000)
        .exec_threads(exec_threads);
    for i in 0..n {
        b = b.workload(SpecWorkload::Mcf.generator(core_seed(11, i)));
    }
    b.build().expect("well-formed session")
}

/// FNV-1a over the report's exhaustive `Debug` rendering: every
/// counter of every core, the DRAM stats, and the Markov partition.
fn fingerprint(session: &SimSession) -> u64 {
    let text = format!("{:?}", session.report());
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[test]
fn n_core_ladder_reports_are_pinned() {
    // Regenerate deliberately (and say so in the commit) by running
    // with `TRIANGEL_PRINT_PINS=1` and pasting the printed table.
    let pins: [(usize, PrefetcherChoice, u64); 8] = [
        (1, PrefetcherChoice::Baseline, 0x05d149c022aa5a6c),
        (1, PrefetcherChoice::Triangel, 0xa7e5f71735c61128),
        (2, PrefetcherChoice::Baseline, 0xf3c44be91d29191c),
        (2, PrefetcherChoice::Triangel, 0xa5fbc53bfe8fc914),
        (4, PrefetcherChoice::Baseline, 0x7f35e9cb22b406f6),
        (4, PrefetcherChoice::Triangel, 0xaa83c8b4a035cf3a),
        (8, PrefetcherChoice::Baseline, 0xb208fd2f6e386002),
        (8, PrefetcherChoice::Triangel, 0x6c5eab7fc0013452),
    ];
    let print = std::env::var("TRIANGEL_PRINT_PINS").is_ok_and(|v| v == "1");
    for (n, choice, expected) in pins {
        let mut s = build_n_core(n, choice, 1);
        s.run_segment(u64::MAX);
        assert!(s.is_complete());
        let got = fingerprint(&s);
        if print {
            println!("({n}, PrefetcherChoice::{choice:?}, {got:#018x}),");
            continue;
        }
        assert_eq!(
            got, expected,
            "{n}-core {choice:?} drifted from its pinned fingerprint \
             (got {got:#018x}); the contended timing model changed behaviour"
        );
    }
}

#[test]
fn parallel_trace_generation_is_byte_identical_to_serial() {
    for n in [4usize, 8] {
        let mut serial = build_n_core(n, PrefetcherChoice::Triangel, 1);
        let mut threaded = build_n_core(n, PrefetcherChoice::Triangel, 8);
        serial.run_segment(u64::MAX);
        threaded.run_segment(u64::MAX);
        assert_eq!(
            fingerprint(&serial),
            fingerprint(&threaded),
            "{n}-core: N-thread trace generation diverged from serial"
        );
        assert_eq!(
            serial.snapshot().expect("snapshot"),
            threaded.snapshot().expect("snapshot"),
            "{n}-core: N-thread snapshot bytes diverged from serial"
        );
    }
}

#[test]
fn contended_four_core_run_is_snapshot_equivalent() {
    let make = || build_n_core(4, PrefetcherChoice::Triangel, 1);

    let mut straight = make();
    straight.run_segment(u64::MAX);
    assert!(straight.is_complete());

    // Interrupt once mid-warm-up and once mid-measurement, crossing a
    // snapshot into a freshly built session at each cut.
    let mut s = make();
    let mut done = 0u64;
    for cut in [1_300u64, 3_100] {
        s.run_segment(cut - done);
        done = cut;
        assert_eq!(s.executed_accesses(), done);
        let bytes = s.snapshot().expect("contended sessions snapshot");
        let mut fresh = make();
        fresh.restore(&bytes).expect("snapshot restores");
        assert_eq!(fresh.executed_accesses(), done);
        s = fresh;
    }
    s.run_segment(u64::MAX);
    assert!(s.is_complete());

    assert_eq!(
        fingerprint(&straight),
        fingerprint(&s),
        "4-core contended: interrupted run diverged from uninterrupted run"
    );
}

/// Delegates to an inner generator, setting one PC bit above the
/// 40-bit per-core tag boundary. If the engine tagged PCs without
/// masking, this bit would land in (and corrupt) the core-index tag.
#[derive(Debug)]
struct HighPcBits<T>(T);

impl<T: TraceSource> TraceSource for HighPcBits<T> {
    fn next_access(&mut self) -> MemoryAccess {
        let mut a = self.0.next_access();
        a.pc = triangel_types::Pc::new(a.pc.get() | (1 << 41));
        a
    }

    fn name(&self) -> &str {
        self.0.name()
    }
}

#[test]
fn pc_bits_above_the_tag_boundary_cannot_alias_across_cores() {
    let build = |high_bits: bool| {
        let mut b = SimSession::builder()
            .system(SystemConfig::paper_n_core(3))
            .prefetcher(PrefetcherChoice::Triangel)
            .warmup(WARMUP)
            .accesses(ACCESSES)
            .sizing_window(1_000);
        for i in 0..3 {
            let inner = SpecWorkload::Mcf.generator(core_seed(11, i));
            if high_bits && i == 1 {
                b = b.workload(HighPcBits(inner));
            } else {
                b = b.workload(inner);
            }
        }
        b.build().expect("well-formed session")
    };
    let mut plain = build(false);
    let mut tagged = build(true);
    plain.run_segment(u64::MAX);
    tagged.run_segment(u64::MAX);
    assert_eq!(
        fingerprint(&plain),
        fingerprint(&tagged),
        "a PC bit above the tag boundary leaked into another core's PC space"
    );
}

#[test]
fn interval_dueller_column_sums_every_core() {
    // Larger than the other tests, and on Xalan rather than MCF: the
    // Set Dueller only counts hits in its sampled sets, so it needs a
    // workload with real reuse and enough volume to move.
    let (warmup, accesses) = (12_000u64, 12_000u64);
    let n = 2;
    let mut b = SimSession::builder()
        .system(SystemConfig::paper_n_core(n))
        .prefetcher(PrefetcherChoice::Triangel)
        .warmup(warmup)
        .accesses(accesses)
        .sizing_window(4_000)
        .sample_every(accesses);
    for i in 0..n {
        b = b.workload(SpecWorkload::Xalan.generator(core_seed(11, i)));
    }
    let mut s = b.build().expect("well-formed session");
    s.run_segment(u64::MAX);
    let report = s.report();
    let last = report
        .intervals
        .as_ref()
        .and_then(|series| series.samples.last().cloned())
        .expect("sampled run records intervals");

    let mut expected = [0u64; 9];
    for core in 0..n {
        let counters = s
            .engine()
            .system()
            .dueller_counters(core)
            .expect("Triangel runs a Set Dueller per core");
        for (total, v) in expected.iter_mut().zip(counters) {
            *total += v;
        }
    }
    assert_eq!(
        last.dueller, expected,
        "the interval sample's dueller column must aggregate all cores"
    );
    // The sum must be a genuine aggregate: with per-core traffic on
    // both cores, core 0's counters alone cannot explain it.
    let core0 = s.engine().system().dueller_counters(0).unwrap();
    assert_ne!(
        last.dueller, core0,
        "dueller column equals core 0 alone — aggregation regressed \
         (or this scale produced no dueller traffic on core 1)"
    );
}
