//! An offline, API-compatible subset of the `proptest` crate.
//!
//! The real `proptest` is a dev-dependency of several workspace crates,
//! but this repository must build without network access, so this shim
//! provides the exact surface the test suite uses: the [`proptest!`]
//! macro, `prop_assert*!`/`prop_assume!`, [`strategy::Just`],
//! [`arbitrary::any`], numeric ranges and tuples as strategies,
//! [`collection::vec`], and [`prop_oneof!`].
//!
//! Semantics match proptest where it matters for these tests:
//! deterministic case generation per test (reproducible failures),
//! uniform draws from ranges, and rejection via `prop_assume!`.
//! Shrinking is intentionally not implemented — on failure the full
//! counterexample case index and message are reported instead.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Number of generated cases per `proptest!` test.
///
/// The real crate defaults to 256; the heavier tests in this workspace
/// drive multi-thousand-operation histories per case, so the shim runs
/// fewer, denser cases.
pub const DEFAULT_CASES: u64 = 64;

/// Prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(binder in strategy, ...)` body
/// is run for [`DEFAULT_CASES`] generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($binder:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$attr])*
            fn $name() {
                for case in 0..$crate::DEFAULT_CASES {
                    let mut prop_rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $binder =
                        $crate::strategy::Strategy::generate(&($strat), &mut prop_rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Err(e) if e.is_reject() => continue,
                        ::std::result::Result::Err(e) => panic!(
                            "proptest `{}` failed at case {}: {}",
                            stringify!($name),
                            case,
                            e
                        ),
                        ::std::result::Result::Ok(()) => {}
                    }
                }
            }
        )+
    };
}

/// Uniformly picks one of several strategies (all yielding one type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Like `assert!`, but fails the current proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Like `assert_eq!`, but fails the current proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs == *rhs, "assert_eq failed: {:?} != {:?}", lhs, rhs);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assert_eq failed: {:?} != {:?}: {}",
            lhs,
            rhs,
            format!($($fmt)+)
        );
    }};
}

/// Like `assert_ne!`, but fails the current proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs != *rhs, "assert_ne failed: both {:?}", lhs);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assert_ne failed: both {:?}: {}",
            lhs,
            format!($($fmt)+)
        );
    }};
}

/// Rejects the current case (it is skipped, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}
