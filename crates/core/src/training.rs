//! Triangel's extended training table (Fig. 5 of the paper).

use triangel_types::{xor_fold, LineAddr, Pc, SaturatingCounter};

/// Initial/neutral value of the 4-bit confidence counters (half way).
pub(crate) const CONF_INIT: u32 = 8;
/// Maximum of the 4-bit counters.
pub(crate) const CONF_MAX: u32 = 15;

/// One training-table entry: Triage's fields plus Triangel's additions
/// (bold in the paper's Fig. 5).
#[derive(Debug, Clone)]
pub struct TrainingEntry {
    pub(crate) pc_tag: u16,
    pub(crate) valid: bool,
    /// `LastAddr[0]` (most recent) and `LastAddr[1]` (one before): the
    /// history shift register that enables lookahead 2.
    pub last: [Option<LineAddr>; 2],
    /// Per-PC local timestamp, incremented on each update (Section 4.2).
    pub timestamp: u32,
    /// Does this PC's pattern repeat within Markov capacity?
    /// 4-bit, initialized to 8 (Section 4.4.1).
    pub reuse_conf: SaturatingCounter,
    /// Is a stored `(x, y)` likely to be an accurate prefetch? +1/-2
    /// bias: saturates only above 2/3 accuracy (Section 4.4.2).
    pub base_pattern_conf: SaturatingCounter,
    /// Stricter copy: +1/-5 bias, saturates above 5/6 accuracy; controls
    /// degree-4/lookahead-2 aggression (Sections 4.4.2, 4.5).
    pub high_pattern_conf: SaturatingCounter,
    /// Per-PC sampling-rate exponent, initialized to 8 (Section 4.4.3).
    pub sample_rate: SaturatingCounter,
    /// Current lookahead state: `false` = distance 1, `true` = distance 2
    /// (Section 4.5's hysteresis bit).
    pub lookahead2: bool,
}

impl TrainingEntry {
    fn fresh(pc_tag: u16) -> Self {
        TrainingEntry {
            pc_tag,
            valid: true,
            last: [None, None],
            timestamp: 0,
            reuse_conf: SaturatingCounter::with_initial(CONF_MAX, CONF_INIT),
            base_pattern_conf: SaturatingCounter::with_initial(CONF_MAX, CONF_INIT),
            high_pattern_conf: SaturatingCounter::with_initial(CONF_MAX, CONF_INIT),
            sample_rate: SaturatingCounter::with_initial(CONF_MAX, CONF_INIT),
            lookahead2: false,
        }
    }
}

/// The 512-entry training table, direct-mapped on a PC hash with a
/// 10-bit PC tag (Fig. 5).
#[derive(Debug)]
pub struct TrainingTable {
    entries: Vec<TrainingEntry>,
    index_bits: u32,
}

impl TrainingTable {
    /// Creates a table with `entries` slots (rounded to a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "training table needs entries");
        let n = entries.next_power_of_two();
        TrainingTable {
            entries: (0..n)
                .map(|_| {
                    let mut e = TrainingEntry::fresh(0);
                    e.valid = false;
                    e
                })
                .collect(),
            index_bits: n.trailing_zeros(),
        }
    }

    /// The slot index `pc` maps to (also the `Train-Idx` stored in the
    /// samplers to verify entries still belong to the same PC).
    pub fn index_of(&self, pc: Pc) -> usize {
        if self.index_bits == 0 {
            0
        } else {
            (xor_fold(pc.get() >> 2, self.index_bits) as usize) & (self.entries.len() - 1)
        }
    }

    fn tag_of(&self, pc: Pc) -> u16 {
        xor_fold(pc.get() >> 2, 10) as u16
    }

    /// Returns the entry for `pc`, (re)allocating on miss. The boolean
    /// is `true` when the entry was newly allocated (history lost).
    pub fn entry_mut(&mut self, pc: Pc) -> (&mut TrainingEntry, bool) {
        let idx = self.index_of(pc);
        let tag = self.tag_of(pc);
        let entry = &mut self.entries[idx];
        let allocated = !(entry.valid && entry.pc_tag == tag);
        if allocated {
            *entry = TrainingEntry::fresh(tag);
        }
        (&mut self.entries[idx], allocated)
    }

    /// Read-only view of the entry currently stored for `pc`, if it is
    /// actually this PC's.
    pub fn entry(&self, pc: Pc) -> Option<&TrainingEntry> {
        let idx = self.index_of(pc);
        let tag = self.tag_of(pc);
        let e = &self.entries[idx];
        (e.valid && e.pc_tag == tag).then_some(e)
    }

    /// Read-only view by slot index (used by the History Sampler's
    /// victim handling, which stores `Train-Idx`, not PCs).
    pub fn entry_at(&self, idx: usize) -> Option<&TrainingEntry> {
        let e = &self.entries[idx];
        e.valid.then_some(e)
    }

    /// Mutable view by slot index.
    pub fn entry_at_mut(&mut self, idx: usize) -> Option<&mut TrainingEntry> {
        let e = &mut self.entries[idx];
        e.valid.then_some(e)
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Diagnostic summary: `(valid, base_open, high_open, lookahead2)`
    /// counts across all slots.
    pub fn gate_summary(&self) -> (usize, usize, usize, usize) {
        let mut valid = 0;
        let mut base = 0;
        let mut high = 0;
        let mut la2 = 0;
        for e in &self.entries {
            if e.valid {
                valid += 1;
                if e.base_pattern_conf.get() > 8 {
                    base += 1;
                }
                if e.high_pattern_conf.get() > 8 {
                    high += 1;
                }
                if e.lookahead2 {
                    la2 += 1;
                }
            }
        }
        (valid, base, high, la2)
    }
}

use triangel_types::snap::{SnapError, SnapReader, SnapWriter, Snapshot};

impl Snapshot for TrainingEntry {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.u16(self.pc_tag);
        w.bool(self.valid);
        w.opt_u64(self.last[0].map(|l| l.index()));
        w.opt_u64(self.last[1].map(|l| l.index()));
        w.u32(self.timestamp);
        self.reuse_conf.save(w)?;
        self.base_pattern_conf.save(w)?;
        self.high_pattern_conf.save(w)?;
        self.sample_rate.save(w)?;
        w.bool(self.lookahead2);
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.pc_tag = r.u16()?;
        self.valid = r.bool()?;
        self.last[0] = r.opt_u64()?.map(LineAddr::new);
        self.last[1] = r.opt_u64()?.map(LineAddr::new);
        self.timestamp = r.u32()?;
        self.reuse_conf.restore(r)?;
        self.base_pattern_conf.restore(r)?;
        self.high_pattern_conf.restore(r)?;
        self.sample_rate.restore(r)?;
        self.lookahead2 = r.bool()?;
        Ok(())
    }
}

impl Snapshot for TrainingTable {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.usize(self.entries.len());
        for e in &self.entries {
            e.save(w)?;
        }
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        r.expect_len(self.entries.len(), "training entries")?;
        for e in &mut self.entries {
            e.restore(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_initialized_to_half() {
        let mut t = TrainingTable::new(512);
        let (e, allocated) = t.entry_mut(Pc::new(0x40));
        assert!(allocated);
        assert_eq!(e.reuse_conf.get(), 8);
        assert_eq!(e.base_pattern_conf.get(), 8);
        assert_eq!(e.high_pattern_conf.get(), 8);
        assert_eq!(e.sample_rate.get(), 8);
        assert!(!e.lookahead2);
    }

    #[test]
    fn reallocation_only_on_tag_mismatch() {
        let mut t = TrainingTable::new(512);
        {
            let (e, _) = t.entry_mut(Pc::new(0x40));
            e.timestamp = 99;
        }
        let (e, allocated) = t.entry_mut(Pc::new(0x40));
        assert!(!allocated);
        assert_eq!(e.timestamp, 99);
    }

    #[test]
    fn index_matches_between_calls() {
        let t = TrainingTable::new(512);
        assert_eq!(t.index_of(Pc::new(0x40)), t.index_of(Pc::new(0x40)));
    }

    #[test]
    fn entry_readback_checks_tag() {
        let mut t = TrainingTable::new(1);
        let _ = t.entry_mut(Pc::new(0x40));
        assert!(t.entry(Pc::new(0x40)).is_some());
        // A different PC colliding into slot 0 does not read 0x40's entry.
        assert!(t.entry(Pc::new(0x12345678)).is_none());
    }

    #[test]
    fn slot_indexed_access() {
        let mut t = TrainingTable::new(64);
        let pc = Pc::new(0x88);
        let idx = t.index_of(pc);
        let _ = t.entry_mut(pc);
        assert!(t.entry_at(idx).is_some());
        t.entry_at_mut(idx).unwrap().timestamp = 7;
        assert_eq!(t.entry_at(idx).unwrap().timestamp, 7);
    }
}
