//! Criterion benchmark for whole-pipeline throughput: simulated memory
//! accesses per second under each prefetcher configuration. This bounds
//! the cost of regenerating every figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use triangel_sim::{PrefetcherChoice, SimSession};
use triangel_workloads::spec::SpecWorkload;

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.throughput(Throughput::Elements(50_000));
    for choice in [
        PrefetcherChoice::Baseline,
        PrefetcherChoice::TriageDeg4,
        PrefetcherChoice::Triangel,
    ] {
        g.bench_function(BenchmarkId::from_parameter(choice.label()), |b| {
            b.iter(|| {
                SimSession::builder()
                    .workload(SpecWorkload::Xalan.generator(1))
                    .warmup(10_000)
                    .accesses(50_000)
                    .sizing_window(20_000)
                    .prefetcher(choice)
                    .run()
                    .unwrap()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
