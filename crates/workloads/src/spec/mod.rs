//! The seven SPEC CPU2006-like workloads from the paper's evaluation.
//!
//! The paper uses "the 7 most irregular, memory-intensive workloads from
//! SPEC CPU2006": Xalancbmk, Omnetpp, Mcf, GCC (166 input), Astar, Soplex
//! (3500 ref.mps) and Sphinx3 (Section 5). SPEC inputs cannot be shipped,
//! so each workload here is a [`WorkloadMix`] of temporal/strided/random
//! streams parameterized to match the memory character the paper's
//! analysis attributes to that benchmark:
//!
//! | Workload | Key property modelled | Paper evidence |
//! |---|---|---|
//! | Xalan | large, stable, exact pointer chases (tree walks) | biggest Triangel speedups (Fig. 10) |
//! | Omnet | strong temporal reuse but *loose* ordering (event queue) | hurt by BasePatternConf, recovered by Second-Chance (Sec. 6.6) |
//! | MCF | working set partly beyond Markov capacity | ReuseConf speedup "by not wasting storage on patterns too large" (Sec. 6.6) |
//! | GCC_166 | many mid-size streams, page-spread footprint | LUT works but fragmentation-sensitive (Fig. 19); Set Dueller speeds it up (Sec. 6.6) |
//! | Astar | drifting, low-quality streams | "less willing to prefetch from poor-quality streams such as Astar" (Sec. 6.1) |
//! | Soplex | stride-dominated plus mediocre temporal | same filtering comment as Astar (Sec. 6.1) |
//! | Sphinx | strong but non-strict reuse, smaller set | hurt by BasePatternConf, recovered by SCS (Sec. 6.6) |

mod astar;
mod gcc;
mod mcf;
mod omnetpp;
mod soplex;
mod sphinx;
mod xalan;

use crate::mix::WorkloadMix;
use crate::temporal::{RandomStream, StridedStream, TemporalStream, TemporalStreamConfig};
use triangel_types::{Addr, Pc};

/// The seven paper workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecWorkload {
    /// Xalancbmk: XML transformation, repeated tree traversals.
    Xalan,
    /// Omnetpp: discrete-event network simulation.
    Omnetpp,
    /// Mcf: network-simplex vehicle scheduling, very large working set.
    Mcf,
    /// GCC with the 166 input: compilation, many medium structures.
    Gcc166,
    /// Astar: path finding, drifting irregular accesses.
    Astar,
    /// Soplex with the 3500 ref.mps input: sparse LP solving.
    Soplex,
    /// Sphinx3: speech recognition, looping acoustic-model scoring.
    Sphinx,
}

impl SpecWorkload {
    /// All seven, in the order the paper's figures list them.
    pub const ALL: [SpecWorkload; 7] = [
        SpecWorkload::Xalan,
        SpecWorkload::Omnetpp,
        SpecWorkload::Mcf,
        SpecWorkload::Gcc166,
        SpecWorkload::Astar,
        SpecWorkload::Soplex,
        SpecWorkload::Sphinx,
    ];

    /// The display name used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            SpecWorkload::Xalan => "Xalan",
            SpecWorkload::Omnetpp => "Omnet",
            SpecWorkload::Mcf => "MCF",
            SpecWorkload::Gcc166 => "GCC_166",
            SpecWorkload::Astar => "Astar",
            SpecWorkload::Soplex => "Soplex_3500",
            SpecWorkload::Sphinx => "Sphinx",
        }
    }

    /// Builds the workload's access generator.
    pub fn generator(self, seed: u64) -> WorkloadMix {
        let b = Builder::new(self, seed);
        match self {
            SpecWorkload::Xalan => xalan::build(b),
            SpecWorkload::Omnetpp => omnetpp::build(b),
            SpecWorkload::Mcf => mcf::build(b),
            SpecWorkload::Gcc166 => gcc::build(b),
            SpecWorkload::Astar => astar::build(b),
            SpecWorkload::Soplex => soplex::build(b),
            SpecWorkload::Sphinx => sphinx::build(b),
        }
    }
}

/// Internal helper shared by the per-workload definitions: hands out
/// disjoint virtual regions and consistent PCs/seeds.
#[derive(Debug)]
pub(crate) struct Builder {
    mix: WorkloadMix,
    wl_base: u64,
    next_region: u64,
    next_pc: u64,
    seed: u64,
}

impl Builder {
    fn new(wl: SpecWorkload, seed: u64) -> Self {
        let index = SpecWorkload::ALL.iter().position(|w| *w == wl).unwrap() as u64;
        Builder {
            mix: WorkloadMix::new(wl.label(), seed ^ (index << 8)),
            wl_base: (index + 1) << 40,
            next_region: 0,
            next_pc: (index + 1) << 12,
            seed,
        }
    }

    fn region(&mut self) -> Addr {
        let r = self.wl_base + (self.next_region << 32);
        self.next_region += 1;
        Addr::new(r)
    }

    fn pc(&mut self) -> Pc {
        let pc = self.next_pc;
        self.next_pc += 4;
        Pc::new(pc)
    }

    /// Adds a temporal stream.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn temporal(
        &mut self,
        name: &str,
        seq_len: usize,
        exactness: f64,
        shuffle_window: usize,
        noise: f64,
        drift: f64,
        dependent: bool,
        weight: u32,
    ) {
        let pc = self.pc();
        let region_base = self.region();
        let cfg = TemporalStreamConfig {
            name: name.to_string(),
            pc,
            region_base,
            seq_len,
            region_lines: seq_len * 2,
            exactness,
            shuffle_window,
            noise,
            drift,
            dependent,
            work: 4,
        };
        let seed = self.seed ^ pc.get();
        self.mix.add_stream(TemporalStream::new(cfg, seed), weight);
    }

    /// Adds a strided scan.
    pub(crate) fn strided(&mut self, name: &str, stride_lines: u64, array_lines: u64, weight: u32) {
        let pc = self.pc();
        let base = self.region();
        self.mix.add_stream(
            StridedStream::new(name, pc, base, stride_lines, array_lines),
            weight,
        );
    }

    /// Adds an unlearnable random stream.
    pub(crate) fn random(&mut self, name: &str, region_lines: u64, dependent: bool, weight: u32) {
        let pc = self.pc();
        let base = self.region();
        let seed = self.seed ^ pc.get();
        self.mix.add_stream(
            RandomStream::new(name, pc, base, region_lines, dependent, seed),
            weight,
        );
    }

    pub(crate) fn finish(self) -> WorkloadMix {
        self.mix
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceSource;

    #[test]
    fn all_workloads_generate() {
        for wl in SpecWorkload::ALL {
            let mut g = wl.generator(1);
            for _ in 0..1000 {
                let a = g.next_access();
                assert!(a.vaddr.get() >= 1 << 40, "{:?} emitted low address", wl);
            }
        }
    }

    #[test]
    fn workload_regions_are_disjoint() {
        // Accesses from different workloads must not alias (needed for
        // clean multiprogrammed address spaces).
        let mut seen: Vec<(u64, &str)> = Vec::new();
        for wl in SpecWorkload::ALL {
            let mut g = wl.generator(2);
            for _ in 0..200 {
                let top = g.next_access().vaddr.get() >> 40;
                seen.push((top, wl.label()));
            }
        }
        for (top, label) in &seen {
            let owners: std::collections::HashSet<_> = seen
                .iter()
                .filter(|(t, _)| t == top)
                .map(|(_, l)| *l)
                .collect();
            assert_eq!(
                owners.len(),
                1,
                "region {top:#x} shared: {owners:?} ({label})"
            );
        }
    }

    #[test]
    fn generators_are_deterministic() {
        for wl in SpecWorkload::ALL {
            let mut a = wl.generator(7);
            let mut b = wl.generator(7);
            for _ in 0..500 {
                assert_eq!(a.next_access(), b.next_access());
            }
        }
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(SpecWorkload::Soplex.label(), "Soplex_3500");
        assert_eq!(SpecWorkload::Gcc166.label(), "GCC_166");
    }
}
