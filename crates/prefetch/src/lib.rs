//! Prefetcher abstractions and baseline prefetchers.
//!
//! * [`Prefetcher`] — the event-driven interface every prefetcher in the
//!   workspace implements (stride, Triage, Triangel).
//! * [`StridePrefetcher`] — the degree-8 L1D stride prefetcher that is
//!   part of the paper's *baseline* (Table 2): all speedups in the
//!   evaluation are relative to a system that already has it.
//! * [`BloomFilter`] — used by Triage-ISR's Markov-partition sizing
//!   (Section 3.5) and the Triangel-Bloom variant (Section 4.7).
//!
//! # Examples
//!
//! ```
//! use triangel_prefetch::{NullCacheView, Prefetcher, StridePrefetcher, TrainEvent, TrainKind};
//! use triangel_types::{Cycle, LineAddr, Pc};
//!
//! let mut pf = StridePrefetcher::new(64, 8);
//! let mut out = Vec::new();
//! for i in 0..4u64 {
//!     let ev = TrainEvent {
//!         pc: Pc::new(0x40),
//!         line: LineAddr::new(100 + 2 * i),
//!         kind: TrainKind::L1Access,
//!         cycle: i as Cycle,
//!         l2_fills: 0,
//!     };
//!     out.clear();
//!     pf.on_event(&ev, &NullCacheView, &mut out);
//! }
//! assert!(!out.is_empty()); // stride +2 locked on
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bloom;
mod issued;
mod stride;

pub use bloom::BloomFilter;
pub use issued::IssueTable;
pub use stride::StridePrefetcher;

use triangel_types::{Cycle, LineAddr, LineMeta, Pc};

/// What kind of event is training the prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainKind {
    /// A demand access at the L1D (stride prefetchers train on all
    /// accesses).
    L1Access,
    /// A demand miss at the L2 (temporal prefetchers train on these).
    L2Miss,
    /// A *tagged prefetch hit* at the L2: first demand use of a
    /// prefetched line, which would have missed without prefetching
    /// (Section 2 of the paper).
    L2PrefetchHit,
}

/// One training event delivered to a prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainEvent {
    /// PC of the triggering load.
    pub pc: Pc,
    /// Physical line accessed.
    pub line: LineAddr,
    /// Event kind.
    pub kind: TrainKind,
    /// Current core cycle.
    pub cycle: Cycle,
    /// Running count of L2 fills, used by Triangel's Second-Chance
    /// Sampler as its "within 512 fills" proximity clock (Section 4.4.2).
    pub l2_fills: u64,
}

/// A prefetch the prefetcher wants issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchRequest {
    /// Line to fetch (into the L2 for the temporal prefetchers).
    pub line: LineAddr,
    /// Training PC associated with the request (used for replacement
    /// metadata and accuracy attribution).
    pub pc: Pc,
    /// Cycles after the triggering event before this request can issue:
    /// chained Markov-table walks pay the 25-cycle metadata latency per
    /// hop unless the Metadata Reuse Buffer short-circuits them.
    pub issue_delay: Cycle,
}

/// Read-only cache visibility given to prefetchers.
///
/// Triangel consults residency in two places: sampler verdicts skip
/// targets already cached ("would not generate a prefetch, inaccurate or
/// otherwise", Section 4.4.2), and redundant prefetches are dropped.
pub trait CacheView {
    /// Whether the line is resident in the L2.
    fn in_l2(&self, line: LineAddr) -> bool;
    /// Whether the line is resident in the L3 (data side).
    fn in_l3(&self, line: LineAddr) -> bool;
    /// The resident L2 line's metadata word — who filled it, when the
    /// fill completes, whether a demand has used it — or `None` when
    /// the line is absent (or the view cannot say, the default).
    fn l2_meta(&self, _line: LineAddr) -> Option<LineMeta> {
        None
    }
}

/// A [`CacheView`] that reports nothing resident; useful in tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullCacheView;

impl CacheView for NullCacheView {
    fn in_l2(&self, _line: LineAddr) -> bool {
        false
    }
    fn in_l3(&self, _line: LineAddr) -> bool {
        false
    }
}

/// Delivered to a core's temporal prefetcher when an L2 line dies (by
/// conflict eviction), carrying the line's final metadata word — the
/// exact moment and place used/wasted prefetch attribution happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictNotice {
    /// The line leaving the L2.
    pub line: LineAddr,
    /// Its final metadata word (source, fill time, demand-used bit,
    /// fill ordinal).
    pub meta: LineMeta,
    /// Set when the line was prefetched and never demand-used — a
    /// wasted prefetch from the tag bit's point of view.
    pub was_unused_prefetch: bool,
    /// Cycle at which the eviction takes effect: the incoming fill's
    /// data-arrival time (the victim holds its frame until the
    /// replacement actually lands). Compare against `meta.ready_at` to
    /// spot *premature* deaths — lines evicted before their own fill
    /// even completed, which say nothing about prediction accuracy.
    /// Cycles are not monotonic across evictions (prefetch delays
    /// interleave); use `evict_seq` for ordering.
    pub evict_cycle: Cycle,
    /// The L2 fill clock at eviction (the evicting fill's ordinal).
    /// Strictly greater than `meta.fill_seq`: the fill that installed
    /// the dying line always precedes the fill that kills it.
    pub evict_seq: u64,
    /// PC recorded at fill time, if any.
    pub fill_pc: Option<Pc>,
}

impl EvictNotice {
    /// Classifies the death of a *temporal-prefetched* line: `None` if
    /// the line was not a temporal fill, otherwise `Some(wasted)` where
    /// `wasted` means it died without ever being demand-used. The one
    /// shared definition both Triage and Triangel count diagnostics
    /// and eviction-time training from.
    pub fn temporal_death(&self) -> Option<bool> {
        (self.meta.source == triangel_types::FillSource::Temporal)
            .then_some(self.was_unused_prefetch)
    }

    /// Whether the line died before its own fill completed (evicted
    /// while the data was still in flight). A premature death is a
    /// capacity/thrash artefact, not evidence about the prediction, so
    /// eviction-time training skips the negative update for it.
    pub fn premature(&self) -> bool {
        self.evict_cycle < self.meta.ready_at
    }
}

/// Counters every prefetcher exposes for the evaluation figures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetcherStats {
    /// Prefetch requests issued.
    pub prefetches_issued: u64,
    /// Reads of Markov metadata that reached the L3 partition
    /// (counted in Fig. 14 and the energy model).
    pub markov_reads: u64,
    /// Writes of Markov metadata to the L3 partition.
    pub markov_writes: u64,
    /// Markov reads served by the Metadata Reuse Buffer instead of the
    /// L3 (Triangel only).
    pub mrb_hits: u64,
    /// Markov updates suppressed because the entry was unchanged in the
    /// MRB (Section 4.6's update-filtering optimization).
    pub updates_suppressed: u64,
}

impl PrefetcherStats {
    /// Total L3 accesses caused by metadata (reads + writes).
    pub fn markov_l3_accesses(&self) -> u64 {
        self.markov_reads + self.markov_writes
    }
}

impl triangel_obs::Probe for PrefetcherStats {
    fn probe(&self, out: &mut triangel_obs::ProbeSet) {
        out.record("prefetches_issued", self.prefetches_issued);
        out.record("markov_reads", self.markov_reads);
        out.record("markov_writes", self.markov_writes);
        out.record("mrb_hits", self.mrb_hits);
        out.record("updates_suppressed", self.updates_suppressed);
    }
}

/// The prefetcher interface.
///
/// The simulator delivers [`TrainEvent`]s and collects requests into
/// `out` (an out-parameter so the per-access hot path performs no
/// allocation; it is cleared by the caller).
pub trait Prefetcher: std::fmt::Debug {
    /// Observes an event and optionally emits prefetch requests.
    fn on_event(&mut self, ev: &TrainEvent, caches: &dyn CacheView, out: &mut Vec<PrefetchRequest>);

    /// Observes an L2 line dying, with its final metadata word. The
    /// memory system calls this on every conflict eviction; the default
    /// ignores it. Triage and Triangel count per-source death
    /// diagnostics here unconditionally, and — only behind their
    /// explicit eviction-training gates (`TriangelFeatures::
    /// train_on_eviction`, `TriageConfig::train_on_eviction`, both off
    /// in every shipped configuration) — feed the dying line's metadata
    /// word back into the training and Markov paths. With the gates
    /// off the hook must not change any reported statistic.
    fn on_l2_evict(&mut self, _notice: &EvictNotice) {}

    /// Display name for reports.
    fn name(&self) -> &str;

    /// How many L3 ways the prefetcher currently wants for Markov
    /// metadata (0 for non-temporal prefetchers).
    fn desired_markov_ways(&self) -> usize {
        0
    }

    /// Evaluation counters.
    fn stats(&self) -> PrefetcherStats {
        PrefetcherStats::default()
    }

    /// Exports named internal counters (gate states, death diagnostics,
    /// table occupancy) into the structured probe registry; records
    /// nothing by default. Probing must be read-only and deterministic
    /// — see [`triangel_obs::Probe`].
    fn probe(&self, _out: &mut triangel_obs::ProbeSet) {}
}

/// A no-op prefetcher (the "Baseline" configuration minus the stride
/// prefetcher, or a placeholder in tests).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullPrefetcher;

impl Prefetcher for NullPrefetcher {
    fn on_event(
        &mut self,
        _ev: &TrainEvent,
        _caches: &dyn CacheView,
        _out: &mut Vec<PrefetchRequest>,
    ) {
    }

    fn name(&self) -> &str {
        "none"
    }
}

impl triangel_types::snap::Snapshot for PrefetcherStats {
    fn save(
        &self,
        w: &mut triangel_types::snap::SnapWriter,
    ) -> Result<(), triangel_types::snap::SnapError> {
        w.u64(self.prefetches_issued);
        w.u64(self.markov_reads);
        w.u64(self.markov_writes);
        w.u64(self.mrb_hits);
        w.u64(self.updates_suppressed);
        Ok(())
    }

    fn restore(
        &mut self,
        r: &mut triangel_types::snap::SnapReader,
    ) -> Result<(), triangel_types::snap::SnapError> {
        self.prefetches_issued = r.u64()?;
        self.markov_reads = r.u64()?;
        self.markov_writes = r.u64()?;
        self.mrb_hits = r.u64()?;
        self.updates_suppressed = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_prefetcher_is_silent() {
        let mut pf = NullPrefetcher;
        let mut out = Vec::new();
        let ev = TrainEvent {
            pc: Pc::new(1),
            line: LineAddr::new(2),
            kind: TrainKind::L2Miss,
            cycle: 0,
            l2_fills: 0,
        };
        pf.on_event(&ev, &NullCacheView, &mut out);
        assert!(out.is_empty());
        assert_eq!(pf.stats(), PrefetcherStats::default());
    }

    #[test]
    fn stats_sum() {
        let s = PrefetcherStats {
            markov_reads: 3,
            markov_writes: 2,
            ..Default::default()
        };
        assert_eq!(s.markov_l3_accesses(), 5);
    }
}
