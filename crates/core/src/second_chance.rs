//! The Second-Chance Sampler (Section 4.4.2, Fig. 8 of the paper).

use triangel_types::LineAddr;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ScsEntry {
    target: LineAddr,
    train_idx: u16,
    deadline: u64,
}

/// Resolution of a parked Second-Chance target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScsOutcome {
    /// The target was accessed within the proximity window: the
    /// hypothetical prefetch would have been used (confidence up).
    WithinWindow,
    /// The target was accessed too late: the prefetched line would have
    /// been evicted first (confidence down).
    OutsideWindow,
}

/// The 64-entry Second-Chance Sampler.
///
/// When the History Sampler sees `(x, y)` recorded but the new successor
/// of `x` is some other address, the hypothetical prefetch to `y` might
/// still be *useful* — if `y` is accessed soon enough that the
/// prefetched line would survive in the L2. The SCS parks `y` with a
/// deadline of 512 L2 fills. Entries leave on a matching access (within
/// the deadline: PatternConf rises; outside it: PatternConf falls) or by
/// FIFO eviction while still unresolved (PatternConf falls).
#[derive(Debug)]
pub struct SecondChanceSampler {
    slots: Vec<Option<ScsEntry>>,
    fifo_next: usize,
    window: u64,
}

impl SecondChanceSampler {
    /// Creates an SCS with `entries` slots and the given proximity
    /// window (in L2 fills; 512 in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `entries` or `window` is zero.
    pub fn new(entries: usize, window: u64) -> Self {
        assert!(entries > 0 && window > 0);
        SecondChanceSampler {
            slots: vec![None; entries],
            fifo_next: 0,
            window,
        }
    }

    /// Parks a deferred target. Returns the training-slot index of any
    /// unresolved entry this displaces (its PC earns a decrement).
    pub fn insert(&mut self, target: LineAddr, train_idx: u16, now_fills: u64) -> Option<u16> {
        let evicted = self.slots[self.fifo_next].map(|e| e.train_idx);
        self.slots[self.fifo_next] = Some(ScsEntry {
            target,
            train_idx,
            deadline: now_fills + self.window,
        });
        self.fifo_next = (self.fifo_next + 1) % self.slots.len();
        evicted
    }

    /// Checks whether `addr` resolves a parked target for `train_idx`.
    /// A match removes the entry and reports whether the access arrived
    /// within the 512-fill proximity window ("if the first access occurs
    /// outside this window... PatternConf decreases").
    pub fn check(&mut self, addr: LineAddr, train_idx: u16, now_fills: u64) -> Option<ScsOutcome> {
        for slot in &mut self.slots {
            if let Some(e) = slot {
                if e.target == addr && e.train_idx == train_idx {
                    let within = now_fills <= e.deadline;
                    *slot = None;
                    return Some(if within {
                        ScsOutcome::WithinWindow
                    } else {
                        ScsOutcome::OutsideWindow
                    });
                }
            }
        }
        None
    }

    /// Number of parked targets.
    pub fn occupancy(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

use triangel_types::snap::{SnapError, SnapReader, SnapWriter, Snapshot};

impl Snapshot for SecondChanceSampler {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.usize(self.slots.len());
        for slot in &self.slots {
            match slot {
                Some(e) => {
                    w.bool(true);
                    w.u64(e.target.index());
                    w.u16(e.train_idx);
                    w.u64(e.deadline);
                }
                None => w.bool(false),
            }
        }
        w.usize(self.fifo_next);
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        r.expect_len(self.slots.len(), "SCS slots")?;
        for slot in &mut self.slots {
            *slot = if r.bool()? {
                Some(ScsEntry {
                    target: LineAddr::new(r.u64()?),
                    train_idx: r.u16()?,
                    deadline: r.u64()?,
                })
            } else {
                None
            };
        }
        let next = r.usize()?;
        triangel_types::snap::snap_check(next < self.slots.len(), "SCS cursor out of range")?;
        self.fifo_next = next;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn match_within_window() {
        let mut s = SecondChanceSampler::new(4, 512);
        s.insert(LineAddr::new(7), 1, 1000);
        assert_eq!(
            s.check(LineAddr::new(7), 1, 1400),
            Some(ScsOutcome::WithinWindow)
        );
        assert_eq!(s.occupancy(), 0, "matched entry removed");
    }

    #[test]
    fn match_outside_window_reports_late() {
        let mut s = SecondChanceSampler::new(4, 512);
        s.insert(LineAddr::new(7), 1, 1000);
        assert_eq!(
            s.check(LineAddr::new(7), 1, 1513),
            Some(ScsOutcome::OutsideWindow)
        );
        assert_eq!(s.occupancy(), 0);
    }

    #[test]
    fn pc_must_match() {
        let mut s = SecondChanceSampler::new(4, 512);
        s.insert(LineAddr::new(7), 1, 0);
        assert_eq!(s.check(LineAddr::new(7), 2, 10), None);
    }

    #[test]
    fn fifo_eviction_reports_displaced() {
        let mut s = SecondChanceSampler::new(2, 512);
        assert_eq!(s.insert(LineAddr::new(1), 1, 0), None);
        assert_eq!(s.insert(LineAddr::new(2), 2, 0), None);
        assert_eq!(s.insert(LineAddr::new(3), 3, 0), Some(1));
    }
}
