//! Statistics utilities used by the evaluation harness.
//!
//! The paper reports speedups as geometric means over workloads, traffic
//! and energy normalized to a baseline, and accuracy/coverage as ratios;
//! the helpers here implement exactly those reductions.

use std::fmt;

/// Computes the geometric mean of a slice of positive values.
///
/// Returns `None` when the slice is empty or any value is non-positive
/// (the geometric mean is undefined there).
///
/// # Examples
///
/// ```
/// use triangel_types::stats::geomean;
///
/// let g = geomean(&[1.0, 4.0]).unwrap();
/// assert!((g - 2.0).abs() < 1e-12);
/// assert!(geomean(&[]).is_none());
/// ```
pub fn geomean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|v| *v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Computes the arithmetic mean; `None` for an empty slice.
///
/// # Examples
///
/// ```
/// use triangel_types::stats::mean;
///
/// assert_eq!(mean(&[1.0, 3.0]), Some(2.0));
/// ```
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f64>() / values.len() as f64)
}

/// A ratio of two event counts, e.g. hits / accesses.
///
/// Keeps the numerator and denominator separately so the harness can merge
/// ratios across simulation windows without losing precision.
///
/// # Examples
///
/// ```
/// use triangel_types::stats::Ratio;
///
/// let mut r = Ratio::new();
/// r.add_hit();
/// r.add_miss();
/// assert_eq!(r.value(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Ratio {
    hits: u64,
    total: u64,
}

impl Ratio {
    /// Creates an empty ratio (0/0, reported as 0.0).
    pub const fn new() -> Self {
        Ratio { hits: 0, total: 0 }
    }

    /// Creates a ratio from explicit counts.
    pub const fn from_counts(hits: u64, total: u64) -> Self {
        Ratio { hits, total }
    }

    /// Records a success (increments both numerator and denominator).
    pub fn add_hit(&mut self) {
        self.hits += 1;
        self.total += 1;
    }

    /// Records a failure (increments the denominator only).
    pub fn add_miss(&mut self) {
        self.total += 1;
    }

    /// Records an event with an explicit outcome.
    pub fn record(&mut self, hit: bool) {
        if hit {
            self.add_hit()
        } else {
            self.add_miss()
        }
    }

    /// Returns the numerator.
    pub const fn hits(&self) -> u64 {
        self.hits
    }

    /// Returns the denominator.
    pub const fn total(&self) -> u64 {
        self.total
    }

    /// Returns the ratio as a float, or 0.0 if no events were recorded.
    pub fn value(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }

    /// Merges another ratio into this one.
    pub fn merge(&mut self, other: Ratio) {
        self.hits += other.hits;
        self.total += other.total;
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{} ({:.3})", self.hits, self.total, self.value())
    }
}

/// A power-of-two bucketed histogram for distances and latencies.
///
/// Bucket `i` counts values in `[2^i, 2^(i+1))`, with bucket 0 counting 0
/// and 1.
///
/// # Examples
///
/// ```
/// use triangel_types::stats::Histogram;
///
/// let mut h = Histogram::new();
/// h.record(0);
/// h.record(5);
/// h.record(5);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bucket_count(2), 2); // 4..8
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = if value < 2 {
            0
        } else {
            63 - value.leading_zeros() as usize
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.max = self.max.max(value);
    }

    /// Returns the total number of samples.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Returns the number of samples in power-of-two bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 64`.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Returns the arithmetic mean of the samples, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Returns the maximum recorded sample (0 when empty).
    pub const fn max(&self) -> u64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basic() {
        let g = geomean(&[2.0, 8.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_rejects_nonpositive() {
        assert!(geomean(&[1.0, 0.0]).is_none());
        assert!(geomean(&[1.0, -2.0]).is_none());
    }

    #[test]
    fn geomean_single() {
        assert_eq!(geomean(&[3.5]), Some(3.5));
    }

    #[test]
    fn ratio_merge() {
        let mut a = Ratio::from_counts(1, 2);
        a.merge(Ratio::from_counts(3, 6));
        assert_eq!(a.hits(), 4);
        assert_eq!(a.total(), 8);
        assert_eq!(a.value(), 0.5);
    }

    #[test]
    fn ratio_empty_is_zero() {
        assert_eq!(Ratio::new().value(), 0.0);
    }

    #[test]
    fn ratio_display() {
        let r = Ratio::from_counts(1, 4);
        assert_eq!(r.to_string(), "1/4 (0.250)");
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 4, 1024] {
            h.record(v);
        }
        assert_eq!(h.bucket_count(0), 1); // 1
        assert_eq!(h.bucket_count(1), 2); // 2,3
        assert_eq!(h.bucket_count(2), 1); // 4
        assert_eq!(h.bucket_count(10), 1); // 1024
        assert_eq!(h.max(), 1024);
        assert!((h.mean() - (1.0 + 2.0 + 3.0 + 4.0 + 1024.0) / 5.0).abs() < 1e-9);
    }

    #[test]
    fn mean_empty() {
        assert!(mean(&[]).is_none());
    }
}
