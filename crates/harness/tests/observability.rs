//! The observability layer's hard bar: **observing a run never
//! changes it.**
//!
//! * The golden fixtures must stay byte-identical with interval
//!   sampling enabled — at `--jobs 1` and `--jobs 8`. (The summary
//!   emitters exclude the series, so any diff means sampling perturbed
//!   the simulation itself.)
//! * The recorded interval series must itself be deterministic:
//!   identical across worker counts, and identical across a campaign
//!   interrupt → resume against an uninterrupted sweep.

use std::sync::Arc;

use triangel_harness::{emit, Campaign, CampaignOptions, JobOutcome, Sweep, SweepOptions};
use triangel_obs::IntervalSeries;

/// Sampling period for the golden-scale runs: coarse enough to keep
/// the suites fast, fine enough that every job records several samples.
const EVERY: u64 = 1_000;

/// The sweep with interval sampling switched on for every job. The
/// content keys are unchanged (sampling is observational), so the
/// sweep still resolves shared runs exactly like the unsampled one.
fn sampled(sweep: &Sweep, every: u64) -> Sweep {
    let mut out = Sweep::new();
    for job in sweep.jobs() {
        out.push(job.clone().sample_every(every));
    }
    out
}

/// Every successful result's interval series, in job order.
fn series_of(report: &triangel_harness::SweepReport) -> Vec<Option<IntervalSeries>> {
    report
        .results
        .iter()
        .map(|r| r.as_ref().ok().and_then(|run| run.intervals.clone()))
        .collect()
}

#[test]
fn golden_fixture_is_byte_identical_with_sampling_on() {
    let fixture = std::fs::read_to_string(triangel_harness::goldens::golden_fixture_path())
        .expect("committed fixture");
    let sweep = sampled(&triangel_harness::goldens::golden_sweep(), EVERY);
    let serial = sweep.run(&SweepOptions::serial());
    assert_eq!(
        emit::sweep_to_json(&serial),
        fixture,
        "interval sampling changed the golden sweep's summary bytes"
    );
    let parallel = sweep.run(&SweepOptions::parallel(8));
    assert_eq!(
        emit::sweep_to_json(&parallel),
        fixture,
        "sampled --jobs 8 diverged from the committed fixture"
    );

    // The observation itself is deterministic: --jobs 8 records the
    // exact series --jobs 1 does, and every job carries one.
    let serial_series = series_of(&serial);
    assert!(serial_series.iter().all(|s| s
        .as_ref()
        .is_some_and(|s| s.every == EVERY && !s.is_empty())));
    assert_eq!(serial_series, series_of(&parallel));
}

#[test]
fn evict_train_fixture_is_byte_identical_with_sampling_on() {
    let fixture = std::fs::read_to_string(triangel_harness::goldens::evict_train_fixture_path())
        .expect("committed fixture");
    let sweep = sampled(&triangel_harness::goldens::evict_train_sweep(), 5_000);
    assert_eq!(
        emit::sweep_to_json(&sweep.run(&SweepOptions::serial())),
        fixture,
        "interval sampling changed the gate-on sweep's summary bytes"
    );
}

#[test]
fn campaign_resume_reproduces_the_sampled_series() {
    // One sampled job, run three ways: as an uninterrupted sweep, as
    // an uninterrupted campaign, and as a campaign killed after two
    // segments and resumed. All three series must be equal — and the
    // manifest's wall-time column must survive the resume.
    let job = {
        let golden = triangel_harness::goldens::golden_sweep();
        golden.jobs()[3].clone().sample_every(EVERY) // Xalan x Triangel
    };
    let straight = job.run().expect("sampled job runs");
    let want = straight.intervals.clone().expect("sampling was on");

    let dir = std::env::temp_dir().join(format!("triangel-obs-campaign-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let interrupted = Campaign::new().job(job.clone()).run(
        &CampaignOptions::new(&dir)
            .workers(1)
            .segment_accesses(1_500)
            .max_segments(2),
    );
    let interrupted = interrupted.expect("campaign io");
    assert!(matches!(
        interrupted.outcomes[0],
        JobOutcome::Interrupted { .. }
    ));

    let resumed = Campaign::new()
        .job(job.clone())
        .run(
            &CampaignOptions::new(&dir)
                .workers(1)
                .segment_accesses(1_500),
        )
        .expect("campaign io");
    let report = resumed.outcomes[0].report().expect("job finished");
    assert_eq!(
        report.intervals.as_ref(),
        Some(&want),
        "campaign interrupt → resume changed the recorded series"
    );
    assert_eq!(format!("{straight:?}"), format!("{:?}", **report));

    // A second invocation loads the persisted (v2-framed) report with
    // the series intact, executing nothing.
    let loaded = Campaign::new()
        .job(job)
        .run(&CampaignOptions::new(&dir).workers(1))
        .expect("campaign io");
    assert_eq!(loaded.stats.loaded, 1);
    assert_eq!(loaded.stats.segments_run, 0);
    assert_eq!(
        loaded.outcomes[0].report().unwrap().intervals.as_ref(),
        Some(&want)
    );

    // The manifest carries the accumulated wall-time column.
    let manifest = std::fs::read_to_string(dir.join("manifest.tsv")).unwrap();
    assert!(manifest.starts_with("# triangel campaign manifest v2"));
    let row = manifest.lines().nth(1).expect("one job row");
    let fields: Vec<&str> = row.split('\t').collect();
    assert_eq!(fields.len(), 7, "v2 rows carry wall_ms before the key");
    assert_eq!(fields[1], "done");
    fields[5].parse::<u64>().expect("wall_ms is a number");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn store_counters_surface_through_probe_and_trace() {
    use triangel_obs::Probe as _;

    let dir = std::env::temp_dir().join(format!("triangel-obs-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(triangel_harness::ResultStore::open(&dir).unwrap());

    let sweep = {
        let golden = triangel_harness::goldens::golden_sweep();
        Sweep::new()
            .job(golden.jobs()[0].clone())
            .job(golden.jobs()[3].clone())
    };

    // Cold traced pass: everything misses, executes, publishes — and
    // the trace carries a `ph:"C"` ResultStore counter sample next to
    // the ResultCache one.
    let trace = Arc::new(triangel_obs::TraceBuffer::new());
    let cold = sweep.run(
        &SweepOptions::serial()
            .with_store(Arc::clone(&store))
            .with_trace(Arc::clone(&trace)),
    );
    assert_eq!(cold.stats.executed, 2);
    let doc = trace.to_json();
    triangel_obs::json::validate(&doc).unwrap();
    assert!(doc.contains("\"name\":\"ResultStore\",\"cat\":\"counter\",\"ph\":\"C\""));
    assert!(doc.contains("\"name\":\"ResultCache\",\"cat\":\"counter\",\"ph\":\"C\""));
    assert!(doc.contains("\"inserts\":2"));

    // Warm pass on the same handle: the counters accumulate, and the
    // probe registry view renders them.
    let warm = sweep.run(&SweepOptions::serial().with_store(Arc::clone(&store)));
    assert_eq!(warm.stats.executed, 0);
    let mut probes = triangel_obs::ProbeSet::new();
    probes.scoped("store", |set| store.probe(set));
    assert_eq!(probes.get("store.hits"), Some(2));
    assert_eq!(probes.get("store.misses"), Some(2));
    assert_eq!(probes.get("store.inserts"), Some(2));
    assert_eq!(probes.get("store.discards"), Some(0));
    assert_eq!(
        store.stats().render(),
        "hits=2 misses=2 inserts=2 discards=0"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn traced_campaign_emits_valid_spans_without_changing_results() {
    let job = {
        let golden = triangel_harness::goldens::golden_sweep();
        golden.jobs()[0].clone() // Xalan x Baseline
    };
    let plain_dir = std::env::temp_dir().join(format!("triangel-obs-plain-{}", std::process::id()));
    let traced_dir =
        std::env::temp_dir().join(format!("triangel-obs-traced-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&plain_dir);
    let _ = std::fs::remove_dir_all(&traced_dir);

    let plain = Campaign::new()
        .job(job.clone())
        .run(
            &CampaignOptions::new(&plain_dir)
                .workers(1)
                .segment_accesses(2_000),
        )
        .expect("campaign io");

    let trace = Arc::new(triangel_obs::TraceBuffer::new());
    let traced = Campaign::new()
        .job(job)
        .run(
            &CampaignOptions::new(&traced_dir)
                .workers(1)
                .segment_accesses(2_000)
                .with_trace(Arc::clone(&trace)),
        )
        .expect("campaign io");

    assert_eq!(
        format!("{:?}", plain.outcomes[0].report().unwrap()),
        format!("{:?}", traced.outcomes[0].report().unwrap()),
        "tracing changed the simulated results"
    );
    // 6 000 accesses at 2 000 per segment → 3 segment spans + 1 job span.
    assert_eq!(trace.len(), 4);
    let doc = trace.to_json();
    triangel_obs::json::validate(&doc).unwrap();
    assert!(doc.contains("\"name\":\"segment\""));
    assert!(doc.contains("\"outcome\":\"done\""));

    std::fs::remove_dir_all(&plain_dir).unwrap();
    std::fs::remove_dir_all(&traced_dir).unwrap();
}
