//! Shared infrastructure for the figure-reproduction harness.
//!
//! Every binary in `src/bin/` regenerates one of the paper's tables or
//! figures (see DESIGN.md's experiment index). Figures 10–15 share one
//! sweep over the seven SPEC-like workloads; [`SpecSweep`] runs it once
//! and exposes each figure's metric as a [`FigureTable`].
//!
//! Scale knobs (environment variables, so the same binaries serve smoke
//! tests and full runs):
//!
//! * `TRIANGEL_QUICK=1` — small warm-up/measurement for CI smoke runs.
//! * `TRIANGEL_WARMUP` / `TRIANGEL_ACCESSES` — explicit per-core access
//!   counts.

use triangel_sim::report::FigureTable;
use triangel_sim::{Comparison, Experiment, PrefetcherChoice, RunReport};
use triangel_workloads::spec::SpecWorkload;

/// Scale parameters for a sweep.
#[derive(Debug, Clone, Copy)]
pub struct SweepParams {
    /// Warm-up accesses per core (not measured).
    pub warmup: u64,
    /// Measured accesses per core.
    pub accesses: u64,
    /// Set Dueller / Bloom sizing window.
    pub sizing_window: u64,
    /// Workload seed.
    pub seed: u64,
}

impl SweepParams {
    /// Full-scale parameters used for the recorded results in
    /// EXPERIMENTS.md.
    pub fn full() -> Self {
        SweepParams { warmup: 2_000_000, accesses: 1_500_000, sizing_window: 150_000, seed: 42 }
    }

    /// Reduced parameters for smoke runs.
    pub fn quick() -> Self {
        SweepParams { warmup: 400_000, accesses: 300_000, sizing_window: 60_000, seed: 42 }
    }

    /// Resolves parameters from the environment (see module docs).
    pub fn from_env() -> Self {
        let mut p = if std::env::var("TRIANGEL_QUICK").is_ok_and(|v| v == "1") {
            SweepParams::quick()
        } else {
            SweepParams::full()
        };
        if let Ok(w) = std::env::var("TRIANGEL_WARMUP") {
            p.warmup = w.parse().expect("TRIANGEL_WARMUP must be an integer");
        }
        if let Ok(a) = std::env::var("TRIANGEL_ACCESSES") {
            p.accesses = a.parse().expect("TRIANGEL_ACCESSES must be an integer");
        }
        p
    }
}

impl Default for SweepParams {
    fn default() -> Self {
        SweepParams::full()
    }
}

/// Runs one workload under one prefetcher configuration.
pub fn run_spec(wl: SpecWorkload, choice: PrefetcherChoice, p: &SweepParams) -> RunReport {
    Experiment::new(wl.generator(p.seed))
        .warmup(p.warmup)
        .accesses(p.accesses)
        .sizing_window(p.sizing_window)
        .prefetcher(choice)
        .label(wl.label())
        .run()
}

/// The figures-10-to-15 sweep: every workload under the baseline and a
/// set of prefetcher configurations.
#[derive(Debug)]
pub struct SpecSweep {
    configs: Vec<PrefetcherChoice>,
    baselines: Vec<RunReport>,
    runs: Vec<Vec<RunReport>>,
}

impl SpecSweep {
    /// The configurations plotted in Figs. 10–13: Triage, Triage-Deg4,
    /// Triage-Deg4-Look2, Triangel, Triangel-Bloom.
    pub fn paper_configs() -> Vec<PrefetcherChoice> {
        vec![
            PrefetcherChoice::Triage,
            PrefetcherChoice::TriageDeg4,
            PrefetcherChoice::TriageDeg4Look2,
            PrefetcherChoice::Triangel,
            PrefetcherChoice::TriangelBloom,
        ]
    }

    /// Figs. 14–15 add the No-MRB ablation.
    pub fn paper_configs_with_nomrb() -> Vec<PrefetcherChoice> {
        let mut c = SpecSweep::paper_configs();
        c.push(PrefetcherChoice::TriangelNoMrb);
        c
    }

    /// Runs the sweep, printing one progress line per run to stderr.
    pub fn run(configs: Vec<PrefetcherChoice>, p: &SweepParams) -> Self {
        let mut baselines = Vec::new();
        let mut runs = Vec::new();
        for wl in SpecWorkload::ALL {
            eprintln!("[sweep] {} / Baseline", wl.label());
            baselines.push(run_spec(wl, PrefetcherChoice::Baseline, p));
            let mut row = Vec::new();
            for cfg in &configs {
                eprintln!("[sweep] {} / {}", wl.label(), cfg.label());
                row.push(run_spec(wl, *cfg, p));
            }
            runs.push(row);
        }
        SpecSweep { configs, baselines, runs }
    }

    /// Per-workload, per-configuration comparison against baseline.
    pub fn comparison(&self, wl_idx: usize, cfg_idx: usize) -> Comparison {
        Comparison::new(&self.baselines[wl_idx], &self.runs[wl_idx][cfg_idx])
    }

    /// Baseline report for one workload.
    pub fn baseline(&self, wl_idx: usize) -> &RunReport {
        &self.baselines[wl_idx]
    }

    /// Run report for one workload/configuration.
    pub fn run_report(&self, wl_idx: usize, cfg_idx: usize) -> &RunReport {
        &self.runs[wl_idx][cfg_idx]
    }

    /// The configuration labels (column headers).
    pub fn config_labels(&self) -> Vec<String> {
        self.configs.iter().map(|c| c.label()).collect()
    }

    fn table(&self, title: &str, metric: &str, f: impl Fn(Comparison) -> f64) -> FigureTable {
        let mut t = FigureTable::new(title, metric, self.config_labels());
        for (w, wl) in SpecWorkload::ALL.iter().enumerate() {
            let vals = (0..self.configs.len()).map(|c| f(self.comparison(w, c))).collect();
            t.push_row(wl.label(), vals);
        }
        t
    }

    /// Fig. 10: speedup over the stride-only baseline.
    pub fn fig10_speedup(&self) -> FigureTable {
        self.table("Fig. 10: Speedup", "IPC relative to stride-only baseline", |c| c.speedup)
    }

    /// Fig. 11: normalized DRAM traffic.
    pub fn fig11_traffic(&self) -> FigureTable {
        self.table(
            "Fig. 11: Normalized DRAM Traffic",
            "DRAM line reads relative to baseline (lower is better)",
            |c| c.dram_traffic,
        )
    }

    /// Fig. 12: accuracy.
    pub fn fig12_accuracy(&self) -> FigureTable {
        self.table(
            "Fig. 12: Accuracy",
            "prefetched lines used before L2 eviction",
            |c| c.accuracy,
        )
    }

    /// Fig. 13: coverage.
    pub fn fig13_coverage(&self) -> FigureTable {
        self.table(
            "Fig. 13: Coverage",
            "baseline L2 demand misses eliminated",
            |c| c.coverage,
        )
    }

    /// Fig. 14: normalized L3 accesses.
    pub fn fig14_l3(&self) -> FigureTable {
        self.table(
            "Fig. 14: Normalized L3 Accesses",
            "L3 data + Markov-table accesses relative to baseline (lower is better)",
            |c| c.l3_accesses,
        )
    }

    /// Fig. 15: normalized DRAM+L3 dynamic energy.
    pub fn fig15_energy(&self) -> FigureTable {
        self.table(
            "Fig. 15: Normalized DRAM+L3 Dynamic Energy",
            "25 units/DRAM access + 1 unit/L3 access, relative to baseline",
            |c| c.energy,
        )
    }

    /// The DRAM share of each run's energy (Fig. 15's hashed bars).
    pub fn fig15_dram_fraction(&self) -> FigureTable {
        self.table(
            "Fig. 15 (hashed): DRAM share of dynamic energy",
            "fraction of energy units from DRAM",
            |c| c.energy_dram_fraction,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_params_cover_dueller_startup() {
        let p = SweepParams::full();
        assert!(p.warmup > p.sizing_window * 2, "warm-up must cover dueller start-up");
    }

    #[test]
    fn paper_configs_order_matches_figures() {
        let labels: Vec<String> =
            SpecSweep::paper_configs().iter().map(|c| c.label()).collect();
        assert_eq!(
            labels,
            vec!["Triage", "Triage-Deg4", "Triage-Deg4-Look2", "Triangel", "Triangel-Bloom"]
        );
    }
}
