//! Cross-handle store coordination: two sweeps racing the same job
//! list over one store directory must execute every job exactly once
//! *store-wide* and produce reports byte-identical to a cold serial
//! run.
//!
//! The two `ResultStore` handles here open their lock files
//! independently, so they contend through `flock` exactly like two
//! separate processes would — this is the same-machine analogue of the
//! daemon's multi-client story.

use std::sync::Arc;

use triangel_harness::{JobSpec, RunParams, Sweep, SweepOptions, WorkloadSpec};
use triangel_sim::PrefetcherChoice;
use triangel_store::{report_to_bytes, ResultStore};
use triangel_workloads::spec::SpecWorkload;

fn tiny_params(seed: u64) -> RunParams {
    RunParams {
        warmup: 400,
        accesses: 400,
        sizing_window: 200,
        seed,
    }
}

/// Six distinct jobs: three workloads × two prefetchers.
fn sweep() -> Sweep {
    let mut sweep = Sweep::new();
    for workload in [
        SpecWorkload::Xalan,
        SpecWorkload::Mcf,
        SpecWorkload::Omnetpp,
    ] {
        for choice in [PrefetcherChoice::Baseline, PrefetcherChoice::Triangel] {
            sweep.push(JobSpec::new(
                WorkloadSpec::Spec(workload),
                choice,
                tiny_params(13),
            ));
        }
    }
    sweep
}

#[test]
fn racing_handles_execute_every_job_exactly_once() {
    let dir = std::env::temp_dir().join(format!("triangel-store-race-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let reference = sweep().run(&SweepOptions::serial());
    assert_eq!(reference.stats.errors, 0);
    let n_jobs = reference.results.len();

    let store_a = Arc::new(ResultStore::open(&dir).unwrap());
    let store_b = Arc::new(ResultStore::open(&dir).unwrap());
    let (report_a, report_b) = std::thread::scope(|scope| {
        let a = scope
            .spawn(|| sweep().run(&SweepOptions::parallel(2).with_store(Arc::clone(&store_a))));
        let b = scope
            .spawn(|| sweep().run(&SweepOptions::parallel(2).with_store(Arc::clone(&store_b))));
        (a.join().unwrap(), b.join().unwrap())
    });

    // Exactly once, store-wide: every simulation ran under a claim, so
    // the two racing sweeps split the job list between them (in some
    // nondeterministic proportion) without ever duplicating work.
    let executed = report_a.stats.executed + report_b.stats.executed;
    assert_eq!(
        executed, n_jobs,
        "racing sweeps must split the jobs, never duplicate them \
         (a executed {}, b executed {})",
        report_a.stats.executed, report_b.stats.executed
    );
    let inserts = store_a.stats().inserts() + store_b.stats().inserts();
    assert_eq!(
        inserts as usize, n_jobs,
        "each job must publish exactly once"
    );
    assert_eq!(store_a.stats().discards() + store_b.stats().discards(), 0);

    // Whoever ran each job, both sweeps (and the cold serial run) see
    // the same bytes.
    for i in 0..n_jobs {
        let expected = report_to_bytes(reference.report(i));
        assert_eq!(
            report_to_bytes(report_a.report(i)),
            expected,
            "job {i} differs between handle A and the cold serial run"
        );
        assert_eq!(
            report_to_bytes(report_b.report(i)),
            expected,
            "job {i} differs between handle B and the cold serial run"
        );
    }

    // A third, fresh handle over the same directory is all hits.
    let warm =
        sweep().run(&SweepOptions::serial().with_store(Arc::new(ResultStore::open(&dir).unwrap())));
    assert_eq!(
        warm.stats.executed, 0,
        "warm sweep must be served entirely from the store"
    );
    assert_eq!(warm.stats.cache_hits, n_jobs);
    for i in 0..n_jobs {
        assert_eq!(
            report_to_bytes(warm.report(i)),
            report_to_bytes(reference.report(i)),
            "job {i} differs between the warm store read and the cold serial run"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}
