//! The Set Dueller (Section 4.7, Fig. 9 of the paper).

use triangel_cache::duel::SampledSets;
use triangel_types::{xor_fold, LineAddr};

/// A small LRU tag stack used for both models inside a sampled set.
#[derive(Debug, Clone)]
struct TagStack {
    // Most recent first.
    tags: Vec<u16>,
    capacity: usize,
}

impl TagStack {
    fn new(capacity: usize) -> Self {
        TagStack {
            tags: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Accesses `tag`: returns its stack distance (0 = MRU) if present,
    /// then promotes/inserts it.
    fn access(&mut self, tag: u16) -> Option<usize> {
        let pos = self.tags.iter().position(|t| *t == tag);
        if let Some(p) = pos {
            self.tags.remove(p);
        } else if self.tags.len() >= self.capacity {
            self.tags.pop();
        }
        self.tags.insert(0, tag);
        pos
    }
}

/// The Set Dueller: on 64 sampled L3 sets, models a full 16-way data
/// cache and a full 8-way Markov table side by side (both as LRU tag
/// stacks of 10-bit hash-tags), counts how many hits each of the 9
/// possible partitionings would have produced, and picks the argmax each
/// window.
///
/// Granularity correction (fn. 11): 12 Markov entries fit per line, so
/// the modelled Markov table tracks a fixed 1-in-12 *subset of
/// addresses* (hash-selected, so each sampled address is seen on every
/// occurrence), and each sampled Markov hit is worth `12 / B` cache
/// hits, with the bias factor `B = 2` discounting Markov hits because
/// prefetches still cost DRAM accesses.
#[derive(Debug)]
pub struct SetDueller {
    sampled: SampledSets,
    l3_sets: usize,
    cache_stacks: Vec<TagStack>,
    markov_stacks: Vec<TagStack>,
    counters: [u64; 9],
    max_markov_ways: usize,
    entries_per_line: u32,
    bias: u32,
    window: u64,
    window_left: u64,
    choice: usize,
}

impl SetDueller {
    /// Creates a dueller over an L3 with `l3_sets` sets and 16 ways, of
    /// which up to `max_markov_ways` can go to the Markov table.
    ///
    /// # Panics
    ///
    /// Panics if `max_markov_ways > 8` (the counter array is sized for
    /// the paper's 0..=8 partitionings) or `window` is zero.
    pub fn new(
        l3_sets: usize,
        max_markov_ways: usize,
        entries_per_line: u32,
        bias: u32,
        window: u64,
        seed: u64,
    ) -> Self {
        assert!(max_markov_ways <= 8, "counters sized for 0..=8 ways");
        assert!(window > 0, "window must be positive");
        let sampled = SampledSets::new(l3_sets, 64.min(l3_sets), seed);
        let n = sampled.len();
        SetDueller {
            sampled,
            l3_sets,
            cache_stacks: (0..n).map(|_| TagStack::new(16)).collect(),
            markov_stacks: (0..n).map(|_| TagStack::new(max_markov_ways)).collect(),
            counters: [0; 9],
            max_markov_ways,
            entries_per_line,
            bias: bias.max(1),
            window,
            window_left: window,
            choice: 0,
        }
    }

    fn tag_of(line: LineAddr) -> u16 {
        xor_fold(line.index().rotate_left(11), 10) as u16
    }

    /// Feeds one prefetcher-visible access (L2 miss or tagged prefetch
    /// hit). `markov_engaged` marks events for which Triangel would
    /// store/use Markov metadata, which are the ones that exercise the
    /// hypothetical Markov table.
    pub fn on_access(&mut self, line: LineAddr, markov_engaged: bool) {
        let set = (line.index() as usize) & (self.l3_sets - 1);
        if let Some(si) = self.sampled.index_of(set) {
            let tag = Self::tag_of(line);
            // Data-cache model: a hit at stack distance d is a hit for
            // every partitioning that leaves more than d data ways.
            if let Some(d) = self.cache_stacks[si].access(tag) {
                for p in 0..=self.max_markov_ways {
                    if d < 16 - p {
                        self.counters[p] += 1;
                    }
                }
            }
            // Markov model: a fixed 1-in-entries_per_line address subset
            // corrects entry-vs-line granularity without per-event
            // sampling noise.
            let sampled_addr = (line.index().wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40)
                .is_multiple_of(self.entries_per_line as u64);
            if markov_engaged && sampled_addr {
                if let Some(d) = self.markov_stacks[si].access(tag) {
                    let worth = (self.entries_per_line / self.bias).max(1) as u64;
                    for p in 0..=self.max_markov_ways {
                        if d < p {
                            self.counters[p] += worth;
                        }
                    }
                }
            }
        }

        self.window_left -= 1;
        if self.window_left == 0 {
            self.window_left = self.window;
            // Strictly-greater comparison: ties go to the smaller
            // partition (no reason to take cache ways without evidence).
            let mut best = 0usize;
            for p in 1..=self.max_markov_ways {
                if self.counters[p] > self.counters[best] {
                    best = p;
                }
            }
            self.choice = best;
            self.counters = [0; 9];
        }
    }

    /// The partitioning (Markov ways) chosen by the last window.
    pub fn desired_ways(&self) -> usize {
        self.choice
    }

    /// Current per-partitioning counters (diagnostics).
    pub fn counters(&self) -> &[u64; 9] {
        &self.counters
    }
}

use triangel_types::snap::{SnapError, SnapReader, SnapWriter, Snapshot};

impl TagStack {
    fn save_snap(&self, w: &mut SnapWriter) {
        w.usize(self.tags.len());
        for t in &self.tags {
            w.u16(*t);
        }
    }

    fn restore_snap(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        let n = r.usize()?;
        triangel_types::snap::snap_check(n <= self.capacity, "tag stack above capacity")?;
        self.tags.clear();
        for _ in 0..n {
            self.tags.push(r.u16()?);
        }
        Ok(())
    }
}

impl Snapshot for SetDueller {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.usize(self.cache_stacks.len());
        for s in &self.cache_stacks {
            s.save_snap(w);
        }
        for s in &self.markov_stacks {
            s.save_snap(w);
        }
        for c in &self.counters {
            w.u64(*c);
        }
        w.u64(self.window_left);
        w.usize(self.choice);
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        r.expect_len(self.cache_stacks.len(), "dueller stacks")?;
        for s in &mut self.cache_stacks {
            s.restore_snap(r)?;
        }
        for s in &mut self.markov_stacks {
            s.restore_snap(r)?;
        }
        for c in &mut self.counters {
            *c = r.u64()?;
        }
        self.window_left = r.u64()?;
        self.choice = r.usize()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dueller(window: u64) -> SetDueller {
        SetDueller::new(64, 8, 12, 2, window, 7)
    }

    #[test]
    fn cache_only_traffic_chooses_zero_ways() {
        let mut d = dueller(50_000);
        // A small set of lines reused heavily, never markov-engaged:
        // all evidence says "give the cache everything".
        for i in 0..60_000u64 {
            d.on_access(LineAddr::new(i % 256), false);
        }
        assert_eq!(d.desired_ways(), 0);
    }

    #[test]
    fn markov_value_grows_partition() {
        let mut d = dueller(80_000);
        // 48 lines cycling through one set: reuse distance 48 exceeds
        // the 16-way cache model (no cache hits) but fits the Markov
        // model, whose 8 tag ways represent 8 x 12 = 96 entries after
        // the 1/12 sampling correction. The hypothetical Markov table is
        // the only structure producing hits, so it should win ways.
        for _ in 0..2000u64 {
            for i in 0..48u64 {
                d.on_access(LineAddr::new(i * 64), true); // all map to set 0
            }
        }
        assert!(d.desired_ways() > 0, "markov hits should claim ways");
    }

    #[test]
    fn stack_distance_semantics() {
        let mut s = TagStack::new(4);
        assert_eq!(s.access(1), None);
        assert_eq!(s.access(2), None);
        assert_eq!(s.access(1), Some(1));
        assert_eq!(s.access(1), Some(0));
    }

    #[test]
    fn stack_capacity_bounded() {
        let mut s = TagStack::new(2);
        s.access(1);
        s.access(2);
        s.access(3); // evicts 1
        assert_eq!(s.access(1), None);
    }

    #[test]
    fn window_resets_counters() {
        let mut d = dueller(100);
        for i in 0..100u64 {
            d.on_access(LineAddr::new(i % 8), false);
        }
        assert_eq!(
            d.counters().iter().sum::<u64>(),
            0,
            "window boundary resets"
        );
    }
}
