//! Enum dispatch for the temporal prefetchers.
//!
//! The simulator's per-access hot path used to train prefetchers
//! through `Box<dyn Prefetcher>`, which blocked inlining across the
//! hottest loop in the workspace (the Triage/Triangel Markov
//! train/lookup walk). [`PrefetcherImpl`] wraps the shipped concrete
//! types in one enum so the default pipeline dispatches with a
//! branch-predictable match and passes the cache view as a concrete
//! type — zero virtual calls per access. A [`PrefetcherImpl::Dyn`]
//! variant keeps the old trait-object path available as a
//! compatibility shim (and as the reference the dispatch-equivalence
//! tests compare against).

use triangel_core::Triangel;
use triangel_prefetch::{
    CacheView, EvictNotice, NullPrefetcher, PrefetchRequest, Prefetcher, PrefetcherStats,
    TrainEvent,
};
use triangel_triage::Triage;

/// A temporal prefetcher as a concrete value.
///
/// Built by
/// [`PrefetcherChoice::build_impl`](crate::PrefetcherChoice::build_impl)
/// for the default monomorphized pipeline, or wrapped around any
/// [`Prefetcher`] trait object via [`PrefetcherImpl::Dyn`] for the
/// compatibility path ([`MemorySystem::new`](crate::MemorySystem::new)).
#[derive(Debug)]
pub enum PrefetcherImpl {
    /// No temporal prefetcher (the stride-only baseline).
    Null(NullPrefetcher),
    /// The Triage family (boxed: the Markov table dominates its size).
    Triage(Box<Triage>),
    /// The Triangel family.
    Triangel(Box<Triangel>),
    /// Any other implementation, behind the original trait object.
    /// This arm pays the virtual call the concrete arms eliminate.
    Dyn(Box<dyn Prefetcher>),
}

impl PrefetcherImpl {
    /// Delivers one training event; monomorphizes over the cache view
    /// for the concrete arms.
    #[inline]
    pub fn on_event<V: CacheView>(
        &mut self,
        ev: &TrainEvent,
        caches: &V,
        out: &mut Vec<PrefetchRequest>,
    ) {
        match self {
            PrefetcherImpl::Null(_) => {}
            PrefetcherImpl::Triage(p) => p.handle(ev, caches, out),
            PrefetcherImpl::Triangel(p) => p.handle(ev, caches, out),
            PrefetcherImpl::Dyn(p) => p.on_event(ev, caches, out),
        }
    }

    /// Delivers an L2 eviction notice.
    pub fn on_l2_evict(&mut self, notice: &EvictNotice) {
        match self {
            PrefetcherImpl::Null(_) => {}
            PrefetcherImpl::Triage(p) => p.on_l2_evict(notice),
            PrefetcherImpl::Triangel(p) => p.on_l2_evict(notice),
            PrefetcherImpl::Dyn(p) => p.on_l2_evict(notice),
        }
    }

    /// Display name for reports.
    pub fn name(&self) -> &str {
        match self {
            PrefetcherImpl::Null(p) => p.name(),
            PrefetcherImpl::Triage(p) => p.name(),
            PrefetcherImpl::Triangel(p) => p.name(),
            PrefetcherImpl::Dyn(p) => p.name(),
        }
    }

    /// L3 ways currently wanted for Markov metadata.
    pub fn desired_markov_ways(&self) -> usize {
        match self {
            PrefetcherImpl::Null(p) => p.desired_markov_ways(),
            PrefetcherImpl::Triage(p) => p.desired_markov_ways(),
            PrefetcherImpl::Triangel(p) => p.desired_markov_ways(),
            PrefetcherImpl::Dyn(p) => p.desired_markov_ways(),
        }
    }

    /// Evaluation counters.
    pub fn stats(&self) -> PrefetcherStats {
        match self {
            PrefetcherImpl::Null(p) => p.stats(),
            PrefetcherImpl::Triage(p) => p.stats(),
            PrefetcherImpl::Triangel(p) => p.stats(),
            PrefetcherImpl::Dyn(p) => p.stats(),
        }
    }

    /// Exports the prefetcher's named internal counters into `out`
    /// (see [`triangel_obs::Probe`]).
    pub fn probe(&self, out: &mut triangel_obs::ProbeSet) {
        match self {
            PrefetcherImpl::Null(p) => p.probe(out),
            PrefetcherImpl::Triage(p) => p.probe(out),
            PrefetcherImpl::Triangel(p) => p.probe(out),
            PrefetcherImpl::Dyn(p) => p.probe(out),
        }
    }

    /// Current Markov table `(occupancy, capacity)` in entries; `(0, 0)`
    /// for prefetchers without a Markov table.
    pub fn markov_occupancy(&self) -> (u64, u64) {
        match self {
            PrefetcherImpl::Triage(p) => (
                p.markov().occupancy() as u64,
                p.markov().capacity_entries() as u64,
            ),
            PrefetcherImpl::Triangel(p) => (
                p.markov().occupancy() as u64,
                p.markov().capacity_entries() as u64,
            ),
            PrefetcherImpl::Null(_) | PrefetcherImpl::Dyn(_) => (0, 0),
        }
    }

    /// Set-Dueller per-partitioning counters; `None` for prefetchers
    /// without a Set Dueller (everything but Triangel).
    pub fn dueller_counters(&self) -> Option<[u64; 9]> {
        match self {
            PrefetcherImpl::Triangel(p) => Some(*p.dueller_counters()),
            _ => None,
        }
    }
}

impl From<Box<dyn Prefetcher>> for PrefetcherImpl {
    fn from(p: Box<dyn Prefetcher>) -> Self {
        PrefetcherImpl::Dyn(p)
    }
}

impl triangel_types::snap::Snapshot for PrefetcherImpl {
    fn save(
        &self,
        w: &mut triangel_types::snap::SnapWriter,
    ) -> Result<(), triangel_types::snap::SnapError> {
        match self {
            PrefetcherImpl::Null(_) => {
                w.u8(0);
                Ok(())
            }
            PrefetcherImpl::Triage(p) => {
                w.u8(1);
                p.save(w)
            }
            PrefetcherImpl::Triangel(p) => {
                w.u8(2);
                p.save(w)
            }
            PrefetcherImpl::Dyn(p) => Err(triangel_types::snap::SnapError::unsupported(format!(
                "prefetcher `{}` is behind the dyn compatibility shim",
                p.name()
            ))),
        }
    }

    fn restore(
        &mut self,
        r: &mut triangel_types::snap::SnapReader,
    ) -> Result<(), triangel_types::snap::SnapError> {
        let tag = r.u8()?;
        match (tag, self) {
            (0, PrefetcherImpl::Null(_)) => Ok(()),
            (1, PrefetcherImpl::Triage(p)) => p.restore(r),
            (2, PrefetcherImpl::Triangel(p)) => p.restore(r),
            _ => Err(triangel_types::snap::SnapError::corrupt(
                "prefetcher variant mismatch",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triangel_prefetch::{NullCacheView, TrainKind};
    use triangel_triage::TriageConfig;
    use triangel_types::{LineAddr, Pc};

    fn ev(line: u64) -> TrainEvent {
        TrainEvent {
            pc: Pc::new(0x40),
            line: LineAddr::new(line),
            kind: TrainKind::L2Miss,
            cycle: 0,
            l2_fills: 0,
        }
    }

    #[test]
    fn enum_and_dyn_arms_agree() {
        let mut concrete = PrefetcherImpl::Triage(Box::new(Triage::new(TriageConfig::degree4())));
        let mut boxed: PrefetcherImpl =
            (Box::new(Triage::new(TriageConfig::degree4())) as Box<dyn Prefetcher>).into();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for pass in 0..2 {
            for line in [10u64, 20, 30, 40, 50] {
                a.clear();
                b.clear();
                concrete.on_event(&ev(line), &NullCacheView, &mut a);
                boxed.on_event(&ev(line), &NullCacheView, &mut b);
                assert_eq!(a, b, "pass {pass} line {line}");
            }
        }
        assert_eq!(concrete.stats(), boxed.stats());
        assert_eq!(concrete.name(), boxed.name());
        assert_eq!(concrete.desired_markov_ways(), boxed.desired_markov_ways());
    }

    #[test]
    fn null_arm_is_silent() {
        let mut p = PrefetcherImpl::Null(NullPrefetcher);
        let mut out = Vec::new();
        p.on_event(&ev(1), &NullCacheView, &mut out);
        assert!(out.is_empty());
        assert_eq!(p.name(), "none");
        assert_eq!(p.desired_markov_ways(), 0);
        assert_eq!(p.stats(), PrefetcherStats::default());
        let mut probes = triangel_obs::ProbeSet::new();
        p.probe(&mut probes);
        assert!(probes.is_empty());
        assert_eq!(p.markov_occupancy(), (0, 0));
        assert_eq!(p.dueller_counters(), None);
    }
}
