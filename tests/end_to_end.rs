//! Cross-crate integration tests: the whole pipeline (workload ->
//! hierarchy -> prefetcher -> metrics) must reproduce the paper's
//! qualitative claims on controlled inputs.

use triangel::sim::{Comparison, Experiment, PrefetcherChoice, RunReport, SimSession};
use triangel::types::{Addr, Pc};
use triangel::workloads::spec::SpecWorkload;
use triangel::workloads::temporal::{RandomStream, TemporalStream, TemporalStreamConfig};

fn chase(len: usize, seed: u64) -> TemporalStream {
    TemporalStream::new(
        TemporalStreamConfig::pointer_chase("chase", Pc::new(0x40), Addr::new(1 << 30), len),
        seed,
    )
}

fn run(
    src: impl triangel::workloads::TraceSource + Send + 'static,
    c: PrefetcherChoice,
) -> RunReport {
    SimSession::builder()
        .workload(src)
        .warmup(350_000)
        .accesses(200_000)
        .sizing_window(60_000)
        .prefetcher(c)
        .run()
        .unwrap()
}

#[test]
fn triangel_accelerates_a_strict_chase() {
    let base = run(chase(50_000, 7), PrefetcherChoice::Baseline);
    let tri = run(chase(50_000, 7), PrefetcherChoice::Triangel);
    let c = Comparison::new(&base, &tri);
    assert!(c.speedup > 1.5, "speedup {:.3}", c.speedup);
    assert!(c.accuracy > 0.9, "accuracy {:.3}", c.accuracy);
    assert!(c.coverage > 0.5, "coverage {:.3}", c.coverage);
}

#[test]
fn triage_also_accelerates_but_less_timely() {
    // Degree-1 Triage on a dependent chain cannot run ahead of the CPU
    // by more than one hop, so Triangel's lookahead-2 + degree-4 must
    // beat it (the Section 4.5 argument).
    let base = run(chase(50_000, 9), PrefetcherChoice::Baseline);
    let triage = run(chase(50_000, 9), PrefetcherChoice::Triage);
    let triangel = run(chase(50_000, 9), PrefetcherChoice::Triangel);
    let c1 = Comparison::new(&base, &triage);
    let ct = Comparison::new(&base, &triangel);
    assert!(c1.speedup > 1.0, "Triage should help: {:.3}", c1.speedup);
    assert!(
        ct.speedup > c1.speedup,
        "Triangel {:.3} must beat degree-1 Triage {:.3} on a dependent chain",
        ct.speedup,
        c1.speedup
    );
}

#[test]
fn random_traffic_is_filtered_by_triangel_but_not_triage() {
    let noise = || RandomStream::new("noise", Pc::new(0x50), Addr::new(1 << 32), 300_000, true, 3);
    let base = run(noise(), PrefetcherChoice::Baseline);
    let triage = run(noise(), PrefetcherChoice::TriageDeg4);
    let triangel = run(noise(), PrefetcherChoice::Triangel);
    let c4 = Comparison::new(&base, &triage);
    let ct = Comparison::new(&base, &triangel);
    assert!(
        ct.dram_traffic < 1.05,
        "Triangel must not inflate traffic on noise: {:.3}",
        ct.dram_traffic
    );
    assert!(
        c4.dram_traffic > ct.dram_traffic,
        "Triage-Deg4 ({:.3}) should waste more bandwidth than Triangel ({:.3})",
        c4.dram_traffic,
        ct.dram_traffic
    );
}

#[test]
fn reports_are_deterministic() {
    let a = run(chase(20_000, 5), PrefetcherChoice::Triangel);
    let b = run(chase(20_000, 5), PrefetcherChoice::Triangel);
    assert_eq!(a.cores[0].instructions, b.cores[0].instructions);
    assert_eq!(a.cores[0].cycles, b.cores[0].cycles);
    assert_eq!(a.dram_reads(), b.dram_reads());
    assert_eq!(a.l3_accesses(), b.l3_accesses());
}

#[test]
fn multiprogrammed_runs_share_memory_system() {
    let sources: Vec<Box<dyn triangel::workloads::TraceSource + Send>> = vec![
        Box::new(chase(30_000, 1)),
        Box::new(RandomStream::new(
            "r",
            Pc::new(0x60),
            Addr::new(1 << 33),
            50_000,
            false,
            2,
        )),
    ];
    let report = Experiment::multiprogrammed(sources)
        .warmup(100_000)
        .accesses(100_000)
        .sizing_window(60_000)
        .prefetcher(PrefetcherChoice::Triangel)
        .try_run()
        .unwrap();
    assert_eq!(report.cores.len(), 2);
    assert!(report.cores[0].ipc() > 0.0);
    assert!(report.cores[1].ipc() > 0.0);
    // Both cores' traffic lands in the shared DRAM counters.
    assert!(report.dram_reads() > 0);
}

#[test]
fn spec_workloads_run_under_every_configuration() {
    // Smoke coverage: every (workload, config) combination produces a
    // sane report at small scale.
    for wl in [SpecWorkload::Xalan, SpecWorkload::Mcf] {
        for cfg in [
            PrefetcherChoice::Baseline,
            PrefetcherChoice::Triage,
            PrefetcherChoice::TriageDeg4,
            PrefetcherChoice::TriageDeg4Look2,
            PrefetcherChoice::Triangel,
            PrefetcherChoice::TriangelBloom,
            PrefetcherChoice::TriangelNoMrb,
            PrefetcherChoice::TriangelLadder(3),
        ] {
            let r = SimSession::builder()
                .workload(wl.generator(11))
                .warmup(30_000)
                .accesses(30_000)
                .sizing_window(20_000)
                .prefetcher(cfg)
                .run()
                .unwrap();
            assert!(
                r.ipc() > 0.0,
                "{}/{} produced zero IPC",
                wl.label(),
                cfg.label()
            );
            assert!(r.dram_reads() > 0);
        }
    }
}

#[test]
fn mrb_reduces_l3_metadata_traffic_end_to_end() {
    let with = run(chase(40_000, 13), PrefetcherChoice::Triangel);
    let without = run(chase(40_000, 13), PrefetcherChoice::TriangelNoMrb);
    let with_reads = with.cores[0].pf.markov_reads;
    let without_reads = without.cores[0].pf.markov_reads;
    assert!(
        without_reads > with_reads,
        "NoMRB should read the L3 partition more: {} vs {}",
        without_reads,
        with_reads
    );
    assert!(with.cores[0].pf.mrb_hits > 0);
}
