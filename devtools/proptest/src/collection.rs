//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing vectors whose length is drawn from a range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// Vector of values from `element`, with a length in `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let width = (self.len.end - self.len.start) as u64;
        let n = self.len.start + rng.below(width) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
