//! Reproduces Fig. 14 of the paper (including the Triangel-NoMRB
//! configuration). See DESIGN.md's experiment index.

use triangel_bench::{SpecSweep, SweepParams};

fn main() {
    let params = SweepParams::from_env();
    let sweep = SpecSweep::run(SpecSweep::paper_configs_with_nomrb(), &params);
    sweep.fig14_l3().print();
}
