//! Key-stem collision regression: two live keys hashing to the same
//! stem must both stay cached.
//!
//! Before suffix probing, a valid entry under a different key read as
//! a plain miss and the next publish overwrote it — two colliding keys
//! evicted each other on every publish and one re-executed forever.
//! These tests force collisions with `open_with_stem_bits(_, 0)`
//! (every key hashes to stem 0) and pin the probing behaviour: reads
//! walk past foreign entries, publishes land in the first free slot,
//! and both keys hit on the second pass.

use std::sync::Arc;

use triangel_harness::{JobSpec, RunParams, Sweep, SweepOptions, WorkloadSpec};
use triangel_sim::{PrefetcherChoice, RunReport};
use triangel_store::{report_to_bytes, ResultStore};
use triangel_workloads::spec::SpecWorkload;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "triangel-store-collision-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn params() -> RunParams {
    RunParams {
        warmup: 500,
        accesses: 500,
        sizing_window: 250,
        seed: 7,
    }
}

fn job(wl: SpecWorkload, pf: PrefetcherChoice) -> JobSpec {
    JobSpec::new(WorkloadSpec::Spec(wl), pf, params())
}

fn same_bytes(a: &RunReport, b: &RunReport) -> bool {
    report_to_bytes(a) == report_to_bytes(b)
}

#[test]
fn colliding_keys_both_stay_cached() {
    let dir = temp_dir("both-cached");
    // Zero stem bits: every key lands on stem 0 — a forced collision.
    let store = ResultStore::open_with_stem_bits(&dir, 0).unwrap();

    let job_a = job(SpecWorkload::Mcf, PrefetcherChoice::Baseline);
    let job_b = job(SpecWorkload::Mcf, PrefetcherChoice::Triangel);
    assert_ne!(job_a.key(), job_b.key());
    let report_a = job_a.run().unwrap();
    let report_b = job_b.run().unwrap();

    // First pass: both miss, both publish — into distinct slots of the
    // shared stem, not over each other.
    assert!(store.get(&job_a.key()).is_none());
    store.put(&job_a.key(), &report_a);
    assert!(store.get(&job_b.key()).is_none());
    store.put(&job_b.key(), &report_b);

    // Second pass: both keys served from cache (the regression: B's
    // publish used to evict A, and A's re-publish would evict B).
    let back_a = store.get(&job_a.key()).expect("key A evicted by key B");
    let back_b = store.get(&job_b.key()).expect("key B not cached");
    assert!(same_bytes(&back_a, &report_a));
    assert!(same_bytes(&back_b, &report_b));
    assert_eq!(store.stats().discards(), 0);

    // Republishing one key must reuse its own slot, still not evicting
    // the other.
    store.put(&job_a.key(), &report_a);
    assert!(store.get(&job_b.key()).is_some());
    assert!(store.get(&job_a.key()).is_some());

    // Layout check: the base slot plus one suffixed sibling, no more.
    let entries = dir.join("entries");
    let mut names: Vec<String> = std::fs::read_dir(&entries)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".rpt"))
        .collect();
    names.sort();
    let stem = format!("{:016x}", 0u64);
    assert_eq!(names, vec![format!("{stem}-1.rpt"), format!("{stem}.rpt")]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn claims_resolve_collisions_exactly_once() {
    let dir = temp_dir("claims");
    let store = ResultStore::open_with_stem_bits(&dir, 0).unwrap();

    let jobs = [
        job(SpecWorkload::Xalan, PrefetcherChoice::Baseline),
        job(SpecWorkload::Xalan, PrefetcherChoice::Triage),
        job(SpecWorkload::Xalan, PrefetcherChoice::Triangel),
    ];
    // Claim + publish each colliding job, as the sweep scheduler does.
    for j in &jobs {
        match store.claim_blocking(&j.key()).unwrap() {
            triangel_store::Claim::Hit(_) => panic!("nothing published yet"),
            triangel_store::Claim::Lease(lease) => lease.publish(&j.run().unwrap()),
        }
    }
    // Every claim now resolves to a hit without re-executing.
    for j in &jobs {
        match store.claim_blocking(&j.key()).unwrap() {
            triangel_store::Claim::Hit(report) => {
                assert!(same_bytes(&report, &j.run().unwrap()));
            }
            triangel_store::Claim::Lease(_) => panic!("{} re-executed after publish", j.key()),
        }
    }
    assert_eq!(store.stats().discards(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_results_survive_forced_collisions() {
    // End to end: a sweep against a fully-colliding store must produce
    // the same bytes as a plain in-process sweep, and a second pass
    // must execute nothing.
    let dir = temp_dir("sweep");
    let store = Arc::new(ResultStore::open_with_stem_bits(&dir, 0).unwrap());

    let build = || {
        let mut sweep = Sweep::new();
        for wl in [SpecWorkload::Mcf, SpecWorkload::Omnetpp] {
            for pf in [PrefetcherChoice::Baseline, PrefetcherChoice::Triangel] {
                sweep.push(job(wl, pf));
            }
        }
        sweep
    };
    let plain = build().run(&SweepOptions::default());
    let opts = SweepOptions::default().with_store(Arc::clone(&store));
    let first = build().run(&opts);
    let second = build().run(&opts);

    for ((p, f), s) in plain
        .results
        .iter()
        .zip(&first.results)
        .zip(&second.results)
    {
        let (p, f, s) = (
            p.as_ref().unwrap(),
            f.as_ref().unwrap(),
            s.as_ref().unwrap(),
        );
        assert!(same_bytes(p, f), "store pass diverged from plain pass");
        assert!(same_bytes(p, s), "warm pass diverged from plain pass");
    }
    assert_eq!(second.stats.executed, 0, "warm pass must execute nothing");
    let _ = std::fs::remove_dir_all(&dir);
}
