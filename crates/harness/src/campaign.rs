//! Paper-scale campaigns: checkpointable, resumable sweeps.
//!
//! A [`Campaign`] runs [`JobSpec`]s like a [`crate::Sweep`] does, but
//! in *segments*: each job's simulation advances
//! [`CampaignOptions::segment_accesses`] accesses at a time through
//! [`SimSession::run_segment`](triangel_sim::SimSession::run_segment), and after every segment the full
//! simulation state is snapshotted to disk. Killing the process (or
//! exhausting a segment/wall-clock budget) therefore loses at most one
//! segment of work: re-running the same campaign with the same
//! `out_dir` resumes every partial job from its snapshot and skips
//! every finished job entirely, loading its persisted report instead.
//!
//! On-disk layout under `out_dir`:
//!
//! * `manifest.tsv` — one row per unique job: file stem (a hash of the
//!   job key), status (`done`/`partial`), segments executed, accesses
//!   executed, total accesses, and the full job key. Rewritten
//!   atomically (write + rename) after every state change.
//! * `<stem>.snap` — the latest session snapshot of a partial job
//!   (the versioned binary format of [`SimSession::snapshot`](triangel_sim::SimSession::snapshot)).
//!   Removed when the job completes.
//! * `<stem>.report.bin` — the finished job's [`RunReport`], in the
//!   same binary framing, so a resumed campaign reproduces its results
//!   byte-identically without re-simulating.
//!
//! Determinism: segmented execution is byte-identical to uninterrupted
//! execution (the `snapshot_equivalence` suite pins this), and the
//! campaign writes results into per-job slots, so a resumed campaign's
//! output equals a clean run's whatever was interrupted and whatever
//! `--jobs` is.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use triangel_obs::TraceArg;
use triangel_sim::RunReport;
use triangel_store::{key_stem, write_atomic, ResultStore};
use triangel_types::snap::SnapError;

// The report framing grew up and moved out (to `triangel-store`, which
// shares it between campaign artifacts, store entries, and the daemon
// wire protocol); re-exported here so existing callers keep working.
pub use triangel_store::{report_from_bytes, report_to_bytes, REPORT_MAGIC, REPORT_VERSION};

use crate::job::JobSpec;
use crate::pool;
use crate::sweep::{JobError, Progress, ResultCache};

/// Header line opening `manifest.tsv`. v2 inserts a `wall_ms` column
/// (cumulative host wall-time spent executing the job, across every
/// invocation that touched it) before the key; v1 rows are still
/// accepted on load with `wall_ms = 0`. Wall-time is observational —
/// it never enters content keys or resume decisions.
const MANIFEST_HEADER: &str = "# triangel campaign manifest v2";

/// How a campaign executes.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Worker threads; `0` means one per available core.
    pub workers: usize,
    /// Accesses per core to run per segment (the checkpoint interval).
    pub segment_accesses: u64,
    /// Directory for snapshots, reports and the manifest.
    pub out_dir: PathBuf,
    /// Per-segment progress reporting.
    pub progress: Progress,
    /// Maximum segments to execute across the whole invocation
    /// (`None` = unlimited). When the budget runs out, in-flight jobs
    /// checkpoint and report [`JobOutcome::Interrupted`]; a later run
    /// with the same `out_dir` picks them up where they stopped. This
    /// is also how tests and CI force a mid-flight "kill".
    pub max_segments: Option<u64>,
    /// Wall-clock budget for this invocation (`None` = unlimited).
    /// Checked between segments; the campaign checkpoints and stops
    /// issuing work once the deadline passes.
    pub wall_budget: Option<Duration>,
    /// Host-side trace buffer recording per-job and per-segment
    /// wall-time spans (see [`triangel_obs::TraceBuffer`]). Purely
    /// observational: tracing never changes what is simulated or
    /// persisted.
    pub trace: Option<Arc<triangel_obs::TraceBuffer>>,
    /// Shared cross-process [`ResultStore`]. When set, the campaign
    /// serves finished jobs from the store (counted as `loaded`, like
    /// its private `--out-dir` reports) and publishes every report it
    /// finishes — or has finished — back into it, so a later daemon,
    /// sweep, or campaign over the same grid is all hits.
    pub store: Option<Arc<ResultStore>>,
}

impl CampaignOptions {
    /// A campaign writing under `out_dir`, with one worker per core,
    /// 250k-access segments, and no budgets.
    pub fn new(out_dir: impl Into<PathBuf>) -> Self {
        CampaignOptions {
            workers: 0,
            segment_accesses: 250_000,
            out_dir: out_dir.into(),
            progress: Progress::Silent,
            max_segments: None,
            wall_budget: None,
            trace: None,
            store: None,
        }
    }

    /// Sets the worker-thread count (`0` = one per core).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the checkpoint interval in accesses per core.
    ///
    /// # Panics
    ///
    /// Panics if `accesses` is zero.
    #[must_use]
    pub fn segment_accesses(mut self, accesses: u64) -> Self {
        assert!(accesses > 0, "segments must make progress");
        self.segment_accesses = accesses;
        self
    }

    /// Enables per-segment progress lines on stderr.
    #[must_use]
    pub fn with_progress(mut self) -> Self {
        self.progress = Progress::Stderr;
        self
    }

    /// Caps the number of segments this invocation executes.
    #[must_use]
    pub fn max_segments(mut self, segments: u64) -> Self {
        self.max_segments = Some(segments);
        self
    }

    /// Caps this invocation's wall-clock time.
    #[must_use]
    pub fn wall_budget(mut self, budget: Duration) -> Self {
        self.wall_budget = Some(budget);
        self
    }

    /// Records host-side spans (job lifetimes, segment wall-times)
    /// into `trace`.
    #[must_use]
    pub fn with_trace(mut self, trace: Arc<triangel_obs::TraceBuffer>) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Bridges this campaign to a shared cross-process [`ResultStore`]
    /// (see [`CampaignOptions::store`]).
    #[must_use]
    pub fn with_store(mut self, store: Arc<ResultStore>) -> Self {
        self.store = Some(store);
        self
    }
}

/// What happened to one job of a campaign invocation.
#[derive(Debug, Clone)]
pub enum JobOutcome {
    /// The job finished (now or in an earlier invocation); the report
    /// is available.
    Done(Arc<RunReport>),
    /// The job was checkpointed mid-run when a budget ran out; a later
    /// invocation with the same `out_dir` resumes it.
    Interrupted {
        /// Accesses per core executed so far.
        executed: u64,
        /// Accesses per core the job needs in total.
        total: u64,
    },
    /// The job failed.
    Failed(JobError),
}

impl JobOutcome {
    /// The report, if the job finished.
    pub fn report(&self) -> Option<&Arc<RunReport>> {
        match self {
            JobOutcome::Done(r) => Some(r),
            _ => None,
        }
    }
}

/// Execution counters for one campaign invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CampaignStats {
    /// Jobs requested (including duplicates).
    pub jobs: usize,
    /// Unique simulations after key dedup.
    pub unique: usize,
    /// Unique jobs finished by the end of this invocation.
    pub completed: usize,
    /// Unique jobs satisfied from persisted reports without executing
    /// a single access (the campaign-level cache-hit counter).
    pub loaded: usize,
    /// Unique jobs resumed from a mid-run snapshot.
    pub resumed: usize,
    /// Unique jobs left checkpointed when a budget ran out.
    pub interrupted: usize,
    /// Segments executed in this invocation.
    pub segments_run: u64,
    /// Accesses per core simulated in this invocation.
    pub accesses_run: u64,
    /// Jobs that failed.
    pub errors: usize,
}

/// Results of one campaign invocation, in job-submission order.
#[derive(Debug)]
pub struct CampaignReport {
    /// Per-job outcome, indexed like the submitted job list.
    pub outcomes: Vec<JobOutcome>,
    /// The job keys, indexed like `outcomes`.
    pub keys: Vec<String>,
    /// Execution counters.
    pub stats: CampaignStats,
    /// Every finished report, keyed by job key — hand this to
    /// [`crate::SweepOptions::with_cache`] and the ordinary sweep/grid
    /// folds resolve entirely from campaign results.
    pub cache: Arc<ResultCache>,
}

impl CampaignReport {
    /// Whether every job finished.
    pub fn is_complete(&self) -> bool {
        self.outcomes
            .iter()
            .all(|o| matches!(o, JobOutcome::Done(_)))
    }
}

/// One manifest row.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ManifestEntry {
    stem: String,
    done: bool,
    segments: u64,
    executed: u64,
    total: u64,
    /// Cumulative host wall-time spent simulating this job, summed
    /// across every invocation that advanced it. Observational only.
    wall_ms: u64,
    key: String,
}

/// The persisted campaign state: key → entry, mirrored to
/// `manifest.tsv` after every change.
#[derive(Debug, Default)]
struct Manifest {
    entries: HashMap<String, ManifestEntry>,
}

impl Manifest {
    fn load(path: &Path) -> std::io::Result<Manifest> {
        let mut m = Manifest::default();
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(m),
            Err(e) => return Err(e),
        };
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let fields: Vec<&str> = line.splitn(7, '\t').collect();
            // v1 rows carry six columns; v2 inserts `wall_ms` before
            // the key. Distinguish by field count so a v2 binary
            // resumes a v1 campaign directory in place.
            let (stem, status, segments, executed, total, wall_ms, key) = match fields.as_slice() {
                [stem, status, segments, executed, total, key] => {
                    (*stem, *status, *segments, *executed, *total, "0", *key)
                }
                [stem, status, segments, executed, total, wall_ms, key] => {
                    (*stem, *status, *segments, *executed, *total, *wall_ms, *key)
                }
                _ => continue, // tolerate a torn final line from a hard kill
            };
            let (Ok(segments), Ok(executed), Ok(total), Ok(wall_ms)) = (
                segments.parse(),
                executed.parse(),
                total.parse(),
                wall_ms.parse(),
            ) else {
                continue;
            };
            m.entries.insert(
                key.to_string(),
                ManifestEntry {
                    stem: stem.to_string(),
                    done: status == "done",
                    segments,
                    executed,
                    total,
                    wall_ms,
                    key: key.to_string(),
                },
            );
        }
        Ok(m)
    }

    fn render(&self) -> String {
        let mut rows: Vec<&ManifestEntry> = self.entries.values().collect();
        rows.sort_unstable_by(|a, b| a.key.cmp(&b.key));
        let mut out = String::from(MANIFEST_HEADER);
        out.push('\n');
        for e in rows {
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                e.stem,
                if e.done { "done" } else { "partial" },
                e.segments,
                e.executed,
                e.total,
                e.wall_ms,
                e.key,
            ));
        }
        out
    }
}

/// Shared mutable campaign state: the manifest plus its path, guarded
/// so workers can checkpoint concurrently.
struct ManifestStore {
    path: PathBuf,
    manifest: Mutex<Manifest>,
}

impl ManifestStore {
    fn update(&self, entry: ManifestEntry) {
        let mut m = self.manifest.lock().unwrap();
        m.entries.insert(entry.key.clone(), entry);
        let rendered = m.render();
        // Persist while holding the lock so renders never interleave.
        if let Err(e) = write_atomic(&self.path, rendered.as_bytes()) {
            eprintln!("[campaign] manifest write failed: {e}");
        }
    }
}

/// A resumable, checkpointed sweep of [`JobSpec`]s.
#[derive(Debug, Default)]
pub struct Campaign {
    jobs: Vec<JobSpec>,
}

impl Campaign {
    /// An empty campaign.
    pub fn new() -> Self {
        Campaign::default()
    }

    /// Adds a job, returning its index in the report.
    pub fn push(&mut self, job: JobSpec) -> usize {
        self.jobs.push(job);
        self.jobs.len() - 1
    }

    /// Adds a job, builder-style.
    #[must_use]
    pub fn job(mut self, job: JobSpec) -> Self {
        self.jobs.push(job);
        self
    }

    /// Adds every job of an iterator.
    #[must_use]
    pub fn jobs(mut self, jobs: impl IntoIterator<Item = JobSpec>) -> Self {
        self.jobs.extend(jobs);
        self
    }

    /// The submitted job list.
    pub fn job_list(&self) -> &[JobSpec] {
        &self.jobs
    }

    /// Runs (or resumes) the campaign.
    ///
    /// Jobs already finished under `opts.out_dir` load their persisted
    /// reports without executing; partially finished jobs restore their
    /// snapshots and continue from the interrupted segment. The
    /// assembled results are byte-identical to a clean, uninterrupted
    /// run of the same job list.
    ///
    /// # Errors
    ///
    /// I/O errors preparing the output directory or reading the
    /// manifest. Per-job failures are reported in the outcomes, not
    /// here.
    pub fn run(&self, opts: &CampaignOptions) -> std::io::Result<CampaignReport> {
        std::fs::create_dir_all(&opts.out_dir)?;
        let manifest_path = opts.out_dir.join("manifest.tsv");
        let store = ManifestStore {
            manifest: Mutex::new(Manifest::load(&manifest_path)?),
            path: manifest_path,
        };

        let keys: Vec<String> = self.jobs.iter().map(JobSpec::key).collect();

        // Dedup to unique keys, preserving first-occurrence order.
        let mut unique: Vec<(&JobSpec, &str)> = Vec::new();
        let mut slot_of_key: HashMap<&str, usize> = HashMap::new();
        for (job, key) in self.jobs.iter().zip(&keys) {
            if !slot_of_key.contains_key(key.as_str()) {
                slot_of_key.insert(key, unique.len());
                unique.push((job, key));
            }
        }

        let segment_budget = AtomicI64::new(match opts.max_segments {
            Some(n) => i64::try_from(n).unwrap_or(i64::MAX),
            None => i64::MAX,
        });
        let deadline = opts.wall_budget.map(|b| Instant::now() + b);
        let segments_run = AtomicU64::new(0);
        let accesses_run = AtomicU64::new(0);
        let loaded = AtomicU64::new(0);
        let resumed = AtomicU64::new(0);

        let outcomes: Vec<JobOutcome> =
            pool::run_indexed(unique.len(), opts.workers_effective(), |i| {
                let (job, key) = unique[i];
                self.run_one(
                    job,
                    key,
                    opts,
                    &store,
                    &segment_budget,
                    deadline,
                    &segments_run,
                    &accesses_run,
                    &loaded,
                    &resumed,
                )
            });

        // Publish finished reports to a cache keyed like sweeps are.
        let cache = Arc::new(ResultCache::new());
        for ((_, key), outcome) in unique.iter().zip(&outcomes) {
            if let JobOutcome::Done(report) = outcome {
                cache.insert(key.to_string(), Arc::clone(report));
            }
        }

        let results: Vec<JobOutcome> = keys
            .iter()
            .map(|key| outcomes[slot_of_key[key.as_str()]].clone())
            .collect();
        let stats = CampaignStats {
            jobs: self.jobs.len(),
            unique: unique.len(),
            completed: outcomes
                .iter()
                .filter(|o| matches!(o, JobOutcome::Done(_)))
                .count(),
            loaded: loaded.load(Ordering::Relaxed) as usize,
            resumed: resumed.load(Ordering::Relaxed) as usize,
            interrupted: outcomes
                .iter()
                .filter(|o| matches!(o, JobOutcome::Interrupted { .. }))
                .count(),
            segments_run: segments_run.load(Ordering::Relaxed),
            accesses_run: accesses_run.load(Ordering::Relaxed),
            errors: outcomes
                .iter()
                .filter(|o| matches!(o, JobOutcome::Failed(_)))
                .count(),
        };
        Ok(CampaignReport {
            outcomes: results,
            keys,
            stats,
            cache,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn run_one(
        &self,
        job: &JobSpec,
        key: &str,
        opts: &CampaignOptions,
        store: &ManifestStore,
        segment_budget: &AtomicI64,
        deadline: Option<Instant>,
        segments_run: &AtomicU64,
        accesses_run: &AtomicU64,
        loaded: &AtomicU64,
        resumed: &AtomicU64,
    ) -> JobOutcome {
        let stem = key_stem(key);
        let snap_path = opts.out_dir.join(format!("{stem}.snap"));
        let report_path = opts.out_dir.join(format!("{stem}.report.bin"));
        let progress = opts.progress == Progress::Stderr;
        let trace = opts.trace.as_deref();
        let job_start = trace.map(|t| t.now_us());
        // Closes this job's wall-time span in the host trace; tagged
        // with how the job left this invocation.
        let job_span = |outcome: &str| {
            if let (Some(t), Some(start)) = (trace, job_start) {
                t.complete(
                    &format!("job {}", job.workload.label()),
                    "campaign",
                    start,
                    vec![
                        ("key".to_string(), TraceArg::Str(key.to_string())),
                        ("outcome".to_string(), TraceArg::Str(outcome.to_string())),
                    ],
                );
            }
        };

        // Finished in an earlier invocation: load the persisted report.
        let prior = {
            let m = store.manifest.lock().unwrap();
            m.entries.get(key).cloned()
        };
        // Wall-time already spent on this job by earlier invocations;
        // this invocation's segments accumulate on top.
        let mut wall_ms = prior.as_ref().map_or(0, |e| e.wall_ms);
        if let Some(entry) = &prior {
            if entry.done {
                match std::fs::read(&report_path)
                    .map_err(|e| SnapError::corrupt(e.to_string()))
                    .and_then(|b| report_from_bytes(&b))
                {
                    Ok(report) => {
                        loaded.fetch_add(1, Ordering::Relaxed);
                        let report = Arc::new(report);
                        // Bridge to the shared store: a report this
                        // campaign already owns becomes a hit for every
                        // other process sweeping the same grid.
                        if let Some(shared) = &opts.store {
                            if shared.get(key).is_none() {
                                shared.put(key, &report);
                            }
                        }
                        if progress {
                            eprintln!("[campaign] loaded  {key}");
                        }
                        job_span("loaded");
                        return JobOutcome::Done(report);
                    }
                    Err(e) => {
                        // Stale or corrupt artifact: re-run from scratch.
                        eprintln!("[campaign] discarding report for {key}: {e}");
                    }
                }
            }
        }

        let mut session = match job.session() {
            Ok(s) => s,
            Err(e) => {
                job_span("failed");
                return JobOutcome::Failed(JobError {
                    key: key.to_string(),
                    message: e.to_string(),
                });
            }
        };
        let total = session.total_accesses();
        let mut segments_done = 0u64;

        // Finished by some *other* process sharing the store: persist
        // its report as our own artifact and serve it without
        // simulating — the cross-process analogue of the
        // report-loaded path above.
        if let Some(report) = opts.store.as_ref().and_then(|s| s.get(key)) {
            if let Err(e) = write_atomic(&report_path, &report_to_bytes(&report)) {
                eprintln!("[campaign] report write failed for {key}: {e}");
            }
            store.update(ManifestEntry {
                stem: stem.clone(),
                done: true,
                segments: 0,
                executed: total,
                total,
                wall_ms,
                key: key.to_string(),
            });
            let _ = std::fs::remove_file(&snap_path);
            loaded.fetch_add(1, Ordering::Relaxed);
            if progress {
                eprintln!("[campaign] loaded  {key} (from store)");
            }
            job_span("loaded");
            return JobOutcome::Done(report);
        }

        // Partially finished earlier: restore the checkpoint.
        if let Some(entry) = prior.filter(|e| !e.done) {
            match std::fs::read(&snap_path)
                .map_err(|e| SnapError::corrupt(e.to_string()))
                .and_then(|b| session.restore(&b))
            {
                Ok(()) => {
                    segments_done = entry.segments;
                    resumed.fetch_add(1, Ordering::Relaxed);
                    if progress {
                        eprintln!(
                            "[campaign] resumed {key} at {}/{total}",
                            session.executed_accesses()
                        );
                    }
                }
                Err(e) => {
                    eprintln!("[campaign] discarding snapshot for {key}: {e}");
                    session = match job.session() {
                        Ok(s) => s,
                        Err(e) => {
                            job_span("failed");
                            return JobOutcome::Failed(JobError {
                                key: key.to_string(),
                                message: e.to_string(),
                            });
                        }
                    };
                }
            }
        }

        // Whether this session's state can be checkpointed at all
        // (custom boxed sources cannot); decided on first attempt.
        let mut checkpointable = true;
        // Segments executed by *this* invocation: a budget that bites
        // before the first one means nothing changed on disk, so no
        // snapshot or manifest write is owed.
        let mut ran_this_invocation = false;
        let checkpoint = |done: bool, segments: u64, executed: u64, wall_ms: u64| {
            store.update(ManifestEntry {
                stem: stem.clone(),
                done,
                segments,
                executed,
                total,
                wall_ms,
                key: key.to_string(),
            });
        };

        while !session.is_complete() {
            let out_of_budget = segment_budget.fetch_sub(1, Ordering::SeqCst) <= 0
                || deadline.is_some_and(|d| Instant::now() >= d);
            if out_of_budget {
                if ran_this_invocation {
                    if checkpointable {
                        match session.snapshot() {
                            Ok(bytes) => {
                                if let Err(e) = write_atomic(&snap_path, &bytes) {
                                    eprintln!("[campaign] checkpoint write failed for {key}: {e}");
                                }
                            }
                            Err(e) => eprintln!("[campaign] checkpoint failed for {key}: {e}"),
                        }
                    }
                    checkpoint(false, segments_done, session.executed_accesses(), wall_ms);
                }
                if progress {
                    eprintln!(
                        "[campaign] paused  {key} at {}/{total} (budget exhausted)",
                        session.executed_accesses()
                    );
                }
                job_span("interrupted");
                return JobOutcome::Interrupted {
                    executed: session.executed_accesses(),
                    total,
                };
            }

            let seg_wall = Instant::now();
            let seg_span = trace.map(|t| t.now_us());
            let ran = session.run_segment(opts.segment_accesses);
            wall_ms += u64::try_from(seg_wall.elapsed().as_millis()).unwrap_or(u64::MAX);
            if let (Some(t), Some(start)) = (trace, seg_span) {
                t.complete(
                    "segment",
                    "campaign",
                    start,
                    vec![
                        ("key".to_string(), TraceArg::Str(key.to_string())),
                        (
                            "end_access".to_string(),
                            TraceArg::U64(session.executed_accesses()),
                        ),
                        ("ran".to_string(), TraceArg::U64(ran)),
                    ],
                );
            }
            segments_done += 1;
            ran_this_invocation = true;
            segments_run.fetch_add(1, Ordering::Relaxed);
            accesses_run.fetch_add(ran, Ordering::Relaxed);
            if progress {
                eprintln!(
                    "[campaign] segment {key} {}/{total} ({:.0}%)",
                    session.executed_accesses(),
                    100.0 * session.executed_accesses() as f64 / total.max(1) as f64,
                );
            }

            if !session.is_complete() && checkpointable {
                match session.snapshot() {
                    Ok(bytes) => {
                        if let Err(e) = write_atomic(&snap_path, &bytes) {
                            eprintln!("[campaign] checkpoint write failed for {key}: {e}");
                        } else {
                            checkpoint(false, segments_done, session.executed_accesses(), wall_ms);
                        }
                    }
                    Err(SnapError::Unsupported(why)) => {
                        // Run on without checkpoints rather than fail.
                        eprintln!("[campaign] {key}: not checkpointable ({why})");
                        checkpointable = false;
                    }
                    Err(e) => eprintln!("[campaign] checkpoint failed for {key}: {e}"),
                }
            }
        }

        let report = Arc::new(session.report());
        if let Err(e) = write_atomic(&report_path, &report_to_bytes(&report)) {
            eprintln!("[campaign] report write failed for {key}: {e}");
        }
        if let Some(shared) = &opts.store {
            shared.put(key, &report);
        }
        checkpoint(true, segments_done, total, wall_ms);
        let _ = std::fs::remove_file(&snap_path);
        if progress {
            eprintln!("[campaign] done    {key}");
        }
        job_span("done");
        JobOutcome::Done(report)
    }
}

impl CampaignOptions {
    fn workers_effective(&self) -> usize {
        if self.workers == 0 {
            pool::default_workers()
        } else {
            self.workers
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_stems_are_stable_and_distinct() {
        let a = key_stem("spec:Xalan|pf=Triangel");
        assert_eq!(a, key_stem("spec:Xalan|pf=Triangel"));
        assert_ne!(a, key_stem("spec:Xalan|pf=Triage"));
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn manifest_round_trips() {
        let mut m = Manifest::default();
        m.entries.insert(
            "k1".into(),
            ManifestEntry {
                stem: "abc".into(),
                done: false,
                segments: 3,
                executed: 750,
                total: 1000,
                wall_ms: 412,
                key: "k1".into(),
            },
        );
        m.entries.insert(
            "k2".into(),
            ManifestEntry {
                stem: "def".into(),
                done: true,
                segments: 4,
                executed: 1000,
                total: 1000,
                wall_ms: 0,
                key: "k2".into(),
            },
        );
        let rendered = m.render();
        assert!(rendered.starts_with(MANIFEST_HEADER));
        let dir = std::env::temp_dir().join(format!("triangel-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("manifest.tsv");
        write_atomic(&path, rendered.as_bytes()).unwrap();
        let loaded = Manifest::load(&path).unwrap();
        assert_eq!(loaded.entries.get("k1"), m.entries.get("k1"));
        assert_eq!(loaded.entries.get("k2"), m.entries.get("k2"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn v1_manifest_rows_load_with_zero_wall_time() {
        // A manifest written by a pre-wall-time binary resumes in
        // place: six-column rows parse with `wall_ms = 0`.
        let dir = std::env::temp_dir().join(format!("triangel-manifest-v1-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("manifest.tsv");
        let v1 = "# triangel campaign manifest v1\n\
                  abc\tpartial\t3\t750\t1000\tk1\n\
                  def\tdone\t4\t1000\t1000\tk2\n";
        write_atomic(&path, v1.as_bytes()).unwrap();
        let loaded = Manifest::load(&path).unwrap();
        assert_eq!(loaded.entries.len(), 2);
        let k1 = loaded.entries.get("k1").unwrap();
        assert_eq!((k1.segments, k1.executed, k1.wall_ms), (3, 750, 0));
        assert!(loaded.entries.get("k2").unwrap().done);
        // Rendering upgrades the directory to the v2 schema.
        assert!(loaded.render().starts_with(MANIFEST_HEADER));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_is_empty() {
        let m = Manifest::load(Path::new("/nonexistent/manifest.tsv")).unwrap();
        assert!(m.entries.is_empty());
    }

    #[test]
    fn sampled_report_framing_round_trips() {
        use crate::{JobSpec, RunParams, WorkloadSpec};
        use triangel_sim::PrefetcherChoice;
        use triangel_workloads::spec::SpecWorkload;

        let job = JobSpec::new(
            WorkloadSpec::Spec(SpecWorkload::Mcf),
            PrefetcherChoice::Triangel,
            RunParams {
                warmup: 400,
                accesses: 600,
                sizing_window: 300,
                seed: 7,
            },
        )
        .sample_every(200);
        let report = job.run().unwrap();
        let series = report.intervals.as_ref().expect("sampling was on");
        assert_eq!(series.len(), 3);

        let bytes = report_to_bytes(&report);
        let back = report_from_bytes(&bytes).unwrap();
        assert_eq!(format!("{report:?}"), format!("{back:?}"));
        assert_eq!(back.intervals, report.intervals);

        // And an unsampled report still frames as intervals-absent.
        let plain = job.clone().sample_every(0).run().unwrap();
        assert!(plain.intervals.is_none());
        let back = report_from_bytes(&report_to_bytes(&plain)).unwrap();
        assert!(back.intervals.is_none());
    }
}
