//! JSON and CSV emitters for figure tables and sweep reports.
//!
//! Hand-rolled (the workspace has no serialization dependency) and
//! deterministic: emitting the same data twice yields identical bytes,
//! which the harness's reproducibility tests rely on.

use triangel_sim::report::FigureTable;
use triangel_sim::RunReport;

use crate::sweep::SweepReport;

/// Escapes a string for a JSON literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders an `f64` as a JSON number (shortest round-trip form; NaN and
/// infinities become `null`).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

fn json_f64_list(vs: &[f64]) -> String {
    let items: Vec<String> = vs.iter().map(|v| json_f64(*v)).collect();
    format!("[{}]", items.join(","))
}

/// Serializes a figure table as JSON.
pub fn table_to_json(t: &FigureTable) -> String {
    let configs: Vec<String> = t.configs().iter().map(|c| json_str(c)).collect();
    let rows: Vec<String> = t
        .rows()
        .iter()
        .map(|(label, vals)| {
            format!(
                "{{\"workload\":{},\"values\":{}}}",
                json_str(label),
                json_f64_list(vals)
            )
        })
        .collect();
    let geomean = if t.has_geomean() {
        format!(",\"geomean\":{}", json_f64_list(&t.geomeans()))
    } else {
        String::new()
    };
    format!(
        "{{\"title\":{},\"metric\":{},\"configs\":[{}],\"rows\":[{}]{}}}",
        json_str(t.title()),
        json_str(t.metric()),
        configs.join(","),
        rows.join(","),
        geomean,
    )
}

/// Renders an `f64` as a CSV field, mirroring the JSON emitter's
/// treatment of non-finite values (an empty field, CSV's "missing").
fn csv_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        String::new()
    }
}

/// Escapes one CSV field (RFC 4180 quoting).
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Serializes a figure table as CSV: a header row, one row per
/// workload, and a final geomean row when the table has one.
pub fn table_to_csv(t: &FigureTable) -> String {
    let mut out = String::new();
    out.push_str("workload");
    for c in t.configs() {
        out.push(',');
        out.push_str(&csv_field(c));
    }
    out.push('\n');
    for (label, vals) in t.rows() {
        out.push_str(&csv_field(label));
        for v in vals {
            out.push_str(&format!(",{}", csv_f64(*v)));
        }
        out.push('\n');
    }
    if t.has_geomean() {
        out.push_str("geomean");
        for v in t.geomeans() {
            out.push_str(&format!(",{}", csv_f64(v)));
        }
        out.push('\n');
    }
    out
}

/// One timed measurement of the perf smoke sweep: a label naming the
/// code state it was taken under, and the observed wall time / rate.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfRecord {
    /// What was measured (e.g. `"PR 1 side-table hot path"`).
    pub label: String,
    /// Wall-clock milliseconds for the whole sweep.
    pub wall_ms: f64,
    /// Simulated accesses (warm-up + measured) per wall-clock second.
    pub accesses_per_sec: f64,
}

/// One point of the parallel-scaling curve: the same fixed sweep run
/// under a worker pool instead of serially.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfScalingPoint {
    /// Worker threads the sweep was scheduled across (`--jobs N`).
    pub workers: usize,
    /// Wall-clock milliseconds for the whole sweep at this width.
    pub wall_ms: f64,
    /// Simulated accesses per wall-clock second at this width.
    pub accesses_per_sec: f64,
    /// Throughput ratio over the same run's serial measurement
    /// (ideal = `workers`; the gap is scheduler + memory-bandwidth
    /// overhead).
    pub speedup_vs_serial: f64,
}

/// The per-cell cost measurement: the same workload list timed once
/// under the stride-only baseline and once under full Triangel, both
/// serial. The `ratio` (Triangel cell ÷ baseline cell) isolates what
/// the temporal prefetcher's metadata tables add to one simulation —
/// the number the arena refactor tracks, independent of whole-sweep
/// composition.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfCellCost {
    /// Wall-clock milliseconds for the baseline-only job list.
    pub baseline_wall_ms: f64,
    /// Wall-clock milliseconds for the Triangel-only job list.
    pub triangel_wall_ms: f64,
    /// `triangel_wall_ms / baseline_wall_ms` (1.0 = metadata free).
    pub ratio: f64,
}

/// The repo's perf-trajectory artefact (`BENCH_perf.json`): a fixed
/// smoke sweep timed under the current build, against the recorded
/// baseline it is tracked from. Wall times are machine-dependent; the
/// `speedup` ratio of two runs on the *same* machine is the tracked
/// number.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Human description of the fixed sweep (workloads × configs × scale).
    pub sweep: String,
    /// Simulations the sweep runs.
    pub jobs: usize,
    /// Total simulated accesses across all jobs (warm-up + measured).
    pub total_accesses: u64,
    /// The recorded reference measurement.
    pub baseline: PerfRecord,
    /// The measurement just taken.
    pub current: PerfRecord,
    /// The parallel-scaling curve (jobs ∈ {1, 2, N}), empty when only
    /// the serial number was measured.
    pub scaling: Vec<PerfScalingPoint>,
    /// The per-cell Triangel ÷ baseline cost measurement.
    pub cell_cost: PerfCellCost,
}

impl PerfReport {
    /// Throughput ratio of `current` over `baseline` (>1 is faster).
    pub fn speedup(&self) -> f64 {
        self.current.accesses_per_sec / self.baseline.accesses_per_sec
    }
}

fn perf_record_json(r: &PerfRecord) -> String {
    format!(
        "{{\"label\":{},\"wall_ms\":{},\"accesses_per_sec\":{}}}",
        json_str(&r.label),
        json_f64(r.wall_ms),
        json_f64(r.accesses_per_sec),
    )
}

fn perf_scaling_json(p: &PerfScalingPoint) -> String {
    format!(
        "{{\"workers\":{},\"wall_ms\":{},\"accesses_per_sec\":{},\"speedup_vs_serial\":{}}}",
        p.workers,
        json_f64(p.wall_ms),
        json_f64(p.accesses_per_sec),
        json_f64(p.speedup_vs_serial),
    )
}

/// Serializes a perf report as JSON (the `BENCH_perf.json` schema).
///
/// Schema history: 2 = adds the parallel-scaling curve; 3 = adds the
/// `cell_cost` object with the per-cell Triangel ÷ baseline `ratio`.
pub fn perf_to_json(r: &PerfReport) -> String {
    let scaling: Vec<String> = r.scaling.iter().map(perf_scaling_json).collect();
    format!(
        "{{\"schema\":3,\"figure\":\"perf\",\"sweep\":{},\"jobs\":{},\"total_accesses\":{},\"baseline\":{},\"current\":{},\"speedup\":{},\"scaling\":[{}],\"cell_cost\":{{\"baseline_wall_ms\":{},\"triangel_wall_ms\":{},\"ratio\":{}}}}}",
        json_str(&r.sweep),
        r.jobs,
        r.total_accesses,
        perf_record_json(&r.baseline),
        perf_record_json(&r.current),
        json_f64(r.speedup()),
        scaling.join(","),
        json_f64(r.cell_cost.baseline_wall_ms),
        json_f64(r.cell_cost.triangel_wall_ms),
        json_f64(r.cell_cost.ratio),
    )
}

/// One cell of the `features` ablation: the comparison metrics of a
/// `(workload, ladder step, gate)` configuration against its
/// stride-only baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureCell {
    /// IPC over the stride-only baseline.
    pub speedup: f64,
    /// Prefetch accuracy (used / resolved temporal fills).
    pub accuracy: f64,
    /// Fraction of baseline L2 demand misses eliminated.
    pub coverage: f64,
    /// DRAM line reads relative to baseline.
    pub dram_traffic: f64,
}

/// One ladder step of the `features` ablation for one workload: the
/// gate-off and gate-on measurements side by side.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureStep {
    /// Ladder step index (0 = Triage-Deg-4, 8 = full Triangel).
    pub step: usize,
    /// The step's Fig. 20 label.
    pub label: String,
    /// Metrics with `train_on_eviction` off.
    pub off: FeatureCell,
    /// Metrics with `train_on_eviction` on.
    pub on: FeatureCell,
}

/// One workload row of the `features` ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureRow {
    /// Workload label.
    pub workload: String,
    /// One entry per ladder step.
    pub steps: Vec<FeatureStep>,
}

/// The `features` ablation artefact (`BENCH_features.json`): the
/// Fig. 20 feature ladder swept with the experimental
/// `train_on_eviction` gate off and on, per workload. Unlike the perf
/// artefact this carries no wall-clock numbers, so its bytes are fully
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct FeaturesReport {
    /// Human description of the fixed sweep.
    pub sweep: String,
    /// Per-workload results.
    pub rows: Vec<FeatureRow>,
}

fn feature_cell_json(c: &FeatureCell) -> String {
    format!(
        "{{\"speedup\":{},\"accuracy\":{},\"coverage\":{},\"dram_traffic\":{}}}",
        json_f64(c.speedup),
        json_f64(c.accuracy),
        json_f64(c.coverage),
        json_f64(c.dram_traffic),
    )
}

/// Serializes a features report as JSON (the `BENCH_features.json`
/// schema). Deterministic: equal reports emit equal bytes.
pub fn features_to_json(r: &FeaturesReport) -> String {
    let rows: Vec<String> = r
        .rows
        .iter()
        .map(|row| {
            let steps: Vec<String> = row
                .steps
                .iter()
                .map(|s| {
                    format!(
                        "{{\"step\":{},\"label\":{},\"off\":{},\"on\":{}}}",
                        s.step,
                        json_str(&s.label),
                        feature_cell_json(&s.off),
                        feature_cell_json(&s.on),
                    )
                })
                .collect();
            format!(
                "{{\"workload\":{},\"steps\":[{}]}}",
                json_str(&row.workload),
                steps.join(",")
            )
        })
        .collect();
    format!(
        "{{\"schema\":1,\"figure\":\"features\",\"sweep\":{},\"rows\":[{}]}}",
        json_str(&r.sweep),
        rows.join(","),
    )
}

/// One configuration cell of the `traces` figure: the comparison
/// metrics of one prefetcher configuration against the row's
/// stride-only baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceCell {
    /// Configuration label (e.g. `"Triangel"`).
    pub config: String,
    /// IPC over the stride-only baseline.
    pub speedup: f64,
    /// Prefetch accuracy (used / resolved temporal fills).
    pub accuracy: f64,
    /// Fraction of baseline L2 demand misses eliminated.
    pub coverage: f64,
    /// DRAM line reads relative to baseline.
    pub dram_traffic: f64,
}

/// Where one `traces` row's accesses come from.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceProvenance {
    /// A synthetic irregular-family generator.
    Generator,
    /// A recorded trace file replayed under the looping end-of-trace
    /// policy. Carries the header digest and the per-core access count
    /// the row simulated, so the wrap arithmetic is evident in the
    /// artefact: a reader can see exactly how much of the measurement
    /// re-walked the same recording.
    Recorded {
        /// Record count from the trace header.
        records: u64,
        /// Payload checksum from the trace header.
        checksum: u64,
        /// Accesses each core replayed (warm-up + measured).
        replayed: u64,
    },
}

/// One workload row of the `traces` figure.
#[derive(Debug, Clone, PartialEq)]
pub struct TracesRow {
    /// Workload label (family name or trace file name).
    pub workload: String,
    /// Generator or recorded trace.
    pub provenance: TraceProvenance,
    /// One cell per configuration column.
    pub cells: Vec<TraceCell>,
}

/// The `traces` artefact (`BENCH_traces.json`): the irregular workload
/// families and a recorded-trace replay, each compared against its
/// stride-only baseline. Carries no wall-clock numbers, so its bytes
/// are fully deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct TracesReport {
    /// Human description of the fixed sweep.
    pub sweep: String,
    /// Per-workload rows.
    pub rows: Vec<TracesRow>,
}

fn trace_cell_json(c: &TraceCell) -> String {
    format!(
        "{{\"config\":{},\"speedup\":{},\"accuracy\":{},\"coverage\":{},\"dram_traffic\":{}}}",
        json_str(&c.config),
        json_f64(c.speedup),
        json_f64(c.accuracy),
        json_f64(c.coverage),
        json_f64(c.dram_traffic),
    )
}

/// Serializes a traces report as JSON (the `BENCH_traces.json`
/// schema). Deterministic: equal reports emit equal bytes.
pub fn traces_to_json(r: &TracesReport) -> String {
    let rows: Vec<String> = r
        .rows
        .iter()
        .map(|row| {
            let cells: Vec<String> = row.cells.iter().map(trace_cell_json).collect();
            let provenance = match &row.provenance {
                TraceProvenance::Generator => {
                    "\"source\":\"generator\",\"trace\":null".to_string()
                }
                TraceProvenance::Recorded {
                    records,
                    checksum,
                    replayed,
                } => format!(
                    "\"source\":\"recorded\",\"trace\":{{\"records\":{records},\"checksum\":{},\"replayed\":{replayed},\"wraps\":{}}}",
                    json_str(&format!("{checksum:016x}")),
                    *replayed / (*records).max(1),
                ),
            };
            format!(
                "{{\"workload\":{},{provenance},\"cells\":[{}]}}",
                json_str(&row.workload),
                cells.join(",")
            )
        })
        .collect();
    format!(
        "{{\"schema\":1,\"figure\":\"traces\",\"sweep\":{},\"rows\":[{}]}}",
        json_str(&r.sweep),
        rows.join(","),
    )
}

/// One per-interval point of a timeline series, already differenced
/// (see [`triangel_obs::IntervalSeries::windows`]) and normalized
/// against the stride-only baseline where a baseline exists.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelinePoint {
    /// Measured accesses completed at the end of this interval.
    pub end_access: u64,
    /// IPC within the interval.
    pub ipc: f64,
    /// L2 demand miss rate within the interval.
    pub l2_miss_rate: f64,
    /// Temporal prefetches issued within the interval.
    pub issued: u64,
    /// Temporal prefetches used within the interval.
    pub useful: u64,
    /// Temporal prefetches evicted dead within the interval.
    pub wasted: u64,
    /// Cumulative prefetch accuracy up to the end of the interval.
    pub accuracy_so_far: f64,
    /// Cumulative fraction of the baseline's L2 demand misses
    /// eliminated so far (0 for the baseline's own series).
    pub coverage_so_far: f64,
    /// Markov-table occupancy (entries) at the end of the interval.
    pub markov_occupancy: u64,
    /// L3 ways granted to the Markov partition at the end of the
    /// interval.
    pub markov_ways: u64,
    /// Ways the prefetcher wanted at the end of the interval.
    pub desired_ways: u64,
}

/// One configuration's timeline over a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineSeries {
    /// Configuration label (e.g. `"Triangel+EvictTrain"`).
    pub config: String,
    /// Per-interval points, in simulation-time order.
    pub points: Vec<TimelinePoint>,
}

impl TimelineSeries {
    /// Builds a timeline series from a recorded interval series,
    /// differencing adjacent samples and computing cumulative coverage
    /// against `baseline` (the stride-only run's series over the same
    /// workload at the same period). With no baseline, coverage is 0.
    pub fn from_intervals(
        config: impl Into<String>,
        series: &triangel_obs::IntervalSeries,
        baseline: Option<&triangel_obs::IntervalSeries>,
    ) -> Self {
        let points = series
            .windows()
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let coverage_so_far = baseline.and_then(|b| b.samples.get(i)).map_or(0.0, |base| {
                    let own = series.samples[i].l2_demand_misses;
                    let base = base.l2_demand_misses;
                    if base == 0 {
                        0.0
                    } else {
                        (base as f64 - own as f64) / base as f64
                    }
                });
                TimelinePoint {
                    end_access: w.end_access,
                    ipc: w.ipc,
                    l2_miss_rate: w.l2_miss_rate,
                    issued: w.issued,
                    useful: w.useful,
                    wasted: w.wasted,
                    accuracy_so_far: w.accuracy_so_far,
                    coverage_so_far,
                    markov_occupancy: w.markov_occupancy,
                    markov_ways: w.markov_ways,
                    desired_ways: w.desired_ways,
                }
            })
            .collect();
        TimelineSeries {
            config: config.into(),
            points,
        }
    }
}

/// One workload row of the timeline figure: the same workload under
/// several configurations, sampled at the same period.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineRow {
    /// Workload label.
    pub workload: String,
    /// One series per configuration.
    pub series: Vec<TimelineSeries>,
}

/// The timeline artefact (`BENCH_timeline.json`): per-interval
/// time-series over the run, diagnosing *when* in a run a
/// configuration's behaviour diverges (the EvictTrain coverage
/// collapse). Carries no wall-clock numbers, so its bytes are fully
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineReport {
    /// Human description of the fixed sweep.
    pub sweep: String,
    /// Sampling period in measured accesses.
    pub every: u64,
    /// Per-workload timelines.
    pub rows: Vec<TimelineRow>,
}

fn timeline_point_json(p: &TimelinePoint) -> String {
    format!(
        "{{\"end_access\":{},\"ipc\":{},\"l2_miss_rate\":{},\"issued\":{},\"useful\":{},\"wasted\":{},\"accuracy_so_far\":{},\"coverage_so_far\":{},\"markov_occupancy\":{},\"markov_ways\":{},\"desired_ways\":{}}}",
        p.end_access,
        json_f64(p.ipc),
        json_f64(p.l2_miss_rate),
        p.issued,
        p.useful,
        p.wasted,
        json_f64(p.accuracy_so_far),
        json_f64(p.coverage_so_far),
        p.markov_occupancy,
        p.markov_ways,
        p.desired_ways,
    )
}

/// Serializes a timeline report as JSON (the `BENCH_timeline.json`
/// schema). Deterministic: equal reports emit equal bytes.
pub fn timeline_to_json(r: &TimelineReport) -> String {
    let rows: Vec<String> = r
        .rows
        .iter()
        .map(|row| {
            let series: Vec<String> = row
                .series
                .iter()
                .map(|s| {
                    let points: Vec<String> = s.points.iter().map(timeline_point_json).collect();
                    format!(
                        "{{\"config\":{},\"points\":[{}]}}",
                        json_str(&s.config),
                        points.join(",")
                    )
                })
                .collect();
            format!(
                "{{\"workload\":{},\"series\":[{}]}}",
                json_str(&row.workload),
                series.join(",")
            )
        })
        .collect();
    format!(
        "{{\"schema\":1,\"figure\":\"timeline\",\"sweep\":{},\"every\":{},\"rows\":[{}]}}",
        json_str(&r.sweep),
        r.every,
        rows.join(","),
    )
}

/// One `(core count, configuration)` cell of the multi-core scaling
/// figure.
#[derive(Debug, Clone, PartialEq)]
pub struct MulticoreRow {
    /// Cores the system was configured with
    /// ([`triangel_sim::SystemConfig::paper_n_core`]).
    pub n_cores: usize,
    /// Configuration label (e.g. `"Triangel"`).
    pub config: String,
    /// Per-core IPC, indexed by core. Computed from each core's own
    /// retire clock — *not* from the aggregate max-over-cores cycle
    /// count, which would understate every core but the slowest.
    pub core_ipc: Vec<f64>,
    /// Whole-system IPC (total instructions over the slowest core's
    /// cycles).
    pub aggregate_ipc: f64,
    /// Total DRAM line reads across all channels.
    pub dram_reads: u64,
    /// Total cycles requests spent queued behind DRAM bandwidth (the
    /// congestion indicator the channel scaling is meant to relieve).
    pub dram_queue_delay: u64,
    /// Markov-partition occupancy (entries) at the end of the run, 0
    /// for prefetcher-less configurations.
    pub markov_occupancy: u64,
    /// L3 ways granted to the Markov partition at the end of the run.
    pub markov_ways: u64,
}

/// The multi-core scaling artefact (`BENCH_multicore.json`): the same
/// workload replicated across 1..N cores on the contended N-core
/// timing model, under the stride-only baseline and Triangel. Carries
/// no wall-clock numbers, so its bytes are fully deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct MulticoreReport {
    /// Human description of the fixed sweep.
    pub sweep: String,
    /// Workload label each core runs.
    pub workload: String,
    /// One row per `(core count, configuration)`, core counts ascending.
    pub rows: Vec<MulticoreRow>,
}

fn multicore_row_json(r: &MulticoreRow) -> String {
    format!(
        "{{\"n_cores\":{},\"config\":{},\"core_ipc\":{},\"aggregate_ipc\":{},\"dram_reads\":{},\"dram_queue_delay\":{},\"markov_occupancy\":{},\"markov_ways\":{}}}",
        r.n_cores,
        json_str(&r.config),
        json_f64_list(&r.core_ipc),
        json_f64(r.aggregate_ipc),
        r.dram_reads,
        r.dram_queue_delay,
        r.markov_occupancy,
        r.markov_ways,
    )
}

/// Serializes a multi-core scaling report as JSON (the
/// `BENCH_multicore.json` schema). Deterministic: equal reports emit
/// equal bytes.
pub fn multicore_to_json(r: &MulticoreReport) -> String {
    let rows: Vec<String> = r.rows.iter().map(multicore_row_json).collect();
    format!(
        "{{\"schema\":1,\"figure\":\"multicore\",\"sweep\":{},\"workload\":{},\"rows\":[{}]}}",
        json_str(&r.sweep),
        json_str(&r.workload),
        rows.join(","),
    )
}

/// The per-run scalars worth publishing in machine-readable reports.
fn run_summary_json(r: &RunReport) -> String {
    format!(
        "{{\"workload\":{},\"ipc\":{},\"dram_reads\":{},\"l3_accesses\":{},\"accuracy\":{},\"l2_demand_misses\":{},\"markov_ways\":{}}}",
        json_str(&r.workload),
        json_f64(r.ipc()),
        r.dram_reads(),
        r.l3_accesses(),
        json_f64(r.accuracy()),
        r.l2_demand_misses(),
        r.markov_ways,
    )
}

/// Serializes a sweep report as JSON: scheduler stats (including the
/// cache-hit counter) and one summary per job, in job order.
pub fn sweep_to_json(report: &SweepReport) -> String {
    let jobs: Vec<String> = report
        .keys
        .iter()
        .zip(&report.results)
        .map(|(key, result)| match result {
            Ok(run) => format!(
                "{{\"key\":{},\"ok\":true,\"run\":{}}}",
                json_str(key),
                run_summary_json(run)
            ),
            Err(e) => format!(
                "{{\"key\":{},\"ok\":false,\"error\":{}}}",
                json_str(key),
                json_str(&e.message)
            ),
        })
        .collect();
    format!(
        "{{\"stats\":{{\"jobs\":{},\"executed\":{},\"cache_hits\":{},\"errors\":{}}},\"jobs\":[{}]}}",
        report.stats.jobs,
        report.stats.executed,
        report.stats.cache_hits,
        report.stats.errors,
        jobs.join(","),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> FigureTable {
        let mut t = FigureTable::new("T, \"quoted\"", "m", vec!["A".into(), "B".into()]);
        t.push_row("w1", vec![1.0, 2.5]);
        t.push_row("w2", vec![4.0, 0.125]);
        t
    }

    #[test]
    fn json_round_trips_exact_floats() {
        let j = table_to_json(&table());
        assert!(j.contains("\"title\":\"T, \\\"quoted\\\"\""));
        assert!(j.contains("\"values\":[1.0,2.5]"));
        assert!(j.contains("\"geomean\":[2.0,"));
    }

    #[test]
    fn csv_quotes_only_when_needed() {
        let c = table_to_csv(&table());
        let mut lines = c.lines();
        assert_eq!(lines.next(), Some("workload,A,B"));
        assert_eq!(lines.next(), Some("w1,1.0,2.5"));
        assert_eq!(lines.next(), Some("w2,4.0,0.125"));
        assert!(lines.next().unwrap().starts_with("geomean,2.0,"));
    }

    #[test]
    fn non_finite_values_agree_across_emitters() {
        let mut t = FigureTable::new("t", "m", vec!["A".into()]);
        t.push_row("w", vec![f64::NAN]);
        t.push_row("x", vec![f64::INFINITY]);
        let j = table_to_json(&t);
        assert!(j.contains("\"values\":[null]"));
        assert!(!j.contains("NaN") && !j.contains("inf"));
        let c = table_to_csv(&t);
        assert!(c.contains("w,\n"), "NaN should be an empty CSV field: {c}");
        assert!(!c.contains("NaN") && !c.contains("inf"));
    }

    #[test]
    fn perf_report_json_shape() {
        let r = PerfReport {
            sweep: "7 workloads x 3 configs".into(),
            jobs: 21,
            total_accesses: 2_100_000,
            baseline: PerfRecord {
                label: "pre".into(),
                wall_ms: 2000.0,
                accesses_per_sec: 1_050_000.0,
            },
            current: PerfRecord {
                label: "now".into(),
                wall_ms: 1000.0,
                accesses_per_sec: 2_100_000.0,
            },
            scaling: vec![PerfScalingPoint {
                workers: 2,
                wall_ms: 600.0,
                accesses_per_sec: 3_500_000.0,
                speedup_vs_serial: 1.6666666666666667,
            }],
            cell_cost: PerfCellCost {
                baseline_wall_ms: 100.0,
                triangel_wall_ms: 125.0,
                ratio: 1.25,
            },
        };
        assert!((r.speedup() - 2.0).abs() < 1e-12);
        let j = perf_to_json(&r);
        assert!(j.contains("\"schema\":3"));
        assert!(j.contains("\"figure\":\"perf\""));
        assert!(j.contains("\"speedup\":2.0"));
        assert!(j.contains("\"baseline\":{\"label\":\"pre\""));
        assert!(j.contains("\"scaling\":[{\"workers\":2,"));
        assert!(j.contains(
            "\"cell_cost\":{\"baseline_wall_ms\":100.0,\"triangel_wall_ms\":125.0,\"ratio\":1.25}"
        ));
        assert_eq!(perf_to_json(&r), perf_to_json(&r));
    }

    #[test]
    fn emission_is_deterministic() {
        let t = table();
        assert_eq!(table_to_json(&t), table_to_json(&t));
        assert_eq!(table_to_csv(&t), table_to_csv(&t));
    }

    #[test]
    fn timeline_report_json_shape() {
        use triangel_obs::{IntervalSample, IntervalSeries};
        let sample = |end: u64, instr: u64, cyc: u64, misses: u64, used: u64| IntervalSample {
            end_access: end,
            instructions: instr,
            cycles: cyc,
            l2_demand_hits: end,
            l2_demand_misses: misses,
            prefetches_issued: used * 2,
            temporal_used: used,
            temporal_wasted: used / 2,
            markov_occupancy: 100,
            markov_ways: 4,
            desired_ways: 6,
            ..Default::default()
        };
        let baseline = IntervalSeries {
            every: 100,
            samples: vec![sample(100, 400, 200, 80, 0), sample(200, 800, 400, 160, 0)],
        };
        let triangel = IntervalSeries {
            every: 100,
            samples: vec![
                sample(100, 500, 200, 40, 10),
                sample(200, 1000, 400, 80, 20),
            ],
        };
        let row = TimelineRow {
            workload: "MCF".into(),
            series: vec![
                TimelineSeries::from_intervals("Baseline", &baseline, None),
                TimelineSeries::from_intervals("Triangel", &triangel, Some(&baseline)),
            ],
        };
        assert_eq!(row.series[0].points[0].coverage_so_far, 0.0);
        // 40 of the baseline's 80 cumulative misses eliminated.
        assert!((row.series[1].points[0].coverage_so_far - 0.5).abs() < 1e-12);
        assert!((row.series[1].points[1].coverage_so_far - 0.5).abs() < 1e-12);
        assert!((row.series[1].points[1].ipc - 2.5).abs() < 1e-12);
        let r = TimelineReport {
            sweep: "1 workload x 2 configs".into(),
            every: 100,
            rows: vec![row],
        };
        let j = timeline_to_json(&r);
        assert!(j.contains("\"schema\":1"));
        assert!(j.contains("\"figure\":\"timeline\""));
        assert!(j.contains("\"every\":100"));
        assert!(j.contains("\"config\":\"Triangel\""));
        assert!(j.contains("\"coverage_so_far\":0.5"));
        assert_eq!(timeline_to_json(&r), timeline_to_json(&r));
    }

    #[test]
    fn traces_report_json_shape() {
        let cell = TraceCell {
            config: "Triangel".into(),
            speedup: 1.5,
            accuracy: 0.75,
            coverage: 0.5,
            dram_traffic: 1.125,
        };
        let r = TracesReport {
            sweep: "4 families + 1 trace x 2 configs".into(),
            rows: vec![
                TracesRow {
                    workload: "ZipfKV".into(),
                    provenance: TraceProvenance::Generator,
                    cells: vec![cell.clone()],
                },
                TracesRow {
                    workload: "smoke.trc".into(),
                    provenance: TraceProvenance::Recorded {
                        records: 1000,
                        checksum: 0xabcd,
                        replayed: 2500,
                    },
                    cells: vec![cell],
                },
            ],
        };
        let j = traces_to_json(&r);
        assert!(j.contains("\"figure\":\"traces\""));
        assert!(j.contains("\"source\":\"generator\",\"trace\":null"));
        assert!(j.contains("\"checksum\":\"000000000000abcd\""));
        assert!(j.contains("\"replayed\":2500,\"wraps\":2"));
        assert!(j.contains("\"cells\":[{\"config\":\"Triangel\",\"speedup\":1.5,"));
        assert_eq!(traces_to_json(&r), traces_to_json(&r));
    }

    #[test]
    fn multicore_report_json_shape() {
        let r = MulticoreReport {
            sweep: "MCF x {1,2,4} cores x 2 configs".into(),
            workload: "MCF".into(),
            rows: vec![
                MulticoreRow {
                    n_cores: 1,
                    config: "Baseline".into(),
                    core_ipc: vec![1.5],
                    aggregate_ipc: 1.5,
                    dram_reads: 1000,
                    dram_queue_delay: 40,
                    markov_occupancy: 0,
                    markov_ways: 0,
                },
                MulticoreRow {
                    n_cores: 4,
                    config: "Triangel".into(),
                    core_ipc: vec![1.25, 1.0, 0.75, 0.5],
                    aggregate_ipc: 0.875,
                    dram_reads: 5000,
                    dram_queue_delay: 900,
                    markov_occupancy: 4096,
                    markov_ways: 4,
                },
            ],
        };
        let j = multicore_to_json(&r);
        assert!(j.contains("\"figure\":\"multicore\""));
        assert!(j.contains("\"n_cores\":4"));
        assert!(j.contains("\"core_ipc\":[1.25,1.0,0.75,0.5]"));
        assert!(j.contains("\"dram_queue_delay\":900"));
        assert!(j.contains("\"markov_occupancy\":4096"));
        assert_eq!(multicore_to_json(&r), multicore_to_json(&r));
    }

    #[test]
    fn features_report_json_shape() {
        let cell = |s: f64| FeatureCell {
            speedup: s,
            accuracy: 0.5,
            coverage: 0.25,
            dram_traffic: 1.0,
        };
        let r = FeaturesReport {
            sweep: "7 workloads x 9 steps x {off,on}".into(),
            rows: vec![FeatureRow {
                workload: "Xalan".into(),
                steps: vec![FeatureStep {
                    step: 0,
                    label: "Triage-Deg-4".into(),
                    off: cell(1.0),
                    on: cell(1.25),
                }],
            }],
        };
        let j = features_to_json(&r);
        assert!(j.contains("\"figure\":\"features\""));
        assert!(j.contains("\"label\":\"Triage-Deg-4\""));
        assert!(j.contains("\"off\":{\"speedup\":1.0,"));
        assert!(j.contains("\"on\":{\"speedup\":1.25,"));
        assert_eq!(features_to_json(&r), features_to_json(&r));
    }
}
