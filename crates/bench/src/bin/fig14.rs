//! Reproduces Fig. 14 of the paper (L3 accesses, including Triangel-NoMRB).
//!
//! Declarative definition: `triangel_bench::figures` registry entry
//! `"fig14"`, executed by the `triangel-harness` scheduler
//! (`--jobs N` controls worker threads; results are identical for any
//! value).

fn main() {
    triangel_bench::figures::run_main("fig14");
}
