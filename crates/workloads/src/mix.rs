//! Weighted interleaving of streams into a single core's access trace.

use crate::irregular::{GcChurnStream, HashJoinStream, WebSessionStream, ZipfKvStream};
use crate::temporal::{RandomStream, StridedStream, TemporalStream};
use crate::trace::{AccessRing, MemoryAccess, TraceSource};
use triangel_types::rng::SplitMix64;

/// One constituent stream of a [`WorkloadMix`], enum-dispatched.
///
/// The mix sits on the simulator's per-access hot path; storing the
/// shipped building blocks as concrete variants (instead of
/// `Box<dyn TraceSource>`) lets the per-pick pull monomorphize. The
/// [`StreamImpl::Dyn`] arm keeps arbitrary sources working through the
/// original trait object.
#[derive(Debug)]
pub enum StreamImpl {
    /// A repeating temporal sequence.
    Temporal(TemporalStream),
    /// A strided scan.
    Strided(StridedStream),
    /// Unlearnable uniform noise.
    Random(RandomStream),
    /// Zipfian key-value store lookups.
    ZipfKv(ZipfKvStream),
    /// GC/allocator churn.
    GcChurn(GcChurnStream),
    /// Hash-join / index-probe kernel.
    HashJoin(HashJoinStream),
    /// Web-serving session mix.
    WebSession(WebSessionStream),
    /// Any other source, behind the trait object (pays the virtual
    /// call the concrete arms avoid).
    Dyn(Box<dyn TraceSource + Send>),
}

impl StreamImpl {
    #[inline]
    fn next_access(&mut self) -> MemoryAccess {
        match self {
            StreamImpl::Temporal(s) => s.next_access(),
            StreamImpl::Strided(s) => s.next_access(),
            StreamImpl::Random(s) => s.next_access(),
            StreamImpl::ZipfKv(s) => s.next_access(),
            StreamImpl::GcChurn(s) => s.next_access(),
            StreamImpl::HashJoin(s) => s.next_access(),
            StreamImpl::WebSession(s) => s.next_access(),
            StreamImpl::Dyn(s) => s.next_access(),
        }
    }
}

impl From<TemporalStream> for StreamImpl {
    fn from(s: TemporalStream) -> Self {
        StreamImpl::Temporal(s)
    }
}

impl From<StridedStream> for StreamImpl {
    fn from(s: StridedStream) -> Self {
        StreamImpl::Strided(s)
    }
}

impl From<RandomStream> for StreamImpl {
    fn from(s: RandomStream) -> Self {
        StreamImpl::Random(s)
    }
}

impl From<ZipfKvStream> for StreamImpl {
    fn from(s: ZipfKvStream) -> Self {
        StreamImpl::ZipfKv(s)
    }
}

impl From<GcChurnStream> for StreamImpl {
    fn from(s: GcChurnStream) -> Self {
        StreamImpl::GcChurn(s)
    }
}

impl From<HashJoinStream> for StreamImpl {
    fn from(s: HashJoinStream) -> Self {
        StreamImpl::HashJoin(s)
    }
}

impl From<WebSessionStream> for StreamImpl {
    fn from(s: WebSessionStream) -> Self {
        StreamImpl::WebSession(s)
    }
}

impl From<Box<dyn TraceSource + Send>> for StreamImpl {
    fn from(s: Box<dyn TraceSource + Send>) -> Self {
        StreamImpl::Dyn(s)
    }
}

/// Interleaves several [`TraceSource`]s with fixed weights, modelling a
/// program whose loops touch several data structures.
///
/// Selection is deterministic pseudo-random: on average, stream `i`
/// contributes `weight_i / total_weight` of all accesses, finely
/// interleaved (as loads from different program structures are in a real
/// out-of-order window).
///
/// # Examples
///
/// ```
/// use triangel_workloads::mix::WorkloadMix;
/// use triangel_workloads::temporal::{TemporalStream, TemporalStreamConfig};
/// use triangel_workloads::trace::TraceSource;
/// use triangel_types::{Addr, Pc};
///
/// let a = TemporalStream::new(
///     TemporalStreamConfig::pointer_chase("a", Pc::new(1), Addr::new(0), 32), 1);
/// let b = TemporalStream::new(
///     TemporalStreamConfig::pointer_chase("b", Pc::new(2), Addr::new(1 << 30), 32), 2);
/// let mut mix = WorkloadMix::new("ab", 9);
/// mix.add(Box::new(a), 3);
/// mix.add(Box::new(b), 1);
/// let _ = mix.next_access();
/// ```
#[derive(Debug)]
pub struct WorkloadMix {
    name: String,
    streams: Vec<(StreamImpl, u32)>,
    total_weight: u64,
    rng: SplitMix64,
}

impl WorkloadMix {
    /// Creates an empty mix.
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        WorkloadMix {
            name: name.into(),
            streams: Vec::new(),
            total_weight: 0,
            rng: SplitMix64::new(seed),
        }
    }

    /// Adds a boxed stream with the given selection weight.
    ///
    /// Compatibility shim: the source lands in the [`StreamImpl::Dyn`]
    /// arm. Prefer [`WorkloadMix::add_stream`] for the shipped building
    /// blocks, which dispatch without a virtual call.
    ///
    /// Kept deliberately (shim audit): external callers composing their
    /// own `TraceSource` implementations have no enum arm to land in
    /// (see `examples/custom_workload.rs`), so the boxed entry point
    /// stays.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is zero.
    pub fn add(&mut self, stream: Box<dyn TraceSource + Send>, weight: u32) {
        self.add_stream(stream, weight);
    }

    /// Adds a stream with the given selection weight, enum-dispatched
    /// where the concrete type is one of the shipped building blocks.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is zero.
    pub fn add_stream(&mut self, stream: impl Into<StreamImpl>, weight: u32) {
        assert!(weight > 0, "stream weight must be positive");
        self.total_weight += weight as u64;
        self.streams.push((stream.into(), weight));
    }

    /// Number of constituent streams.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// Whether the mix has no streams.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }
}

impl TraceSource for WorkloadMix {
    fn next_access(&mut self) -> MemoryAccess {
        assert!(!self.streams.is_empty(), "mix has no streams");
        let mut pick = self.rng.next_below(self.total_weight);
        for (stream, w) in &mut self.streams {
            if pick < *w as u64 {
                return stream.next_access();
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum correctly")
    }

    fn fill(&mut self, ring: &mut AccessRing) -> usize {
        assert!(!self.streams.is_empty(), "mix has no streams");
        // Batched selection: identical RNG-draw and stream-pull order
        // to `next_access` (one draw, one pull, per slot), with the
        // emptiness check, the weight-total load and the ring bounds
        // hoisted out of the per-access loop.
        let want = ring.remaining();
        let total = self.total_weight;
        for _ in 0..want {
            let mut pick = self.rng.next_below(total);
            let access = 'sel: {
                for (stream, w) in &mut self.streams {
                    if pick < *w as u64 {
                        break 'sel stream.next_access();
                    }
                    pick -= *w as u64;
                }
                unreachable!("weights sum correctly")
            };
            let pushed = ring.push(access);
            debug_assert!(pushed, "remaining() slots must accept pushes");
        }
        want
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        self.save_state_impl(w)
    }

    fn restore_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.restore_state_impl(r)
    }
}

use triangel_types::snap::{SnapError, SnapReader, SnapWriter, Snapshot};

impl StreamImpl {
    fn save_snap(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        match self {
            StreamImpl::Temporal(s) => s.save_snap(w),
            StreamImpl::Strided(s) => {
                s.save_snap(w);
                Ok(())
            }
            StreamImpl::Random(s) => s.save_snap(w),
            StreamImpl::ZipfKv(s) => s.save_snap(w),
            StreamImpl::GcChurn(s) => s.save_snap(w),
            StreamImpl::HashJoin(s) => s.save_snap(w),
            StreamImpl::WebSession(s) => s.save_snap(w),
            StreamImpl::Dyn(s) => s.save_state(w),
        }
    }

    fn restore_snap(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        match self {
            StreamImpl::Temporal(s) => s.restore_snap(r),
            StreamImpl::Strided(s) => s.restore_snap(r),
            StreamImpl::Random(s) => s.restore_snap(r),
            StreamImpl::ZipfKv(s) => s.restore_snap(r),
            StreamImpl::GcChurn(s) => s.restore_snap(r),
            StreamImpl::HashJoin(s) => s.restore_snap(r),
            StreamImpl::WebSession(s) => s.restore_snap(r),
            StreamImpl::Dyn(s) => s.restore_state(r),
        }
    }
}

impl WorkloadMix {
    /// Serializes the mix's dynamic state (selection RNG + every
    /// constituent stream); the trait-level
    /// [`TraceSource::save_state`] forwards here.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapError`] (e.g. an unsupported boxed stream).
    pub fn save_state_impl(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        self.rng.save(w)?;
        w.usize(self.streams.len());
        for (s, _) in &self.streams {
            s.save_snap(w)?;
        }
        Ok(())
    }

    /// Restores the state written by [`WorkloadMix::save_state_impl`].
    ///
    /// # Errors
    ///
    /// Propagates [`SnapError`].
    pub fn restore_state_impl(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.rng.restore(r)?;
        r.expect_len(self.streams.len(), "mix streams")?;
        for (s, _) in &mut self.streams {
            s.restore_snap(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temporal::{TemporalStream, TemporalStreamConfig};
    use triangel_types::{Addr, Pc};

    fn chase(pc: u64, base: u64, len: usize) -> Box<dyn TraceSource + Send> {
        Box::new(TemporalStream::new(
            TemporalStreamConfig::pointer_chase(
                format!("s{pc}"),
                Pc::new(pc),
                Addr::new(base),
                len,
            ),
            pc,
        ))
    }

    #[test]
    fn weights_are_respected() {
        let mut mix = WorkloadMix::new("m", 1);
        mix.add(chase(1, 0, 16), 3);
        mix.add(chase(2, 1 << 30, 16), 1);
        let mut low = 0;
        for _ in 0..4000 {
            if mix.next_access().vaddr.get() < (1 << 30) {
                low += 1;
            }
        }
        assert!((2700..3300).contains(&low), "3:1 weighting off: {low}/4000");
    }

    #[test]
    fn per_stream_order_is_preserved() {
        // Interleaving must not reorder accesses within one stream.
        let mut solo = chase(5, 0, 64);
        let expected: Vec<u64> = (0..64).map(|_| solo.next_access().vaddr.get()).collect();

        let mut mix = WorkloadMix::new("m", 2);
        mix.add(chase(5, 0, 64), 1);
        mix.add(chase(6, 1 << 30, 64), 1);
        let mut got = Vec::new();
        while got.len() < 64 {
            let a = mix.next_access();
            if a.vaddr.get() < (1 << 30) {
                got.push(a.vaddr.get());
            }
        }
        assert_eq!(got, expected);
    }

    #[test]
    #[should_panic(expected = "mix has no streams")]
    fn empty_mix_panics() {
        let mut mix = WorkloadMix::new("m", 0);
        let _ = mix.next_access();
    }

    #[test]
    #[should_panic(expected = "mix has no streams")]
    fn empty_mix_fill_panics() {
        let mut mix = WorkloadMix::new("m", 0);
        let _ = mix.fill(&mut AccessRing::new());
    }

    #[test]
    fn fill_matches_next_access_exactly() {
        let build = || {
            let mut mix = WorkloadMix::new("m", 9);
            mix.add(chase(1, 0, 16), 3);
            mix.add(chase(2, 1 << 30, 16), 1);
            mix.add(chase(3, 2 << 30, 16), 5);
            mix
        };
        let mut by_next = build();
        let mut by_fill = build();
        let mut ring = AccessRing::with_capacity(13);
        for _ in 0..50 {
            by_fill.fill(&mut ring);
            while let Some(a) = ring.pop() {
                assert_eq!(a, by_next.next_access());
            }
        }
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn zero_weight_rejected() {
        let mut mix = WorkloadMix::new("m", 0);
        mix.add(chase(1, 0, 8), 0);
    }
}
