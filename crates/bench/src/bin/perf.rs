//! Times the fixed hot-path smoke sweep and writes `BENCH_perf.json`
//! (the repo's perf trajectory: current build vs the recorded
//! baseline). See EXPERIMENTS.md's "Performance tracking" section.
//!
//! Declarative definition: `triangel_bench::figures` registry entry
//! `"perf"`. The sweep always runs serially at a fixed scale so
//! measurements are comparable across PRs on the same machine; `--jobs`
//! affects only the scheduling of *other* experiments when run through
//! `all_figures`.

fn main() {
    triangel_bench::figures::run_main("perf");
}
