//! Run reports and cross-configuration comparisons (the paper's
//! metrics: speedup, DRAM traffic, accuracy, coverage, L3 accesses,
//! energy).

use triangel_cache::CacheStats;
use triangel_mem::{DramStats, EnergyBreakdown, EnergyModel};
use triangel_prefetch::PrefetcherStats;
use triangel_types::stats::geomean;

use crate::hierarchy::CoreStats;

/// Measurement results for one core.
#[derive(Debug, Clone)]
pub struct CoreReport {
    /// Trace-source name.
    pub workload: String,
    /// Temporal-prefetcher name.
    pub pf_name: String,
    /// Instructions retired during measurement.
    pub instructions: u64,
    /// Cycles elapsed during measurement.
    pub cycles: u64,
    /// L2 statistics.
    pub l2: CacheStats,
    /// Accuracy/traffic bookkeeping.
    pub core: CoreStats,
    /// Temporal-prefetcher counters.
    pub pf: PrefetcherStats,
}

impl CoreReport {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.instructions as f64 / self.cycles as f64
    }
}

/// Measurement results for one run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Workload label (e.g. the paper's figure x-axis name).
    pub workload: String,
    /// Per-core results.
    pub cores: Vec<CoreReport>,
    /// Shared-L3 statistics.
    pub l3: CacheStats,
    /// DRAM statistics.
    pub dram: DramStats,
    /// Final Markov partition allocation (L3 ways).
    pub markov_ways: usize,
    /// Interval time-series, when the session sampled one
    /// ([`SimSessionBuilder::sample_every`](crate::SimSessionBuilder::sample_every)).
    ///
    /// Purely observational: a function of simulation state only
    /// (never wall-clock), excluded from the summary emitters, so
    /// every aggregate stays byte-identical whether sampling is on or
    /// off.
    pub intervals: Option<triangel_obs::IntervalSeries>,
}

impl RunReport {
    /// Single-core IPC (core 0).
    pub fn ipc(&self) -> f64 {
        self.cores[0].ipc()
    }

    /// Aggregate multiprogrammed IPC: total instructions retired
    /// across all cores over the *slowest* core's cycles — a system
    /// throughput summary, matching the convention of
    /// [`IntervalSample::ipc_so_far`](triangel_obs::IntervalSample::ipc_so_far).
    /// Equals [`RunReport::ipc`] on a single core.
    pub fn aggregate_ipc(&self) -> f64 {
        let instructions: u64 = self.cores.iter().map(|c| c.instructions).sum();
        let cycles = self.cores.iter().map(|c| c.cycles).max().unwrap_or(0);
        instructions as f64 / cycles.max(1) as f64
    }

    /// Total DRAM line reads — the paper's DRAM-traffic metric
    /// (Fig. 11).
    pub fn dram_reads(&self) -> u64 {
        self.dram.total_reads()
    }

    /// Total L3 accesses: data lookups (demand and prefetch) plus
    /// Markov-table reads/writes (Fig. 14).
    pub fn l3_accesses(&self) -> u64 {
        let data = self.l3.demand_accesses() + self.l3.prefetch_lookups;
        let markov: u64 = self.cores.iter().map(|c| c.pf.markov_l3_accesses()).sum();
        data + markov
    }

    /// DRAM+L3 dynamic energy under the paper's 25:1 unit model
    /// (Fig. 15).
    pub fn energy(&self) -> EnergyBreakdown {
        EnergyModel::paper().evaluate(self.dram_reads(), self.l3_accesses())
    }

    /// Temporal-prefetch accuracy, pooled over cores (Fig. 12).
    pub fn accuracy(&self) -> f64 {
        let used: u64 = self.cores.iter().map(|c| c.core.temporal_used).sum();
        let wasted: u64 = self.cores.iter().map(|c| c.core.temporal_wasted).sum();
        if used + wasted == 0 {
            0.0
        } else {
            used as f64 / (used + wasted) as f64
        }
    }

    /// Demand misses at the L2 (coverage baseline input, Fig. 13).
    pub fn l2_demand_misses(&self) -> u64 {
        self.cores.iter().map(|c| c.l2.demand_misses).sum()
    }
}

/// A run compared against the stride-only baseline, yielding exactly
/// the paper's per-workload figure values.
#[derive(Debug, Clone, Copy)]
pub struct Comparison {
    /// Speedup over baseline (geomean of per-core IPC ratios; Fig. 10).
    pub speedup: f64,
    /// DRAM traffic normalized to baseline (Fig. 11).
    pub dram_traffic: f64,
    /// Prefetch accuracy (Fig. 12).
    pub accuracy: f64,
    /// Coverage: fraction of baseline L2 demand misses eliminated
    /// (Fig. 13).
    pub coverage: f64,
    /// L3 accesses normalized to baseline (Fig. 14).
    pub l3_accesses: f64,
    /// DRAM+L3 dynamic energy normalized to baseline (Fig. 15).
    pub energy: f64,
    /// DRAM share of this run's energy (the hashed bars of Fig. 15).
    pub energy_dram_fraction: f64,
}

impl Comparison {
    /// Compares `run` against `baseline` (same workload, stride-only).
    ///
    /// # Panics
    ///
    /// Panics if the two runs have different core counts.
    pub fn new(baseline: &RunReport, run: &RunReport) -> Self {
        assert_eq!(
            baseline.cores.len(),
            run.cores.len(),
            "core counts must match"
        );
        let ratios: Vec<f64> = run
            .cores
            .iter()
            .zip(&baseline.cores)
            .map(|(r, b)| r.ipc() / b.ipc())
            .collect();
        let speedup = geomean(&ratios).unwrap_or(1.0);
        let base_misses = baseline.l2_demand_misses();
        let coverage = if base_misses == 0 {
            0.0
        } else {
            1.0 - run.l2_demand_misses() as f64 / base_misses as f64
        };
        Comparison {
            speedup,
            dram_traffic: run.dram_reads() as f64 / baseline.dram_reads().max(1) as f64,
            accuracy: run.accuracy(),
            coverage: coverage.max(0.0),
            l3_accesses: run.l3_accesses() as f64 / baseline.l3_accesses().max(1) as f64,
            energy: run.energy().normalized_to(&baseline.energy()),
            energy_dram_fraction: run.energy().dram_fraction(),
        }
    }

    /// The inverse of speedup, as plotted for adversarial workloads
    /// (Fig. 17 "Slowdown").
    pub fn slowdown(&self) -> f64 {
        1.0 / self.speedup
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(ipc_cycles: u64, dram: u64, misses: u64) -> RunReport {
        RunReport {
            workload: "w".into(),
            cores: vec![CoreReport {
                workload: "w".into(),
                pf_name: "p".into(),
                instructions: 1_000_000,
                cycles: ipc_cycles,
                l2: CacheStats {
                    demand_misses: misses,
                    ..Default::default()
                },
                core: CoreStats {
                    temporal_used: 80,
                    temporal_wasted: 20,
                    ..Default::default()
                },
                pf: PrefetcherStats::default(),
            }],
            l3: CacheStats::default(),
            dram: DramStats {
                demand_reads: dram,
                ..Default::default()
            },
            markov_ways: 0,
            intervals: None,
        }
    }

    #[test]
    fn comparison_math() {
        let base = report(2_000_000, 1000, 10_000);
        let run = report(1_600_000, 1100, 6_000);
        let c = Comparison::new(&base, &run);
        assert!((c.speedup - 1.25).abs() < 1e-9);
        assert!((c.dram_traffic - 1.1).abs() < 1e-9);
        assert!((c.coverage - 0.4).abs() < 1e-9);
        assert!((c.accuracy - 0.8).abs() < 1e-9);
        assert!((c.slowdown() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn energy_uses_paper_units() {
        let r = report(1_000_000, 100, 0);
        assert_eq!(r.energy().dram, 2500.0);
    }

    #[test]
    fn aggregate_ipc_sums_instructions_over_the_slowest_core() {
        let mut r = report(2_000_000, 0, 0);
        assert_eq!(r.aggregate_ipc(), r.ipc());
        let mut fast = r.cores[0].clone();
        fast.cycles = 1_000_000;
        r.cores.push(fast);
        // 2M instructions over the slowest core's 2M cycles — NOT
        // core 0's IPC, and NOT a mean of per-core IPCs.
        assert!((r.aggregate_ipc() - 1.0).abs() < 1e-12);
    }
}
