//! Reproduces Fig. 10 of the paper. See DESIGN.md's experiment index.

use triangel_bench::{SpecSweep, SweepParams};

fn main() {
    let params = SweepParams::from_env();
    let sweep = SpecSweep::run(SpecSweep::paper_configs(), &params);
    sweep.fig10_speedup().print();
}
