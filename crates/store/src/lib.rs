//! `triangel-store`: the on-disk, content-addressed result store.
//!
//! The harness has always had two halves of a result service: the
//! in-process, content-keyed `ResultCache` (fast, private to one
//! process) and the campaign runner's snapshot/report directory
//! (persistent, private to one campaign). This crate unifies them into
//! a [`ResultStore`] that any number of processes share:
//!
//! * **Content-addressed.** The key is the job's content key — the
//!   same string the in-process cache uses — so a sweep, a campaign,
//!   and a daemon all name the same simulation identically.
//! * **Atomic.** Entries are published with write-temp + rename; a
//!   kill mid-publish leaves either the old entry or the new one,
//!   never a torn file.
//! * **Exactly-once.** [`ResultStore::claim_blocking`] serializes
//!   writers per job with `flock(2)`: whoever wins the lock executes;
//!   everyone else blocks, then reads the published entry. Locks die
//!   with their process, so a crash never wedges the store.
//! * **Self-checking.** Every entry carries the envelope magic, the
//!   store format version, the simulator's
//!   [`SNAPSHOT_VERSION`](triangel_sim::SNAPSHOT_VERSION), the full
//!   job key (hash-collision guard), and a payload checksum. Corrupt
//!   or stale entries are discarded *loudly* and re-executed —
//!   mirroring the campaign runner's resume semantics.
//!
//! Determinism contract: a report served from the store is
//! byte-identical to executing the job in-process, because it *is* the
//! framed bytes of such an execution ([`report_to_bytes`] round-trips
//! exactly, interval series included).

#![warn(missing_docs)]

mod flock;
pub mod framing;
mod store;

pub use flock::lock_exclusive;
pub use framing::{report_from_bytes, report_to_bytes, REPORT_MAGIC, REPORT_VERSION};
pub use store::{
    key_stem, write_atomic, Claim, JobLease, ResultStore, StoreStats, ENTRY_MAGIC, MAX_STEM_PROBES,
    STORE_FORMAT_VERSION,
};
