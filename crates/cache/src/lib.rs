//! Set-associative cache models and replacement policies.
//!
//! This crate provides the cache substrate for the Triangel reproduction:
//!
//! * [`Cache`] — a generic set-associative cache with pluggable
//!   replacement, prefetch-tag bits and use-tracking (needed to measure
//!   prefetch accuracy as "prefetched lines used before L2 eviction",
//!   Fig. 12 of the paper).
//! * [`replacement`] — LRU, FIFO, Random, Tree-PLRU, SRRIP/BRRIP and
//!   **HawkEye** (with OPTgen sampled sets and a PC-based predictor), the
//!   policy Triage uses for its Markov-table partition.
//! * [`Mshr`] — a miss-status holding register file, bounding the number of
//!   in-flight misses per cache level.
//! * [`PartitionedWays`] — the way-partitioning mechanism that carves the
//!   Markov-table partition out of the L3 (Sections 3.2 and 4.7).
//! * [`duel`] — generic set-duelling support (leader sets + policy
//!   selector), reused by DRRIP and by Triangel's Set Dueller.
//!
//! # Examples
//!
//! ```
//! use triangel_cache::{Cache, CacheConfig};
//! use triangel_cache::replacement::PolicyKind;
//! use triangel_types::{LineAddr, Pc};
//!
//! let mut l1 = Cache::new(CacheConfig::new("L1D", 64 * 1024, 4, PolicyKind::Lru));
//! let line = LineAddr::new(0x40);
//! assert!(!l1.access(line, Some(Pc::new(0x4)), false).hit);
//! l1.fill(line, Some(Pc::new(0x4)), false);
//! assert!(l1.access(line, Some(Pc::new(0x4)), false).hit);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod config;
pub mod duel;
mod mshr;
mod partition;
pub mod replacement;

pub use cache::{AccessOutcome, Cache, CacheStats, EvictedLine, FillOutcome};
pub use config::CacheConfig;
pub use mshr::{Mshr, MshrSlot};
pub use partition::PartitionedWays;
// The per-line metadata word lives in `triangel-types` so prefetchers
// can see it without depending on this crate; re-exported here because
// it is above all *cache* vocabulary.
pub use triangel_types::{FillSource, LineMeta};
