//! Deterministic pseudo-random number generators.
//!
//! The paper notes (footnote 6) that "simple methods such as linear
//! congruential are fine; cryptographic randomness is not required" for the
//! History Sampler's probabilistic insertion. The whole simulator is
//! deterministic: the same seed always produces the same run, which the test
//! suite relies on.

/// A 64-bit linear congruential generator (Knuth's MMIX constants).
///
/// Used for the hardware-plausible sampling decisions inside the
/// prefetchers (History Sampler insertion, set selection).
///
/// # Examples
///
/// ```
/// use triangel_types::rng::Lcg;
///
/// let mut a = Lcg::new(42);
/// let mut b = Lcg::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// Creates a generator from a seed. The seed is pre-mixed so that
    /// small seeds (0, 1, 2...) still diverge immediately.
    pub fn new(seed: u64) -> Self {
        let mut s = SplitMix64::new(seed);
        Lcg {
            state: s.next_u64() | 1,
        }
    }

    /// Returns the next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        // MMIX LCG by Donald Knuth.
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // The low bits of an LCG are weak; fold the high bits down.
        self.state ^ (self.state >> 33)
    }

    /// Returns a value uniformly distributed in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below requires n > 0");
        // Multiply-shift range reduction (Lemire); bias is negligible for
        // simulator purposes and the generator stays branch-predictable.
        let x = self.next_u64();
        ((x as u128 * n as u128) >> 64) as u64
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let threshold = (p * (u64::MAX as f64)) as u64;
        self.next_u64() <= threshold
    }
}

impl Default for Lcg {
    fn default() -> Self {
        Lcg::new(0)
    }
}

/// SplitMix64: a tiny, high-quality mixer used for seeding and for
/// workload generation where independent streams are needed.
///
/// # Examples
///
/// ```
/// use triangel_types::rng::SplitMix64;
///
/// let mut s = SplitMix64::new(7);
/// let first = s.next_u64();
/// assert_ne!(first, s.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Returns a value uniformly distributed in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below requires n > 0");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Derives an independent child generator; useful for giving each
    /// workload region its own stream.
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        SplitMix64::new(0)
    }
}

impl crate::snap::Snapshot for Lcg {
    fn save(&self, w: &mut crate::snap::SnapWriter) -> Result<(), crate::snap::SnapError> {
        w.u64(self.state);
        Ok(())
    }

    fn restore(&mut self, r: &mut crate::snap::SnapReader) -> Result<(), crate::snap::SnapError> {
        self.state = r.u64()?;
        Ok(())
    }
}

impl crate::snap::Snapshot for SplitMix64 {
    fn save(&self, w: &mut crate::snap::SnapWriter) -> Result<(), crate::snap::SnapError> {
        w.u64(self.state);
        Ok(())
    }

    fn restore(&mut self, r: &mut crate::snap::SnapReader) -> Result<(), crate::snap::SnapError> {
        self.state = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_is_deterministic() {
        let mut a = Lcg::new(123);
        let mut b = Lcg::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Lcg::new(1);
        let mut b = Lcg::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_in_range() {
        let mut r = Lcg::new(9);
        for _ in 0..1000 {
            assert!(r.next_below(7) < 7);
        }
        let mut s = SplitMix64::new(9);
        for _ in 0..1000 {
            assert!(s.next_below(13) < 13);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Lcg::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn chance_roughly_calibrated() {
        let mut r = Lcg::new(77);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
        let mut s = SplitMix64::new(77);
        let hits = (0..10_000).filter(|_| s.chance(0.5)).count();
        assert!((4500..5500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn splitmix_f64_in_unit_interval() {
        let mut s = SplitMix64::new(3);
        for _ in 0..1000 {
            let x = s.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut parent = SplitMix64::new(10);
        let mut child = parent.fork();
        assert_ne!(parent.next_u64(), child.next_u64());
    }

    #[test]
    fn lcg_distribution_covers_buckets() {
        let mut r = Lcg::new(4242);
        let mut buckets = [0u32; 16];
        for _ in 0..16_000 {
            buckets[r.next_below(16) as usize] += 1;
        }
        for (i, b) in buckets.iter().enumerate() {
            assert!(*b > 500, "bucket {i} too empty: {b}");
        }
    }
}
