//! Reproduces the Section 3.3 observation: HawkEye versus simpler
//! policies for Markov-entry replacement barely matters at the full
//! 1 MiB table, and matters more when the table is artificially
//! capacity-limited.
//!
//! We sweep Triage with {LRU, SRRIP, HawkEye} entry replacement at the
//! full partition and at a quarter-size partition (2 max ways =
//! 256 KiB-class), reporting geomean speedup over the stride baseline.

use triangel_bench::SweepParams;
use triangel_cache::replacement::PolicyKind;
use triangel_sim::report::FigureTable;
use triangel_sim::{Comparison, Experiment, PrefetcherChoice};
use triangel_triage::TriageConfig;
use triangel_workloads::spec::SpecWorkload;

fn run(
    wl: SpecWorkload,
    base: &triangel_sim::RunReport,
    policy: PolicyKind,
    max_ways: usize,
    p: &SweepParams,
) -> f64 {
    let mut cfg = TriageConfig::paper_default();
    cfg.table.replacement = policy;
    cfg.table.max_ways = max_ways;
    let run = Experiment::new(wl.generator(p.seed))
        .warmup(p.warmup)
        .accesses(p.accesses)
        .prefetcher(PrefetcherChoice::TriageCustom(cfg))
        .run();
    Comparison::new(base, &run).speedup
}

fn main() {
    let p = SweepParams::from_env();
    let policies =
        [("LRU", PolicyKind::Lru), ("SRRIP", PolicyKind::Srrip), ("HawkEye", PolicyKind::Hawkeye)];
    // One baseline per workload, shared by every policy/capacity cell.
    let baselines: Vec<_> = SpecWorkload::ALL
        .iter()
        .map(|wl| {
            eprintln!("[sec33] {} / Baseline", wl.label());
            Experiment::new(wl.generator(p.seed)).warmup(p.warmup).accesses(p.accesses).run()
        })
        .collect();
    for (cap_name, max_ways) in
        [("full 1 MiB table (8 ways)", 8), ("capacity-limited table (2 ways)", 2)]
    {
        let mut t = FigureTable::new(
            format!("Sec. 3.3: Markov replacement policy, {cap_name}"),
            "Triage speedup over stride-only baseline",
            policies.iter().map(|(n, _)| n.to_string()).collect(),
        );
        for (w, wl) in SpecWorkload::ALL.iter().enumerate() {
            eprintln!("[sec33] {} / {cap_name}", wl.label());
            let row = policies
                .iter()
                .map(|(_, pk)| run(*wl, &baselines[w], *pk, max_ways, &p))
                .collect();
            t.push_row(wl.label(), row);
        }
        t.print();
    }
}
