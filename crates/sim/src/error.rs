//! Typed errors for experiment construction and execution.

use std::error::Error;
use std::fmt;

/// Why an experiment specification could not be run.
///
/// Returned by [`crate::Engine::try_new`] and
/// [`crate::Experiment::try_run`] so that batch drivers (the
/// `triangel-harness` scheduler in particular) can report a bad job
/// without aborting a whole sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The system configuration expects a different number of cores
    /// than there are trace sources.
    CoreCountMismatch {
        /// Cores in the [`crate::SystemConfig`].
        cores: usize,
        /// Trace sources supplied.
        sources: usize,
    },
    /// An experiment was built with no trace sources at all.
    NoSources,
    /// A workload behind a spec could not be constructed — a trace
    /// file missing, truncated, or changed on disk since the job was
    /// keyed.
    Workload {
        /// The rendered cause.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CoreCountMismatch { cores, sources } => write!(
                f,
                "system configured for {cores} core(s) but {sources} trace source(s) supplied"
            ),
            SimError::NoSources => write!(f, "experiment has no trace sources"),
            SimError::Workload { message } => {
                write!(f, "workload construction failed: {message}")
            }
        }
    }
}

impl Error for SimError {}
