//! Reproduces Table 2: the core and memory experimental setup.
//!
//! Declarative definition: `triangel_bench::figures` registry entry
//! `"table2"`, executed by the `triangel-harness` scheduler
//! (`--jobs N` controls worker threads; results are identical for any
//! value).

fn main() {
    triangel_bench::figures::run_main("table2");
}
