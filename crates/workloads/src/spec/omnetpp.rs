//! Omnetpp-like workload: discrete-event network simulation.
//!
//! The event heap and module state are revisited with strong temporal
//! reuse but *not in strict sequence*: events are reordered locally as
//! the heap churns. The paper notes Omnet is hurt by BasePatternConf's
//! strict-sequence requirement and recovered by the Second-Chance
//! Sampler (Section 6.6) — so these streams repeat the same element set
//! each pass with a substantial reorder window.

use super::Builder;
use crate::mix::WorkloadMix;

pub(crate) fn build(mut b: Builder) -> WorkloadMix {
    // Event objects: large set, loosely ordered, dependent.
    b.temporal("omnet.events", 48_000, 0.55, 12, 0.004, 0.002, true, 4);
    // Module/gate state touched per event: medium, loose.
    b.temporal("omnet.modules", 22_000, 0.65, 10, 0.004, 0.002, true, 2);
    // Statistics arrays: strided.
    b.strided("omnet.stats", 1, 8_000, 1);
    // Heap index churn: small random.
    b.random("omnet.heap", 12_000, false, 1);
    b.finish()
}
