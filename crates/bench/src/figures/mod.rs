//! The experiment registry: every figure and table of the paper as a
//! named, declarative definition, executed by `triangel-harness`.
//!
//! Binaries are thin: `fig10` is `run_main("fig10")`, and
//! `all_figures` iterates the whole registry (optionally filtered with
//! a regex) over one shared result cache, so simulations common to
//! several figures — above all the per-workload stride-only baselines —
//! execute exactly once per process.

mod defs;

pub use defs::{
    features_grid, features_outputs, FEATURES_FULL_PARAMS, FEATURES_PARAMS, TIMELINE_SAMPLE_EVERY,
};

use std::path::PathBuf;
use std::sync::Arc;

use triangel_harness::emit;
use triangel_harness::filter::Pattern;
use triangel_harness::{ResultCache, SweepOptions, SweepStats};
use triangel_sim::report::FigureTable;

use crate::{SpecSweep, SweepParams};

/// One rendered artefact of an experiment.
#[derive(Debug)]
pub enum FigureOutput {
    /// A workloads × configurations table.
    Table(FigureTable),
    /// Free-form text (Tables 1 and 2 of the paper).
    Text(String),
    /// A machine-readable JSON artefact written under exactly
    /// `<name>.json` (the perf trajectory's `BENCH_perf.json`). Always
    /// persisted — to `--out-dir` when given, the working directory
    /// otherwise — and never printed to stdout, so experiments whose
    /// artefacts carry wall-clock timings keep `all_figures`' stdout
    /// deterministic.
    Json {
        /// File stem (`BENCH_perf` → `BENCH_perf.json`).
        name: String,
        /// The serialized JSON body.
        body: String,
    },
}

impl FigureOutput {
    /// Prints to stdout, matching the historical binary output.
    pub fn print(&self) {
        match self {
            FigureOutput::Table(t) => t.print(),
            FigureOutput::Text(s) => println!("{s}"),
            FigureOutput::Json { name, .. } => {
                println!("(machine-readable artefact: {name}.json)");
            }
        }
    }

    /// A short slug for file names when emitting JSON/CSV.
    fn slug(&self, fallback: &str, ordinal: usize) -> String {
        let base = match self {
            FigureOutput::Table(t) => t.title().to_string(),
            FigureOutput::Text(_) => fallback.to_string(),
            // Exact, ordinal-free: tooling greps for this very path.
            FigureOutput::Json { name, .. } => return name.clone(),
        };
        let mut slug: String = base
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect();
        while slug.contains("__") {
            slug = slug.replace("__", "_");
        }
        format!("{}_{}", slug.trim_matches('_'), ordinal)
    }
}

/// Shared state for one process's worth of experiments.
#[derive(Debug)]
pub struct FigureContext {
    /// Scale parameters (from the environment).
    pub params: SweepParams,
    /// Scheduler options; the cache inside is shared by every figure.
    pub opts: SweepOptions,
    stats: SweepStats,
    spec_sweep: Option<SpecSweep>,
}

impl FigureContext {
    /// A context with `jobs` workers (0 = one per core) and a fresh
    /// shared cache.
    pub fn new(params: SweepParams, jobs: usize) -> Self {
        FigureContext {
            params,
            opts: SweepOptions::parallel(jobs)
                .with_progress()
                .with_cache(Arc::new(ResultCache::new())),
            stats: SweepStats::default(),
            spec_sweep: None,
        }
    }

    /// The shared Figs. 10–15 sweep, run on first use with the full
    /// configuration set (individual figures select their columns).
    pub fn spec_sweep(&mut self) -> &SpecSweep {
        if self.spec_sweep.is_none() {
            let sweep = SpecSweep::run_opts(
                SpecSweep::paper_configs_with_nomrb(),
                &self.params,
                &self.opts,
            );
            self.absorb(sweep.stats());
            self.spec_sweep = Some(sweep);
        }
        self.spec_sweep.as_ref().unwrap()
    }

    /// Folds one sweep's counters into the per-process totals.
    pub fn absorb(&mut self, s: SweepStats) {
        self.stats.jobs += s.jobs;
        self.stats.executed += s.executed;
        self.stats.cache_hits += s.cache_hits;
        self.stats.errors += s.errors;
    }

    /// Totals across every sweep this context ran.
    pub fn stats(&self) -> SweepStats {
        self.stats
    }
}

/// A named experiment.
#[derive(Clone)]
pub struct FigureDef {
    /// Registry name (`fig10`, `table1`, `sec33_replacement`, ...).
    pub name: &'static str,
    /// One-line description.
    pub title: &'static str,
    run: fn(&mut FigureContext) -> Vec<FigureOutput>,
}

impl std::fmt::Debug for FigureDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FigureDef({})", self.name)
    }
}

impl FigureDef {
    /// Runs the experiment's sweeps and returns its artefacts.
    pub fn run(&self, ctx: &mut FigureContext) -> Vec<FigureOutput> {
        (self.run)(ctx)
    }
}

/// Every experiment, in the order `all_figures` runs them.
pub fn registry() -> Vec<FigureDef> {
    vec![
        FigureDef {
            name: "fig10",
            title: "Speedup over stride baseline",
            run: defs::fig10,
        },
        FigureDef {
            name: "fig11",
            title: "Normalized DRAM traffic",
            run: defs::fig11,
        },
        FigureDef {
            name: "fig12",
            title: "Prefetch accuracy",
            run: defs::fig12,
        },
        FigureDef {
            name: "fig13",
            title: "Coverage",
            run: defs::fig13,
        },
        FigureDef {
            name: "fig14",
            title: "Normalized L3 accesses",
            run: defs::fig14,
        },
        FigureDef {
            name: "fig15",
            title: "Normalized DRAM+L3 energy",
            run: defs::fig15,
        },
        FigureDef {
            name: "fig16",
            title: "Multiprogrammed speedup",
            run: defs::fig16,
        },
        FigureDef {
            name: "fig17",
            title: "Graph500 adversarial study",
            run: defs::fig17,
        },
        FigureDef {
            name: "fig18",
            title: "Markov metadata formats",
            run: defs::fig18,
        },
        FigureDef {
            name: "fig19",
            title: "LUT offset-width accuracy",
            run: defs::fig19,
        },
        FigureDef {
            name: "fig20",
            title: "Feature-ladder ablation",
            run: defs::fig20,
        },
        FigureDef {
            name: "table1",
            title: "Triangel structure sizing",
            run: defs::table1,
        },
        FigureDef {
            name: "table2",
            title: "Experimental setup",
            run: defs::table2,
        },
        FigureDef {
            name: "sec33_replacement",
            title: "Markov replacement-policy study",
            run: defs::sec33_replacement,
        },
        FigureDef {
            name: "duel_bias",
            title: "Set Dueller bias sweep",
            run: defs::duel_bias,
        },
        FigureDef {
            name: "features",
            title: "Feature ladder +/- eviction training",
            run: defs::features,
        },
        FigureDef {
            name: "perf",
            title: "Hot-path throughput vs recorded baseline",
            run: defs::perf,
        },
        FigureDef {
            name: "timeline",
            title: "Per-interval time-series +/- eviction training",
            run: defs::timeline,
        },
        FigureDef {
            name: "traces",
            title: "Irregular families + recorded-trace replay",
            run: defs::traces,
        },
        FigureDef {
            name: "multicore",
            title: "N-core scaling on the contended timing model",
            run: defs::multicore,
        },
    ]
}

/// Looks up one experiment by name.
pub fn find(name: &str) -> Option<FigureDef> {
    registry().into_iter().find(|f| f.name == name)
}

/// Command-line options shared by the figure binaries.
#[derive(Debug, Default)]
pub struct CliOptions {
    /// `--jobs N` (0 = one worker per core).
    pub jobs: usize,
    /// `--filter <regex>` (only `all_figures`).
    pub filter: Option<Pattern>,
    /// `--out-dir <dir>` (only `all_figures`): emit JSON/CSV here.
    pub out_dir: Option<PathBuf>,
    /// `--trace <path>`: record the harness's wall-time spans and write
    /// them as Chrome `trace_event` JSON (load at
    /// <https://ui.perfetto.dev>). Host-only observability — figure
    /// output is byte-identical with or without it.
    pub trace: Option<PathBuf>,
    /// `--store <dir>`: resolve jobs against (and publish them into)
    /// the on-disk result store at `dir`, shared safely with other
    /// processes. Serving a sweep from the store is byte-identical to
    /// executing it.
    pub store: Option<PathBuf>,
    /// `--connect <socket>`: run remotable jobs on the simulation
    /// daemon listening at `socket` (see the `serve` binary) instead of
    /// in-process. Results fold through the same aggregation,
    /// byte-identically.
    pub connect: Option<PathBuf>,
}

/// Parses `--jobs N`, `--filter RE`, `--out-dir DIR`, `--trace PATH`,
/// `--store DIR`, `--connect SOCK`.
///
/// # Errors
///
/// A usage message on unknown flags, missing values, or a malformed
/// filter regex.
pub fn parse_cli(args: impl Iterator<Item = String>) -> Result<CliOptions, String> {
    let mut opts = CliOptions::default();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" => {
                let v = args.next().ok_or("--jobs needs a value")?;
                opts.jobs = v.parse().map_err(|_| format!("bad --jobs value `{v}`"))?;
            }
            "--filter" => {
                let v = args.next().ok_or("--filter needs a regex")?;
                opts.filter = Some(Pattern::new(&v).map_err(|e| e.to_string())?);
            }
            "--out-dir" => {
                let v = args.next().ok_or("--out-dir needs a path")?;
                opts.out_dir = Some(PathBuf::from(v));
            }
            "--trace" => {
                let v = args.next().ok_or("--trace needs a path")?;
                opts.trace = Some(PathBuf::from(v));
            }
            "--store" => {
                let v = args.next().ok_or("--store needs a directory")?;
                opts.store = Some(PathBuf::from(v));
            }
            "--connect" => {
                let v = args.next().ok_or("--connect needs a socket path")?;
                opts.connect = Some(PathBuf::from(v));
            }
            other => {
                return Err(format!(
                    "unknown argument `{other}` (expected --jobs N, --filter RE, --out-dir DIR, \
                     --trace PATH, --store DIR, --connect SOCK)"
                ))
            }
        }
    }
    Ok(opts)
}

/// Entry point for the single-figure binaries: parses `--jobs` and
/// `--out-dir`, runs the named experiment, prints (and optionally
/// emits) its artefacts. `--filter` is rejected — there is only one
/// experiment here; filtering belongs to `all_figures`.
///
/// # Panics
///
/// Panics if `name` is not in the registry (a bug, not user error).
pub fn run_main(name: &str) {
    let cli = match parse_cli(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    if cli.filter.is_some() {
        eprintln!("--filter only applies to all_figures; this binary runs exactly `{name}`");
        std::process::exit(2);
    }
    let def = find(name).unwrap_or_else(|| panic!("unknown figure `{name}`"));
    let mut ctx = FigureContext::new(SweepParams::from_env(), cli.jobs);
    let trace = attach_trace(&mut ctx, &cli);
    if let Err(e) = attach_service(&mut ctx, &cli) {
        eprintln!("{e}");
        std::process::exit(2);
    }
    let outputs = def.run(&mut ctx);
    for out in &outputs {
        out.print();
    }
    let dir = cli.out_dir.clone().unwrap_or_else(|| PathBuf::from("."));
    if let Err(e) = emit_selected(&dir, name, &outputs, cli.out_dir.is_some()) {
        eprintln!("failed to emit {name} to {}: {e}", dir.display());
        std::process::exit(1);
    }
    write_trace(&cli, trace.as_deref());
    service_summary(&ctx.opts);
}

/// Creates the trace buffer `--trace` asked for (if any) and shares it
/// with the context's scheduler options, so every sweep the figures
/// run records its wall-time spans.
pub fn attach_trace(
    ctx: &mut FigureContext,
    cli: &CliOptions,
) -> Option<Arc<triangel_obs::TraceBuffer>> {
    let trace = cli
        .trace
        .as_ref()
        .map(|_| Arc::new(triangel_obs::TraceBuffer::new()));
    if let Some(t) = &trace {
        ctx.opts.trace = Some(Arc::clone(t));
    }
    trace
}

/// Wires `--store` / `--connect` into the context's scheduler options:
/// opens the on-disk result store and/or connects to the simulation
/// daemon, so every sweep the figures run resolves through them.
///
/// # Errors
///
/// A one-line message when the store cannot be opened or the daemon
/// cannot be reached (a dead daemon at `--connect` is an error here;
/// mid-run daemon loss falls back to local execution with a warning).
pub fn attach_service(ctx: &mut FigureContext, cli: &CliOptions) -> Result<(), String> {
    if let Some(dir) = &cli.store {
        let store = triangel_harness::ResultStore::open(dir)
            .map_err(|e| format!("cannot open result store at {}: {e}", dir.display()))?;
        ctx.opts.store = Some(Arc::new(store));
    }
    if let Some(sock) = &cli.connect {
        let client = triangel_harness::Client::connect(sock)
            .map_err(|e| format!("cannot connect to daemon at {}: {e}", sock.display()))?;
        ctx.opts.remote = Some(Arc::new(client));
    }
    Ok(())
}

/// Prints the store/daemon traffic counters to stderr after a run —
/// one line each, only for the services actually attached. stdout is
/// untouched, so figure output stays byte-identical.
pub fn service_summary(opts: &SweepOptions) {
    if let Some(client) = &opts.remote {
        eprintln!("[serve] {}", client.stats().render());
    }
    if let Some(store) = &opts.store {
        eprintln!("[store] {}", store.stats().render());
    }
}

/// Writes the recorded trace to the `--trace` path as Chrome
/// `trace_event` JSON. Exits the process on I/O failure (binary-level
/// helper, like `emit_selected`'s callers).
pub fn write_trace(cli: &CliOptions, trace: Option<&triangel_obs::TraceBuffer>) {
    let (Some(path), Some(trace)) = (&cli.trace, trace) else {
        return;
    };
    if let Err(e) = std::fs::write(path, trace.to_json()) {
        eprintln!("failed to write trace to {}: {e}", path.display());
        std::process::exit(1);
    }
    eprintln!("[trace] {} event(s) -> {}", trace.len(), path.display());
}

/// Writes artefacts under `dir`. `FigureOutput::Json` artefacts are
/// always written (they are the whole point of the experiments that
/// produce them); tables and text only when `all` is set (i.e. the
/// user asked for `--out-dir`).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn emit_selected(
    dir: &std::path::Path,
    name: &str,
    outputs: &[FigureOutput],
    all: bool,
) -> std::io::Result<()> {
    if all
        || outputs
            .iter()
            .any(|o| matches!(o, FigureOutput::Json { .. }))
    {
        std::fs::create_dir_all(dir)?;
    }
    for (i, out) in outputs.iter().enumerate() {
        let slug = out.slug(name, i);
        match out {
            FigureOutput::Table(t) if all => {
                std::fs::write(dir.join(format!("{slug}.json")), emit::table_to_json(t))?;
                std::fs::write(dir.join(format!("{slug}.csv")), emit::table_to_csv(t))?;
            }
            FigureOutput::Text(s) if all => {
                std::fs::write(dir.join(format!("{slug}.txt")), s)?;
            }
            FigureOutput::Json { body, .. } => {
                std::fs::write(dir.join(format!("{slug}.json")), body)?;
            }
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_cover_all_binaries() {
        let names: Vec<&str> = registry().iter().map(|f| f.name).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate registry names");
        for expected in [
            "fig10",
            "fig16",
            "fig17",
            "fig20",
            "table1",
            "table2",
            "sec33_replacement",
            "duel_bias",
            "features",
            "perf",
            "timeline",
            "traces",
            "multicore",
        ] {
            assert!(names.contains(&expected), "registry missing {expected}");
        }
    }

    #[test]
    fn cli_parses_all_flags() {
        let opts = parse_cli(
            [
                "--jobs",
                "8",
                "--filter",
                "fig1[0-5]",
                "--out-dir",
                "/tmp/x",
                "--store",
                "/tmp/store",
                "--connect",
                "/tmp/serve.sock",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(opts.jobs, 8);
        assert!(opts.filter.as_ref().unwrap().is_match("fig12"));
        assert!(!opts.filter.as_ref().unwrap().is_match("fig17"));
        assert_eq!(
            opts.out_dir.as_deref(),
            Some(std::path::Path::new("/tmp/x"))
        );
        assert_eq!(
            opts.store.as_deref(),
            Some(std::path::Path::new("/tmp/store"))
        );
        assert_eq!(
            opts.connect.as_deref(),
            Some(std::path::Path::new("/tmp/serve.sock"))
        );
        assert!(parse_cli(["--bogus"].iter().map(|s| s.to_string())).is_err());
        assert!(parse_cli(["--store"].iter().map(|s| s.to_string())).is_err());
    }
}
