//! Building a custom workload and a custom Triangel configuration.
//!
//! This example composes a workload from the temporal building blocks —
//! a strict pointer chase, a loosely-ordered scan (Second-Chance
//! territory), and unlearnable noise — and runs it under a Triangel
//! whose aggression thresholds were customized.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use triangel::core::TriangelConfig;
use triangel::sim::{Comparison, PrefetcherChoice, SimSession};
use triangel::types::{Addr, Pc};
use triangel::workloads::mix::WorkloadMix;
use triangel::workloads::temporal::{RandomStream, TemporalStream, TemporalStreamConfig};

fn build_workload(seed: u64) -> WorkloadMix {
    let mut mix = WorkloadMix::new("custom", seed);

    // A strict dependent chase over 40k lines (2.5 MiB): beyond every
    // cache, comfortably inside Markov capacity.
    mix.add(
        Box::new(TemporalStream::new(
            TemporalStreamConfig::pointer_chase(
                "chase",
                Pc::new(0x100),
                Addr::new(0x10_0000_0000),
                40_000,
            ),
            seed,
        )),
        3,
    );

    // A loose scan: same element set each pass, jittered order. The
    // Second-Chance Sampler keeps this prefetchable.
    mix.add(
        Box::new(TemporalStream::new(
            TemporalStreamConfig {
                exactness: 0.6,
                shuffle_window: 12,
                ..TemporalStreamConfig::pointer_chase(
                    "loose",
                    Pc::new(0x200),
                    Addr::new(0x20_0000_0000),
                    20_000,
                )
            },
            seed ^ 1,
        )),
        2,
    );

    // Unlearnable noise that a good prefetcher must ignore.
    mix.add(
        Box::new(RandomStream::new(
            "noise",
            Pc::new(0x300),
            Addr::new(0x30_0000_0000),
            100_000,
            false,
            seed ^ 2,
        )),
        1,
    );
    mix
}

fn main() {
    println!("Running baseline...");
    let base = SimSession::builder()
        .workload(build_workload(7))
        .warmup(900_000)
        .accesses(500_000)
        .sizing_window(150_000)
        .run()
        .unwrap();

    // A customized Triangel: smaller maximum degree, larger Second-
    // Chance window.
    let mut cfg = TriangelConfig::paper_default();
    cfg.max_degree = 2;
    cfg.scs_window = 1024;
    cfg.sizing_window = 150_000;

    println!("Running customized Triangel (degree<=2, SCS window 1024)...");
    let custom = SimSession::builder()
        .workload(build_workload(7))
        .warmup(900_000)
        .accesses(500_000)
        .prefetcher(PrefetcherChoice::TriangelCustom(cfg))
        .run()
        .unwrap();

    println!("Running paper-default Triangel...");
    let default = SimSession::builder()
        .workload(build_workload(7))
        .warmup(900_000)
        .accesses(500_000)
        .sizing_window(150_000)
        .prefetcher(PrefetcherChoice::Triangel)
        .run()
        .unwrap();

    let c_custom = Comparison::new(&base, &custom);
    let c_default = Comparison::new(&base, &default);
    println!();
    println!(
        "custom:  speedup {:.3}x, accuracy {:.2}, traffic {:.3}x",
        c_custom.speedup, c_custom.accuracy, c_custom.dram_traffic
    );
    println!(
        "default: speedup {:.3}x, accuracy {:.2}, traffic {:.3}x",
        c_default.speedup, c_default.accuracy, c_default.dram_traffic
    );
    println!("(the default's degree-4 aggression should win on the chase)");
}
