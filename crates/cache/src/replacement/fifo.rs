//! First-in first-out replacement.

use super::{AccessMeta, ReplacementPolicy, WayMask};

/// FIFO: the victim is the eligible way filled longest ago; hits do not
/// change priority.
///
/// Triangel's Metadata Reuse Buffer uses FIFO (Section 4.6): Markov
/// entries are read a handful of times by overlapping walks and should
/// then leave, so recency promotion would only keep stale metadata around.
#[derive(Debug, Clone)]
pub struct Fifo {
    ways: usize,
    stamp: Vec<u64>,
    clock: u64,
}

impl Fifo {
    /// Creates FIFO state for `sets x ways`.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && ways > 0);
        Fifo {
            ways,
            stamp: vec![0; sets * ways],
            clock: 0,
        }
    }
}

impl ReplacementPolicy for Fifo {
    fn on_hit(&mut self, _set: usize, _way: usize, _meta: &AccessMeta) {
        // Hits do not refresh FIFO order.
    }

    fn on_fill(&mut self, set: usize, way: usize, _meta: &AccessMeta) {
        self.clock += 1;
        self.stamp[set * self.ways + way] = self.clock;
    }

    fn victim(&mut self, set: usize, mask: WayMask) -> usize {
        assert!(mask != 0, "victim called with empty way mask");
        (0..self.ways)
            .filter(|w| mask & (1 << w) != 0)
            .min_by_key(|w| self.stamp[set * self.ways + w])
            .expect("mask selects at least one way")
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        self.stamp[set * self.ways + way] = 0;
    }
}

impl triangel_types::snap::Snapshot for Fifo {
    fn save(
        &self,
        w: &mut triangel_types::snap::SnapWriter,
    ) -> Result<(), triangel_types::snap::SnapError> {
        w.usize(self.stamp.len());
        for s in &self.stamp {
            w.u64(*s);
        }
        w.u64(self.clock);
        Ok(())
    }

    fn restore(
        &mut self,
        r: &mut triangel_types::snap::SnapReader,
    ) -> Result<(), triangel_types::snap::SnapError> {
        r.expect_len(self.stamp.len(), "FIFO stamps")?;
        for s in &mut self.stamp {
            *s = r.u64()?;
        }
        self.clock = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triangel_types::LineAddr;

    fn meta(v: u64) -> AccessMeta {
        AccessMeta::demand(LineAddr::new(v), None)
    }

    #[test]
    fn hits_do_not_promote() {
        let mut fifo = Fifo::new(1, 3);
        for w in 0..3 {
            fifo.on_fill(0, w, &meta(w as u64));
        }
        fifo.on_hit(0, 0, &meta(0));
        fifo.on_hit(0, 0, &meta(0));
        // Way 0 was filled first, so despite the hits it is still the victim.
        assert_eq!(fifo.victim(0, 0b111), 0);
    }

    #[test]
    fn refill_moves_to_back() {
        let mut fifo = Fifo::new(1, 2);
        fifo.on_fill(0, 0, &meta(0));
        fifo.on_fill(0, 1, &meta(1));
        fifo.on_fill(0, 0, &meta(2)); // way 0 refilled
        assert_eq!(fifo.victim(0, 0b11), 1);
    }
}
