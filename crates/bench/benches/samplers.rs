//! Criterion micro-benchmarks for Triangel's sampling structures: the
//! History Sampler, Second-Chance Sampler, Metadata Reuse Buffer and Set
//! Dueller, which sit on the prefetcher's per-event critical path.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use triangel_core::{HistorySampler, MetadataReuseBuffer, SecondChanceSampler, SetDueller};
use triangel_types::LineAddr;

fn bench_history_sampler(c: &mut Criterion) {
    c.bench_function("history_sampler_lookup_insert", |b| {
        let mut s = HistorySampler::new(512, 1);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            let addr = LineAddr::new(black_box(i % 50_000));
            black_box(s.lookup(addr, 3, i as u32, LineAddr::new(i)));
            if i.is_multiple_of(97) {
                s.insert(addr, 3, LineAddr::new(i + 1), i as u32);
            }
        });
    });
}

fn bench_scs(c: &mut Criterion) {
    c.bench_function("second_chance_check_insert", |b| {
        let mut s = SecondChanceSampler::new(64, 512);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(s.check(LineAddr::new(i % 1000), 4, i));
            if i.is_multiple_of(13) {
                s.insert(LineAddr::new((i + 7) % 1000), 4, i);
            }
        });
    });
}

fn bench_mrb(c: &mut Criterion) {
    c.bench_function("metadata_reuse_buffer_lookup", |b| {
        let mut m = MetadataReuseBuffer::new(256);
        for i in 0..256u64 {
            m.insert(LineAddr::new(i), LineAddr::new(i + 1), true);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(m.lookup(LineAddr::new(i % 512)));
        });
    });
}

fn bench_set_dueller(c: &mut Criterion) {
    c.bench_function("set_dueller_on_access", |b| {
        let mut d = SetDueller::new(2048, 8, 12, 2, 500_000, 7);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            d.on_access(LineAddr::new(black_box(i % 100_000)), !i.is_multiple_of(3));
        });
    });
}

criterion_group!(
    benches,
    bench_history_sampler,
    bench_scs,
    bench_mrb,
    bench_set_dueller
);
criterion_main!(benches);
