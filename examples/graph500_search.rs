//! Adversarial workload: Graph500 BFS (Section 6.4 of the paper).
//!
//! Builds a real Kronecker graph, traces breadth-first searches from
//! random roots, and shows how each prefetcher behaves on a stream with
//! no temporal correlation: the Triage variants grow their Markov
//! partition and pollute the L3 for nothing, while Triangel's
//! classifiers and Set Dueller largely switch the prefetcher off.
//!
//! ```sh
//! cargo run --release --example graph500_search [scale]
//! ```

use std::sync::Arc;

use triangel::sim::{Comparison, PrefetcherChoice, SimSession};
use triangel::workloads::graph500::{BfsTrace, Graph500Config, KroneckerConfig};

fn main() {
    // Scales below ~15 fit in the caches and show nothing interesting.
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let cfg = Graph500Config {
        scale,
        edge_factor: 10,
        seed: 0x6_1234,
    };
    println!("Generating Kronecker graph s{scale} e10...");
    let _ = KroneckerConfig {
        scale,
        edge_factor: 10,
        seed: 0,
    }; // geometry preview type
    let trace = cfg.build_trace();
    let graph = trace.graph_handle();
    println!(
        "  {} vertices, {} undirected edges, {:.1} MiB CSR",
        graph.n_vertices(),
        graph.n_entries() / 2,
        graph.footprint_bytes() as f64 / (1024.0 * 1024.0)
    );

    println!("Running baseline...");
    let base = SimSession::builder()
        .workload(BfsTrace::new(cfg.label(), Arc::clone(&graph), 1))
        .warmup(600_000)
        .accesses(400_000)
        .sizing_window(150_000)
        .run()
        .unwrap();

    for choice in [
        PrefetcherChoice::Triage,
        PrefetcherChoice::TriageDeg4,
        PrefetcherChoice::Triangel,
        PrefetcherChoice::TriangelBloom,
    ] {
        println!("Running {}...", choice.label());
        let run = SimSession::builder()
            .workload(BfsTrace::new(cfg.label(), Arc::clone(&graph), 1))
            .warmup(600_000)
            .accesses(400_000)
            .sizing_window(150_000)
            .prefetcher(choice)
            .run()
            .unwrap();
        let c = Comparison::new(&base, &run);
        println!(
            "  {:18} slowdown {:.3}x, DRAM traffic {:.3}x, markov ways {}",
            choice.label(),
            c.slowdown(),
            c.dram_traffic,
            run.markov_ways
        );
    }
}
